// A tour of the VirtualEarthObservatory facade: the four tiers of the
// paper's Figure 2 behind one object, plus the features beyond the basic
// demo scenarios — SPARQL aggregation over the product catalog, temporal
// (strdf:period) filters on hotspot valid time, and the interactive
// semantic annotation loop of the service tier (analyst corrections
// propagated by relevance feedback).

#include <cstdio>
#include <filesystem>

#include "core/observatory.h"
#include "eo/scene.h"
#include "linkeddata/generators.h"
#include "mining/annotation_service.h"
#include "mining/features.h"

namespace fs = std::filesystem;
using namespace teleios;

int main() {
  std::string dir =
      (fs::temp_directory_path() / "teleios_observatory_tour").string();
  fs::create_directories(dir);

  // Two acquisitions, one day apart.
  eo::Scene morning, next_day;
  {
    eo::SceneSpec spec;
    spec.width = 128;
    spec.height = 128;
    spec.num_fires = 5;
    spec.name = "msg_0825";
    morning = *eo::GenerateScene(spec);
    (void)vault::WriteTer(morning.ToTerRaster(), dir + "/msg_0825.ter");
    spec.seed = 43;
    spec.name = "msg_0826";
    spec.acquisition_time += 86400;  // 2007-08-26
    next_day = *eo::GenerateScene(spec);
    (void)vault::WriteTer(next_day.ToTerRaster(), dir + "/msg_0826.ter");
  }

  core::VirtualEarthObservatory veo;
  auto attached = veo.AttachArchive(dir);
  std::printf("attached %zu products\n", *attached);
  (void)veo.LoadLinkedData(*linkeddata::GenerateCoastline(morning));

  // Run the chain on both acquisitions.
  noa::ChainConfig config;
  config.classifier.kind = noa::ClassifierKind::kContextual;
  auto run1 = veo.RunFireChain("msg_0825", config);
  auto run2 = veo.RunFireChain("msg_0826", config);
  std::printf("hotspots: %zu on 08-25, %zu on 08-26\n",
              run1->hotspots.size(), run2->hotspots.size());

  // SPARQL aggregation over the catalog: hotspots per product.
  std::printf("\n-- hotspots per product (SPARQL GROUP BY) --\n");
  auto counts = veo.StSparql(
      "SELECT ?p (count(*) AS ?n) (avg(?c) AS ?conf) WHERE { "
      "?h a noa:Hotspot ; noa:derivedFromProduct ?p ; "
      "noa:hasConfidence ?c } GROUP BY ?p ORDER BY ?p");
  std::printf("%s", counts->ToString().c_str());

  // Temporal filter: only detections whose valid time falls on Aug 25.
  std::printf("\n-- hotspots valid during 2007-08-25 (strdf:period) --\n");
  auto aug25 = veo.StSparql(
      "SELECT (count(*) AS ?n) WHERE { ?h a noa:Hotspot ; "
      "noa:hasValidTime ?vt . FILTER(strdf:during(?vt, "
      "\"[2007-08-25T00:00:00, 2007-08-25T23:59:59]\"^^strdf:period)) }");
  std::printf("%s", aug25->ToString().c_str());

  // Interactive semantic annotation (service tier): automatic concepts,
  // one analyst correction, relevance-feedback propagation.
  std::printf("\n-- interactive semantic annotation --\n");
  auto patches = *mining::CutPatches(morning, 16);
  mining::AnnotationService service;
  (void)service.Annotate(patches, 6);
  std::string before = service.annotations()[0].concept_iri;
  std::printf("patch 0 auto-annotated as %s\n",
              before.substr(before.find('#') + 1).c_str());
  // The analyst relabels two cloud-contaminated patches.
  size_t fixed = 0;
  for (size_t i = 0; i < patches.size() && fixed < 2; ++i) {
    if (patches[i].features[11] > 0.5) {  // cloud fraction
      (void)service.Correct(
          i, "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#Cloud");
      ++fixed;
    }
  }
  if (fixed > 0) {
    auto changed = service.Propagate(3);
    std::printf("%zu corrections propagated to %zu similar patches\n",
                service.corrections(), changed.ok() ? *changed : 0);
  }
  auto published = service.Publish("msg_0825", &veo.strabon());
  std::printf("published %zu annotation triples\n",
              published.ok() ? *published : 0);

  // SQL over the same catalog.
  std::printf("\n-- product catalog (SQL) --\n");
  auto products = veo.Sql(
      "SELECT id, level FROM products ORDER BY id");
  std::printf("%s", products->ToString().c_str());

  // Query profiling: PROFILE returns the span tree instead of the rows.
  std::printf("\n-- PROFILE SELECT (span tree) --\n");
  auto profile = veo.Sql("PROFILE SELECT id, level FROM products ORDER BY id");
  std::printf("%s", profile->ToString().c_str());

  // Everything above left a metrics trail; this is what an operator
  // would scrape from a /metrics endpoint.
  std::printf("\n-- process metrics (Prometheus text exposition) --\n");
  std::printf("%s", veo.MetricsText().c_str());
  return 0;
}
