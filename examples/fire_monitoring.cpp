// Demo scenario 1 (paper §4, "The NOA processing chain"): run the NOA
// fire-monitoring chain — (a) ingestion, (b) cropping, (c) georeference,
// (d) classification, (e) hotspot shapefile generation — over a synthetic
// MSG/SEVIRI scene, with two different classification submodules, and
// compare their products (pixel precision/recall against the seeded
// ground truth). Also shows the SciQL statement implementing the chain
// and the stSPARQL catalog search over prior executions.

#include <cstdio>
#include <filesystem>

#include "eo/ontology.h"
#include "eo/scene.h"
#include "noa/chain.h"
#include "noa/classification.h"

namespace fs = std::filesystem;
using namespace teleios;

int main() {
  std::string dir =
      (fs::temp_directory_path() / "teleios_fire_monitoring").string();
  fs::create_directories(dir);

  // A SEVIRI-like scene with seeded fires, clouds and sun glint.
  eo::SceneSpec spec;
  spec.width = 160;
  spec.height = 160;
  spec.num_fires = 6;
  spec.name = "msg_scene";
  auto scene = eo::GenerateScene(spec);
  (void)vault::WriteTer(scene->ToTerRaster(), dir + "/msg_scene.ter");

  storage::Catalog catalog;
  vault::DataVault vault(&catalog);
  (void)vault.Attach(dir);
  sciql::SciQlEngine sciql(&catalog);
  strabon::Strabon strabon;
  (void)strabon.LoadTurtle(eo::OntologyTurtle());
  noa::ProcessingChain chain(&vault, &sciql, &strabon, &catalog);

  // Two chain configurations differing in the classification submodule.
  noa::ChainConfig threshold;
  threshold.classifier.kind = noa::ClassifierKind::kThreshold;
  threshold.classifier.threshold_kelvin = 315.0;
  threshold.output_dir = dir;
  noa::ChainConfig contextual = threshold;
  contextual.classifier.kind = noa::ClassifierKind::kContextual;

  for (const noa::ChainConfig& config : {threshold, contextual}) {
    std::printf("=== chain with %s classifier ===\n",
                noa::ClassifierKindName(config.classifier.kind));
    std::printf("SciQL: %s\n",
                noa::ProcessingChain::ClassificationSciQl("msg_scene",
                                                          config)
                    .c_str());
    auto result = chain.Run("msg_scene", config);
    if (!result.ok()) {
      std::fprintf(stderr, "chain: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    for (const auto& t : result->timings) {
      std::printf("  %-28s %8.2f ms\n", t.step.c_str(), t.millis);
    }
    std::printf("  hotspots: %zu  shapefile: %s\n",
                result->hotspots.size(), result->vec_path.c_str());
    // Score against ground truth for the comparison.
    auto mask = noa::ClassifyFirePixels(*scene, config.classifier);
    noa::PixelScore score = noa::ScoreMask(*scene, *mask);
    std::printf("  precision %.3f  recall %.3f  f1 %.3f\n",
                score.Precision(), score.Recall(), score.F1());
  }

  // Scenario 1's product discovery: search prior runs via stSPARQL.
  std::printf("=== catalog of generated products (stSPARQL) ===\n");
  auto products = strabon.Query(
      "SELECT ?id ?lvl WHERE { ?p a noa:Product ; noa:hasProductId ?id ; "
      "noa:hasProcessingLevel ?lvl . } ORDER BY ?id");
  std::printf("%s", products->ToString().c_str());
  return 0;
}
