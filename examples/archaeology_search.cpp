// The paper's §1 headline information request, answered end-to-end:
//
//   "Find an image taken by a Meteosat second generation satellite on
//    August 25, 2007 which covers the area of Peloponnese and contains
//    hotspots corresponding to forest fires located within 2km from a
//    major archaeological site."
//
// This is impossible in a traditional EO interface (EOWEB-NG) because
// 'forest fire' and 'archaeological site' are not archive metadata. Here
// the fire hotspots come from the NOA chain, the sites from a (synthetic)
// DBpedia-like linked data source, and one stSPARQL query joins them.

#include <cstdio>
#include <filesystem>

#include "eo/ontology.h"
#include "eo/scene.h"
#include "linkeddata/generators.h"
#include "noa/chain.h"

namespace fs = std::filesystem;
using namespace teleios;

int main() {
  std::string dir =
      (fs::temp_directory_path() / "teleios_archaeology").string();
  fs::create_directories(dir);

  // The Peloponnese scene of 2007-08-25 (the default footprint + time).
  eo::SceneSpec spec;
  spec.width = 160;
  spec.height = 160;
  spec.num_fires = 8;
  spec.name = "msg_peloponnese_20070825";
  auto scene = eo::GenerateScene(spec);
  (void)vault::WriteTer(scene->ToTerRaster(),
                        dir + "/msg_peloponnese_20070825.ter");

  storage::Catalog catalog;
  vault::DataVault vault(&catalog);
  (void)vault.Attach(dir);
  sciql::SciQlEngine sciql(&catalog);
  strabon::Strabon strabon;
  (void)strabon.LoadTurtle(eo::OntologyTurtle());

  // Register the Level-1 product and derive hotspots with the NOA chain.
  auto header = vault.GetRasterHeader("msg_peloponnese_20070825");
  (void)eo::RegisterProductTriples(
      eo::MetadataFromHeader(*header, eo::ProductLevel::kL1), &strabon);
  noa::ProcessingChain chain(&vault, &sciql, &strabon, &catalog);
  noa::ChainConfig config;
  config.classifier.kind = noa::ClassifierKind::kContextual;
  auto result = chain.Run("msg_peloponnese_20070825", config);
  std::printf("chain produced %zu hotspots\n", result->hotspots.size());

  // Linked open data: archaeological sites (DBpedia-like).
  auto sites = linkeddata::GenerateArchaeologicalSites(*scene, 40, 11);
  (void)strabon.LoadTurtle(*sites);

  // The headline query, in one stSPARQL statement.
  const char* query = R"sparql(
PREFIX dbo: <http://dbpedia.org/ontology/>
SELECT DISTINCT ?product ?site ?label
WHERE {
  ?product a noa:Product ;
           noa:producedBySatellite "Meteosat-9" ;
           noa:hasAcquisitionTime ?t ;
           noa:hasGeometry ?pg .
  ?hotspot a noa:Hotspot ;
           noa:derivedFromProduct ?l2 ;
           noa:hasGeometry ?hg .
  ?l2 noa:wasDerivedFrom ?product .
  ?site a dbo:ArchaeologicalSite ;
        rdfs:label ?label ;
        strdf:hasGeometry ?sg .
  FILTER(?t >= "2007-08-25T00:00:00"^^xsd:dateTime)
  FILTER(?t < "2007-08-26T00:00:00"^^xsd:dateTime)
  FILTER(strdf:contains(?pg, "POINT (22.2 37.3)"^^strdf:WKT))
  FILTER(strdf:geodesicDistance(?hg, ?sg) < 2000.0)
}
ORDER BY ?label
)sparql";
  std::printf("\nheadline stSPARQL query:\n%s\n", query);
  auto answers = strabon.Query(query);
  if (!answers.ok()) {
    std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
    return 1;
  }
  std::printf("answers (%zu):\n%s", answers->num_rows(),
              answers->ToString(50).c_str());
  if (answers->num_rows() == 0) {
    std::printf("(no site within 2km of a hotspot in this synthetic draw;"
                " rerun with more fires/sites)\n");
  }
  return 0;
}
