// Demo scenario 2b (paper §4): automatic generation of fire maps
// enriched with relevant geo-information available as open linked data —
// "of paramount importance to NOA, since the creation of such maps in the
// past has been a time-consuming manual process." Every layer of the map
// is the result of an stSPARQL query; output is an SVG file plus an
// ASCII rendering for the terminal.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "eo/ontology.h"
#include "eo/scene.h"
#include "linkeddata/generators.h"
#include "noa/chain.h"
#include "noa/mapping.h"
#include "noa/refinement.h"

namespace fs = std::filesystem;
using namespace teleios;

int main() {
  std::string dir =
      (fs::temp_directory_path() / "teleios_rapid_mapping").string();
  fs::create_directories(dir);

  eo::SceneSpec spec;
  spec.width = 160;
  spec.height = 160;
  spec.num_fires = 6;
  spec.name = "msg_scene";
  auto scene = eo::GenerateScene(spec);
  (void)vault::WriteTer(scene->ToTerRaster(), dir + "/msg_scene.ter");

  storage::Catalog catalog;
  vault::DataVault vault(&catalog);
  (void)vault.Attach(dir);
  sciql::SciQlEngine sciql(&catalog);
  strabon::Strabon strabon;
  (void)strabon.LoadTurtle(eo::OntologyTurtle());

  // Open linked data layers (synthetic GeoNames / LinkedGeoData / OSM).
  (void)strabon.LoadTurtle(*linkeddata::GenerateCoastline(*scene));
  (void)strabon.LoadTurtle(*linkeddata::GenerateTowns(*scene, 12, 3));
  (void)strabon.LoadTurtle(*linkeddata::GenerateRoads(*scene, 10, 5));

  // Detect + refine hotspots.
  noa::ProcessingChain chain(&vault, &sciql, &strabon, &catalog);
  noa::ChainConfig config;
  config.classifier.kind = noa::ClassifierKind::kThreshold;
  config.classifier.threshold_kelvin = 315.0;
  auto result = chain.Run("msg_scene", config);
  (void)noa::RefineHotspots(&strabon, result->product_id);

  // Compose the map: each layer is an stSPARQL query.
  noa::RapidMapper mapper(&strabon);
  (void)mapper.AddQueryLayer(
      "landmass", "#9fbf8f", '.',
      "SELECT ?g WHERE { ?x a noa:LandArea ; noa:hasGeometry ?g }");
  (void)mapper.AddQueryLayer(
      "roads", "#8a7a5a", '-',
      "PREFIX lgd: <http://linkedgeodata.org/ontology/> "
      "SELECT ?g WHERE { ?w a lgd:HighwayThing ; strdf:hasGeometry ?g }");
  (void)mapper.AddQueryLayer(
      "towns", "#2244cc", 'o',
      "PREFIX geonames: <http://www.geonames.org/ontology#> "
      "SELECT ?g ?n WHERE { ?t a geonames:Feature ; strdf:hasGeometry ?g ; "
      "geonames:name ?n . ?t geonames:population ?p . FILTER(?p > 20000) }");
  (void)mapper.AddQueryLayer(
      "fire hotspots", "#dd2200", '#',
      "SELECT ?g WHERE { ?h a noa:Hotspot ; noa:hasGeometry ?g }");

  std::string svg_path = dir + "/fire_map.svg";
  {
    std::ofstream os(svg_path);
    os << mapper.RenderSvg(900, 760);
  }
  std::printf("%s\n", mapper.RenderAscii(76, 34).c_str());
  std::printf("SVG fire map written to %s\n", svg_path.c_str());
  std::printf("layers: %zu (each backed by one stSPARQL query)\n",
              mapper.layers().size());
  return 0;
}
