// Demo scenario 2 (paper §4, "Improving generated products"): the
// thematic accuracy of the hotspot shapefiles is improved by an stSPARQL
// post-processing step that compares them with auxiliary geospatial RDF
// (the coastline) and removes geometry that cannot be burning (sea).
// The user is shown the stSPARQL UPDATE statements and the effect of each
// step — exactly what the paper demonstrates.

#include <cstdio>
#include <filesystem>

#include "eo/ontology.h"
#include "eo/scene.h"
#include "linkeddata/generators.h"
#include "noa/chain.h"
#include "noa/refinement.h"

namespace fs = std::filesystem;
using namespace teleios;

int main() {
  std::string dir =
      (fs::temp_directory_path() / "teleios_refinement").string();
  fs::create_directories(dir);

  eo::SceneSpec spec;
  spec.width = 160;
  spec.height = 160;
  spec.num_fires = 5;
  spec.num_glints = 5;  // sun glint => false alarms over the sea
  spec.name = "msg_scene";
  auto scene = eo::GenerateScene(spec);
  (void)vault::WriteTer(scene->ToTerRaster(), dir + "/msg_scene.ter");

  storage::Catalog catalog;
  vault::DataVault vault(&catalog);
  (void)vault.Attach(dir);
  sciql::SciQlEngine sciql(&catalog);
  strabon::Strabon strabon;
  (void)strabon.LoadTurtle(eo::OntologyTurtle());

  // Auxiliary geospatial data: the coastline layer (land + sea regions),
  // published as stRDF like any other linked data source.
  auto coastline = linkeddata::GenerateCoastline(*scene);
  (void)strabon.LoadTurtle(*coastline);

  // The naive threshold chain: fooled by glint and coastal plume leakage.
  noa::ProcessingChain chain(&vault, &sciql, &strabon, &catalog);
  noa::ChainConfig config;
  config.classifier.kind = noa::ClassifierKind::kThreshold;
  config.classifier.threshold_kelvin = 315.0;
  auto result = chain.Run("msg_scene", config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  geo::Geometry truth = scene->GroundTruthFires();
  auto before =
      noa::FetchHotspotGeometries(&strabon, result->product_id);
  auto acc_before = noa::ScoreHotspotsAgainstTruth(*before, truth);
  std::printf("before refinement: %zu hotspots, precision %.3f, recall "
              "%.3f\n",
              before->size(), acc_before->precision, acc_before->recall);

  auto report = noa::RefineHotspots(&strabon, result->product_id);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\nstSPARQL statements executed:\n");
  for (const std::string& stmt : report->statements) {
    std::printf("---\n%s\n", stmt.c_str());
  }
  std::printf("---\nexamined %zu, clipped %zu, rejected %zu, area removed "
              "%.6f deg^2\n",
              report->hotspots_examined, report->hotspots_refined,
              report->hotspots_removed, report->area_removed);

  auto after = noa::FetchHotspotGeometries(&strabon, result->product_id);
  auto acc_after = noa::ScoreHotspotsAgainstTruth(*after, truth);
  std::printf("\nafter refinement:  %zu hotspots, precision %.3f, recall "
              "%.3f\n",
              after->size(), acc_after->precision, acc_after->recall);
  std::printf("thematic accuracy (precision) improved by %.1f%%\n",
              100.0 * (acc_after->precision - acc_before->precision));
  return 0;
}
