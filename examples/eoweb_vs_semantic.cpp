// The paper's §1 argument, side by side. An EOWEB-NG-style interface
// offers "a hierarchical organization of available products ... together
// with a temporal and geographic selection menu" — domain concepts like
// 'forest fire' are not archive metadata, so they cannot be search
// criteria. TELEIOS closes that gap: the same archive, enriched with
// concepts and linked data, answers semantic requests.
//
// Part 1 emulates the EOWEB workflow over the relational catalog (SQL:
// category + time + bounding box). Part 2 runs the semantic requests
// EOWEB cannot express (stSPARQL over concepts, confidence, distance to
// linked-data entities) and exports the knowledge base as Turtle.

#include <cstdio>
#include <filesystem>

#include "core/observatory.h"
#include "eo/scene.h"
#include "linkeddata/generators.h"
#include "mining/annotation.h"
#include "mining/features.h"

namespace fs = std::filesystem;
using namespace teleios;

int main() {
  std::string dir =
      (fs::temp_directory_path() / "teleios_eoweb_vs_semantic").string();
  fs::create_directories(dir);
  eo::SceneSpec spec;
  spec.width = 128;
  spec.height = 128;
  spec.num_fires = 5;
  spec.name = "msg_0825";
  auto scene = eo::GenerateScene(spec);
  (void)vault::WriteTer(scene->ToTerRaster(), dir + "/msg_0825.ter");

  core::VirtualEarthObservatory veo;
  (void)veo.AttachArchive(dir);

  // ----- Part 1: the EOWEB-NG workflow (what today's archives offer) ----
  std::printf("===== EOWEB-style search (SQL over archive metadata) =====\n");
  std::printf("category tree:\n");
  std::printf("  + High Resolution Optical Data\n");
  std::printf("  + Synthetic Aperture Radar Data\n");
  std::printf("  + Meteosat Second Generation  <- selected\n");
  auto eoweb = veo.Sql(
      "SELECT name, acq_time, footprint FROM vault_rasters "
      "WHERE sensor = 'SEVIRI' AND acq_time >= 1188000000 "
      "AND acq_time < 1188086400");
  std::printf("%s", eoweb->ToString().c_str());
  std::printf("-> the archive can answer WHEN and WHERE, but 'forest "
              "fire' or 'near an archaeological site'\n   are not "
              "metadata: those requests cannot even be expressed.\n\n");

  // ----- Part 2: the TELEIOS workflow -----------------------------------
  std::printf("===== TELEIOS semantic search (stSPARQL) =====\n");
  // Derive knowledge: hotspots via the NOA chain, concepts via KDD,
  // sites from linked data.
  noa::ChainConfig config;
  config.classifier.kind = noa::ClassifierKind::kContextual;
  auto run = veo.RunFireChain("msg_0825", config);
  auto patches = *mining::CutPatches(*scene, 8);
  auto annotations = *mining::AnnotatePatches(patches, 8, 7);
  (void)mining::PublishAnnotations(annotations, "msg_0825", &veo.strabon());
  (void)veo.LoadLinkedData(
      *linkeddata::GenerateArchaeologicalSites(*scene, 30, 11));

  std::printf("[1] products containing fire hotspots with confidence > 0.6:\n");
  auto q1 = veo.StSparql(
      "SELECT DISTINCT ?product WHERE { ?h a noa:Hotspot ; "
      "noa:derivedFromProduct ?product ; noa:hasConfidence ?c . "
      "FILTER(?c > 0.6) }");
  std::printf("%s\n", q1->ToString().c_str());

  std::printf("[2] landcover concepts detected in the scene (GROUP BY):\n");
  auto q2 = veo.StSparql(
      "SELECT ?concept (count(*) AS ?patches) WHERE { ?p a noa:Patch ; "
      "noa:hasConcept ?concept } GROUP BY ?concept ORDER BY ?concept");
  std::printf("%s\n", q2->ToString().c_str());

  std::printf("[3] hotspots within 2km of an archaeological site "
              "(impossible in EOWEB):\n");
  auto q3 = veo.StSparql(
      "PREFIX dbo: <http://dbpedia.org/ontology/> "
      "SELECT ?h ?label WHERE { ?h a noa:Hotspot ; noa:hasGeometry ?hg . "
      "?s a dbo:ArchaeologicalSite ; rdfs:label ?label ; "
      "strdf:hasGeometry ?sg . "
      "FILTER(strdf:geodesicDistance(?hg, ?sg) < 2000.0) }");
  std::printf("%s\n", q3->ToString().c_str());

  // The knowledge base is plain linked data: export it.
  std::string ttl = dir + "/knowledge_base.ttl";
  (void)veo.strabon().SaveTurtleFile(ttl);
  std::printf("knowledge base exported as linked data: %s (%zu triples)\n",
              ttl.c_str(), veo.strabon().size());
  return 0;
}
