// Quickstart: the TELEIOS Virtual Earth Observatory in ~80 lines.
//
// 1. Generate a synthetic MSG/SEVIRI scene and store it as a .ter file.
// 2. Attach the file directory as a Data Vault (metadata only, no load).
// 3. Query the archive catalog with SQL before any payload is ingested.
// 4. Touch the raster: lazy ingestion into a SciQL array.
// 5. Run a SciQL query over the image content (fire classification).
// 6. Publish product metadata as stRDF and query it with stSPARQL.

#include <cstdio>
#include <filesystem>

#include "eo/product.h"
#include "eo/scene.h"
#include "relational/sql_engine.h"
#include "sciql/sciql_engine.h"
#include "strabon/strabon.h"
#include "vault/vault.h"

namespace fs = std::filesystem;
using namespace teleios;

int main() {
  // --- 1. a synthetic Level-1 product in the archive ---------------------
  std::string dir = (fs::temp_directory_path() / "teleios_quickstart").string();
  fs::create_directories(dir);
  eo::SceneSpec spec;
  spec.width = 128;
  spec.height = 128;
  spec.name = "MSG2_20070825";
  auto scene = eo::GenerateScene(spec);
  if (!scene.ok()) {
    std::fprintf(stderr, "scene: %s\n", scene.status().ToString().c_str());
    return 1;
  }
  (void)vault::WriteTer(scene->ToTerRaster(), dir + "/MSG2_20070825.ter");

  // --- 2. attach the archive as a data vault -----------------------------
  storage::Catalog catalog;
  vault::DataVault vault(&catalog);
  auto attached = vault.Attach(dir);
  std::printf("attached %zu file(s); rasters ingested so far: %zu\n",
              *attached, vault.stats().rasters_ingested);

  // --- 3. metadata is queryable before any pixel is loaded ---------------
  relational::SqlEngine sql(&catalog);
  auto rasters = sql.Execute(
      "SELECT name, width, height, bands FROM vault_rasters");
  std::printf("%s", rasters->ToString().c_str());

  // --- 4 + 5. lazy ingest + SciQL over image content ---------------------
  sciql::SciQlEngine sciql(&catalog);
  auto array = vault.GetRasterArray("MSG2_20070825");
  (void)sciql.RegisterArray(*array);
  std::printf("after first touch, rasters ingested: %zu\n",
              vault.stats().rasters_ingested);
  auto fires = sciql.Execute(
      "SELECT count(*) AS fire_pixels FROM MSG2_20070825 "
      "WHERE IR039 - IR108 > 10 and IR039 > 308 and LANDMASK > 0.5");
  std::printf("%s", fires->ToString().c_str());

  // --- 6. stRDF metadata + stSPARQL --------------------------------------
  strabon::Strabon strabon;
  auto header = vault.GetRasterHeader("MSG2_20070825");
  (void)eo::RegisterProductTriples(
      eo::MetadataFromHeader(*header, eo::ProductLevel::kL1), &strabon);
  auto products = strabon.Query(
      "SELECT ?id ?time WHERE { ?p a noa:Product ; noa:hasProductId ?id ; "
      "noa:hasAcquisitionTime ?time . }");
  std::printf("%s", products->ToString().c_str());

  auto covering = strabon.Ask(
      "ASK { ?p a noa:Product ; noa:hasGeometry ?g . "
      "FILTER(strdf:contains(?g, \"POINT (22.0 37.5)\"^^strdf:WKT)) }");
  std::printf("a product covers 22.0E 37.5N: %s\n",
              *covering ? "yes" : "no");
  return 0;
}
