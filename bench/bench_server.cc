// E18 — network service layer: what the wire adds on top of in-process
// execution. A connections × pipelining sweep (1/8/64 connections, 1/4
// in-flight statements each) over loopback measures burst round-trip
// percentiles (p50/p95/p99, reported as counters) and streamed-row
// throughput, bounding the protocol tax: framing + CRC, session
// accounting, budget-charged chunking, and the thread-per-connection
// handoff. Run with --json to diff ns_per_op across changes.
//
// E20 — the retry tax: BM_ServerFaultRate runs the same streamed query
// through a ResilientClient while the fault-injecting transport kills
// every N-th transport op (cells N = 0/32/128/512; 0 = clean wire).
// p50 shows the fault-free fast path is untouched; p95/p99 absorb the
// reconnect + replay cost. `--fault-rate=N` (consumed by bench_main,
// exported as TELEIOS_BENCH_FAULT_RATE) overrides N in every cell.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/observatory.h"
#include "governor/admission.h"
#include "server/client.h"
#include "server/fault_transport.h"
#include "server/resilient_client.h"
#include "server/server.h"
#include "server/transport.h"
#include "storage/table.h"

namespace {

namespace core = teleios::core;
namespace server = teleios::server;
namespace storage = teleios::storage;

constexpr size_t kRowsPerQuery = 256;

/// p-th percentile (nearest-rank) of an unsorted sample, in the
/// sample's unit.
double Percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  size_t rank = static_cast<size_t>(p * static_cast<double>(sample.size()));
  return sample[std::min(rank, sample.size() - 1)];
}

/// One sweep cell: `connections` persistent clients, each sending
/// `in_flight` pipelined QUERYs per round and draining the streamed
/// results. One benchmark iteration is one such round across all
/// connections, so ns_per_op reads as round latency; per-burst
/// round-trips feed the percentile counters.
void BM_ServerSweep(benchmark::State& state) {
  const int connections = static_cast<int>(state.range(0));
  const int in_flight = static_cast<int>(state.range(1));

  core::VirtualEarthObservatory veo;
  auto table = std::make_shared<storage::Table>(
      storage::Schema({{"x", storage::ColumnType::kInt64}}));
  for (size_t i = 0; i < kRowsPerQuery; ++i) {
    table->column(0).AppendInt64(static_cast<int64_t>(i));
  }
  if (!veo.catalog().CreateTable("bench_rows", table).ok()) {
    state.SkipWithError("CreateTable failed");
    return;
  }
  teleios::governor::AdmissionConfig admission;
  admission.max_concurrent = 16;
  admission.max_queue = 512;
  veo.SetAdmissionConfig(admission);

  server::ServerConfig config;
  config.port = 0;
  config.max_sessions = connections + 8;
  config.chunk_rows = 128;
  server::TeleiosServer srv(&veo, config);
  if (!srv.Start().ok()) {
    state.SkipWithError("server Start failed");
    return;
  }

  std::vector<server::Client> clients;
  clients.reserve(static_cast<size_t>(connections));
  for (int i = 0; i < connections; ++i) {
    auto client = server::Client::Connect("127.0.0.1", srv.port());
    if (!client.ok()) {
      state.SkipWithError("client Connect failed");
      (void)srv.Shutdown();
      return;
    }
    clients.push_back(std::move(client).value());
  }

  const std::string query = "SELECT x FROM bench_rows";

  // Round barrier: the measured thread bumps `generation`, every worker
  // runs one burst, the last one done wakes the measurer.
  std::mutex mu;
  std::condition_variable cv;
  uint64_t generation = 0;
  int done = 0;
  bool quit = false;
  std::atomic<uint64_t> rows_streamed{0};
  std::atomic<bool> failed{false};
  std::mutex lat_mu;
  std::vector<double> burst_micros;

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      uint64_t seen = 0;
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return quit || generation != seen; });
          if (quit) return;
          seen = generation;
        }
        auto start = std::chrono::steady_clock::now();
        bool burst_ok = true;
        for (int q = 0; q < in_flight && burst_ok; ++q) {
          burst_ok = clients[c].SendQuery(server::Lang::kSql, query).ok();
        }
        for (int q = 0; q < in_flight && burst_ok; ++q) {
          auto result = clients[c].ReadResult();
          burst_ok = result.ok();
          if (burst_ok) rows_streamed += result->num_rows();
        }
        if (!burst_ok) failed = true;
        double micros = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        {
          std::lock_guard<std::mutex> lock(lat_mu);
          burst_micros.push_back(micros);
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          if (++done == connections) cv.notify_all();
        }
      }
    });
  }

  for (auto _ : state) {
    {
      std::lock_guard<std::mutex> lock(mu);
      done = 0;
      ++generation;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == connections; });
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    quit = true;
  }
  cv.notify_all();
  for (std::thread& t : workers) t.join();
  for (server::Client& client : clients) (void)client.Goodbye();
  if (failed) state.SkipWithError("a burst failed mid-benchmark");
  if (!srv.Shutdown().ok()) state.SkipWithError("Shutdown failed");

  state.SetItemsProcessed(state.iterations() * connections * in_flight);
  state.counters["rtt_p50_us"] = Percentile(burst_micros, 0.50);
  state.counters["rtt_p95_us"] = Percentile(burst_micros, 0.95);
  state.counters["rtt_p99_us"] = Percentile(burst_micros, 0.99);
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(rows_streamed.load()), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_ServerSweep)
    ->ArgNames({"conns", "inflight"})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({64, 1})
    ->Args({64, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// One resilient client querying through a transport that injects a
/// disconnect every `every_n` ops (state.range(0); 0 disables). Each
/// iteration is one streamed SELECT; per-query round-trips feed the
/// percentile counters, and the client's own telemetry reports the
/// retry/reconnect cost the faults induced.
void BM_ServerFaultRate(benchmark::State& state) {
  uint64_t every_n = static_cast<uint64_t>(state.range(0));
  if (const char* override_rate = std::getenv("TELEIOS_BENCH_FAULT_RATE")) {
    every_n = static_cast<uint64_t>(std::strtoull(override_rate, nullptr, 10));
  }

  core::VirtualEarthObservatory veo;
  auto table = std::make_shared<storage::Table>(
      storage::Schema({{"x", storage::ColumnType::kInt64}}));
  for (size_t i = 0; i < kRowsPerQuery; ++i) {
    table->column(0).AppendInt64(static_cast<int64_t>(i));
  }
  if (!veo.catalog().CreateTable("bench_rows", table).ok()) {
    state.SkipWithError("CreateTable failed");
    return;
  }
  teleios::governor::AdmissionConfig admission;
  admission.max_concurrent = 16;
  admission.max_queue = 512;
  veo.SetAdmissionConfig(admission);

  server::ServerConfig config;
  config.port = 0;
  config.max_sessions = 8;
  config.chunk_rows = 128;
  server::TeleiosServer srv(&veo, config);
  if (!srv.Start().ok()) {
    state.SkipWithError("server Start failed");
    return;
  }

  // Installed after Start so only client-side ops (connect, handshake,
  // query write, stream reads) are faulted; the server keeps its real
  // listener. The period must exceed one query's op cost (~10) or no
  // retry could ever finish.
  server::FaultInjectingTransport faulty;
  server::ScopedTransport scope(&faulty);
  if (every_n > 0) {
    server::TransportFaultSpec spec;
    spec.kind = server::TransportFaultKind::kDisconnect;
    spec.inject_at = every_n;
    spec.every_n = every_n;
    faulty.Arm(spec);
  }

  server::ResilientClientOptions options;
  options.retry.max_attempts = 8;
  options.retry.base_backoff_ms = 1;
  options.retry.max_backoff_ms = 10;
  options.retry.jitter_seed = 7;
  server::ResilientClient client("127.0.0.1", srv.port(), options);

  const std::string query = "SELECT x FROM bench_rows";
  std::vector<double> query_micros;
  uint64_t rows_streamed = 0;
  bool failed = false;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    auto result = client.Query(server::Lang::kSql, query);
    double micros = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (!result.ok()) {
      failed = true;
      break;
    }
    rows_streamed += result->num_rows();
    query_micros.push_back(micros);
  }

  faulty.Disarm();
  (void)client.Goodbye();
  if (failed) state.SkipWithError("a query exhausted its retries");
  if (!srv.Shutdown().ok()) state.SkipWithError("Shutdown failed");

  state.SetItemsProcessed(state.iterations());
  state.counters["rtt_p50_us"] = Percentile(query_micros, 0.50);
  state.counters["rtt_p95_us"] = Percentile(query_micros, 0.95);
  state.counters["rtt_p99_us"] = Percentile(query_micros, 0.99);
  state.counters["retries"] = static_cast<double>(client.retries());
  state.counters["reconnects"] = static_cast<double>(client.reconnects());
  state.counters["faults"] = static_cast<double>(faulty.faults_injected());
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(rows_streamed), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_ServerFaultRate)
    ->ArgName("every_n")
    ->Arg(0)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
