// E3 — demo scenario 1 (Figure 3): the NOA fire-monitoring processing
// chain (ingestion -> crop -> georeference -> classify -> hotspot
// shapefiles). The harness times the chain end-to-end for both
// classification submodules and reports per-step timings, reproducing the
// scenario's "compare chains with different classifiers" capability.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "eo/ontology.h"
#include "eo/scene.h"
#include "noa/chain.h"

namespace {

namespace fs = std::filesystem;

using teleios::eo::GenerateScene;
using teleios::eo::SceneSpec;
using teleios::noa::ChainConfig;
using teleios::noa::ClassifierKind;
using teleios::noa::ProcessingChain;

struct ChainEnv {
  std::string dir;
  teleios::storage::Catalog catalog;
  std::unique_ptr<teleios::vault::DataVault> vault;
  std::unique_ptr<teleios::sciql::SciQlEngine> sciql;
  teleios::strabon::Strabon strabon;
  std::unique_ptr<ProcessingChain> chain;

  explicit ChainEnv(int size) {
    dir = (fs::temp_directory_path() /
           ("teleios_bench_chain_" + std::to_string(size)))
              .string();
    fs::create_directories(dir);
    SceneSpec spec;
    spec.width = size;
    spec.height = size;
    spec.seed = 42;
    spec.name = "scene" + std::to_string(size);
    auto scene = GenerateScene(spec);
    (void)teleios::vault::WriteTer(scene->ToTerRaster(),
                                   dir + "/scene.ter");
    vault = std::make_unique<teleios::vault::DataVault>(&catalog);
    (void)vault->Attach(dir);
    sciql = std::make_unique<teleios::sciql::SciQlEngine>(&catalog);
    (void)strabon.LoadTurtle(teleios::eo::OntologyTurtle());
    chain = std::make_unique<ProcessingChain>(vault.get(), sciql.get(),
                                              &strabon, &catalog);
  }
};

void RunChain(benchmark::State& state, ClassifierKind kind) {
  ChainEnv env(static_cast<int>(state.range(0)));
  ChainConfig config;
  config.classifier.kind = kind;
  std::string raster = "scene" + std::to_string(state.range(0));
  for (auto _ : state) {
    auto result = env.chain->Run(raster, config);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->hotspots.size());
    state.counters["hotspots"] =
        static_cast<double>(result->hotspots.size());
    for (const auto& timing : result->timings) {
      state.counters[timing.step] = timing.millis;
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}

void BM_ChainThreshold(benchmark::State& state) {
  RunChain(state, ClassifierKind::kThreshold);
}
void BM_ChainContextual(benchmark::State& state) {
  RunChain(state, ClassifierKind::kContextual);
}
BENCHMARK(BM_ChainThreshold)->Arg(96)->Arg(192)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ChainContextual)->Arg(96)->Arg(192)->Unit(benchmark::kMillisecond);

/// Cropped chain run: scenario 1's "use a subset of the raw data".
void BM_ChainCropped(benchmark::State& state) {
  ChainEnv env(192);
  ChainConfig config;
  config.classifier.kind = ClassifierKind::kContextual;
  config.has_crop = true;
  config.crop_x0 = 0;
  config.crop_y0 = 0;
  config.crop_x1 = static_cast<int>(state.range(0));
  config.crop_y1 = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = env.chain->Run("scene192", config);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->hotspots.size());
  }
}
BENCHMARK(BM_ChainCropped)->Arg(48)->Arg(96)->Arg(192)->Unit(benchmark::kMillisecond);

/// Catalog search over prior runs (scenario 1's product discovery).
void BM_CatalogSearchPriorRuns(benchmark::State& state) {
  ChainEnv env(96);
  ChainConfig a;
  a.classifier.kind = ClassifierKind::kThreshold;
  ChainConfig b;
  b.classifier.kind = ClassifierKind::kContextual;
  (void)env.chain->Run("scene96", a);
  (void)env.chain->Run("scene96", b);
  for (auto _ : state) {
    auto r = env.strabon.Select(
        "SELECT ?p ?lvl WHERE { ?p a noa:Product ; "
        "noa:hasProcessingLevel ?lvl ; noa:wasDerivedFrom ?raw . }");
    benchmark::DoNotOptimize(r->rows.size());
  }
}
BENCHMARK(BM_CatalogSearchPriorRuns);

}  // namespace
