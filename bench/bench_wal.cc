// E17 — durability overhead: what the write-ahead log costs per durable
// mutation. Shape to reproduce: per-record append+fsync latency is
// dominated by the fsync; batching appends under one sync (group
// commit) amortizes it almost linearly; replay on recovery is
// sequential-read fast (orders of magnitude above the append path).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "io/filesystem.h"
#include "io/wal.h"

namespace {

namespace fs = std::filesystem;

using teleios::Status;
using teleios::io::ReplayWal;
using teleios::io::WalRecord;
using teleios::io::WalWriter;

std::string FreshDir(const std::string& tag) {
  std::string dir = (fs::temp_directory_path() /
                     ("teleios_bench_wal_" + tag + "_" +
                      std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string Payload(size_t bytes) { return std::string(bytes, 'x'); }

/// One record per sync: the floor for acked-per-mutation durability.
void BM_AppendFsyncPerRecord(benchmark::State& state) {
  std::string dir = FreshDir("per_record");
  auto writer = WalWriter::Open(dir, 1, 0, {});
  std::string body = Payload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(*(*writer)->Append(1, body));
    Status st = (*writer)->Sync();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  (*writer).reset();
  fs::remove_all(dir);
}

/// Group commit: `range(0)` records buffered under one fsync.
void BM_GroupCommit(benchmark::State& state) {
  std::string dir = FreshDir("group");
  auto writer = WalWriter::Open(dir, 1, 0, {});
  std::string body = Payload(256);
  for (auto _ : state) {
    for (int64_t i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(*(*writer)->Append(1, body));
    }
    Status st = (*writer)->Sync();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  // Throughput in records, not bytes: the interesting ratio is records
  // acked per fsync.
  state.SetItemsProcessed(state.iterations() * state.range(0));
  (*writer).reset();
  fs::remove_all(dir);
}

/// Replay rate over a pre-built log of `range(0)` records.
void BM_Replay(benchmark::State& state) {
  std::string dir = FreshDir("replay");
  {
    auto writer = WalWriter::Open(dir, 1, 0, {});
    std::string body = Payload(256);
    for (int64_t i = 0; i < state.range(0); ++i) {
      (void)*(*writer)->Append(1, body);
    }
    (void)(*writer)->Sync();
  }
  for (auto _ : state) {
    uint64_t seen = 0;
    auto stats = ReplayWal(dir, [&](const WalRecord& r) {
      seen += r.payload.size();
      return teleios::Status::OK();
    });
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    benchmark::DoNotOptimize(seen);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  fs::remove_all(dir);
}

}  // namespace

BENCHMARK(BM_AppendFsyncPerRecord)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_GroupCommit)->Arg(1)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_Replay)->Arg(1000)->Arg(10000);
