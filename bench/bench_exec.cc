// E13 — thread scaling of the morsel-driven execution layer: the same
// scan/aggregate/convolve/k-means workloads swept over the pool
// parallelism (Arg = threads). The acceptance shape is >= 3x at 8
// threads for the scan/aggregate and convolve kernels on an 8-way
// machine; results are bit-identical at every point of the sweep by
// construction (morsel plans never depend on the thread count). Run with
// --json and divide ns_per_op at Arg(1) by ns_per_op at Arg(8).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "array/array.h"
#include "array/array_ops.h"
#include "eo/scene.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "mining/features.h"
#include "mining/kmeans.h"
#include "relational/sql_engine.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace {

using teleios::Value;
using teleios::exec::ThreadPool;

teleios::storage::TablePtr BenchTable(size_t rows) {
  auto table = std::make_shared<teleios::storage::Table>(
      teleios::storage::Schema({
          {"id", teleios::storage::ColumnType::kInt64},
          {"band", teleios::storage::ColumnType::kString},
          {"temp", teleios::storage::ColumnType::kFloat64},
      }));
  uint64_t state = 42;
  for (size_t i = 0; i < rows; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    (void)table->AppendRow({
        Value(static_cast<int64_t>(i)),
        Value(std::string(1, 'a' + (i % 7))),
        Value(250.0 + static_cast<double>(state % 100000) / 1000.0),
    });
  }
  return table;
}

/// Full-table predicate scan at state.range(0) threads.
void BM_ParallelScan(benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<int>(state.range(0)));
  teleios::storage::Catalog catalog;
  (void)catalog.CreateTable("m", BenchTable(400000));
  teleios::relational::SqlEngine sql(&catalog);
  for (auto _ : state) {
    auto r = sql.Execute("SELECT count(*) AS n FROM m WHERE temp > 300.0");
    benchmark::DoNotOptimize(r->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * 400000);
}
BENCHMARK(BM_ParallelScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Grouped aggregation (hash pre-aggregation per morsel) at N threads.
void BM_ParallelAggregate(benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<int>(state.range(0)));
  teleios::storage::Catalog catalog;
  (void)catalog.CreateTable("m", BenchTable(400000));
  teleios::relational::SqlEngine sql(&catalog);
  for (auto _ : state) {
    auto r = sql.Execute(
        "SELECT band, count(*) AS n, avg(temp) AS a FROM m GROUP BY band");
    benchmark::DoNotOptimize(r->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * 400000);
}
BENCHMARK(BM_ParallelAggregate)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// 5x5 convolution over a 768x768 raster at N threads.
void BM_Convolve(benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<int>(state.range(0)));
  constexpr int64_t kSize = 768;
  auto arr = *teleios::array::Array::Create(
      "r", {{"y", 0, kSize}, {"x", 0, kSize}},
      {{"v", teleios::storage::ColumnType::kFloat64}}, {Value(0.0)});
  double* data = *arr->MutableDoubles(0);
  uint64_t rng = 7;
  for (int64_t i = 0; i < kSize * kSize; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    data[i] = static_cast<double>(rng % 1000);
  }
  std::vector<double> kernel(25, 1.0 / 25.0);
  for (auto _ : state) {
    auto out = teleios::array::Convolve2D(*arr, 0, kernel, 5);
    benchmark::DoNotOptimize(out->get());
  }
  state.SetItemsProcessed(state.iterations() * kSize * kSize);
}
BENCHMARK(BM_Convolve)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Feature extraction + Lloyd's iterations at N threads (the mining
/// stage of the knowledge-discovery tier).
void BM_KMeans(benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<int>(state.range(0)));
  teleios::eo::SceneSpec spec;
  spec.width = 512;
  spec.height = 512;
  spec.seed = 3;
  spec.num_fires = 6;
  auto scene = *teleios::eo::GenerateScene(spec);
  auto patches = *teleios::mining::CutPatches(scene, 8);
  std::vector<std::vector<double>> data;
  for (const auto& p : patches) data.push_back(p.features);
  for (auto _ : state) {
    auto km = teleios::mining::KMeans(data, 8, 20, 99);
    benchmark::DoNotOptimize(km->inertia);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_KMeans)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Raw ParallelFor dispatch overhead: tiny morsels, trivial body.
void BM_MorselDispatch(benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<double> partials(64);
    teleios::exec::ParallelOptions opts;
    opts.grain = 1;
    (void)teleios::exec::ParallelFor(
        64, opts, [&](size_t m, size_t, size_t) {
          partials[m] = static_cast<double>(m) * 0.5;
          return teleios::Status::OK();
        });
    benchmark::DoNotOptimize(partials.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MorselDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
