// E9b — spatial index microbenchmarks: STR bulk load vs incremental
// insertion, and query cost vs brute-force scan across index sizes. The
// crossover (scan wins for tiny stores, index wins beyond a few hundred
// entries) is the design justification recorded in DESIGN.md.

#include <benchmark/benchmark.h>

#include <vector>

#include "geo/rtree.h"

namespace {

using teleios::geo::Envelope;
using teleios::geo::RTree;

std::vector<RTree::Entry> RandomBoxes(int64_t n, uint64_t seed) {
  std::vector<RTree::Entry> entries;
  uint64_t state = seed ? seed : 1;
  auto uniform = [&]() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return static_cast<double>((state * 0x2545f4914f6cdd1dull) >> 11) /
           9007199254740992.0;
  };
  entries.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double x = uniform() * 1000;
    double y = uniform() * 1000;
    entries.push_back({{x, y, x + uniform() * 4, y + uniform() * 4}, i});
  }
  return entries;
}

void BM_BulkLoadStr(benchmark::State& state) {
  auto entries = RandomBoxes(state.range(0), 3);
  for (auto _ : state) {
    RTree tree;
    tree.BulkLoad(entries);
    benchmark::DoNotOptimize(tree.height());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BulkLoadStr)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_IncrementalInsert(benchmark::State& state) {
  auto entries = RandomBoxes(state.range(0), 3);
  for (auto _ : state) {
    RTree tree;
    for (const auto& e : entries) tree.Insert(e.box, e.id);
    benchmark::DoNotOptimize(tree.height());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IncrementalInsert)->Arg(1000)->Arg(10000);

void BM_QueryIndexed(benchmark::State& state) {
  auto entries = RandomBoxes(state.range(0), 3);
  RTree tree;
  tree.BulkLoad(entries);
  Envelope query{500, 500, 520, 520};
  for (auto _ : state) {
    auto hits = tree.Query(query);
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(BM_QueryIndexed)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_QueryBruteForce(benchmark::State& state) {
  auto entries = RandomBoxes(state.range(0), 3);
  Envelope query{500, 500, 520, 520};
  for (auto _ : state) {
    std::vector<int64_t> hits;
    for (const auto& e : entries) {
      if (e.box.Intersects(query)) hits.push_back(e.id);
    }
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(BM_QueryBruteForce)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

/// Query cost as a function of selectivity at fixed size.
void BM_QuerySelectivity(benchmark::State& state) {
  auto entries = RandomBoxes(50000, 3);
  RTree tree;
  tree.BulkLoad(entries);
  double half = static_cast<double>(state.range(0));
  Envelope query{500 - half, 500 - half, 500 + half, 500 + half};
  for (auto _ : state) {
    auto hits = tree.Query(query);
    benchmark::DoNotOptimize(hits.size());
    state.counters["hits"] = static_cast<double>(hits.size());
  }
}
BENCHMARK(BM_QuerySelectivity)->Arg(5)->Arg(50)->Arg(250)->Arg(500);

}  // namespace
