// E15 — resource-governor overheads: what admission control, budget
// accounting and the circuit breaker cost on the hot path when the
// system is NOT overloaded (the steady-state tax), and how fast the
// shed paths are when it is (overload must be cheap, or shedding is
// just another way to thrash). Run with --json to diff ns_per_op.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "governor/admission.h"
#include "governor/circuit_breaker.h"
#include "governor/memory_budget.h"
#include "relational/sql_engine.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace {

using teleios::Value;
namespace governor = teleios::governor;

/// Reserve+release round trip at state.range(0) hierarchy depth (1 =
/// root only; 3 = process -> batch -> query, the facade's worst case).
void BM_BudgetReserveRelease(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  std::vector<std::unique_ptr<governor::MemoryBudget>> chain;
  chain.push_back(std::make_unique<governor::MemoryBudget>(
      "root", governor::MemoryBudget::kUnlimited));
  for (int d = 1; d < depth; ++d) {
    chain.push_back(std::make_unique<governor::MemoryBudget>(
        "child" + std::to_string(d), governor::MemoryBudget::kUnlimited,
        chain.back().get()));
  }
  governor::MemoryBudget* leaf = chain.back().get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(leaf->Reserve(4096));
    leaf->Release(4096);
  }
  state.SetItemsProcessed(state.iterations());
}

/// Uncontended admit+release round trip — the tax every governed
/// statement pays when slots are free.
void BM_AdmissionFastPath(benchmark::State& state) {
  governor::AdmissionController admission;
  for (auto _ : state) {
    auto ticket = admission.Admit(nullptr);
    benchmark::DoNotOptimize(ticket.ok());
  }
  state.SetItemsProcessed(state.iterations());
}

/// Shed path: queue full, every arrival bounced with kUnavailable.
void BM_AdmissionShed(benchmark::State& state) {
  governor::AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queue = 0;
  config.max_wait = std::chrono::milliseconds(0);
  governor::AdmissionController admission(config);
  auto held = admission.Admit(nullptr);
  for (auto _ : state) {
    auto shed = admission.Admit(nullptr);
    benchmark::DoNotOptimize(shed.ok());
  }
  state.SetItemsProcessed(state.iterations());
}

/// Closed-breaker pass-through (admit + record success).
void BM_BreakerClosedPassThrough(benchmark::State& state) {
  governor::CircuitBreaker breaker("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        breaker.Run([] { return teleios::Status::OK(); }));
  }
  state.SetItemsProcessed(state.iterations());
}

/// Open-breaker shed — the fail-fast path under persistent faults.
void BM_BreakerOpenShed(benchmark::State& state) {
  teleios::governor::CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_duration = std::chrono::hours(1);
  governor::CircuitBreaker breaker("bench-open", config);
  (void)breaker.Run([] { return teleios::Status::IoError("down"); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(breaker.Admit());
  }
  state.SetItemsProcessed(state.iterations());
}

/// A governed-style SQL statement under a per-query child budget vs the
/// raw engine: Arg(0)==1 runs with the budget installed, Arg(0)==0
/// without, so the relative cost of budget charges inside the operators
/// is the ratio of the two.
void BM_GovernedSqlStatement(benchmark::State& state) {
  bool governed = state.range(0) != 0;
  teleios::storage::Catalog catalog;
  auto table = std::make_shared<teleios::storage::Table>(
      teleios::storage::Schema({
          {"id", teleios::storage::ColumnType::kInt64},
          {"temp", teleios::storage::ColumnType::kFloat64},
      }));
  uint64_t s = 7;
  for (int64_t i = 0; i < 100000; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    (void)table->AppendRow(
        {Value(i), Value(250.0 + static_cast<double>(s % 100000) / 1000.0)});
  }
  (void)catalog.CreateTable("m", table);
  teleios::relational::SqlEngine sql(&catalog);
  governor::MemoryBudget root("bench-root",
                              governor::MemoryBudget::kUnlimited);
  for (auto _ : state) {
    if (governed) {
      governor::MemoryBudget query("query",
                                   governor::MemoryBudget::kUnlimited, &root);
      governor::ScopedBudget scope(&query);
      auto r = sql.Execute("SELECT count(*) AS n FROM m WHERE temp > 300.0");
      benchmark::DoNotOptimize(r.ok());
    } else {
      auto r = sql.Execute("SELECT count(*) AS n FROM m WHERE temp > 300.0");
      benchmark::DoNotOptimize(r.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}

BENCHMARK(BM_BudgetReserveRelease)->Arg(1)->Arg(2)->Arg(3);
BENCHMARK(BM_AdmissionFastPath);
BENCHMARK(BM_AdmissionShed);
BENCHMARK(BM_BreakerClosedPassThrough);
BENCHMARK(BM_BreakerOpenShed);
BENCHMARK(BM_GovernedSqlStatement)->Arg(0)->Arg(1);

}  // namespace
