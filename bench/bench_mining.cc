// E11 — image information mining ([3, 4]): patch cutting, feature
// extraction, k-means concept clustering and kNN classification. Shapes:
// feature extraction scales with pixels; clustering cost grows with k;
// annotation concept agreement with the rule-based reference labels stays
// high (the "semantic gap" is closed for the synthetic sensor).

#include <benchmark/benchmark.h>

#include "eo/scene.h"
#include "mining/annotation.h"
#include "mining/features.h"
#include "mining/kmeans.h"
#include "mining/knn.h"

namespace {

using teleios::eo::GenerateScene;
using teleios::eo::Scene;
using teleios::eo::SceneSpec;
using teleios::mining::AnnotatePatches;
using teleios::mining::CutPatches;
using teleios::mining::Patch;

Scene BenchScene(int size) {
  SceneSpec spec;
  spec.width = size;
  spec.height = size;
  spec.seed = 42;
  return *GenerateScene(spec);
}

void BM_CutPatches(benchmark::State& state) {
  Scene scene = BenchScene(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto patches = CutPatches(scene, 8);
    benchmark::DoNotOptimize(patches->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_CutPatches)->Arg(128)->Arg(256);

void BM_KMeansSweepK(benchmark::State& state) {
  Scene scene = BenchScene(128);
  auto patches = *CutPatches(scene, 8);
  teleios::mining::NormalizeFeatures(&patches);
  std::vector<std::vector<double>> data;
  for (const Patch& p : patches) data.push_back(p.features);
  for (auto _ : state) {
    auto km = teleios::mining::KMeans(data, static_cast<int>(state.range(0)),
                                      50, 7);
    benchmark::DoNotOptimize(km->inertia);
    state.counters["inertia"] = km->inertia;
    state.counters["iterations"] = km->iterations;
  }
}
BENCHMARK(BM_KMeansSweepK)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_AnnotateScene(benchmark::State& state) {
  Scene scene = BenchScene(128);
  auto patches = *CutPatches(scene, 8);
  for (auto _ : state) {
    auto annotations = AnnotatePatches(patches, 8, 7);
    benchmark::DoNotOptimize(annotations->size());
  }
}
BENCHMARK(BM_AnnotateScene)->Unit(benchmark::kMillisecond);

/// Agreement of the k-means concepts with direct rule labels per patch —
/// the "who wins" number: clustering recovers the rule labels for most
/// patches without seeing them.
void BM_ConceptAgreement(benchmark::State& state) {
  Scene scene = BenchScene(128);
  auto patches = *CutPatches(scene, 8);
  for (auto _ : state) {
    auto annotations = *AnnotatePatches(patches, 10, 7);
    size_t agree = 0;
    for (size_t i = 0; i < annotations.size(); ++i) {
      std::string direct = teleios::mining::ConceptForCentroid(
          patches[i].features);
      if (direct == annotations[i].concept_iri) ++agree;
    }
    state.counters["agreement"] =
        static_cast<double>(agree) / static_cast<double>(annotations.size());
    benchmark::DoNotOptimize(agree);
  }
}
BENCHMARK(BM_ConceptAgreement)->Iterations(3)->Unit(benchmark::kMillisecond);

/// kNN classification: training on one scene, scoring on another (the
/// second classifier of the KDD pipeline).
void BM_KnnPredict(benchmark::State& state) {
  Scene train_scene = BenchScene(128);
  auto train = *CutPatches(train_scene, 8);
  std::vector<std::vector<double>> samples;
  std::vector<std::string> labels;
  for (const Patch& p : train) {
    samples.push_back(p.features);
    labels.push_back(teleios::mining::ConceptForCentroid(p.features));
  }
  teleios::mining::KnnClassifier knn;
  (void)knn.Fit(samples, labels);
  SceneSpec other;
  other.width = other.height = 128;
  other.seed = 43;
  Scene test_scene = *GenerateScene(other);
  auto test = *CutPatches(test_scene, 8);
  for (auto _ : state) {
    size_t correct = 0;
    for (const Patch& p : test) {
      auto predicted = knn.Predict(p.features, static_cast<int>(state.range(0)));
      if (*predicted == teleios::mining::ConceptForCentroid(p.features)) {
        ++correct;
      }
    }
    state.counters["accuracy"] =
        static_cast<double>(correct) / static_cast<double>(test.size());
    benchmark::DoNotOptimize(correct);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(test.size()));
}
BENCHMARK(BM_KnnPredict)->Arg(1)->Arg(5)->Arg(15);

}  // namespace
