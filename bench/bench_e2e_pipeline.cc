// E1 / E2 — Figures 1 and 2: the full data-to-knowledge pipeline through
// all four architecture tiers. One iteration = ingest (vault) -> content
// extraction (patches + features) -> knowledge discovery (k-means
// concepts) -> semantic annotation (stRDF) -> NOA chain products ->
// refinement -> enriched map. The per-tier counters make the tier
// breakdown visible, reproducing the architecture figures as a measured
// pipeline rather than a diagram.

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>

#include "eo/ontology.h"
#include "eo/scene.h"
#include "linkeddata/generators.h"
#include "mining/annotation.h"
#include "noa/chain.h"
#include "noa/mapping.h"
#include "noa/refinement.h"

namespace {

namespace fs = std::filesystem;

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void BM_FullObservatoryPipeline(benchmark::State& state) {
  std::string dir =
      (fs::temp_directory_path() / "teleios_bench_e2e").string();
  fs::create_directories(dir);
  teleios::eo::SceneSpec spec;
  spec.width = static_cast<int>(state.range(0));
  spec.height = static_cast<int>(state.range(0));
  spec.seed = 42;
  spec.num_fires = 5;
  spec.name = "msg";
  auto scene = *teleios::eo::GenerateScene(spec);
  (void)teleios::vault::WriteTer(scene.ToTerRaster(), dir + "/msg.ter");

  for (auto _ : state) {
    // --- ingestion tier --------------------------------------------------
    auto t0 = Clock::now();
    teleios::storage::Catalog catalog;
    teleios::vault::DataVault vault(&catalog);
    (void)vault.Attach(dir);
    teleios::sciql::SciQlEngine sciql(&catalog);
    teleios::strabon::Strabon strabon;
    (void)strabon.LoadTurtle(teleios::eo::OntologyTurtle());
    auto coast = teleios::linkeddata::GenerateCoastline(scene);
    (void)strabon.LoadTurtle(*coast);
    auto towns = teleios::linkeddata::GenerateTowns(scene, 10, 3);
    (void)strabon.LoadTurtle(*towns);
    state.counters["t_ingest_ms"] = MillisSince(t0);

    // --- content extraction + knowledge discovery ------------------------
    auto t1 = Clock::now();
    auto patches = *teleios::mining::CutPatches(scene, 8);
    auto annotations = *teleios::mining::AnnotatePatches(patches, 8, 7);
    (void)teleios::mining::PublishAnnotations(annotations, "msg", &strabon);
    state.counters["t_kdd_ms"] = MillisSince(t1);

    // --- service tier: NOA chain + refinement ----------------------------
    auto t2 = Clock::now();
    teleios::noa::ProcessingChain chain(&vault, &sciql, &strabon, &catalog);
    teleios::noa::ChainConfig config;
    config.classifier.kind = teleios::noa::ClassifierKind::kThreshold;
    config.classifier.threshold_kelvin = 315.0;
    auto result = chain.Run("msg", config);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    auto report =
        teleios::noa::RefineHotspots(&strabon, result->product_id);
    state.counters["t_chain_ms"] = MillisSince(t2);

    // --- application tier: rapid map --------------------------------------
    auto t3 = Clock::now();
    teleios::noa::RapidMapper mapper(&strabon);
    (void)mapper.AddQueryLayer(
        "land", "#88aa66", '.',
        "SELECT ?g WHERE { ?x a noa:LandArea ; noa:hasGeometry ?g }");
    (void)mapper.AddQueryLayer(
        "hotspots", "#dd2200", '#',
        "SELECT ?g WHERE { ?h a noa:Hotspot ; noa:hasGeometry ?g }");
    (void)mapper.AddQueryLayer(
        "towns", "#2244cc", 'o',
        "PREFIX geonames: <http://www.geonames.org/ontology#> "
        "SELECT ?g ?n WHERE { ?t a geonames:Feature ; strdf:hasGeometry ?g "
        "; geonames:name ?n }");
    std::string svg = mapper.RenderSvg();
    state.counters["t_map_ms"] = MillisSince(t3);

    state.counters["hotspots"] =
        static_cast<double>(result->hotspots.size());
    state.counters["refined"] =
        report.ok() ? static_cast<double>(report->hotspots_refined) : -1;
    state.counters["annotations"] =
        static_cast<double>(annotations.size());
    state.counters["triples"] = static_cast<double>(strabon.size());
    benchmark::DoNotOptimize(svg.size());
  }
}
BENCHMARK(BM_FullObservatoryPipeline)
    ->Arg(96)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
