// Shared benchmark driver: Google Benchmark's default console output,
// plus a --json[=path] flag that instead emits one JSON object per
// benchmark run, newline-delimited:
//
//   {"name": "BM_Scan/1024", "iters": 4096, "ns_per_op": 1234.5}
//
// so CI and scripts can diff perf numbers without parsing tables.
//
// --fault-rate=N is consumed here too (exported as
// TELEIOS_BENCH_FAULT_RATE): fault-aware benchmarks like
// BM_ServerFaultRate read it to override their injected-fault period.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

namespace {

/// Escapes a benchmark name for a JSON string value.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

class JsonLinesReporter : public benchmark::BenchmarkReporter {
 public:
  explicit JsonLinesReporter(std::ostream* os) : os_(os) {}

  bool ReportContext(const Context&) override { return true; }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // Aggregates (mean/median/stddev of --benchmark_repetitions) would
      // double-count the iteration runs.
      if (run.run_type == Run::RT_Aggregate) continue;
      double ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9
              : 0;
      *os_ << "{\"name\": \"" << JsonEscape(run.benchmark_name())
           << "\", \"iters\": " << run.iterations
           << ", \"ns_per_op\": " << ns_per_op << "}\n";
    }
  }

 private:
  std::ostream* os_;
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string json_path;
  // Consume --json[=path] before Google Benchmark sees the arguments.
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = true;
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--fault-rate=", 13) == 0) {
      ::setenv("TELEIOS_BENCH_FAULT_RATE", argv[i] + 13, /*overwrite=*/1);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                             passthrough.data())) {
    return 1;
  }
  if (json) {
    std::ofstream file;
    std::ostream* os = &std::cout;
    if (!json_path.empty()) {
      file.open(json_path);
      if (!file) {
        std::cerr << "cannot open " << json_path << " for writing\n";
        return 1;
      }
      os = &file;
    }
    JsonLinesReporter reporter(os);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
