// E16 — introspection overheads: what the query lifecycle ledger, the
// event ring, the trace codec and a sys.* snapshot cost. The registry
// and event log sit on every governed statement's path, so their
// per-operation tax bounds how cheap a statement can ever be; the
// sys.queries materialization cost bounds how aggressively an operator
// can poll a live system. Run with --json to diff ns_per_op.

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "core/observatory.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/query_registry.h"
#include "obs/trace_export.h"

namespace {

namespace core = teleios::core;
namespace obs = teleios::obs;

/// The full ledger round trip every governed statement pays:
/// Start -> MarkRunning -> Finish (untraced).
void BM_RegistryLifecycle(benchmark::State& state) {
  obs::IntrospectionConfig config;
  config.slow_query_millis = -1;
  obs::ActiveQueryRegistry registry(config);
  for (auto _ : state) {
    obs::QueryGuard guard =
        registry.Start("bench", "SELECT 1", nullptr);
    registry.MarkRunning(guard, 0.0);
    registry.Finish(std::move(guard), teleios::StatusCode::kOk, 1, 0, "");
  }
  state.SetItemsProcessed(state.iterations());
}

/// One structured event into a private ring (no sink).
void BM_EventPost(benchmark::State& state) {
  obs::EventLog log(512);
  for (auto _ : state) {
    log.Post("bench.event", {{"id", "42"}, {"tier", "sql"}});
  }
  state.SetItemsProcessed(state.iterations());
}

/// Snapshotting sys.queries with state.range(0) statements in flight —
/// the cost an operator's monitoring poll imposes on the system.
void BM_ActiveSnapshot(benchmark::State& state) {
  obs::ActiveQueryRegistry registry;
  std::vector<obs::QueryGuard> live;
  for (int i = 0; i < state.range(0); ++i) {
    live.push_back(registry.Start(
        "bench", "SELECT x FROM t WHERE x > " + std::to_string(i), nullptr));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Active());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  for (obs::QueryGuard& guard : live) {
    registry.Finish(std::move(guard), teleios::StatusCode::kCancelled, -1, 0,
                    "");
  }
}

/// A governed SELECT over sys.queries through the facade — the
/// end-to-end price of one monitoring statement, parse to table.
void BM_SysQueriesThroughSql(benchmark::State& state) {
  core::VirtualEarthObservatory veo;
  for (auto _ : state) {
    auto r = veo.Sql("SELECT id, tier, state FROM sys.queries");
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}

/// Builds a balanced span tree of state.range(0) nodes.
obs::SpanNode MakeTree(int nodes) {
  obs::SpanNode root;
  root.name = "root";
  root.millis = 10.0;
  root.attrs.emplace_back("status", "OK");
  int made = 1;
  for (int child = 0; made < nodes; ++child) {
    obs::SpanNode c;
    c.name = "child" + std::to_string(child);
    c.millis = 1.0;
    c.start_millis = child * 0.125;
    ++made;
    for (int leaf = 0; leaf < 3 && made < nodes; ++leaf, ++made) {
      obs::SpanNode l;
      l.name = "leaf" + std::to_string(leaf);
      l.millis = 0.25;
      c.children.push_back(std::move(l));
    }
    root.children.push_back(std::move(c));
  }
  return root;
}

/// Span tree -> Chrome trace-event JSON (the export every sampled or
/// PROFILEd statement pays at Finish).
void BM_TraceExport(benchmark::State& state) {
  obs::SpanNode tree = MakeTree(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::ToChromeTraceJson(tree));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

/// The inverse codec, JSON -> span tree (tooling-side cost).
void BM_TraceImport(benchmark::State& state) {
  std::string json =
      obs::ToChromeTraceJson(MakeTree(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto tree = obs::FromChromeTraceJson(json);
    benchmark::DoNotOptimize(tree.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

/// Flattening every registry series into sys.metrics rows.
void BM_MetricsSamples(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 64; ++i) {
    registry.GetCounter("bench_c" + std::to_string(i) + "_total")->Inc();
    registry.GetGauge("bench_g" + std::to_string(i))->Set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Samples());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}

BENCHMARK(BM_RegistryLifecycle);
BENCHMARK(BM_EventPost);
BENCHMARK(BM_ActiveSnapshot)->Arg(4)->Arg(64);
BENCHMARK(BM_SysQueriesThroughSql);
BENCHMARK(BM_TraceExport)->Arg(16)->Arg(256);
BENCHMARK(BM_TraceImport)->Arg(16)->Arg(256);
BENCHMARK(BM_MetricsSamples);

}  // namespace
