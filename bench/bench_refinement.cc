// E4 — demo scenario 2: improving thematic accuracy via stSPARQL
// refinement. The harness runs the naive threshold chain (which produces
// sea false alarms from sun glint and coastal plume leakage), refines it
// against the coastline layer, and reports precision before/after. Shape
// to reproduce: precision improves, recall is preserved, and refinement
// cost scales with the number of hotspots, not the image.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "eo/ontology.h"
#include "eo/scene.h"
#include "linkeddata/generators.h"
#include "noa/chain.h"
#include "noa/refinement.h"

namespace {

namespace fs = std::filesystem;

using teleios::eo::GenerateScene;
using teleios::eo::Scene;
using teleios::eo::SceneSpec;
using teleios::noa::ChainConfig;
using teleios::noa::ClassifierKind;

struct RefineEnv {
  std::string dir;
  Scene scene;
  teleios::storage::Catalog catalog;
  std::unique_ptr<teleios::vault::DataVault> vault;
  std::unique_ptr<teleios::sciql::SciQlEngine> sciql;
  std::unique_ptr<teleios::noa::ProcessingChain> chain;

  explicit RefineEnv(int fires) {
    dir = (fs::temp_directory_path() /
           ("teleios_bench_refine_" + std::to_string(fires)))
              .string();
    fs::create_directories(dir);
    SceneSpec spec;
    spec.width = 128;
    spec.height = 128;
    spec.seed = 42;
    spec.num_fires = fires;
    spec.num_glints = 3 + fires / 2;
    spec.name = "scene";
    scene = *GenerateScene(spec);
    (void)teleios::vault::WriteTer(scene.ToTerRaster(), dir + "/scene.ter");
    vault = std::make_unique<teleios::vault::DataVault>(&catalog);
    (void)vault->Attach(dir);
    sciql = std::make_unique<teleios::sciql::SciQlEngine>(&catalog);
  }

  /// Loads ontology + coastline and runs the naive chain; returns the
  /// product id. Fresh Strabon per call so refinement is repeatable.
  std::string Prepare(teleios::strabon::Strabon* strabon) {
    (void)strabon->LoadTurtle(teleios::eo::OntologyTurtle());
    auto coast = teleios::linkeddata::GenerateCoastline(scene);
    (void)strabon->LoadTurtle(*coast);
    teleios::noa::ProcessingChain run(vault.get(), sciql.get(), strabon,
                                      &catalog);
    ChainConfig config;
    config.classifier.kind = ClassifierKind::kThreshold;
    config.classifier.threshold_kelvin = 315.0;
    auto result = run.Run("scene", config);
    return result.ok() ? result->product_id : "";
  }
};

void BM_RefinementPass(benchmark::State& state) {
  RefineEnv env(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    teleios::strabon::Strabon strabon;
    std::string product = env.Prepare(&strabon);
    state.ResumeTiming();
    auto report = teleios::noa::RefineHotspots(&strabon, product);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    state.counters["examined"] =
        static_cast<double>(report->hotspots_examined);
    state.counters["refined"] =
        static_cast<double>(report->hotspots_refined);
    state.counters["removed"] =
        static_cast<double>(report->hotspots_removed);
  }
}
BENCHMARK(BM_RefinementPass)->Arg(2)->Arg(6)->Arg(12)->Unit(benchmark::kMillisecond);

/// The accuracy table: precision/recall before and after refinement.
void BM_ThematicAccuracy(benchmark::State& state) {
  RefineEnv env(6);
  for (auto _ : state) {
    teleios::strabon::Strabon strabon;
    std::string product = env.Prepare(&strabon);
    auto truth = env.scene.GroundTruthFires();
    auto before = *teleios::noa::FetchHotspotGeometries(&strabon, product);
    auto acc_before =
        *teleios::noa::ScoreHotspotsAgainstTruth(before, truth);
    (void)teleios::noa::RefineHotspots(&strabon, product);
    auto after = *teleios::noa::FetchHotspotGeometries(&strabon, product);
    auto acc_after = *teleios::noa::ScoreHotspotsAgainstTruth(after, truth);
    state.counters["precision_before"] = acc_before.precision;
    state.counters["precision_after"] = acc_after.precision;
    state.counters["recall_before"] = acc_before.recall;
    state.counters["recall_after"] = acc_after.recall;
    benchmark::DoNotOptimize(acc_after.precision);
  }
}
BENCHMARK(BM_ThematicAccuracy)->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace
