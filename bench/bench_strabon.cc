// E9 — Strabon claim ([5, 7]): semantic geospatial queries at scale over
// the column-store backend. Shapes to reproduce: dictionary-encoded bulk
// load scales linearly; BGP matching uses the permutation indexes; the
// R-tree turns spatial selections from O(n) scans into output-sensitive
// lookups, with the gap widening as the store grows.

#include <benchmark/benchmark.h>

#include <sstream>

#include "common/strings.h"
#include "strabon/strabon.h"

namespace {

using teleios::StrFormat;
using teleios::strabon::Strabon;

/// Synthetic geospatial RDF: `n` features in a 100x100 world, each with a
/// type, a name and a small polygon geometry.
std::string FeatureTurtle(int n, uint64_t seed) {
  std::ostringstream os;
  os << "@prefix ex: <http://example.org/> .\n"
     << "@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .\n";
  uint64_t state = seed ? seed : 1;
  auto uniform = [&]() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return static_cast<double>((state * 0x2545f4914f6cdd1dull) >> 11) /
           9007199254740992.0;
  };
  for (int i = 0; i < n; ++i) {
    double x = uniform() * 100;
    double y = uniform() * 100;
    os << "ex:f" << i << " a ex:Feature ; ex:name \"feature" << i
       << "\" ; ex:geo " << '"'
       << StrFormat("POLYGON ((%.4f %.4f, %.4f %.4f, %.4f %.4f, %.4f %.4f, "
                    "%.4f %.4f))",
                    x, y, x + 0.5, y, x + 0.5, y + 0.5, x, y + 0.5, x, y)
       << "\"^^strdf:WKT .\n";
  }
  return os.str();
}

void BM_BulkLoadTurtle(benchmark::State& state) {
  std::string turtle = FeatureTurtle(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    Strabon strabon;
    auto n = strabon.LoadTurtle(turtle);
    benchmark::DoNotOptimize(*n);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(BM_BulkLoadTurtle)->Arg(1000)->Arg(10000);

void BM_BgpJoin(benchmark::State& state) {
  Strabon strabon;
  (void)strabon.LoadTurtle(FeatureTurtle(static_cast<int>(state.range(0)), 7));
  for (auto _ : state) {
    auto r = strabon.Select(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?f ?n WHERE { ?f a ex:Feature ; ex:name ?n . }");
    benchmark::DoNotOptimize(r->rows.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BgpJoin)->Arg(1000)->Arg(10000);

/// Selective BGP: bound object, should use the OSP index.
void BM_BgpBoundObject(benchmark::State& state) {
  Strabon strabon;
  (void)strabon.LoadTurtle(FeatureTurtle(static_cast<int>(state.range(0)), 7));
  for (auto _ : state) {
    auto r = strabon.Select(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?f WHERE { ?f ex:name \"feature17\" . }");
    benchmark::DoNotOptimize(r->rows.size());
  }
}
BENCHMARK(BM_BgpBoundObject)->Arg(1000)->Arg(10000);

/// The headline comparison: spatial selection (small query window) with
/// the R-tree on vs off. Expect the indexed run to win and the gap to
/// grow with store size.
void SpatialSelection(benchmark::State& state, bool use_index) {
  Strabon strabon;
  (void)strabon.LoadTurtle(FeatureTurtle(static_cast<int>(state.range(0)), 7));
  strabon.set_spatial_index_enabled(use_index);
  const std::string query =
      "PREFIX ex: <http://example.org/> "
      "SELECT ?f WHERE { ?f ex:geo ?g . "
      "FILTER(strdf:intersects(?g, \"POLYGON ((10 10, 14 10, 14 14, 10 14, "
      "10 10))\"^^strdf:WKT)) }";
  // Warm the index / geometry cache outside the timed region.
  (void)strabon.Select(query);
  for (auto _ : state) {
    auto r = strabon.Select(query);
    benchmark::DoNotOptimize(r->rows.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SpatialSelectionScan(benchmark::State& state) {
  SpatialSelection(state, false);
}
void BM_SpatialSelectionRtree(benchmark::State& state) {
  SpatialSelection(state, true);
}
BENCHMARK(BM_SpatialSelectionScan)->Arg(1000)->Arg(5000)->Arg(20000);
BENCHMARK(BM_SpatialSelectionRtree)->Arg(1000)->Arg(5000)->Arg(20000);

/// Distance-based selection ("within d of point"), R-tree assisted.
void BM_DistanceSelection(benchmark::State& state) {
  Strabon strabon;
  (void)strabon.LoadTurtle(FeatureTurtle(10000, 7));
  strabon.set_spatial_index_enabled(state.range(0) == 1);
  const std::string query =
      "PREFIX ex: <http://example.org/> "
      "SELECT ?f WHERE { ?f ex:geo ?g . "
      "FILTER(strdf:distance(?g, \"POINT (50 50)\"^^strdf:WKT) < 3.0) }";
  (void)strabon.Select(query);
  for (auto _ : state) {
    auto r = strabon.Select(query);
    benchmark::DoNotOptimize(r->rows.size());
  }
}
BENCHMARK(BM_DistanceSelection)->Arg(0)->Arg(1);

/// stSPARQL update throughput (the refinement workload's primitive).
void BM_DeleteInsertWhere(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Strabon strabon;
    (void)strabon.LoadTurtle(FeatureTurtle(2000, 7));
    state.ResumeTiming();
    auto n = strabon.Update(
        "PREFIX ex: <http://example.org/> "
        "DELETE { ?f a ex:Feature } INSERT { ?f a ex:Checked } "
        "WHERE { ?f a ex:Feature ; ex:geo ?g . "
        "FILTER(strdf:intersects(?g, \"POLYGON ((0 0, 50 0, 50 50, 0 50, 0 "
        "0))\"^^strdf:WKT)) }");
    benchmark::DoNotOptimize(*n);
  }
}
BENCHMARK(BM_DeleteInsertWhere)->Unit(benchmark::kMillisecond);

}  // namespace
