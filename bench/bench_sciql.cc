// E7 — SciQL claim ([9], Zhang et al.): image processing expressed in the
// declarative array language vs. a hand-written "file-at-a-time" baseline
// loop over raw pixels. The paper's claim is qualitative (same operations,
// declarative, optimizable in the DBMS); the shape to reproduce is that
// in-engine SciQL stays within a small constant factor of the raw loop
// while slab (crop) evaluation scales with the slab, not the image.

#include <benchmark/benchmark.h>

#include "array/array_ops.h"
#include "eo/scene.h"
#include "sciql/sciql_engine.h"

namespace {

using teleios::array::ArrayPtr;
using teleios::eo::GenerateScene;
using teleios::eo::Scene;
using teleios::eo::SceneSpec;

Scene BenchScene(int size) {
  SceneSpec spec;
  spec.width = size;
  spec.height = size;
  spec.seed = 42;
  auto scene = GenerateScene(spec);
  return *scene;
}

/// Baseline: classification as a raw C++ loop over the band buffer (what
/// a file-based processing chain would do after decoding).
void BM_ClassifyRawLoop(benchmark::State& state) {
  Scene scene = BenchScene(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    int64_t hits = 0;
    for (size_t i = 0; i < scene.PixelCount(); ++i) {
      if (scene.tir039[i] - scene.tir108[i] > 10.0 &&
          scene.tir039[i] > 308.0 && !scene.cloudmask[i] &&
          scene.landmask[i]) {
        ++hits;
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(scene.PixelCount()));
}
BENCHMARK(BM_ClassifyRawLoop)->Arg(128)->Arg(256);

/// The same classification as a SciQL SELECT through the engine.
void BM_ClassifySciQl(benchmark::State& state) {
  Scene scene = BenchScene(static_cast<int>(state.range(0)));
  teleios::sciql::SciQlEngine engine;
  auto raster = scene.ToTerRaster();
  std::vector<teleios::storage::Field> attrs;
  for (auto& b : raster.band_names) {
    attrs.push_back({b, teleios::storage::ColumnType::kFloat64});
  }
  auto arr = *teleios::array::Array::Create(
      "img", {{"y", 0, scene.spec.height}, {"x", 0, scene.spec.width}},
      attrs);
  for (size_t b = 0; b < raster.bands.size(); ++b) {
    double* dst = *arr->MutableDoubles(b);
    std::copy(raster.bands[b].begin(), raster.bands[b].end(), dst);
  }
  (void)engine.RegisterArray(arr);
  for (auto _ : state) {
    auto r = engine.Execute(
        "SELECT count(*) AS n FROM img WHERE IR039 - IR108 > 10 and "
        "IR039 > 308 and CLOUDMASK < 0.5 and LANDMASK > 0.5");
    benchmark::DoNotOptimize(r->num_rows());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(scene.PixelCount()));
}
BENCHMARK(BM_ClassifySciQl)->Arg(128)->Arg(256);

/// Slab (crop) evaluation cost scales with the slab size, not the array.
void BM_SciQlSlabSelect(benchmark::State& state) {
  Scene scene = BenchScene(256);
  teleios::sciql::SciQlEngine engine;
  auto raster = scene.ToTerRaster();
  std::vector<teleios::storage::Field> attrs;
  for (auto& b : raster.band_names) {
    attrs.push_back({b, teleios::storage::ColumnType::kFloat64});
  }
  auto arr = *teleios::array::Array::Create("img", {{"y", 0, 256},
                                                    {"x", 0, 256}},
                                            attrs);
  for (size_t b = 0; b < raster.bands.size(); ++b) {
    double* dst = *arr->MutableDoubles(b);
    std::copy(raster.bands[b].begin(), raster.bands[b].end(), dst);
  }
  (void)engine.RegisterArray(arr);
  int64_t slab = state.range(0);
  std::string stmt = "SELECT count(*) AS n FROM img[0:" +
                     std::to_string(slab) + ", 0:" + std::to_string(slab) +
                     "] WHERE IR039 > 310";
  for (auto _ : state) {
    auto r = engine.Execute(stmt);
    benchmark::DoNotOptimize(r->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * slab * slab);
}
BENCHMARK(BM_SciQlSlabSelect)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

/// Array kernel primitives the NOA chain uses.
void BM_TileAggregate(benchmark::State& state) {
  Scene scene = BenchScene(256);
  auto arr = *teleios::array::Array::Create(
      "band", {{"y", 0, 256}, {"x", 0, 256}},
      {{"v", teleios::storage::ColumnType::kFloat64}});
  double* dst = *arr->MutableDoubles(0);
  std::copy(scene.tir039.begin(), scene.tir039.end(), dst);
  for (auto _ : state) {
    auto tiles =
        teleios::array::TileAggregate2D(*arr, 0, state.range(0),
                                        state.range(0), "max");
    benchmark::DoNotOptimize((*tiles)->num_cells());
  }
}
BENCHMARK(BM_TileAggregate)->Arg(8)->Arg(32);

void BM_Convolve3x3(benchmark::State& state) {
  auto arr = *teleios::array::Array::Create(
      "band", {{"y", 0, state.range(0)}, {"x", 0, state.range(0)}},
      {{"v", teleios::storage::ColumnType::kFloat64}});
  std::vector<double> box(9, 1.0 / 9.0);
  for (auto _ : state) {
    auto out = teleios::array::Convolve2D(*arr, 0, box, 3);
    benchmark::DoNotOptimize((*out)->num_cells());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_Convolve3x3)->Arg(128)->Arg(256);

void BM_Resample2D(benchmark::State& state) {
  Scene scene = BenchScene(256);
  auto arr = *teleios::array::Array::Create(
      "band", {{"y", 0, 256}, {"x", 0, 256}},
      {{"v", teleios::storage::ColumnType::kFloat64}});
  double* dst = *arr->MutableDoubles(0);
  std::copy(scene.tir108.begin(), scene.tir108.end(), dst);
  bool bilinear = state.range(0) == 1;
  for (auto _ : state) {
    auto out = teleios::array::Resample2D(
        *arr, 512, 512,
        bilinear ? teleios::array::ResampleKernel::kBilinear
                 : teleios::array::ResampleKernel::kNearest);
    benchmark::DoNotOptimize((*out)->num_cells());
  }
}
BENCHMARK(BM_Resample2D)->Arg(0)->Arg(1);

}  // namespace
