// E8 — Data Vault claim ([6], Ivanova/Kersten/Manegold): the symbiosis of
// DBMS and file repository. Shape to reproduce: attaching an archive
// (metadata harvest) is orders of magnitude cheaper than eager ingestion;
// first payload touch pays the ingestion cost once; subsequent touches hit
// the cache. The archive never needs to be fully loaded to answer
// metadata queries.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "eo/scene.h"
#include "io/fault_injection.h"
#include "io/filesystem.h"
#include "relational/sql_engine.h"
#include "vault/vault.h"

namespace {

namespace fs = std::filesystem;

using teleios::eo::GenerateScene;
using teleios::eo::SceneSpec;
using teleios::storage::Catalog;
using teleios::vault::DataVault;

/// Builds an archive of `count` rasters of `size`^2 pixels; returns dir.
std::string BuildArchive(int count, int size) {
  static std::string dir;
  static int built_count = -1;
  static int built_size = -1;
  if (built_count == count && built_size == size) return dir;
  dir = (fs::temp_directory_path() /
         ("teleios_bench_vault_" + std::to_string(count) + "_" +
          std::to_string(size)))
            .string();
  fs::create_directories(dir);
  for (int i = 0; i < count; ++i) {
    SceneSpec spec;
    spec.width = size;
    spec.height = size;
    spec.seed = 42 + static_cast<uint64_t>(i);
    spec.name = "scene_" + std::to_string(i);
    auto scene = GenerateScene(spec);
    (void)teleios::vault::WriteTer(
        scene->ToTerRaster(), dir + "/scene_" + std::to_string(i) + ".ter");
  }
  built_count = count;
  built_size = size;
  return dir;
}

/// Attach only: the vault's lazy path (metadata harvest, no payload IO).
void BM_AttachLazy(benchmark::State& state) {
  std::string dir = BuildArchive(static_cast<int>(state.range(0)), 128);
  for (auto _ : state) {
    Catalog catalog;
    DataVault vault(&catalog);
    auto n = vault.Attach(dir);
    benchmark::DoNotOptimize(*n);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AttachLazy)->Arg(4)->Arg(16);

/// Attach + eager full ingestion: the non-vault baseline.
void BM_AttachEager(benchmark::State& state) {
  std::string dir = BuildArchive(static_cast<int>(state.range(0)), 128);
  for (auto _ : state) {
    Catalog catalog;
    DataVault vault(&catalog);
    (void)vault.Attach(dir);
    (void)vault.IngestAll();
    benchmark::DoNotOptimize(vault.stats().bytes_ingested);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AttachEager)->Arg(4)->Arg(16);

/// Metadata query latency straight after attach — the vault's selling
/// point: queryable archive without payload ingestion.
void BM_MetadataQueryAfterAttach(benchmark::State& state) {
  std::string dir = BuildArchive(16, 128);
  Catalog catalog;
  DataVault vault(&catalog);
  (void)vault.Attach(dir);
  teleios::relational::SqlEngine engine(&catalog);
  for (auto _ : state) {
    auto r = engine.Execute(
        "SELECT name, width, height FROM vault_rasters WHERE bands >= 6 "
        "ORDER BY name");
    benchmark::DoNotOptimize(r->num_rows());
  }
}
BENCHMARK(BM_MetadataQueryAfterAttach);

/// First touch (ingest) vs cached touch of one raster.
void BM_FirstTouch(benchmark::State& state) {
  std::string dir = BuildArchive(4, 128);
  for (auto _ : state) {
    Catalog catalog;
    DataVault vault(&catalog);
    (void)vault.Attach(dir);
    auto arr = vault.GetRasterArray("scene_0");
    benchmark::DoNotOptimize((*arr)->num_cells());
  }
}
BENCHMARK(BM_FirstTouch);

void BM_CachedTouch(benchmark::State& state) {
  std::string dir = BuildArchive(4, 128);
  Catalog catalog;
  DataVault vault(&catalog);
  (void)vault.Attach(dir);
  (void)vault.GetRasterArray("scene_0");
  for (auto _ : state) {
    auto arr = vault.GetRasterArray("scene_0");
    benchmark::DoNotOptimize((*arr)->num_cells());
  }
}
BENCHMARK(BM_CachedTouch);

/// Single-band lazy ingestion (partial payload).
void BM_BandTouch(benchmark::State& state) {
  std::string dir = BuildArchive(4, 128);
  for (auto _ : state) {
    Catalog catalog;
    DataVault vault(&catalog);
    (void)vault.Attach(dir);
    auto arr = vault.GetBandArray("scene_1", "IR039");
    benchmark::DoNotOptimize((*arr)->num_cells());
  }
}
BENCHMARK(BM_BandTouch);

/// Eager ingestion under a periodic read-fault rate (arg = one injected
/// fault per N read ops; 0 = fault-free baseline), with the vault's
/// bounded retry absorbing the transients. Measures the robustness tax.
void BM_IngestWithFaultRate(benchmark::State& state) {
  std::string dir = BuildArchive(4, 128);
  teleios::io::PosixFileSystem posix;
  teleios::io::FaultInjectingFileSystem faulty(&posix);
  teleios::io::FileSystem* prev = teleios::io::SetFileSystem(&faulty);
  const uint64_t every_n = static_cast<uint64_t>(state.range(0));
  uint64_t faults = 0;
  uint64_t failed_runs = 0;
  for (auto _ : state) {
    teleios::io::FaultSpec spec;
    spec.kind = teleios::io::FaultKind::kIoError;
    spec.reads_only = true;
    spec.inject_at = every_n ? 1 : 0;
    spec.every_n = every_n;
    faulty.Arm(spec);
    Catalog catalog;
    DataVault vault(&catalog);
    teleios::io::RetryPolicy retry;
    retry.max_attempts = 3;
    vault.set_ingest_retry(retry);
    (void)vault.Attach(dir);
    if (!vault.IngestAll().ok()) ++failed_runs;
    faults += faulty.faults_injected();
    benchmark::DoNotOptimize(vault.stats().bytes_ingested);
  }
  faulty.Disarm();
  teleios::io::SetFileSystem(prev);
  state.counters["faults_per_iter"] =
      benchmark::Counter(static_cast<double>(faults),
                         benchmark::Counter::kAvgIterations);
  state.counters["failed_runs"] = static_cast<double>(failed_runs);
}
BENCHMARK(BM_IngestWithFaultRate)->Arg(0)->Arg(256)->Arg(64);

}  // namespace
