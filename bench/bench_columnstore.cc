// E10 — column-store substrate characterization: scan, selection,
// hash join, group-aggregate throughput and the effect of dictionary
// encoding on string columns. These are the MonetDB-style primitives the
// entire TELEIOS database tier sits on.

#include <benchmark/benchmark.h>

#include <memory>

#include "relational/sql_engine.h"
#include "storage/catalog.h"

namespace {

using teleios::Value;
using teleios::storage::Catalog;
using teleios::storage::Column;
using teleios::storage::ColumnType;
using teleios::storage::Schema;
using teleios::storage::Table;
using teleios::storage::TablePtr;

/// Deterministic observation table: id, station (8 distinct), temp.
TablePtr MakeObservations(int64_t rows) {
  auto table = std::make_shared<Table>(
      Schema({{"id", ColumnType::kInt64},
              {"station", ColumnType::kString},
              {"temp", ColumnType::kFloat64}}));
  static const char* kStations[] = {"athens", "sparta",   "patras",
                                    "argos",  "tripoli",  "kalamata",
                                    "corinth", "nafplio"};
  for (int64_t i = 0; i < rows; ++i) {
    table->column(0).AppendInt64(i);
    table->column(1).AppendString(kStations[i % 8]);
    table->column(2).AppendFloat64(280.0 + static_cast<double>((i * 37) % 600) / 10.0);
  }
  return table;
}

void BM_ScanSum(benchmark::State& state) {
  TablePtr table = MakeObservations(state.range(0));
  const Column& temp = table->column(2);
  for (auto _ : state) {
    double sum = 0;
    const auto& data = temp.doubles();
    for (double v : data) sum += v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanSum)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_SqlSelection(benchmark::State& state) {
  Catalog catalog;
  (void)catalog.CreateTable("obs", MakeObservations(state.range(0)));
  teleios::relational::SqlEngine engine(&catalog);
  for (auto _ : state) {
    auto r = engine.Execute("SELECT id FROM obs WHERE temp > 330.0");
    benchmark::DoNotOptimize(r->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SqlSelection)->Arg(10000)->Arg(100000);

void BM_SqlAggregate(benchmark::State& state) {
  Catalog catalog;
  (void)catalog.CreateTable("obs", MakeObservations(state.range(0)));
  teleios::relational::SqlEngine engine(&catalog);
  for (auto _ : state) {
    auto r = engine.Execute(
        "SELECT station, avg(temp) AS t, count(*) AS n FROM obs GROUP BY "
        "station");
    benchmark::DoNotOptimize(r->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SqlAggregate)->Arg(10000)->Arg(100000);

void BM_SqlJoin(benchmark::State& state) {
  Catalog catalog;
  (void)catalog.CreateTable("obs", MakeObservations(state.range(0)));
  auto stations = std::make_shared<Table>(
      Schema({{"station", ColumnType::kString},
              {"region", ColumnType::kString}}));
  static const char* kStations[] = {"athens", "sparta",   "patras",
                                    "argos",  "tripoli",  "kalamata",
                                    "corinth", "nafplio"};
  for (const char* s : kStations) {
    stations->column(0).AppendString(s);
    stations->column(1).AppendString("peloponnese");
  }
  (void)catalog.CreateTable("stations", stations);
  teleios::relational::SqlEngine engine(&catalog);
  for (auto _ : state) {
    auto r = engine.Execute(
        "SELECT region, count(*) AS n FROM obs JOIN stations ON "
        "obs.station = stations.station GROUP BY region");
    benchmark::DoNotOptimize(r->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SqlJoin)->Arg(10000)->Arg(100000);

/// Dictionary encoding: append throughput and memory for low-cardinality
/// strings vs unique strings.
void BM_DictionaryEncodedAppend(benchmark::State& state) {
  bool low_cardinality = state.range(0) == 1;
  for (auto _ : state) {
    Column col(ColumnType::kString);
    for (int i = 0; i < 50000; ++i) {
      col.AppendString(low_cardinality
                           ? "station_" + std::to_string(i % 16)
                           : "station_" + std::to_string(i));
    }
    state.counters["dict_entries"] =
        static_cast<double>(col.dict().size());
    state.counters["mem_bytes"] = static_cast<double>(col.MemoryUsage());
    benchmark::DoNotOptimize(col.size());
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_DictionaryEncodedAppend)
    ->Arg(1)   // low cardinality: dictionary pays off
    ->Arg(0);  // unique strings: dictionary overhead visible

/// Vectorized-selection ablation (the MonetDB-style design choice): the
/// same predicate through the vectorized path vs the row-wise
/// interpreter.
void BM_FilterVectorized(benchmark::State& state) {
  TablePtr table = MakeObservations(state.range(0));
  auto pred = teleios::relational::Expr::Binary(
      teleios::relational::BinaryOp::kAnd,
      teleios::relational::Expr::Binary(
          teleios::relational::BinaryOp::kGt,
          teleios::relational::Expr::ColumnRef("temp"),
          teleios::relational::Expr::Literal(Value(330.0))),
      teleios::relational::Expr::Binary(
          teleios::relational::BinaryOp::kEq,
          teleios::relational::Expr::ColumnRef("station"),
          teleios::relational::Expr::Literal(Value("sparta"))));
  for (auto _ : state) {
    auto sel = teleios::relational::FilterIndices(*table, pred);
    benchmark::DoNotOptimize(sel->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilterVectorized)->Arg(100000)->Arg(1000000);

void BM_FilterInterpreted(benchmark::State& state) {
  TablePtr table = MakeObservations(state.range(0));
  auto pred = teleios::relational::Expr::Binary(
      teleios::relational::BinaryOp::kAnd,
      teleios::relational::Expr::Binary(
          teleios::relational::BinaryOp::kGt,
          teleios::relational::Expr::ColumnRef("temp"),
          teleios::relational::Expr::Literal(Value(330.0))),
      teleios::relational::Expr::Binary(
          teleios::relational::BinaryOp::kEq,
          teleios::relational::Expr::ColumnRef("station"),
          teleios::relational::Expr::Literal(Value("sparta"))));
  for (auto _ : state) {
    auto sel =
        teleios::relational::FilterIndicesInterpreted(*table, pred);
    benchmark::DoNotOptimize(sel->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilterInterpreted)->Arg(100000)->Arg(1000000);

/// Predicate pushdown ablation (DESIGN.md design-choice bench): the same
/// join query with selective filter, measured against the planner that
/// pushes it below the join. Both run through the engine; the "nopush"
/// variant simulates no pushdown by filtering after a cross-ish join via
/// a post-hoc HAVING-style filter.
void BM_JoinWithPushdown(benchmark::State& state) {
  Catalog catalog;
  (void)catalog.CreateTable("obs", MakeObservations(100000));
  auto tags = std::make_shared<Table>(Schema({{"id", ColumnType::kInt64},
                                              {"tag", ColumnType::kString}}));
  for (int64_t i = 0; i < 100000; i += 10) {
    tags->column(0).AppendInt64(i);
    tags->column(1).AppendString(i % 20 == 0 ? "hot" : "cold");
  }
  (void)catalog.CreateTable("tags", tags);
  teleios::relational::SqlEngine engine(&catalog);
  for (auto _ : state) {
    // temp > 339 is ~1% selective and pushed below the join.
    auto r = engine.Execute(
        "SELECT tag, count(*) AS n FROM obs JOIN tags ON obs.id = tags.id "
        "WHERE temp > 339.0 GROUP BY tag");
    benchmark::DoNotOptimize(r->num_rows());
  }
}
BENCHMARK(BM_JoinWithPushdown);

}  // namespace
