// E6 — the paper's §1 headline information request: "Find an image taken
// by a Meteosat second generation satellite on August 25, 2007 which
// covers the area of Peloponnese and contains hotspots corresponding to
// forest fires located within 2km from a major archaeological site."
// Impossible in an EOWEB-like interface; one stSPARQL query in TELEIOS.
// The harness measures that query with and without the spatial index and
// across linked-data sizes.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "eo/ontology.h"
#include "eo/scene.h"
#include "linkeddata/generators.h"
#include "noa/chain.h"

namespace {

namespace fs = std::filesystem;

using teleios::eo::GenerateScene;
using teleios::eo::SceneSpec;

/// The headline query (geodesic distance in meters).
const char* kHeadlineQuery = R"(
PREFIX dbo: <http://dbpedia.org/ontology/>
SELECT DISTINCT ?product ?hotspot ?site
WHERE {
  ?product a noa:Product ;
           noa:producedBySatellite "Meteosat-9" ;
           noa:hasAcquisitionTime ?t .
  ?hotspot a noa:Hotspot ;
           noa:derivedFromProduct ?l2 ;
           noa:hasGeometry ?hg .
  ?l2 noa:wasDerivedFrom ?product .
  ?site a dbo:ArchaeologicalSite ;
        strdf:hasGeometry ?sg .
  FILTER(?t >= "2007-08-25T00:00:00"^^xsd:dateTime)
  FILTER(?t < "2007-08-26T00:00:00"^^xsd:dateTime)
  FILTER(strdf:geodesicDistance(?hg, ?sg) < 2000.0)
}
)";

struct Observatory {
  std::string dir;
  teleios::storage::Catalog catalog;
  std::unique_ptr<teleios::vault::DataVault> vault;
  std::unique_ptr<teleios::sciql::SciQlEngine> sciql;
  teleios::strabon::Strabon strabon;

  explicit Observatory(int sites) {
    dir = (fs::temp_directory_path() /
           ("teleios_bench_headline_" + std::to_string(sites)))
              .string();
    fs::create_directories(dir);
    SceneSpec spec;
    spec.width = 128;
    spec.height = 128;
    spec.seed = 42;
    spec.num_fires = 6;
    spec.name = "msg-20070825";
    auto scene = GenerateScene(spec);
    (void)teleios::vault::WriteTer(scene->ToTerRaster(), dir + "/s.ter");
    vault = std::make_unique<teleios::vault::DataVault>(&catalog);
    (void)vault->Attach(dir);
    sciql = std::make_unique<teleios::sciql::SciQlEngine>(&catalog);
    (void)strabon.LoadTurtle(teleios::eo::OntologyTurtle());
    // Register the L1 product + run the chain to get hotspots.
    auto header = *vault->GetRasterHeader("msg-20070825");
    (void)teleios::eo::RegisterProductTriples(
        teleios::eo::MetadataFromHeader(header, teleios::eo::ProductLevel::kL1),
        &strabon);
    teleios::noa::ProcessingChain chain(vault.get(), sciql.get(), &strabon,
                                        &catalog);
    teleios::noa::ChainConfig config;
    config.classifier.kind = teleios::noa::ClassifierKind::kContextual;
    (void)chain.Run("msg-20070825", config);
    // Linked data: archaeological sites (the join target) + towns.
    auto site_turtle =
        teleios::linkeddata::GenerateArchaeologicalSites(*scene, sites, 2);
    (void)strabon.LoadTurtle(*site_turtle);
    auto towns = teleios::linkeddata::GenerateTowns(*scene, sites, 3);
    (void)strabon.LoadTurtle(*towns);
  }
};

void HeadlineQuery(benchmark::State& state, bool use_index) {
  Observatory obs(static_cast<int>(state.range(0)));
  obs.strabon.set_spatial_index_enabled(use_index);
  (void)obs.strabon.Select(kHeadlineQuery);  // warm caches
  for (auto _ : state) {
    auto r = obs.strabon.Select(kHeadlineQuery);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    state.counters["answers"] = static_cast<double>(r->rows.size());
    benchmark::DoNotOptimize(r->rows.size());
  }
}

void BM_HeadlineQueryIndexed(benchmark::State& state) {
  HeadlineQuery(state, true);
}
void BM_HeadlineQueryScan(benchmark::State& state) {
  HeadlineQuery(state, false);
}
BENCHMARK(BM_HeadlineQueryIndexed)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeadlineQueryScan)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

/// Product discovery by time window only (the EOWEB-style query TELEIOS
/// subsumes) — for scale comparison with the semantic query above.
void BM_TimeWindowOnly(benchmark::State& state) {
  Observatory obs(100);
  const char* query =
      "SELECT ?product WHERE { ?product a noa:Product ; "
      "noa:hasAcquisitionTime ?t . "
      "FILTER(?t >= \"2007-08-25T00:00:00\"^^xsd:dateTime) "
      "FILTER(?t < \"2007-08-26T00:00:00\"^^xsd:dateTime) }";
  for (auto _ : state) {
    auto r = obs.strabon.Select(query);
    benchmark::DoNotOptimize(r->rows.size());
  }
}
BENCHMARK(BM_TimeWindowOnly);

}  // namespace
