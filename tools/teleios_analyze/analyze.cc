#include "analyze.h"

#include <algorithm>
#include <cctype>

#include "lint.h"

namespace teleios::analyze {

namespace {

using lint::Token;

// ---------------------------------------------------------------------------
// Token utilities
// ---------------------------------------------------------------------------

bool IsIdent(const Token& t) {
  return !t.text.empty() &&
         (std::isalpha(static_cast<unsigned char>(t.text[0])) ||
          t.text[0] == '_');
}

bool IsAllCaps(const std::string& s) {
  bool has_alpha = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isalpha(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

bool IsTypeQualifier(const std::string& s) {
  static const std::set<std::string> kQuals = {
      "const",    "mutable",  "static",   "constexpr", "inline",
      "volatile", "typename", "unsigned", "signed",    "long",
      "short",    "struct",   "class",    "register",  "thread_local",
      "extern",   "virtual",  "explicit", "friend",    "std"};
  return kQuals.count(s) > 0;
}

bool IsControlKeyword(const std::string& s) {
  static const std::set<std::string> kCtl = {
      "if",      "for",      "while",    "switch",   "catch",
      "return",  "sizeof",   "alignof",  "decltype", "new",
      "delete",  "throw",    "assert",   "defined",  "alignas",
      "noexcept", "else",    "do",       "goto",     "case",
      "default", "break",    "continue", "co_return"};
  return kCtl.count(s) > 0;
}

/// Statement keywords after which an identifier is a call, not a
/// declared name (`return Fn(...)`, `else Fn(...)`).
bool IsStmtKeyword(const std::string& s) {
  static const std::set<std::string> kStmt = {
      "return", "else", "case", "do", "throw", "goto", "delete",
      "co_return", "co_yield", "co_await"};
  return kStmt.count(s) > 0;
}

/// Index just past the token matching `open` at index i (t[i] == open).
size_t MatchForward(const std::vector<Token>& t, size_t i,
                    const std::string& open, const std::string& close) {
  int depth = 0;
  for (size_t j = i; j < t.size(); ++j) {
    if (t[j].text == open) ++depth;
    if (t[j].text == close && --depth == 0) return j + 1;
  }
  return t.size();
}

/// Drops preprocessor directive lines (# ..., including backslash
/// continuations) so the structure parser never sees macro bodies. The
/// layering pass scans the raw stream for include targets instead.
std::vector<Token> StripDirectives(const std::vector<Token>& raw) {
  std::vector<Token> out;
  out.reserve(raw.size());
  size_t i = 0;
  while (i < raw.size()) {
    if (raw[i].text != "#") {
      out.push_back(raw[i]);
      ++i;
      continue;
    }
    int line = raw[i].line;
    ++i;
    while (i < raw.size() && raw[i].line <= line) {
      if (raw[i].text == "\\" && i + 1 < raw.size() &&
          raw[i + 1].line == raw[i].line + 1) {
        line = raw[i].line + 1;  // backslash continuation
      }
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Program model
// ---------------------------------------------------------------------------

struct ClassInfo {
  std::string qname;  // ns-qualified ("teleios::exec::ThreadPool")
  std::string sname;  // short name ("ThreadPool")
  std::vector<std::string> bases;  // short names
  std::set<std::string> mutex_members;
  std::map<std::string, std::string> member_class;  // member -> type short name
  // method -> TELEIOS_REQUIRES expressions from in-class declarations
  // (out-of-line definitions do not repeat the annotation).
  std::map<std::string, std::vector<std::vector<std::string>>> requires_decl;
};

struct FunctionDef {
  std::string key;          // unique ("WalWriter::Append@io/wal.cc:40")
  std::string display;      // "WalWriter::Append"
  std::string class_sname;  // short name of owning class, "" if free
  std::string name;
  std::string return_class;  // return type's short name ("" if not a class)
  size_t file = 0;        // index into files
  size_t body_begin = 0;  // token index of the body '{'
  size_t body_end = 0;    // one past the matching '}'
  int line = 0;
  std::vector<std::vector<std::string>> requires_exprs;
  std::map<std::string, std::string> param_class;  // param -> type short name
};

enum class CallKind { kBare, kReceiver, kQualified };

struct Hold {
  std::string node;
  Site site;
  int depth = 0;
};

struct CallRec {
  std::string caller;  // FunctionDef::key (or a per-lambda key)
  std::string name;    // callee name
  CallKind kind = CallKind::kBare;
  std::string recv_type;     // receiver static type (kReceiver)
  std::string qual;          // qualifying class (kQualified)
  std::string caller_class;  // short name of the caller's class
  Site site;
  std::vector<Hold> held;
};

struct Edge {
  std::string from, to;
  std::vector<Site> witness;  // from's acquire site, then the path to to's
};

using Graph = std::map<std::string, std::map<std::string, Edge>>;

struct EdgeSink {
  Graph* graph;
  Stats* stats;
  void Add(const std::string& from, const std::string& to,
           std::vector<Site> witness) {
    if (from == to) {
      ++stats->self_edges;
      return;
    }
    auto& slot = (*graph)[from];
    if (!slot.count(to)) {
      slot[to] = Edge{from, to, std::move(witness)};
      ++stats->edges;
    }
  }
};

struct Program {
  const std::vector<SourceFile>* files = nullptr;
  std::vector<std::vector<Token>> raw_tokens;   // per file
  std::vector<std::vector<Token>> code_tokens;  // directives stripped
  std::map<std::string, ClassInfo> classes;     // by qname
  std::map<std::string, std::vector<std::string>> classes_by_short;
  std::vector<FunctionDef> functions;
  std::map<std::string, std::vector<size_t>> functions_by_name;
  std::map<std::pair<std::string, std::string>, std::vector<size_t>>
      methods_by_class;  // (class short name, method) -> function indices
  std::map<std::string, std::string> global_mutexes;  // name -> node
  std::vector<CallRec> calls;
  // function key -> acquired node -> witness site chain
  std::map<std::string, std::map<std::string, std::vector<Site>>> direct;
  Stats stats;
};

bool IsMutexTypeName(const std::string& s) {
  return s == "Mutex" || s == "SharedMutex" || s == "mutex" ||
         s == "shared_mutex";
}

bool IsScopedLockName(const std::string& s) {
  return s == "MutexLock" || s == "WriterMutexLock" || s == "ReaderMutexLock";
}

// ---------------------------------------------------------------------------
// Structure parser: classes, members, function definitions
// ---------------------------------------------------------------------------

/// Runs twice per file: a first pass over every file collects classes
/// (members, bases, annotations), then a second pass registers function
/// definitions. Without the split, an out-of-line `Foo::Bar() {...}` in
/// a .cc parsed before Foo's header would not be recognized as a method
/// of Foo — making results depend on file order.
class StructureParser {
 public:
  StructureParser(Program* prog, size_t file_index, bool collect_functions)
      : prog_(prog),
        t_(prog->code_tokens[file_index]),
        file_(file_index),
        rel_((*prog->files)[file_index].rel),
        collect_functions_(collect_functions) {}

  void Parse() { DeclLoop(0, t_.size(), /*class_qname=*/""); }

 private:
  std::string NsPrefix() const {
    std::string out;
    for (const auto& part : ns_) out += part + "::";
    return out;
  }

  void DeclLoop(size_t i, size_t end, const std::string& class_qname) {
    while (i < end && i < t_.size()) {
      const std::string& tok = t_[i].text;
      if (tok == ";" || tok == "}" || tok == "public" || tok == "private" ||
          tok == "protected" || tok == ":") {
        ++i;
        continue;
      }
      if (tok == "namespace") {
        i = ParseNamespace(i, end);
        continue;
      }
      if (tok == "template") {
        i = SkipTemplateHeader(i);
        continue;
      }
      if ((tok == "class" || tok == "struct") &&
          (i == 0 || t_[i - 1].text != "enum")) {
        i = ParseClass(i, end);
        continue;
      }
      if (tok == "enum") {
        i = SkipEnum(i);
        continue;
      }
      if (tok == "using" || tok == "typedef" || tok == "friend" ||
          tok == "static_assert") {
        while (i < t_.size() && t_[i].text != ";") ++i;
        continue;
      }
      if (tok == "extern" && i + 1 < t_.size() && t_[i + 1].text == "{") {
        size_t close = MatchForward(t_, i + 1, "{", "}");  // extern "C" {}
        DeclLoop(i + 2, close - 1, class_qname);
        i = close;
        continue;
      }
      i = ParseDeclaration(i, end, class_qname);
    }
  }

  size_t ParseNamespace(size_t i, size_t end) {
    ++i;  // 'namespace'
    std::vector<std::string> parts;
    while (i < t_.size() && (IsIdent(t_[i]) || t_[i].text == "::")) {
      if (IsIdent(t_[i])) parts.push_back(t_[i].text);
      ++i;
    }
    if (i < t_.size() && t_[i].text == "=") {  // namespace alias
      while (i < t_.size() && t_[i].text != ";") ++i;
      return i;
    }
    if (i >= t_.size() || t_[i].text != "{") return i;
    if (parts.empty()) parts.push_back("(anon:" + rel_ + ")");
    size_t close = MatchForward(t_, i, "{", "}");
    for (const auto& p : parts) ns_.push_back(p);
    DeclLoop(i + 1, std::min(close - 1, end), /*class_qname=*/"");
    for (size_t k = 0; k < parts.size(); ++k) ns_.pop_back();
    return close;
  }

  size_t SkipTemplateHeader(size_t i) {
    ++i;  // 'template'
    if (i >= t_.size() || t_[i].text != "<") return i;
    int angle = 0;
    for (; i < t_.size(); ++i) {
      if (t_[i].text == "<") ++angle;
      if (t_[i].text == ">" && --angle == 0) return i + 1;
      if (t_[i].text == "{" || t_[i].text == ";") return i;
    }
    return i;
  }

  size_t SkipEnum(size_t i) {
    while (i < t_.size() && t_[i].text != "{" && t_[i].text != ";") ++i;
    if (i < t_.size() && t_[i].text == "{") {
      i = MatchForward(t_, i, "{", "}");
      while (i < t_.size() && t_[i].text != ";") ++i;
    }
    return i;
  }

  size_t ParseClass(size_t i, size_t end) {
    ++i;  // 'class' / 'struct'
    std::string name;
    while (i < t_.size() && t_[i].text != "{" && t_[i].text != ";" &&
           t_[i].text != ":") {
      if (IsIdent(t_[i]) && t_[i].text != "final") {
        if (i + 1 < t_.size() && t_[i + 1].text == "(") {
          i = MatchForward(t_, i + 1, "(", ")");  // attribute macro
          continue;
        }
        name = t_[i].text;
      }
      ++i;
    }
    if (i >= t_.size() || t_[i].text == ";" || name.empty()) return i + 1;
    std::vector<std::string> bases;
    if (t_[i].text == ":") {
      std::string last;
      ++i;
      while (i < t_.size() && t_[i].text != "{") {
        if (t_[i].text == "<") {  // skip template args of a base
          int angle = 1;
          ++i;
          while (i < t_.size() && angle > 0) {
            if (t_[i].text == "<") ++angle;
            if (t_[i].text == ">") --angle;
            ++i;
          }
          continue;
        }
        if (IsIdent(t_[i]) && t_[i].text != "public" &&
            t_[i].text != "private" && t_[i].text != "protected" &&
            t_[i].text != "virtual") {
          last = t_[i].text;
        }
        if (t_[i].text == ",") {
          if (!last.empty()) bases.push_back(last);
          last.clear();
        }
        ++i;
      }
      if (!last.empty()) bases.push_back(last);
    }
    if (i >= t_.size() || t_[i].text != "{") return i;
    std::string qname = NsPrefix() + name;
    ClassInfo& info = prog_->classes[qname];
    if (info.qname.empty()) {
      info.qname = qname;
      info.sname = name;
      prog_->classes_by_short[name].push_back(qname);
      ++prog_->stats.classes;
      info.bases.insert(info.bases.end(), bases.begin(), bases.end());
    }
    size_t close = MatchForward(t_, i, "{", "}");
    DeclLoop(i + 1, std::min(close - 1, end), qname);
    return close;
  }

  /// TELEIOS_REQUIRES / TELEIOS_REQUIRES_SHARED args in [from, to),
  /// split at top-level commas into per-mutex token lists.
  std::vector<std::vector<std::string>> CollectRequires(size_t from,
                                                        size_t to) {
    std::vector<std::vector<std::string>> out;
    for (size_t j = from; j < to && j < t_.size(); ++j) {
      if ((t_[j].text == "TELEIOS_REQUIRES" ||
           t_[j].text == "TELEIOS_REQUIRES_SHARED") &&
          j + 1 < t_.size() && t_[j + 1].text == "(") {
        size_t close = MatchForward(t_, j + 1, "(", ")");
        std::vector<std::string> expr;
        int depth = 0;
        for (size_t k = j + 2; k + 1 < close; ++k) {
          if (t_[k].text == "(") ++depth;
          if (t_[k].text == ")") --depth;
          if (t_[k].text == "," && depth == 0) {
            if (!expr.empty()) out.push_back(expr);
            expr.clear();
            continue;
          }
          expr.push_back(t_[k].text);
        }
        if (!expr.empty()) out.push_back(expr);
        j = close - 1;
      }
    }
    return out;
  }

  std::map<std::string, std::string> ParseParams(size_t open, size_t close) {
    std::map<std::string, std::string> out;
    std::vector<std::string> idents;
    auto flush = [&] {
      if (idents.size() >= 2) out[idents.back()] = idents[idents.size() - 2];
      idents.clear();
    };
    int depth = 0;
    bool in_default = false;
    for (size_t j = open + 1; j + 1 < close; ++j) {
      const std::string& s = t_[j].text;
      if (s == "(" || s == "<" || s == "[") ++depth;
      if (s == ")" || s == ">" || s == "]") --depth;
      if (depth < 0) depth = 0;
      if (s == "," && depth == 0) {
        flush();
        in_default = false;
        continue;
      }
      if (s == "=") in_default = true;
      if (!in_default && IsIdent(t_[j]) && !IsTypeQualifier(s)) {
        idents.push_back(s);
      }
    }
    flush();
    return out;
  }

  /// Generic declaration at index i: member variable, function
  /// declaration, or function definition. Returns the next index.
  size_t ParseDeclaration(size_t i, size_t end,
                          const std::string& class_qname) {
    size_t j = i;
    int paren = 0;
    bool saw_eq = false;
    size_t params_open = t_.size(), params_close = t_.size();
    size_t body = t_.size();
    size_t semi = t_.size();
    while (j < end && j < t_.size()) {
      const std::string& s = t_[j].text;
      // `operator=(...)` / `operator==(...)`: jump over the operator
      // symbol so its '=' is not mistaken for an initializer (which
      // would swallow the body as a brace-init and derail the file).
      if (s == "operator" && params_open == t_.size() && paren == 0 &&
          !saw_eq) {
        ++j;
        if (j + 1 < t_.size() && t_[j].text == "(" &&
            t_[j + 1].text == ")") {
          j += 2;  // operator()
        } else {
          while (j < t_.size() && t_[j].text != "(" && t_[j].text != ";" &&
                 t_[j].text != "{") {
            ++j;
          }
        }
        continue;
      }
      if (s == "(") {
        if (paren == 0 && !saw_eq && params_open == t_.size() && j > i) {
          params_open = j;
          size_t close = MatchForward(t_, j, "(", ")");
          params_close = close - 1;
          j = close;
          // Constructor init list: `: member(init), member{init}`.
          if (j < t_.size() && t_[j].text == ":" &&
              !(j + 1 < t_.size() && t_[j + 1].text == ":")) {
            ++j;
            while (j < t_.size()) {
              while (j < t_.size() && (IsIdent(t_[j]) || t_[j].text == "::")) {
                ++j;
              }
              if (j < t_.size() && t_[j].text == "(") {
                j = MatchForward(t_, j, "(", ")");
              } else if (j < t_.size() && t_[j].text == "{" && j > 0 &&
                         IsIdent(t_[j - 1])) {
                j = MatchForward(t_, j, "{", "}");
              } else {
                break;
              }
              if (j < t_.size() && t_[j].text == ",") {
                ++j;
                continue;
              }
              break;
            }
          }
          continue;
        }
        ++paren;
      } else if (s == ")") {
        --paren;
      } else if (s == "=" && paren == 0) {
        saw_eq = true;
      } else if (s == "{" && paren == 0) {
        if (saw_eq || params_open == t_.size()) {
          j = MatchForward(t_, j, "{", "}");  // brace initializer
          continue;
        }
        body = j;
        break;
      } else if (s == ";" && paren == 0) {
        semi = j;
        break;
      } else if (s == "}" && paren == 0) {
        return j;  // malformed: bail to the scope close
      }
      ++j;
    }
    if (body == t_.size() && semi == t_.size()) return j + 1;

    if (params_open == t_.size()) {
      if (semi != t_.size()) HandleVariable(i, semi, class_qname);
      return semi + 1;
    }

    // Function name: the identifier immediately before the param list.
    std::string name;
    std::string class_sname;
    size_t name_idx = params_open;
    if (name_idx > i && IsIdent(t_[name_idx - 1])) {
      name = t_[name_idx - 1].text;
      size_t before = name_idx - 2;  // token index before the name
      if (name_idx >= 2 && t_[name_idx - 2].text == "~") {
        name = "~" + name;
        before = name_idx - 3;
      }
      if (before + 1 >= 1 && before < t_.size() &&
          t_[before].text == "::" && before >= 1 && IsIdent(t_[before - 1])) {
        const std::string& scope = t_[before - 1].text;
        if (prog_->classes_by_short.count(scope)) class_sname = scope;
      }
    }
    if (name.empty() || name == "operator" || IsAllCaps(name)) {
      // Attribute-decorated member (`int x_ TELEIOS_GUARDED_BY(mu_);`)
      // or an operator.
      if (semi != t_.size()) {
        bool is_operator = false;
        for (size_t k = i; k < semi; ++k) {
          if (t_[k].text == "operator") is_operator = true;
        }
        if (!is_operator) HandleVariable(i, semi, class_qname);
        return semi + 1;
      }
      return body == t_.size() ? j + 1 : MatchForward(t_, body, "{", "}");
    }
    if (class_sname.empty() && !class_qname.empty()) {
      auto it = prog_->classes.find(class_qname);
      if (it != prog_->classes.end()) class_sname = it->second.sname;
    }

    size_t tail_end = body != t_.size() ? body : semi;
    auto requires_exprs = CollectRequires(params_close, tail_end);

    if (body == t_.size()) {
      // Declaration only: remember in-class REQUIRES for the definition.
      if (!collect_functions_ && !class_qname.empty() &&
          !requires_exprs.empty()) {
        auto& decl = prog_->classes[class_qname].requires_decl[name];
        decl.insert(decl.end(), requires_exprs.begin(), requires_exprs.end());
      }
      return semi + 1;
    }

    size_t body_close = MatchForward(t_, body, "{", "}");
    if (!collect_functions_) return body_close;
    // Return type: the first non-qualifier identifier before the
    // (possibly `Class::`-scoped) name. Needed to resolve method
    // chains like `MetricsRegistry::Global().GetGauge(...)`.
    std::string return_class;
    {
      size_t limit = name_idx >= 1 ? name_idx - 1 : 0;  // the name itself
      if (name.size() > 0 && name[0] == '~' && limit > 0) --limit;
      if (limit >= 2 && t_[limit - 1].text == "::") limit -= 2;
      for (size_t k = i; k < limit; ++k) {
        if (IsIdent(t_[k]) && !IsTypeQualifier(t_[k].text)) {
          return_class = t_[k].text;
          break;
        }
      }
      if (return_class.empty() && !class_sname.empty() &&
          name == class_sname) {
        return_class = class_sname;  // constructor
      }
    }
    FunctionDef def;
    def.class_sname = class_sname;
    def.name = name;
    def.return_class = std::move(return_class);
    def.display = (class_sname.empty() ? "" : class_sname + "::") + name;
    def.key = def.display + "@" + rel_ + ":" + std::to_string(t_[body].line);
    def.file = file_;
    def.body_begin = body;
    def.body_end = body_close;
    def.line = t_[params_open].line;
    def.requires_exprs = requires_exprs;
    def.param_class = ParseParams(params_open, params_close + 1);
    prog_->functions.push_back(std::move(def));
    ++prog_->stats.functions;
    return body_close;
  }

  /// Member or namespace-scope variable declaration in [i, semi).
  void HandleVariable(size_t i, size_t semi, const std::string& class_qname) {
    // The declarator name is the last plain identifier before the first
    // attribute macro or initializer.
    size_t cut = semi;
    for (size_t j = i; j < semi; ++j) {
      if (t_[j].text == "=") {
        cut = j;
        break;
      }
      if (IsIdent(t_[j]) && IsAllCaps(t_[j].text) && j + 1 < semi &&
          t_[j + 1].text == "(") {
        cut = j;
        break;
      }
    }
    std::string name;
    for (size_t j = i; j < cut; ++j) {
      if (IsIdent(t_[j]) && !IsTypeQualifier(t_[j].text)) name = t_[j].text;
    }
    if (name.empty()) return;
    bool is_mutex = false;
    std::string type;
    bool in_template = false;
    for (size_t j = i; j < cut; ++j) {
      const std::string& s = t_[j].text;
      if (s == name && j + 1 >= cut) break;  // the declarator itself
      if (s == "<") in_template = true;
      if (s == ">") in_template = false;
      if (IsMutexTypeName(s) && !in_template) is_mutex = true;
      if (IsIdent(t_[j]) && !IsTypeQualifier(s) && s != name) type = s;
    }
    if (!class_qname.empty()) {
      ClassInfo& info = prog_->classes[class_qname];
      if (is_mutex) {
        info.mutex_members.insert(name);
      } else if (!type.empty()) {
        info.member_class[name] = type;
      }
    } else if (is_mutex) {
      prog_->global_mutexes[name] = NsPrefix() + name;
    }
  }

  Program* prog_;
  const std::vector<Token>& t_;
  size_t file_;
  std::string rel_;
  bool collect_functions_;
  std::vector<std::string> ns_;
};

// ---------------------------------------------------------------------------
// Body analysis: acquisition scopes, call sites, direct nesting edges
// ---------------------------------------------------------------------------

class BodyAnalyzer {
 public:
  BodyAnalyzer(Program* prog, const FunctionDef& def, EdgeSink* sink)
      : prog_(prog),
        def_(def),
        sink_(sink),
        t_(prog->code_tokens[def.file]),
        rel_((*prog->files)[def.file].rel) {}

  void Run() {
    locals_ = def_.param_class;
    // TELEIOS_REQUIRES mutexes are held across the whole body. They
    // seed `held` (edges to anything acquired inside) but not the
    // function's own acquired-set — the caller did that acquiring.
    for (const auto& expr : MergedRequires()) {
      std::string node = ResolveMutexExpr(expr);
      if (!node.empty()) held_.push_back({node, {rel_, def_.line}, 0});
    }
    Walk();
  }

 private:
  std::vector<std::vector<std::string>> MergedRequires() const {
    std::vector<std::vector<std::string>> out = def_.requires_exprs;
    if (!def_.class_sname.empty()) {
      const ClassInfo* cls = ClassByShort(def_.class_sname);
      if (cls != nullptr) {
        auto it = cls->requires_decl.find(def_.name);
        if (it != cls->requires_decl.end()) {
          out.insert(out.end(), it->second.begin(), it->second.end());
        }
      }
    }
    return out;
  }

  const ClassInfo* ClassByShort(const std::string& sname) const {
    auto it = prog_->classes_by_short.find(sname);
    if (it == prog_->classes_by_short.end() || it->second.size() != 1) {
      return nullptr;
    }
    return &prog_->classes.at(it->second.front());
  }

  bool ClassHasMutexMember(const ClassInfo* cls, const std::string& member,
                           std::string* owner, int depth = 0) const {
    if (cls == nullptr || depth > 8) return false;
    if (cls->mutex_members.count(member)) {
      *owner = cls->sname;
      return true;
    }
    for (const auto& base : cls->bases) {
      if (ClassHasMutexMember(ClassByShort(base), member, owner, depth + 1)) {
        return true;
      }
    }
    return false;
  }

  std::string TypeOf(const std::string& var) const {
    auto lit = locals_.find(var);
    if (lit != locals_.end()) return lit->second;
    const ClassInfo* cls = ClassByShort(def_.class_sname);
    if (cls != nullptr) {
      auto mit = cls->member_class.find(var);
      if (mit != cls->member_class.end()) return mit->second;
    }
    return "";
  }

  /// Maps a lock expression to a graph node: "Class::member",
  /// "ns::global", "Fn()" for static-factory mutexes, or a
  /// function-local fallback that cannot alias across functions.
  std::string ResolveMutexExpr(const std::vector<std::string>& expr) {
    // `Fn()` / `Class::Fn()`: a function returning a static mutex; the
    // last identifier names the node so qualified and unqualified call
    // sites agree.
    if (expr.size() >= 2 && expr[expr.size() - 2] == "(" &&
        expr.back() == ")") {
      for (size_t k = expr.size() - 2; k-- > 0;) {
        const std::string& s = expr[k];
        if (!s.empty() && (std::isalpha(static_cast<unsigned char>(s[0])) ||
                           s[0] == '_')) {
          return s + "()";
        }
      }
      return "";
    }
    std::vector<std::string> e;
    for (const auto& s : expr) {
      if (s == "*" || s == "&" || s == "(" || s == ")" || s == "this" ||
          s == "." || s == "-" || s == ">" || s == "::") {
        continue;
      }
      e.push_back(s);
    }
    if (e.empty()) return "";
    const std::string& last = e.back();
    if (e.size() == 1) {
      std::string owner;
      if (ClassHasMutexMember(ClassByShort(def_.class_sname), last, &owner)) {
        return owner + "::" + last;
      }
      auto sit = static_locals_.find(last);
      if (sit != static_locals_.end()) return sit->second;
      auto git = prog_->global_mutexes.find(last);
      if (git != prog_->global_mutexes.end()) return git->second;
      // A mutex parameter or unresolvable local: function-local node.
      return def_.key + "::" + last;
    }
    // Receiver chain `x.mu` / `x->mu` / `A::mu`.
    const std::string& recv = e[e.size() - 2];
    std::string type = TypeOf(recv);
    if (type.empty() && prog_->classes_by_short.count(recv)) type = recv;
    std::string owner;
    if (!type.empty() && ClassHasMutexMember(ClassByShort(type), last, &owner)) {
      return owner + "::" + last;
    }
    // Unique-member heuristic: exactly one class anywhere has a mutex
    // member with this name.
    std::string unique_owner;
    for (const auto& [qname, cls] : prog_->classes) {
      (void)qname;
      if (cls.mutex_members.count(last)) {
        if (!unique_owner.empty()) {
          unique_owner.clear();
          break;
        }
        unique_owner = cls.sname;
      }
    }
    if (!unique_owner.empty()) return unique_owner + "::" + last;
    std::string flat;
    for (const auto& s : e) flat += flat.empty() ? s : "." + s;
    return def_.key + "::" + flat;
  }

  std::string CallerKey() const {
    return lambda_.empty() ? def_.key
                           : def_.key + "::lambda@" +
                                 std::to_string(lambda_.back().line);
  }

  /// Return-type class of the call whose callee identifier is at
  /// `idx` — resolves `Fn` in `Fn(...)`, `Class::Fn(...)`, or a bare
  /// same-class method. "" when unknown (or a deeper chain).
  std::string ReturnClassOf(size_t idx) const {
    const std::string& callee = t_[idx].text;
    std::vector<size_t> defs;
    if (idx >= 2 && t_[idx - 1].text == "::" && IsIdent(t_[idx - 2])) {
      auto mit = prog_->methods_by_class.find({t_[idx - 2].text, callee});
      if (mit != prog_->methods_by_class.end()) defs = mit->second;
    } else if (idx >= 1 && (t_[idx - 1].text == "." ||
                            t_[idx - 1].text == ">")) {
      return "";  // a chain deeper than one hop
    } else {
      if (!def_.class_sname.empty()) {
        auto mit = prog_->methods_by_class.find({def_.class_sname, callee});
        if (mit != prog_->methods_by_class.end()) defs = mit->second;
      }
      if (defs.empty()) {
        auto fit = prog_->functions_by_name.find(callee);
        if (fit != prog_->functions_by_name.end() &&
            fit->second.size() == 1) {
          defs = fit->second;
        }
      }
    }
    for (size_t d : defs) {
      const std::string& rc = prog_->functions[d].return_class;
      if (!rc.empty() && prog_->classes_by_short.count(rc)) return rc;
    }
    return "";
  }

  struct LambdaCtx {
    int depth = 0;  // brace depth of the lambda body
    int line = 0;
    std::vector<Hold> saved;
  };

  void Walk() {
    int depth = 1;  // inside the body '{'
    bool pending_lambda = false;
    int pending_lambda_line = 0;
    for (size_t i = def_.body_begin + 1; i + 1 < def_.body_end; ++i) {
      const std::string& s = t_[i].text;
      if (s == "{") {
        ++depth;
        if (pending_lambda) {
          lambda_.push_back({depth, pending_lambda_line, std::move(held_)});
          held_.clear();
          pending_lambda = false;
        }
        continue;
      }
      if (s == "}") {
        if (!lambda_.empty() && lambda_.back().depth == depth) {
          held_ = std::move(lambda_.back().saved);
          lambda_.pop_back();
        }
        --depth;
        while (!held_.empty() && held_.back().depth > depth) held_.pop_back();
        continue;
      }
      // Lambda introducer: `[caps] (params) {` — bodies are analyzed
      // with an empty held-set (they usually run on another thread), so
      // a lock held at the definition site produces no edge into them.
      if (s == "[" && i > def_.body_begin + 1) {
        const std::string& prev = t_[i - 1].text;
        if (prev == "(" || prev == "," || prev == "=" || prev == ";" ||
            prev == "{" || prev == "}" || prev == "return") {
          size_t close = MatchForward(t_, i, "[", "]");
          size_t after = close;
          if (after < t_.size() && t_[after].text == "(") {
            after = MatchForward(t_, after, "(", ")");
          }
          if (after < t_.size() &&
              (t_[after].text == "{" || t_[after].text == "mutable" ||
               t_[after].text == "noexcept" || t_[after].text == "-")) {
            pending_lambda = true;
            pending_lambda_line = t_[i].line;
          }
          i = close - 1;
          continue;
        }
      }
      // Scoped acquisition: `MutexLock name(expr);`
      if (IsScopedLockName(s) && i + 2 < def_.body_end &&
          IsIdent(t_[i + 1]) && t_[i + 2].text == "(") {
        size_t close = MatchForward(t_, i + 2, "(", ")");
        std::vector<std::string> expr;
        for (size_t k = i + 3; k + 1 < close; ++k) expr.push_back(t_[k].text);
        std::string node = ResolveMutexExpr(expr);
        if (!node.empty()) {
          Site site{rel_, t_[i].line};
          ++prog_->stats.lock_sites;
          for (const Hold& h : held_) {
            sink_->Add(h.node, node, {h.site, site});
          }
          if (lambda_.empty()) {
            auto& slot = prog_->direct[def_.key];
            if (!slot.count(node)) slot[node] = {site};
          }
          held_.push_back({node, site, depth});
        }
        i = close - 1;
        continue;
      }
      // `static Mutex name;` — a function-local node.
      if (s == "static" && i + 2 < def_.body_end &&
          IsMutexTypeName(t_[i + 1].text) && IsIdent(t_[i + 2])) {
        static_locals_[t_[i + 2].text] = def_.key + "::" + t_[i + 2].text;
        continue;
      }
      // Local declarations with a class type: `Worker* w = ...`.
      if (IsIdent(t_[i]) && !IsTypeQualifier(s) && !IsControlKeyword(s)) {
        size_t k = i + 1;
        while (k < def_.body_end && (t_[k].text == "*" || t_[k].text == "&")) {
          ++k;
        }
        if (k > i + 1 || (k < def_.body_end && IsIdent(t_[k]))) {
          // `=` / `;` for plain declarations, `:` for range-for, `,`
          // for multi-declarator and structured call args.
          if (k + 1 < def_.body_end && IsIdent(t_[k]) &&
              (t_[k + 1].text == "=" || t_[k + 1].text == ";" ||
               t_[k + 1].text == ":" || t_[k + 1].text == ")") &&
              prog_->classes_by_short.count(s)) {
            locals_[t_[k].text] = s;
          }
        }
      }
      // Call sites.
      if (IsIdent(t_[i]) && i + 1 < def_.body_end && t_[i + 1].text == "(" &&
          !IsControlKeyword(s) && !IsAllCaps(s) && !IsTypeQualifier(s) &&
          !IsScopedLockName(s) && s != "operator") {
        const std::string& prev = t_[i - 1].text;
        CallRec rec;
        rec.caller = CallerKey();
        rec.caller_class = def_.class_sname;
        rec.name = s;
        rec.site = {rel_, t_[i].line};
        rec.held = held_;
        if (prev == "." || (prev == ">" && i >= 2 && t_[i - 2].text == "-")) {
          rec.kind = CallKind::kReceiver;
          size_t r = prev == "." ? i - 2 : i - 3;
          if (r < t_.size() && t_[r].text == "]") {
            int bd = 0;  // `xs[k]->f(`: walk back over the subscript
            while (r > 0) {
              if (t_[r].text == "]") ++bd;
              if (t_[r].text == "[" && --bd == 0) {
                --r;
                break;
              }
              --r;
            }
          }
          if (r < t_.size() && t_[r].text == ")") {
            // Method chain `F(...).g(`: the receiver is F's return.
            int pd = 0;
            size_t q = r;
            while (q > 0) {
              if (t_[q].text == ")") ++pd;
              if (t_[q].text == "(" && --pd == 0) break;
              --q;
            }
            if (q > 0 && IsIdent(t_[q - 1])) {
              rec.recv_type = ReturnClassOf(q - 1);
            }
          } else if (r < t_.size() && IsIdent(t_[r])) {
            rec.recv_type = TypeOf(t_[r].text);
          }
          if (rec.recv_type.empty()) continue;  // untyped receiver
        } else if (prev == "::") {
          if (i >= 2 && IsIdent(t_[i - 2])) {
            const std::string& scope = t_[i - 2].text;
            if (scope == "std") continue;
            if (prog_->classes_by_short.count(scope)) {
              rec.kind = CallKind::kQualified;
              rec.qual = scope;
            }  // else: ns-qualified free function, resolved as kBare
          } else {
            continue;  // `::socket(` — not ours
          }
        } else if (prev == "new") {
          // `new Foo(...)`: a constructor may itself take locks.
          if (!prog_->classes_by_short.count(s)) continue;
          rec.kind = CallKind::kQualified;
          rec.qual = s;
        } else if (IsIdent(t_[i - 1]) && !IsStmtKeyword(prev)) {
          continue;  // `Type name(...)` — a declaration, not a call
        } else if (prev == "*" || prev == "&" || prev == "~") {
          continue;
        }
        prog_->calls.push_back(std::move(rec));
      }
    }
  }

  Program* prog_;
  const FunctionDef& def_;
  EdgeSink* sink_;
  const std::vector<Token>& t_;
  std::string rel_;
  std::map<std::string, std::string> locals_;
  std::map<std::string, std::string> static_locals_;
  std::vector<Hold> held_;
  std::vector<LambdaCtx> lambda_;
};

// ---------------------------------------------------------------------------
// Interprocedural propagation + cycle detection
// ---------------------------------------------------------------------------

/// Function indices a call can land on; empty when unresolved. `sound`
/// is false when the set is a same-name guess not worth lock edges.
std::vector<size_t> ResolveCall(const Program& prog, const CallRec& call,
                                bool* sound) {
  *sound = true;
  std::vector<size_t> out;
  auto methods_of = [&](const std::string& sname, int depth,
                        auto&& self) -> void {
    if (depth > 8) return;
    auto mit = prog.methods_by_class.find({sname, call.name});
    if (mit != prog.methods_by_class.end()) {
      out.insert(out.end(), mit->second.begin(), mit->second.end());
    }
    // Virtual dispatch: any derived override may run.
    for (const auto& [qname, cls] : prog.classes) {
      (void)qname;
      for (const auto& base : cls.bases) {
        if (base == sname) self(cls.sname, depth + 1, self);
      }
    }
  };
  switch (call.kind) {
    case CallKind::kReceiver: {
      methods_of(call.recv_type, 0, methods_of);
      if (out.empty()) {
        // Inherited implementation: climb the base chain.
        auto cit = prog.classes_by_short.find(call.recv_type);
        if (cit != prog.classes_by_short.end() && cit->second.size() == 1) {
          for (const auto& base : prog.classes.at(cit->second.front()).bases) {
            auto mit = prog.methods_by_class.find({base, call.name});
            if (mit != prog.methods_by_class.end()) {
              out.insert(out.end(), mit->second.begin(), mit->second.end());
            }
          }
        }
      }
      return out;
    }
    case CallKind::kQualified: {
      auto mit = prog.methods_by_class.find({call.qual, call.name});
      if (mit != prog.methods_by_class.end()) out = mit->second;
      return out;
    }
    case CallKind::kBare: {
      if (!call.caller_class.empty()) {
        auto mit = prog.methods_by_class.find({call.caller_class, call.name});
        if (mit != prog.methods_by_class.end()) return mit->second;
      }
      auto fit = prog.functions_by_name.find(call.name);
      if (fit == prog.functions_by_name.end()) return out;
      if (fit->second.size() == 1) return fit->second;
      *sound = false;  // several unrelated same-name functions
      return fit->second;
    }
  }
  return out;
}

using AcquireMap =
    std::map<std::string, std::map<std::string, std::vector<Site>>>;

constexpr size_t kMaxWitness = 24;

void Propagate(const Program& prog, AcquireMap* acquires) {
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 64) {
    changed = false;
    for (const CallRec& call : prog.calls) {
      bool sound = true;
      std::vector<size_t> targets = ResolveCall(prog, call, &sound);
      if (!sound || targets.empty()) continue;
      for (size_t tid : targets) {
        auto tit = acquires->find(prog.functions[tid].key);
        if (tit == acquires->end()) continue;
        auto& mine = (*acquires)[call.caller];
        for (const auto& [node, chain] : tit->second) {
          if (mine.count(node) || chain.size() >= kMaxWitness) continue;
          std::vector<Site> path;
          path.push_back(call.site);
          path.insert(path.end(), chain.begin(), chain.end());
          mine[node] = std::move(path);
          changed = true;
        }
      }
    }
  }
}

void CollectCallEdges(const Program& prog, const AcquireMap& acquires,
                      EdgeSink* sink, Stats* stats) {
  for (const CallRec& call : prog.calls) {
    if (call.held.empty()) continue;
    bool sound = true;
    std::vector<size_t> targets = ResolveCall(prog, call, &sound);
    if (targets.empty()) continue;
    if (!sound) {
      ++stats->ambiguous_calls;
      continue;
    }
    for (size_t tid : targets) {
      auto tit = acquires.find(prog.functions[tid].key);
      if (tit == acquires.end()) continue;
      for (const auto& [node, chain] : tit->second) {
        for (const Hold& h : call.held) {
          std::vector<Site> witness;
          witness.push_back(h.site);
          witness.push_back(call.site);
          witness.insert(witness.end(), chain.begin(), chain.end());
          sink->Add(h.node, node, std::move(witness));
        }
      }
    }
  }
}

// Tarjan strongly-connected components (iterative).
class SccFinder {
 public:
  explicit SccFinder(const Graph& graph) : graph_(graph) {
    for (const auto& [node, out] : graph) {
      nodes_.insert(node);
      for (const auto& [to, e] : out) {
        (void)e;
        nodes_.insert(to);
      }
    }
  }

  std::vector<std::vector<std::string>> Run() {
    for (const auto& node : nodes_) {
      if (!index_.count(node)) Strongconnect(node);
    }
    return sccs_;
  }

 private:
  void Strongconnect(const std::string& root) {
    struct Frame {
      std::string node;
      std::vector<std::string> succ;
      size_t next = 0;
    };
    std::vector<Frame> stack;
    auto push = [&](const std::string& n) {
      index_[n] = lowlink_[n] = counter_++;
      tstack_.push_back(n);
      on_stack_.insert(n);
      Frame f;
      f.node = n;
      auto it = graph_.find(n);
      if (it != graph_.end()) {
        for (const auto& [to, e] : it->second) {
          (void)e;
          f.succ.push_back(to);
        }
      }
      stack.push_back(std::move(f));
    };
    push(root);
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < f.succ.size()) {
        const std::string& w = f.succ[f.next++];
        if (!index_.count(w)) {
          push(w);
        } else if (on_stack_.count(w)) {
          lowlink_[f.node] = std::min(lowlink_[f.node], index_[w]);
        }
      } else {
        if (lowlink_[f.node] == index_[f.node]) {
          std::vector<std::string> scc;
          while (true) {
            std::string w = tstack_.back();
            tstack_.pop_back();
            on_stack_.erase(w);
            scc.push_back(w);
            if (w == f.node) break;
          }
          if (scc.size() > 1) {
            std::sort(scc.begin(), scc.end());
            sccs_.push_back(std::move(scc));
          }
        }
        std::string done = f.node;
        stack.pop_back();
        if (!stack.empty()) {
          lowlink_[stack.back().node] =
              std::min(lowlink_[stack.back().node], lowlink_[done]);
        }
      }
    }
  }

  const Graph& graph_;
  std::set<std::string> nodes_;
  std::map<std::string, size_t> index_, lowlink_;
  std::vector<std::string> tstack_;
  std::set<std::string> on_stack_;
  std::vector<std::vector<std::string>> sccs_;
  size_t counter_ = 0;
};

/// Shortest cycle through the lexicographically-smallest node of `scc`
/// (deterministic over sorted adjacency maps).
std::vector<std::string> FindCycle(const Graph& graph,
                                   const std::vector<std::string>& scc) {
  const std::string& start = scc.front();  // scc is sorted
  std::set<std::string> in_scc(scc.begin(), scc.end());
  std::map<std::string, std::string> parent;
  std::vector<std::string> queue = {start};
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    std::string cur = queue[qi];
    auto it = graph.find(cur);
    if (it == graph.end()) continue;
    for (const auto& [to, e] : it->second) {
      (void)e;
      if (!in_scc.count(to)) continue;
      if (to == start) {
        std::vector<std::string> path = {start};
        std::vector<std::string> rev;
        for (std::string n = cur; n != start; n = parent.at(n)) {
          rev.push_back(n);
        }
        path.insert(path.end(), rev.rbegin(), rev.rend());
        path.push_back(start);
        return path;
      }
      if (!parent.count(to)) {
        parent[to] = cur;
        queue.push_back(to);
      }
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// Layering pass
// ---------------------------------------------------------------------------

void CheckLayering(const Program& prog, const LayerSpec& layers,
                   std::vector<Finding>* findings, Stats* stats) {
  std::set<std::string> reported;  // dedup by rule+message
  auto report = [&](const std::string& rule, const std::string& message,
                    std::vector<Site> witness) {
    if (!reported.insert(rule + message).second) return;
    findings->push_back({rule, message, std::move(witness)});
  };
  for (size_t fi = 0; fi < prog.files->size(); ++fi) {
    const SourceFile& file = (*prog.files)[fi];
    size_t slash = file.rel.find('/');
    if (slash == std::string::npos) continue;  // file at the root: no layer
    std::string dir = file.rel.substr(0, slash);
    bool dir_known = layers.rank.count(dir) > 0;
    if (!dir_known) {
      report("TA004",
             "directory '" + dir + "' is not declared in the layer spec",
             {{file.rel, 1}});
    }
    const std::vector<Token>& toks = prog.raw_tokens[fi];
    for (size_t i = 1; i < toks.size(); ++i) {
      const std::string& s = toks[i].text;
      if (toks[i - 1].text != "include" || s.size() < 2 || s.front() != '"') {
        continue;
      }
      std::string target = s.substr(1, s.size() - 2);
      size_t tslash = target.find('/');
      if (tslash == std::string::npos) continue;  // same-directory include
      std::string tdir = target.substr(0, tslash);
      ++stats->include_edges;
      if (!layers.rank.count(tdir)) {
        report("TA004",
               "include of '" + target + "' from " + dir + ": directory '" +
                   tdir + "' is not declared in the layer spec",
               {{file.rel, toks[i].line}});
        continue;
      }
      if (!dir_known || tdir == dir) continue;
      if (layers.allowed.count({dir, tdir})) continue;
      int from_rank = layers.rank.at(dir);
      int to_rank = layers.rank.at(tdir);
      if (to_rank > from_rank) {
        report("TA002",
               "layer inversion: " + dir + " (rank " +
                   std::to_string(from_rank) + ") includes \"" + target +
                   "\" from " + tdir + " (rank " + std::to_string(to_rank) +
                   ") — lower layers must not depend on higher ones",
               {{file.rel, toks[i].line}});
      } else if (to_rank == from_rank) {
        report("TA003",
               "peer coupling: " + dir + " includes \"" + target +
                   "\" from same-rank directory " + tdir +
                   " without an `allow " + dir + " " + tdir + "` edge",
               {{file.rel, toks[i].line}});
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

LayerSpecParse ParseLayerSpec(std::string_view text) {
  LayerSpecParse out;
  int rank = 0;
  size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    bool last = eol == std::string_view::npos;
    if (last) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    std::vector<std::string> words;
    std::string word;
    for (char c : line) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!word.empty()) words.push_back(word);
        word.clear();
      } else {
        word.push_back(c);
      }
    }
    if (!word.empty()) words.push_back(word);
    if (!words.empty()) {
      if (words[0] == "layer") {
        if (words.size() < 2) {
          out.error = "line " + std::to_string(line_no) +
                      ": `layer` needs at least one directory";
          return out;
        }
        for (size_t k = 1; k < words.size(); ++k) {
          if (out.spec.rank.count(words[k])) {
            out.error = "line " + std::to_string(line_no) + ": directory '" +
                        words[k] + "' declared twice";
            return out;
          }
          out.spec.rank[words[k]] = rank;
        }
        ++rank;
      } else if (words[0] == "allow") {
        if (words.size() != 3) {
          out.error = "line " + std::to_string(line_no) +
                      ": `allow` takes exactly <from> <to>";
          return out;
        }
        out.spec.allowed.insert({words[1], words[2]});
      } else {
        out.error = "line " + std::to_string(line_no) +
                    ": unknown directive '" + words[0] + "'";
        return out;
      }
    }
    if (last) break;
  }
  out.ok = true;
  return out;
}

Analysis Analyze(const std::vector<SourceFile>& files,
                 const LayerSpec& layers, const Options& options) {
  Analysis analysis;
  Program prog;
  prog.files = &files;
  prog.stats.files = files.size();

  for (const SourceFile& file : files) {
    lint::Tokenizer tok(file.content);
    tok.Run();
    prog.raw_tokens.push_back(tok.tokens());
    prog.code_tokens.push_back(StripDirectives(prog.raw_tokens.back()));
  }

  if (options.lock_order) {
    for (size_t fi = 0; fi < files.size(); ++fi) {
      StructureParser(&prog, fi, /*collect_functions=*/false).Parse();
    }
    for (size_t fi = 0; fi < files.size(); ++fi) {
      StructureParser(&prog, fi, /*collect_functions=*/true).Parse();
    }
    for (size_t idx = 0; idx < prog.functions.size(); ++idx) {
      const FunctionDef& fn = prog.functions[idx];
      prog.functions_by_name[fn.name].push_back(idx);
      if (!fn.class_sname.empty()) {
        prog.methods_by_class[{fn.class_sname, fn.name}].push_back(idx);
      }
    }
    Graph graph;
    EdgeSink sink{&graph, &prog.stats};
    for (const FunctionDef& def : prog.functions) {
      BodyAnalyzer(&prog, def, &sink).Run();
    }
    AcquireMap acquires = prog.direct;
    Propagate(prog, &acquires);
    CollectCallEdges(prog, acquires, &sink, &prog.stats);
    prog.stats.mutex_nodes = graph.size();
    for (const auto& [from, out] : graph) {
      (void)from;
      for (const auto& [to, e] : out) {
        (void)to;
        analysis.edges.push_back({e.from, e.to, e.witness});
      }
    }
    for (const auto& scc : SccFinder(graph).Run()) {
      std::vector<std::string> cycle = FindCycle(graph, scc);
      if (cycle.empty()) continue;
      std::string message = "lock-order cycle: ";
      std::vector<Site> witness;
      for (size_t k = 0; k + 1 < cycle.size(); ++k) {
        message += cycle[k] + " -> ";
        const Edge& e = graph.at(cycle[k]).at(cycle[k + 1]);
        witness.insert(witness.end(), e.witness.begin(), e.witness.end());
      }
      message += cycle.back();
      analysis.findings.push_back({"TA001", message, std::move(witness)});
    }
  }

  if (options.layering) {
    CheckLayering(prog, layers, &analysis.findings, &prog.stats);
  }

  std::sort(analysis.findings.begin(), analysis.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  analysis.stats = prog.stats;
  return analysis;
}

}  // namespace teleios::analyze
