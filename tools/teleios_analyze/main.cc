// teleios_analyze CLI: whole-tree lock-order + layering analysis.
//
//   teleios_analyze [--layers FILE] [--json] [--no-lock-order]
//                   [--no-layering] ROOT
//
// Scans every *.h / *.cc under ROOT (sorted by relative path, so output
// is deterministic), runs both passes, and prints findings with their
// witness chains. Exit status: 0 clean, 1 findings, 2 usage/IO error.
// --json emits machine-readable stats + findings + wall_ms for the
// experiment harness.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.h"

namespace fs = std::filesystem;
using teleios::analyze::Analysis;
using teleios::analyze::Finding;
using teleios::analyze::LayerSpecParse;
using teleios::analyze::Options;
using teleios::analyze::SourceFile;

namespace {

int Usage() {
  std::cerr << "usage: teleios_analyze [--layers FILE] [--json] [--edges]"
               " [--no-lock-order] [--no-layering] ROOT\n";
  return 2;
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void PrintJson(const Analysis& analysis, long long wall_ms) {
  const auto& st = analysis.stats;
  std::cout << "{\n  \"wall_ms\": " << wall_ms << ",\n  \"stats\": {"
            << "\"files\": " << st.files << ", \"classes\": " << st.classes
            << ", \"functions\": " << st.functions
            << ", \"mutex_nodes\": " << st.mutex_nodes
            << ", \"lock_sites\": " << st.lock_sites
            << ", \"edges\": " << st.edges
            << ", \"self_edges\": " << st.self_edges
            << ", \"ambiguous_calls\": " << st.ambiguous_calls
            << ", \"include_edges\": " << st.include_edges << "},\n"
            << "  \"findings\": [";
  for (size_t i = 0; i < analysis.findings.size(); ++i) {
    const Finding& f = analysis.findings[i];
    std::cout << (i ? ",\n    " : "\n    ") << "{\"rule\": \"" << f.rule
              << "\", \"message\": \"" << JsonEscape(f.message)
              << "\", \"witness\": [";
    for (size_t w = 0; w < f.witness.size(); ++w) {
      std::cout << (w ? ", " : "") << "\"" << JsonEscape(f.witness[w].file)
                << ":" << f.witness[w].line << "\"";
    }
    std::cout << "]}";
  }
  std::cout << (analysis.findings.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

void PrintText(const Analysis& analysis, long long wall_ms) {
  for (const Finding& f : analysis.findings) {
    std::cout << f.rule << ": " << f.message << "\n";
    for (const auto& site : f.witness) {
      std::cout << "    at " << site.file << ":" << site.line << "\n";
    }
  }
  const auto& st = analysis.stats;
  std::cout << "teleios_analyze: " << st.files << " files, " << st.classes
            << " classes, " << st.functions << " functions, "
            << st.mutex_nodes << " lock nodes, " << st.lock_sites
            << " lock sites, " << st.edges << " order edges ("
            << st.self_edges << " self, " << st.ambiguous_calls
            << " ambiguous calls skipped), " << st.include_edges
            << " include edges; " << analysis.findings.size()
            << " finding(s) in " << wall_ms << " ms\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg, layers_arg;
  bool json = false;
  bool dump_edges = false;
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--layers") {
      if (++i >= argc) return Usage();
      layers_arg = argv[i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--edges") {
      dump_edges = true;
    } else if (arg == "--no-lock-order") {
      options.lock_order = false;
    } else if (arg == "--no-layering") {
      options.layering = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (root_arg.empty()) {
      root_arg = arg;
    } else {
      return Usage();
    }
  }
  if (root_arg.empty()) return Usage();

  fs::path root(root_arg);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::cerr << "teleios_analyze: not a directory: " << root_arg << "\n";
    return 2;
  }

  teleios::analyze::LayerSpec layers;
  fs::path layers_path =
      layers_arg.empty() ? root / "layers.txt" : fs::path(layers_arg);
  if (!layers_arg.empty() || fs::exists(layers_path, ec)) {
    std::string text;
    if (!ReadFile(layers_path, &text)) {
      std::cerr << "teleios_analyze: cannot read layer spec: "
                << layers_path.string() << "\n";
      return 2;
    }
    LayerSpecParse parsed = teleios::analyze::ParseLayerSpec(text);
    if (!parsed.ok) {
      std::cerr << "teleios_analyze: " << layers_path.string() << ": "
                << parsed.error << "\n";
      return 2;
    }
    layers = parsed.spec;
  } else {
    options.layering = false;  // no spec anywhere: nothing to check
  }

  std::vector<SourceFile> files;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file(ec)) continue;
    fs::path p = it->path();
    if (p.extension() != ".h" && p.extension() != ".cc") continue;
    SourceFile file;
    file.rel = fs::relative(p, root, ec).generic_string();
    if (!ReadFile(p, &file.content)) {
      std::cerr << "teleios_analyze: cannot read " << p.string() << "\n";
      return 2;
    }
    files.push_back(std::move(file));
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });

  auto t0 = std::chrono::steady_clock::now();
  Analysis analysis = teleios::analyze::Analyze(files, layers, options);
  auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();

  if (dump_edges) {
    for (const auto& e : analysis.edges) {
      std::cout << "edge: " << e.from << " -> " << e.to;
      for (const auto& site : e.witness) {
        std::cout << "  " << site.file << ":" << site.line;
      }
      std::cout << "\n";
    }
  }
  if (json) {
    PrintJson(analysis, wall_ms);
  } else {
    PrintText(analysis, wall_ms);
  }
  return analysis.findings.empty() ? 0 : 1;
}
