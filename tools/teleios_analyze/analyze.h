#ifndef TELEIOS_TOOLS_TELEIOS_ANALYZE_ANALYZE_H_
#define TELEIOS_TOOLS_TELEIOS_ANALYZE_ANALYZE_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// teleios_analyze: whole-tree static analysis. Unlike teleios_lint
/// (per-file boundary rules), this tool ingests every TU under a root
/// at once and checks two cross-file invariants that no single file can
/// witness:
///
///   TA001 lock-order cycle
///       The held->acquired relation over all teleios::Mutex /
///       SharedMutex capabilities must be acyclic. Acquisition sequences
///       are extracted per scope from MutexLock / WriterMutexLock /
///       ReaderMutexLock sites and TELEIOS_REQUIRES annotations, then
///       propagated interprocedurally over resolved call edges (same
///       class, unique global name, or the static type of the receiver
///       member/local, including virtual overrides). A cycle is reported
///       with the full witness path: for every edge, the file:line where
///       the first mutex was taken and the chain of call sites leading
///       to the second acquisition.
///   TA002 layer inversion
///       An #include from a lower-ranked directory into a higher-ranked
///       one, per the declared layer DAG (layers.txt).
///   TA003 peer coupling
///       An #include between two directories of the same rank that is
///       not an explicit `allow` edge: same-layer peers must stay
///       independent.
///   TA004 undeclared directory
///       A scanned file lives in (or includes into) a directory the
///       layer spec does not declare — the DAG must stay total.
///
/// Known static blind spots, by design (the runtime validator in
/// common/deadlock.h covers them): callbacks through std::function,
/// work deferred to the thread pool (lambda bodies are analyzed with an
/// empty held-set, since they usually run on another thread), and
/// same-class parent/child chains (two instances of one class map to
/// one graph node, so such edges are excluded as self-edges rather than
/// reported as cycles).
namespace teleios::analyze {

struct Site {
  std::string file;  // path relative to the scanned root
  int line = 0;      // 1-based
};

struct Finding {
  std::string rule;     // "TA001" ... "TA004"
  std::string message;  // one-line summary naming the cycle / edge
  std::vector<Site> witness;  // file:line chain proving the finding
};

/// The declared layer DAG. Directories on the same `layer` line share a
/// rank; a file may include strictly-lower ranks (and its own
/// directory). `allow from to` whitelists one extra directed edge.
struct LayerSpec {
  std::map<std::string, int> rank;  // directory -> rank, 0 = bottom
  std::set<std::pair<std::string, std::string>> allowed;
};

struct LayerSpecParse {
  bool ok = false;
  std::string error;
  LayerSpec spec;
};

/// Parses the layers.txt format:
///   # comment
///   layer common
///   layer geo array relational rdf
///   allow mining linkeddata
LayerSpecParse ParseLayerSpec(std::string_view text);

struct SourceFile {
  std::string rel;      // path relative to the scanned root ("io/wal.cc")
  std::string content;  // full source text
};

struct Options {
  bool lock_order = true;
  bool layering = true;
};

struct Stats {
  size_t files = 0;
  size_t classes = 0;
  size_t functions = 0;
  size_t mutex_nodes = 0;   // distinct lock-graph nodes ever acquired
  size_t lock_sites = 0;    // scoped-lock acquisition sites
  size_t edges = 0;         // held->acquired edges (self-edges excluded)
  size_t self_edges = 0;    // class-level self edges left to the runtime check
  size_t ambiguous_calls = 0;  // call sites skipped: >1 lock-relevant target
  size_t include_edges = 0;    // quoted project includes seen
};

/// One held->acquired edge of the final lock graph (for diagnostics
/// and the `--edges` CLI dump; cycles are reported as TA001 findings).
struct EdgeInfo {
  std::string from, to;
  std::vector<Site> witness;
};

struct Analysis {
  std::vector<Finding> findings;  // sorted by rule, then message
  std::vector<EdgeInfo> edges;    // lock-order graph, sorted by from/to
  Stats stats;
};

/// Runs both passes over the whole file set. Deterministic for a given
/// file order; callers should pass files sorted by `rel`.
Analysis Analyze(const std::vector<SourceFile>& files,
                 const LayerSpec& layers, const Options& options);

}  // namespace teleios::analyze

#endif  // TELEIOS_TOOLS_TELEIOS_ANALYZE_ANALYZE_H_
