// teleios_lint driver: lints the given files (or every *.h/*.cc under
// the given directories) and exits non-zero when any rule fires.
//
// The tool itself lives outside src/, so it may use std::filesystem and
// std::ifstream directly — the TL001 boundary rule is about production
// code going through the fault-injectable io::FileSystem seam, which a
// build-time tool has no reason to do.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

void Collect(const std::string& arg, std::vector<std::string>* files) {
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    for (fs::recursive_directory_iterator it(arg, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
        files->push_back(it->path().generic_string());
      }
    }
  } else {
    files->push_back(arg);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: teleios_lint <file-or-dir>...\n";
    return 2;
  }
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) Collect(argv[i], &files);
  std::sort(files.begin(), files.end());

  size_t total = 0;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << path << ": cannot read\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    for (const auto& finding : teleios::lint::LintSource(path, content)) {
      std::cout << path << ":" << finding.line << ": [" << finding.rule
                << "] " << finding.message << "\n";
      ++total;
    }
  }
  if (total > 0) {
    std::cout << "teleios_lint: " << total << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "teleios_lint: clean (" << files.size() << " files)\n";
  return 0;
}
