#include "lint.h"

#include <algorithm>
#include <cctype>

namespace teleios::lint {

void Tokenizer::Run() {
  while (pos_ < src_.size()) {
    char c = src_[pos_];
    if (c == '\n') {
      ++line_;
      ++pos_;
      continue;
    }
    if (c == '/' && Peek(1) == '/') {
      ScanLineComment();
      continue;
    }
    if (c == '/' && Peek(1) == '*') {
      ScanBlockComment();
      continue;
    }
    // Include targets come before the literal branches: `"dir/file.h"`
    // after `include` must survive as a token, not vanish as a string.
    if ((c == '<' || c == '"') && !tokens_.empty() &&
        tokens_.back().text == "include") {
      ScanIncludeTarget(c == '<' ? '>' : '"');
      continue;
    }
    if (c == '"' && pos_ >= 1 && src_[pos_ - 1] == 'R') {
      ScanRawString();
      continue;
    }
    if (c == '"' || c == '\'') {
      ScanLiteral(c);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      ScanIdentifier();
      continue;
    }
    if (c == ':' && Peek(1) == ':') {
      tokens_.push_back({"::", line_});
      pos_ += 2;
      continue;
    }
    if (c == '.' && Peek(1) == '.' && Peek(2) == '.') {
      tokens_.push_back({"...", line_});
      pos_ += 3;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) {
      tokens_.push_back({std::string(1, c), line_});
    }
    ++pos_;
  }
}

void Tokenizer::RecordSuppressions(std::string_view comment, int line) {
  size_t at = comment.find("teleios-lint:");
  if (at == std::string_view::npos) return;
  size_t open = comment.find("allow(", at);
  if (open == std::string_view::npos) return;
  size_t close = comment.find(')', open);
  if (close == std::string_view::npos) return;
  std::string_view rules = comment.substr(open + 6, close - open - 6);
  std::string id;
  for (char c : rules) {
    if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
      if (!id.empty()) suppressions_[line].insert(id);
      id.clear();
    } else {
      id.push_back(c);
    }
  }
  if (!id.empty()) suppressions_[line].insert(id);
}

void Tokenizer::ScanLineComment() {
  size_t end = src_.find('\n', pos_);
  if (end == std::string_view::npos) end = src_.size();
  RecordSuppressions(src_.substr(pos_, end - pos_), line_);
  pos_ = end;
}

void Tokenizer::ScanBlockComment() {
  int start_line = line_;
  size_t end = src_.find("*/", pos_ + 2);
  if (end == std::string_view::npos) end = src_.size();
  std::string_view body = src_.substr(pos_, end - pos_);
  RecordSuppressions(body, start_line);
  line_ += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
  pos_ = end == src_.size() ? end : end + 2;
}

void Tokenizer::ScanRawString() {
  // R"delim( ... )delim"
  size_t open = src_.find('(', pos_);
  if (open == std::string_view::npos) {
    pos_ = src_.size();
    return;
  }
  std::string delim(src_.substr(pos_ + 1, open - pos_ - 1));
  std::string closer = ")" + delim + "\"";
  size_t end = src_.find(closer, open);
  if (end == std::string_view::npos) end = src_.size();
  std::string_view body = src_.substr(pos_, end - pos_);
  line_ += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
  pos_ = std::min(end + closer.size(), src_.size());
}

void Tokenizer::ScanLiteral(char quote) {
  ++pos_;
  while (pos_ < src_.size()) {
    char c = src_[pos_];
    if (c == '\\') {
      pos_ += 2;
      continue;
    }
    if (c == '\n') ++line_;
    ++pos_;
    if (c == quote) break;
  }
}

void Tokenizer::ScanIdentifier() {
  size_t start = pos_;
  while (pos_ < src_.size() &&
         (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
          src_[pos_] == '_')) {
    ++pos_;
  }
  tokens_.push_back({std::string(src_.substr(start, pos_ - start)), line_});
}

void Tokenizer::ScanIncludeTarget(char closer) {
  size_t end = src_.find(closer, pos_ + 1);
  size_t nl = src_.find('\n', pos_);
  if (end == std::string_view::npos ||
      (nl != std::string_view::npos && nl < end)) {
    // Malformed; treat the opener as ordinary punctuation.
    tokens_.push_back({std::string(1, src_[pos_]), line_});
    ++pos_;
    return;
  }
  tokens_.push_back({std::string(src_.substr(pos_, end - pos_ + 1)), line_});
  pos_ = end + 1;
}

namespace {

bool IsMutexType(const std::vector<Token>& toks, size_t i, size_t* len) {
  // std::mutex | std::shared_mutex | std::recursive_mutex
  if (i + 2 < toks.size() && toks[i].text == "std" &&
      toks[i + 1].text == "::" &&
      (toks[i + 2].text == "mutex" || toks[i + 2].text == "shared_mutex" ||
       toks[i + 2].text == "recursive_mutex")) {
    *len = 3;
    return true;
  }
  // teleios::Mutex | teleios::SharedMutex
  if (i + 2 < toks.size() && toks[i].text == "teleios" &&
      toks[i + 1].text == "::" &&
      (toks[i + 2].text == "Mutex" || toks[i + 2].text == "SharedMutex")) {
    *len = 3;
    return true;
  }
  // Bare Mutex / SharedMutex (the annotated wrappers).
  if (toks[i].text == "Mutex" || toks[i].text == "SharedMutex") {
    *len = 1;
    return true;
  }
  return false;
}

bool IsIdent(const Token& t) {
  return !t.text.empty() &&
         (std::isalpha(static_cast<unsigned char>(t.text[0])) ||
          t.text[0] == '_');
}

/// Identifier-shaped tokens that can legally precede `::` without
/// naming a namespace or class (`return ::socket(...)`).
bool IsKeyword(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "return", "case",      "throw",    "else",     "do",
      "goto",   "new",       "delete",   "co_return", "co_await",
      "co_yield"};
  return kKeywords.count(text) > 0;
}

/// Rule IDs this linter can emit; a suppression naming anything else is
/// a typo (TL007).
bool IsKnownRule(const std::string& rule) {
  static const std::set<std::string> kRules = {
      "TL001", "TL002", "TL003", "TL004", "TL005", "TL006", "TL007"};
  return kRules.count(rule) > 0;
}

struct Scope {
  bool is_class = false;
  bool has_guarded_by = false;
  std::vector<int> mutex_member_lines;
};

}  // namespace

bool HasDirComponent(const std::string& path, const std::string& dir) {
  // Segment-exact match: `src/ioutil/f.cc` must NOT have component "io",
  // and the trailing segment is a filename, never a directory. Empty
  // segments from duplicate separators (`src//io//f.cc`) and a leading
  // `./` fall out naturally (`""` and `"."` never equal a rule dir).
  if (dir.empty()) return false;
  size_t start = 0;
  while (start < path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string::npos) break;  // final segment: the filename
    if (path.compare(start, end - start, dir) == 0) return true;
    start = end + 1;
  }
  return false;
}

std::vector<Finding> LintSource(const std::string& path,
                                std::string_view content) {
  Tokenizer scanner(content);
  scanner.Run();
  const std::vector<Token>& toks = scanner.tokens();
  const auto& suppressions = scanner.suppressions();

  bool io_exempt = HasDirComponent(path, "io");
  bool exec_exempt = HasDirComponent(path, "exec");
  bool governor_exempt = HasDirComponent(path, "governor");
  bool server_exempt = HasDirComponent(path, "server");

  std::vector<Finding> findings;
  std::set<std::pair<int, std::string>> seen;  // (line, rule) dedup
  // (suppression line, rule) pairs that actually suppressed a finding —
  // the complement feeds TL007.
  std::set<std::pair<int, std::string>> used;
  auto report = [&](const std::string& rule, int line,
                    const std::string& message) {
    for (int l : {line, line - 1}) {
      auto it = suppressions.find(l);
      if (it != suppressions.end() && it->second.count(rule)) {
        used.insert({l, rule});
        return;
      }
    }
    if (!seen.insert({line, rule}).second) return;
    findings.push_back({rule, line, message});
  };

  std::vector<Scope> scopes;
  bool pending_class = false;
  bool in_template = false;
  int template_angle = 0;

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];

    // Template headers: `template <class T>` must not look like a class
    // definition.
    if (tok.text == "template") {
      in_template = true;
      template_angle = 0;
      continue;
    }
    if (in_template) {
      if (tok.text == "<") ++template_angle;
      if (tok.text == ">" && --template_angle <= 0) in_template = false;
      if (tok.text == "{" || tok.text == ";") in_template = false;
      if (in_template) continue;
    }

    // --- scope tracking (for TL002) ------------------------------------
    if ((tok.text == "class" || tok.text == "struct") &&
        (i == 0 || toks[i - 1].text != "enum")) {
      pending_class = true;
    } else if (tok.text == ";" && pending_class) {
      pending_class = false;  // forward declaration
    } else if (tok.text == "{") {
      Scope scope;
      scope.is_class = pending_class;
      scopes.push_back(scope);
      pending_class = false;
    } else if (tok.text == "}") {
      if (!scopes.empty()) {
        Scope done = scopes.back();
        scopes.pop_back();
        if (done.is_class && !done.has_guarded_by) {
          for (int line : done.mutex_member_lines) {
            report("TL002", line,
                   "mutex member in a class with no TELEIOS_GUARDED_BY "
                   "member: annotate what it guards (or suppress if it "
                   "guards external state)");
          }
        }
      }
    }

    if (tok.text == "TELEIOS_GUARDED_BY" && !scopes.empty() &&
        scopes.back().is_class) {
      scopes.back().has_guarded_by = true;
    }

    // Mutex-typed member: `Mutex name_;` directly inside a class body.
    size_t type_len = 0;
    if (!scopes.empty() && scopes.back().is_class &&
        IsMutexType(toks, i, &type_len) && i + type_len + 1 < toks.size() &&
        IsIdent(toks[i + type_len]) &&
        toks[i + type_len + 1].text == ";") {
      scopes.back().mutex_member_lines.push_back(tok.line);
    }

    // --- TL001: raw I/O outside src/io/ --------------------------------
    if (!io_exempt) {
      if (i + 2 < toks.size() && tok.text == "std" &&
          toks[i + 1].text == "::" &&
          (toks[i + 2].text == "ofstream" || toks[i + 2].text == "ifstream" ||
           toks[i + 2].text == "fstream" ||
           toks[i + 2].text == "filesystem")) {
        report("TL001", tok.line,
               "raw file I/O (std::" + toks[i + 2].text +
                   ") outside src/io/: route through io::FileSystem so "
                   "fault injection covers it");
      }
      if ((tok.text == "fopen" || tok.text == "freopen" ||
           tok.text == "tmpfile") &&
          i + 1 < toks.size() && toks[i + 1].text == "(" &&
          (i == 0 || toks[i - 1].text != "::")) {
        report("TL001", tok.line,
               "raw file I/O (" + tok.text +
                   ") outside src/io/: route through io::FileSystem so "
                   "fault injection covers it");
      }
      if ((tok.text == "<fstream>" || tok.text == "<filesystem>") &&
          i >= 1 && toks[i - 1].text == "include") {
        report("TL001", tok.line,
               "#include " + tok.text +
                   " outside src/io/: route through io::FileSystem so "
                   "fault injection covers it");
      }
    }

    // --- TL003: raw threads outside src/exec/ --------------------------
    if (!exec_exempt && i + 2 < toks.size() && tok.text == "std" &&
        toks[i + 1].text == "::" && toks[i + 2].text == "thread") {
      report("TL003", tok.line,
             "std::thread outside src/exec/: all parallelism goes through "
             "exec::ThreadPool so TELEIOS_THREADS=1 means serial");
    }

    // --- TL004: catch (...) that swallows ------------------------------
    if (tok.text == "catch" && i + 4 < toks.size() &&
        toks[i + 1].text == "(" && toks[i + 2].text == "..." &&
        toks[i + 3].text == ")" && toks[i + 4].text == "{") {
      int depth = 0;
      bool handled = false;
      for (size_t j = i + 4; j < toks.size(); ++j) {
        if (toks[j].text == "{") ++depth;
        if (toks[j].text == "}" && --depth == 0) break;
        if (toks[j].text == "throw" ||
            toks[j].text == "rethrow_exception" ||
            toks[j].text == "current_exception" ||
            toks[j].text == "TELEIOS_LOG") {
          handled = true;
          break;
        }
      }
      if (!handled) {
        report("TL004", tok.line,
               "catch (...) that neither rethrows, captures the exception, "
               "nor logs: silently swallowed exceptions hide bugs");
      }
    }

    // --- TL005: catching bad_alloc outside src/governor/ ----------------
    // `catch (std::bad_alloc)` in any spelling (const&, by value, with or
    // without std::). The governor's WithOomGuard is the one sanctioned
    // translation point from allocation failure to kResourceExhausted;
    // scattered handlers fragment the OOM policy and hide real pressure
    // from the memory budget metrics.
    if (!governor_exempt && tok.text == "catch" && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      for (size_t j = i + 2; j < toks.size() && toks[j].text != ")" &&
                             toks[j].text != "{";
           ++j) {
        if (toks[j].text == "bad_alloc") {
          report("TL005", tok.line,
                 "catch of std::bad_alloc outside src/governor/: allocation "
                 "failure policy lives in governor::WithOomGuard (returns "
                 "kResourceExhausted); charge a MemoryBudget instead of "
                 "handling OOM locally");
          break;
        }
      }
    }

    // --- TL006: raw sockets outside src/server/ --------------------------
    // The network boundary is server::Socket, the same seam contract
    // TL001 enforces for file I/O: drain interruption, peer accounting,
    // and shed policy only hold when every byte crosses that one class.
    if (!server_exempt) {
      if ((tok.text == "<sys/socket.h>" || tok.text == "<netinet/in.h>" ||
           tok.text == "<netinet/tcp.h>" || tok.text == "<arpa/inet.h>") &&
          i >= 1 && toks[i - 1].text == "include") {
        report("TL006", tok.line,
               "#include " + tok.text +
                   " outside src/server/: the socket boundary lives in "
                   "server::Socket");
      }
      // Call sites: `socket(`, `::accept(`, `htons(` ... but not member
      // calls (`x.accept(`), and not qualified names from another
      // namespace (`std::bind` — an identifier before the `::`).
      static const char* const kSocketCalls[] = {
          "socket",    "accept",      "recv",      "setsockopt",
          "getsockname", "htons",     "ntohs",     "htonl",
          "ntohl",     "inet_pton",   "inet_ntop",
      };
      bool is_socket_call = false;
      for (const char* name : kSocketCalls) {
        if (tok.text == name) {
          is_socket_call = true;
          break;
        }
      }
      if (is_socket_call && i + 1 < toks.size() &&
          toks[i + 1].text == "(") {
        // The tokenizer splits `->` into `-` `>`.
        bool member_call =
            i >= 1 &&
            (toks[i - 1].text == "." ||
             (toks[i - 1].text == ">" && i >= 2 && toks[i - 2].text == "-"));
        // `ns::accept(` is someone else's function; `::accept(` (keyword
        // or punctuation before the `::`) is the global C API.
        bool ns_qualified = i >= 2 && toks[i - 1].text == "::" &&
                            IsIdent(toks[i - 2]) &&
                            !IsKeyword(toks[i - 2].text);
        if (!member_call && !ns_qualified) {
          report("TL006", tok.line,
                 "raw socket call " + tok.text +
                     "() outside src/server/: route through "
                     "server::Socket so drain/shed policy and peer "
                     "accounting stay in one place");
        }
      }
    }
  }

  // --- TL007: stale or misspelled suppressions -------------------------
  // A suppression that no longer suppresses anything is worse than no
  // comment: it documents a hazard that is not there and silently masks
  // the rule if the hazard ever returns somewhere nearby. Flagged after
  // the main pass so `used` is complete. `allow(TL007)` on its own line
  // is exempt from staleness (it exists to acknowledge this very rule)
  // but still goes through `report`, so it can be suppressed like any
  // other finding.
  for (const auto& [line, rules] : suppressions) {
    for (const std::string& rule : rules) {
      if (!IsKnownRule(rule)) {
        report("TL007", line,
               "suppression names unknown rule '" + rule +
                   "': misspelled rule IDs silently suppress nothing");
        continue;
      }
      if (rule == "TL007") continue;
      if (!used.count({line, rule})) {
        report("TL007", line,
               "stale suppression: no " + rule +
                   " finding on this line or the next — delete the "
                   "allow(" + rule + ") comment");
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return findings;
}

}  // namespace teleios::lint
