#ifndef TELEIOS_TOOLS_TELEIOS_LINT_LINT_H_
#define TELEIOS_TOOLS_TELEIOS_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

/// teleios_lint: a token-level linter for project invariants that clang
/// (or any general-purpose tool) cannot express. It is deliberately not
/// a compiler plugin — the rules are boundary rules ("this construct is
/// only allowed in this directory") and structural rules ("a mutex
/// member implies a guarded member"), which a comment- and
/// string-aware token scan checks exactly as well as an AST would,
/// with zero build-time dependencies.
///
/// Rules:
///   TL001 raw-io        No std::ofstream/ifstream/fstream,
///                       std::filesystem, fopen/freopen/tmpfile, or
///                       <fstream>/<filesystem> include outside src/io/.
///                       All file I/O must go through io::FileSystem so
///                       fault injection covers it (PR 2 seam).
///   TL002 naked-mutex   No mutex-typed data member (std::mutex,
///                       std::shared_mutex, Mutex, SharedMutex) in a
///                       class with no TELEIOS_GUARDED_BY-annotated
///                       member: an unguarded-capability class is either
///                       missing annotations or guarding external state
///                       (suppress with a comment in the latter case).
///   TL003 raw-thread    No std::thread outside src/exec/ — all
///                       parallelism goes through the ThreadPool, so
///                       TELEIOS_THREADS=1 really means serial.
///   TL004 catch-swallow No `catch (...)` whose body neither rethrows
///                       (throw / rethrow_exception), captures
///                       (current_exception), nor logs (TELEIOS_LOG):
///                       silently swallowed exceptions hide bugs.
///   TL005 local-oom     No `catch (std::bad_alloc)` outside
///                       src/governor/. Allocation-failure policy is
///                       centralized in governor::WithOomGuard, which
///                       converts it to kResourceExhausted; local
///                       handlers fragment that policy and bypass the
///                       memory-budget accounting.
///   TL006 raw-socket    No raw socket API outside src/server/ — no
///                       socket/accept/recv/setsockopt/getsockname or
///                       htons/ntohs/htonl/ntohl calls, and no
///                       <sys/socket.h>/<netinet/...>/<arpa/inet.h>
///                       include. The network boundary is server::Socket
///                       (same seam contract as TL001/io): drain
///                       interruption, peer accounting, and shed policy
///                       only hold if every byte crosses that one class.
///
/// Suppression: a comment `// teleios-lint: allow(TL002)` (one or more
/// comma-separated rule IDs) on the finding's line or the line above
/// disables those rules there. Every suppression is a reviewed,
/// greppable decision — the same contract as the explicit `(void)`
/// casts for discarded Statuses.
namespace teleios::lint {

struct Finding {
  std::string rule;     // "TL001" ... "TL006"
  int line = 0;         // 1-based
  std::string message;  // human-readable explanation
};

/// Lints one translation unit. `path` decides directory exemptions
/// (a "/io/" component exempts TL001, "/exec/" exempts TL003, a
/// "/governor/" component exempts TL005, a "/server/" component exempts
/// TL006); `content` is the file's source text. Findings are ordered by
/// line.
std::vector<Finding> LintSource(const std::string& path,
                                std::string_view content);

/// True when `path` has a directory component `dir` (e.g. HasDirComponent
/// ("src/io/retry.cc", "io")).
bool HasDirComponent(const std::string& path, const std::string& dir);

}  // namespace teleios::lint

#endif  // TELEIOS_TOOLS_TELEIOS_LINT_LINT_H_
