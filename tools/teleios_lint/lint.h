#ifndef TELEIOS_TOOLS_TELEIOS_LINT_LINT_H_
#define TELEIOS_TOOLS_TELEIOS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

/// teleios_lint: a token-level linter for project invariants that clang
/// (or any general-purpose tool) cannot express. It is deliberately not
/// a compiler plugin — the rules are boundary rules ("this construct is
/// only allowed in this directory") and structural rules ("a mutex
/// member implies a guarded member"), which a comment- and
/// string-aware token scan checks exactly as well as an AST would,
/// with zero build-time dependencies.
///
/// Rules:
///   TL001 raw-io        No std::ofstream/ifstream/fstream,
///                       std::filesystem, fopen/freopen/tmpfile, or
///                       <fstream>/<filesystem> include outside src/io/.
///                       All file I/O must go through io::FileSystem so
///                       fault injection covers it (PR 2 seam).
///   TL002 naked-mutex   No mutex-typed data member (std::mutex,
///                       std::shared_mutex, Mutex, SharedMutex) in a
///                       class with no TELEIOS_GUARDED_BY-annotated
///                       member: an unguarded-capability class is either
///                       missing annotations or guarding external state
///                       (suppress with a comment in the latter case).
///   TL003 raw-thread    No std::thread outside src/exec/ — all
///                       parallelism goes through the ThreadPool, so
///                       TELEIOS_THREADS=1 really means serial.
///   TL004 catch-swallow No `catch (...)` whose body neither rethrows
///                       (throw / rethrow_exception), captures
///                       (current_exception), nor logs (TELEIOS_LOG):
///                       silently swallowed exceptions hide bugs.
///   TL005 local-oom     No `catch (std::bad_alloc)` outside
///                       src/governor/. Allocation-failure policy is
///                       centralized in governor::WithOomGuard, which
///                       converts it to kResourceExhausted; local
///                       handlers fragment that policy and bypass the
///                       memory-budget accounting.
///   TL006 raw-socket    No raw socket API outside src/server/ — no
///                       socket/accept/recv/setsockopt/getsockname or
///                       htons/ntohs/htonl/ntohl calls, and no
///                       <sys/socket.h>/<netinet/...>/<arpa/inet.h>
///                       include. The network boundary is server::Socket
///                       (same seam contract as TL001/io): drain
///                       interruption, peer accounting, and shed policy
///                       only hold if every byte crosses that one class.
///   TL007 stale-allow   A `teleios-lint: allow(TLxxx)` comment that no
///                       longer suppresses anything (the code it excused
///                       was deleted or moved), or that names a rule ID
///                       this linter does not have (a typo that silently
///                       suppresses nothing). Dead suppressions document
///                       hazards that are not there and mask the rule if
///                       the hazard returns nearby.
///
/// Suppression: a comment `// teleios-lint: allow(TL002)` (one or more
/// comma-separated rule IDs) on the finding's line or the line above
/// disables those rules there. Every suppression is a reviewed,
/// greppable decision — the same contract as the explicit `(void)`
/// casts for discarded Statuses.
namespace teleios::lint {

struct Finding {
  std::string rule;     // "TL001" ... "TL007"
  int line = 0;         // 1-based
  std::string message;  // human-readable explanation
};

struct Token {
  std::string text;
  int line = 0;
};

/// One comment/string-stripping + tokenizing pass, shared by the linter
/// and by tools/teleios_analyze (which needs the same comment- and
/// string-aware view of a TU to extract lock sites and include edges).
/// Comments are scanned for `teleios-lint: allow(...)` suppressions
/// before being dropped; string and character literals are dropped whole
/// (so a string containing "std::thread" never trips a rule) — except
/// directly after `#include`, where both `<header>` and `"header"`
/// targets are kept as single tokens (quotes included) so include-graph
/// construction sees them.
class Tokenizer {
 public:
  explicit Tokenizer(std::string_view src) : src_(src) {}

  void Run();

  const std::vector<Token>& tokens() const { return tokens_; }
  /// line -> rule IDs suppressed on that line.
  const std::map<int, std::set<std::string>>& suppressions() const {
    return suppressions_;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void RecordSuppressions(std::string_view comment, int line);
  void ScanLineComment();
  void ScanBlockComment();
  void ScanRawString();
  void ScanLiteral(char quote);
  void ScanIdentifier();
  void ScanIncludeTarget(char closer);

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  std::vector<Token> tokens_;
  std::map<int, std::set<std::string>> suppressions_;
};

/// Lints one translation unit. `path` decides directory exemptions
/// (a "/io/" component exempts TL001, "/exec/" exempts TL003, a
/// "/governor/" component exempts TL005, a "/server/" component exempts
/// TL006); `content` is the file's source text. Findings are ordered by
/// line.
std::vector<Finding> LintSource(const std::string& path,
                                std::string_view content);

/// True when `path` has a directory component `dir` (e.g. HasDirComponent
/// ("src/io/retry.cc", "io")).
bool HasDirComponent(const std::string& path, const std::string& dir);

}  // namespace teleios::lint

#endif  // TELEIOS_TOOLS_TELEIOS_LINT_LINT_H_
