// teleios_cli — interactive client for a running teleios_server.
//
//   teleios_cli --port N [--host H] [--lang sql|sciql|stsparql]
//               [--token T] [statement]
//
// With a statement argument: runs it and prints the result as TSV.
// Without: a line-per-statement REPL on stdin. `\lang sciql` switches
// language mid-session; `\quit` exits.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "server/client.h"

namespace {

void PrintTable(const teleios::storage::Table& table) {
  for (size_t c = 0; c < table.schema().num_fields(); ++c) {
    std::printf("%s%s", c > 0 ? "\t" : "",
                table.schema().field(c).name.c_str());
  }
  std::printf("\n");
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      std::printf("%s%s", c > 0 ? "\t" : "",
                  table.Get(r, c).ToString().c_str());
    }
    std::printf("\n");
  }
}

bool RunOne(teleios::server::Client& client, teleios::server::Lang lang,
            const std::string& statement) {
  auto result = client.Query(lang, statement);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return false;
  }
  PrintTable(result.value());
  std::fprintf(stderr, "(%llu row(s), %llu chunk(s))\n",
               static_cast<unsigned long long>(client.last_total_rows()),
               static_cast<unsigned long long>(client.last_chunks()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using teleios::server::Client;
  using teleios::server::ClientOptions;
  using teleios::server::Lang;
  using teleios::server::ParseLang;

  std::string host = "127.0.0.1";
  int port = 0;
  Lang lang = Lang::kSql;
  ClientOptions options;
  std::string statement;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else if (std::strcmp(argv[i], "--lang") == 0 && i + 1 < argc) {
      auto parsed = ParseLang(argv[++i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "unknown --lang %s\n", argv[i]);
        return 2;
      }
      lang = parsed.value();
    } else if (std::strcmp(argv[i], "--token") == 0 && i + 1 < argc) {
      options.auth_token = argv[++i];
    } else if (argv[i][0] != '-') {
      statement = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: teleios_cli --port N [--host H] [--lang L] "
                   "[--token T] [statement]\n");
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "teleios_cli: --port is required\n");
    return 2;
  }

  auto connected = Client::Connect(host, port, options);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  Client client = std::move(connected).value();
  std::fprintf(stderr, "connected; session %llu\n",
               static_cast<unsigned long long>(client.session_id()));

  if (!statement.empty()) {
    bool ok = RunOne(client, lang, statement);
    (void)client.Goodbye();
    return ok ? 0 : 1;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    std::string_view trimmed = teleios::StrTrim(line);
    if (trimmed.empty()) continue;
    if (trimmed == "\\quit" || trimmed == "\\q") break;
    if (teleios::StrStartsWith(trimmed, "\\lang ")) {
      auto parsed = ParseLang(teleios::StrTrim(trimmed.substr(6)));
      if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     parsed.status().ToString().c_str());
      } else {
        lang = parsed.value();
      }
      continue;
    }
    RunOne(client, lang, std::string(trimmed));
  }
  (void)client.Goodbye();
  return 0;
}
