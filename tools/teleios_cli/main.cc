// teleios_cli — interactive client for a running teleios_server.
//
//   teleios_cli --port N [--host H] [--lang sql|sciql|stsparql]
//               [--token T] [--retry [attempts]] [statement]
//
// With a statement argument: runs it and prints the result as TSV.
// Without: a line-per-statement REPL on stdin. `\lang sciql` switches
// language mid-session; `\quit` exits.
//
// Network failures exit nonzero with a one-line diagnosis on stderr.
// --retry rides a ResilientClient instead: it reconnects with jittered
// backoff and tags mutations with request ids, so a flaky wire (or a
// server restart mid-session) is survived instead of reported.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "common/strings.h"
#include "server/client.h"
#include "server/resilient_client.h"

namespace {

using teleios::Status;
using teleios::StatusCode;

/// One line, no stack of context: what went wrong and what to check.
std::string Diagnose(const Status& status, const std::string& host,
                     int port) {
  const std::string target = host + ":" + std::to_string(port);
  switch (status.code()) {
    case StatusCode::kUnavailable:
      return "cannot reach " + target +
             " — connection refused or shed (is teleios_server running?)";
    case StatusCode::kIoError:
      return "lost connection to " + target + " (" + status.message() + ")";
    case StatusCode::kDataLoss:
      return "connection to " + target + " died mid-reply (" +
             status.message() + ")";
    case StatusCode::kDeadlineExceeded:
      return "timed out talking to " + target;
    default:
      return status.ToString();
  }
}

void PrintTable(const teleios::storage::Table& table) {
  for (size_t c = 0; c < table.schema().num_fields(); ++c) {
    std::printf("%s%s", c > 0 ? "\t" : "",
                table.schema().field(c).name.c_str());
  }
  std::printf("\n");
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      std::printf("%s%s", c > 0 ? "\t" : "",
                  table.Get(r, c).ToString().c_str());
    }
    std::printf("\n");
  }
}

/// The one seam the REPL needs over both client flavors.
struct Session {
  virtual ~Session() = default;
  virtual teleios::Result<teleios::storage::Table> Query(
      teleios::server::Lang lang, const std::string& statement) = 0;
  virtual void Goodbye() = 0;
};

struct PlainSession : Session {
  explicit PlainSession(teleios::server::Client client)
      : client(std::move(client)) {}
  teleios::Result<teleios::storage::Table> Query(
      teleios::server::Lang lang, const std::string& statement) override {
    return client.Query(lang, statement);
  }
  void Goodbye() override { (void)client.Goodbye(); }
  teleios::server::Client client;
};

struct RetrySession : Session {
  explicit RetrySession(teleios::server::ResilientClient client)
      : client(std::move(client)) {}
  teleios::Result<teleios::storage::Table> Query(
      teleios::server::Lang lang, const std::string& statement) override {
    return client.Query(lang, statement);
  }
  void Goodbye() override { (void)client.Goodbye(); }
  teleios::server::ResilientClient client;
};

bool RunOne(Session& session, teleios::server::Lang lang,
            const std::string& statement, const std::string& host,
            int port) {
  auto result = session.Query(lang, statement);
  if (!result.ok()) {
    std::fprintf(stderr, "teleios_cli: %s\n",
                 Diagnose(result.status(), host, port).c_str());
    return false;
  }
  PrintTable(result.value());
  std::fprintf(stderr, "(%llu row(s))\n",
               static_cast<unsigned long long>(result->num_rows()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using teleios::server::Client;
  using teleios::server::ClientOptions;
  using teleios::server::Lang;
  using teleios::server::ParseLang;
  using teleios::server::ResilientClient;
  using teleios::server::ResilientClientOptions;

  std::string host = "127.0.0.1";
  int port = 0;
  Lang lang = Lang::kSql;
  ClientOptions options;
  bool retry = false;
  int retry_attempts = 5;
  std::string statement;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else if (std::strcmp(argv[i], "--lang") == 0 && i + 1 < argc) {
      auto parsed = ParseLang(argv[++i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "unknown --lang %s\n", argv[i]);
        return 2;
      }
      lang = parsed.value();
    } else if (std::strcmp(argv[i], "--token") == 0 && i + 1 < argc) {
      options.auth_token = argv[++i];
    } else if (std::strcmp(argv[i], "--retry") == 0) {
      retry = true;
      // Optional attempt count: `--retry 8`.
      if (i + 1 < argc && argv[i + 1][0] != '-' &&
          std::atoi(argv[i + 1]) > 0) {
        retry_attempts = std::atoi(argv[++i]);
      }
    } else if (argv[i][0] != '-') {
      statement = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: teleios_cli --port N [--host H] [--lang L] "
                   "[--token T] [--retry [attempts]] [statement]\n");
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "teleios_cli: --port is required\n");
    return 2;
  }

  std::unique_ptr<Session> session;
  if (retry) {
    ResilientClientOptions ropts;
    ropts.client = options;
    ropts.retry.max_attempts = retry_attempts;
    ResilientClient client(host, port, ropts);
    // Surface an unreachable server now, not at the first statement.
    Status up = client.Ping();
    if (!up.ok()) {
      std::fprintf(stderr, "teleios_cli: %s\n",
                   Diagnose(up, host, port).c_str());
      return 1;
    }
    session = std::make_unique<RetrySession>(std::move(client));
  } else {
    auto connected = Client::Connect(host, port, options);
    if (!connected.ok()) {
      std::fprintf(stderr, "teleios_cli: %s\n",
                   Diagnose(connected.status(), host, port).c_str());
      return 1;
    }
    std::fprintf(stderr, "connected; session %llu\n",
                 static_cast<unsigned long long>(
                     connected.value().session_id()));
    session = std::make_unique<PlainSession>(std::move(connected).value());
  }

  if (!statement.empty()) {
    bool ok = RunOne(*session, lang, statement, host, port);
    session->Goodbye();
    return ok ? 0 : 1;
  }

  bool all_ok = true;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::string_view trimmed = teleios::StrTrim(line);
    if (trimmed.empty()) continue;
    if (trimmed == "\\quit" || trimmed == "\\q") break;
    if (teleios::StrStartsWith(trimmed, "\\lang ")) {
      auto parsed = ParseLang(teleios::StrTrim(trimmed.substr(6)));
      if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     parsed.status().ToString().c_str());
      } else {
        lang = parsed.value();
      }
      continue;
    }
    all_ok = RunOne(*session, lang, std::string(trimmed), host, port) &&
             all_ok;
  }
  session->Goodbye();
  return all_ok ? 0 : 1;
}
