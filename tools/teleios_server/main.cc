// teleios_server — the observatory as a network service.
//
//   teleios_server [--port N] [--dir PATH] [--demo]
//
// Binds the TELEIOS wire protocol + HTTP facade on 127.0.0.1 (port from
// --port, TELEIOS_SERVER_PORT, or ephemeral), optionally durable under
// --dir (WAL + checkpoints, crash recovery at boot), optionally
// pre-loaded with a synthetic demo scene (--demo) so a fresh server has
// something to query.
//
// SIGTERM/SIGINT trigger the graceful path: stop accepting, drain
// in-flight statements, write a final WAL checkpoint, exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <memory>

#include "core/observatory.h"
#include "server/server.h"
#include "storage/table.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

int Fail(const teleios::Status& status, const char* what) {
  std::fprintf(stderr, "teleios_server: %s: %s\n", what,
               status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using teleios::Status;

  teleios::server::ServerConfig config =
      teleios::server::ServerConfig::FromEnv();
  std::string dir;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      config.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else {
      std::fprintf(stderr,
                   "usage: teleios_server [--port N] [--dir PATH] [--demo]\n");
      return 2;
    }
  }

  teleios::core::VirtualEarthObservatory observatory;
  if (!dir.empty()) {
    Status opened = observatory.Open(dir);
    if (!opened.ok()) return Fail(opened, "open durable directory");
    std::printf("durable under %s (replayed %llu WAL record(s))\n",
                dir.c_str(),
                static_cast<unsigned long long>(
                    observatory.recovery_report().records_replayed));
  }
  if (demo) {
    namespace storage = teleios::storage;
    auto table = std::make_shared<storage::Table>(
        storage::Schema({{"id", storage::ColumnType::kInt64},
                         {"name", storage::ColumnType::kString}}));
    table->column(0).AppendInt64(1);
    table->column(1).AppendString("MSG2_DEMO_HOTSPOT");
    table->column(0).AppendInt64(2);
    table->column(1).AppendString("MSG2_DEMO_BURNT_AREA");
    Status st = observatory.catalog().CreateTable("demo", table);
    if (!st.ok()) return Fail(st, "demo table");
  }

  teleios::server::TeleiosServer server(&observatory, config);
  Status started = server.Start();
  if (!started.ok()) return Fail(started, "start");
  std::printf("teleios_server listening on 127.0.0.1:%d (max_sessions=%d)\n",
              server.port(), config.max_sessions);
  std::fflush(stdout);

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("draining (%zu live session(s))...\n",
              server.sessions().live());
  Status stopped = server.Shutdown();
  if (!stopped.ok()) return Fail(stopped, "shutdown");
  std::printf("served %llu session(s); bye\n",
              static_cast<unsigned long long>(
                  server.sessions().opened_total()));
  return 0;
}
