file(REMOVE_RECURSE
  "CMakeFiles/archaeology_search.dir/archaeology_search.cpp.o"
  "CMakeFiles/archaeology_search.dir/archaeology_search.cpp.o.d"
  "archaeology_search"
  "archaeology_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archaeology_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
