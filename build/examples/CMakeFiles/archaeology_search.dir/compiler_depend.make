# Empty compiler generated dependencies file for archaeology_search.
# This may be replaced when dependencies are built.
