# Empty dependencies file for observatory_tour.
# This may be replaced when dependencies are built.
