file(REMOVE_RECURSE
  "CMakeFiles/observatory_tour.dir/observatory_tour.cpp.o"
  "CMakeFiles/observatory_tour.dir/observatory_tour.cpp.o.d"
  "observatory_tour"
  "observatory_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observatory_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
