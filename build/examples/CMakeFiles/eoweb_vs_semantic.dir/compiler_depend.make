# Empty compiler generated dependencies file for eoweb_vs_semantic.
# This may be replaced when dependencies are built.
