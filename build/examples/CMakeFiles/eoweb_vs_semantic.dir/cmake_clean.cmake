file(REMOVE_RECURSE
  "CMakeFiles/eoweb_vs_semantic.dir/eoweb_vs_semantic.cpp.o"
  "CMakeFiles/eoweb_vs_semantic.dir/eoweb_vs_semantic.cpp.o.d"
  "eoweb_vs_semantic"
  "eoweb_vs_semantic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eoweb_vs_semantic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
