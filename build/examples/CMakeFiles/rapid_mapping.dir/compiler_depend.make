# Empty compiler generated dependencies file for rapid_mapping.
# This may be replaced when dependencies are built.
