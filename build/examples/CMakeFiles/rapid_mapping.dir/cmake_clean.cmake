file(REMOVE_RECURSE
  "CMakeFiles/rapid_mapping.dir/rapid_mapping.cpp.o"
  "CMakeFiles/rapid_mapping.dir/rapid_mapping.cpp.o.d"
  "rapid_mapping"
  "rapid_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
