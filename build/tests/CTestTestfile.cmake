# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/observatory_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/array_test[1]_include.cmake")
include("/root/repo/build/tests/sciql_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/clip_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/crs_test[1]_include.cmake")
include("/root/repo/build/tests/polygonize_test[1]_include.cmake")
include("/root/repo/build/tests/rdf_test[1]_include.cmake")
include("/root/repo/build/tests/sparql_test[1]_include.cmake")
include("/root/repo/build/tests/stsparql_test[1]_include.cmake")
include("/root/repo/build/tests/vault_test[1]_include.cmake")
include("/root/repo/build/tests/eo_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/noa_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
