# Empty compiler generated dependencies file for stsparql_test.
# This may be replaced when dependencies are built.
