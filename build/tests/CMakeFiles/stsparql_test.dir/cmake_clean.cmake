file(REMOVE_RECURSE
  "CMakeFiles/stsparql_test.dir/stsparql_test.cc.o"
  "CMakeFiles/stsparql_test.dir/stsparql_test.cc.o.d"
  "stsparql_test"
  "stsparql_test.pdb"
  "stsparql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stsparql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
