# Empty compiler generated dependencies file for vault_test.
# This may be replaced when dependencies are built.
