# Empty compiler generated dependencies file for polygonize_test.
# This may be replaced when dependencies are built.
