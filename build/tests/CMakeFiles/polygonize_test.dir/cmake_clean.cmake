file(REMOVE_RECURSE
  "CMakeFiles/polygonize_test.dir/polygonize_test.cc.o"
  "CMakeFiles/polygonize_test.dir/polygonize_test.cc.o.d"
  "polygonize_test"
  "polygonize_test.pdb"
  "polygonize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polygonize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
