# Empty compiler generated dependencies file for sciql_test.
# This may be replaced when dependencies are built.
