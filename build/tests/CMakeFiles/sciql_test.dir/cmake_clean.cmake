file(REMOVE_RECURSE
  "CMakeFiles/sciql_test.dir/sciql_test.cc.o"
  "CMakeFiles/sciql_test.dir/sciql_test.cc.o.d"
  "sciql_test"
  "sciql_test.pdb"
  "sciql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
