# Empty compiler generated dependencies file for noa_test.
# This may be replaced when dependencies are built.
