file(REMOVE_RECURSE
  "CMakeFiles/noa_test.dir/noa_test.cc.o"
  "CMakeFiles/noa_test.dir/noa_test.cc.o.d"
  "noa_test"
  "noa_test.pdb"
  "noa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
