file(REMOVE_RECURSE
  "CMakeFiles/eo_test.dir/eo_test.cc.o"
  "CMakeFiles/eo_test.dir/eo_test.cc.o.d"
  "eo_test"
  "eo_test.pdb"
  "eo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
