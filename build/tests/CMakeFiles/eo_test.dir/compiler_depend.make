# Empty compiler generated dependencies file for eo_test.
# This may be replaced when dependencies are built.
