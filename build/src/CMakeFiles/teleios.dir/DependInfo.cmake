
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/array.cc" "src/CMakeFiles/teleios.dir/array/array.cc.o" "gcc" "src/CMakeFiles/teleios.dir/array/array.cc.o.d"
  "/root/repo/src/array/array_ops.cc" "src/CMakeFiles/teleios.dir/array/array_ops.cc.o" "gcc" "src/CMakeFiles/teleios.dir/array/array_ops.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/teleios.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/teleios.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/teleios.dir/common/status.cc.o" "gcc" "src/CMakeFiles/teleios.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/teleios.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/teleios.dir/common/strings.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/teleios.dir/common/value.cc.o" "gcc" "src/CMakeFiles/teleios.dir/common/value.cc.o.d"
  "/root/repo/src/core/observatory.cc" "src/CMakeFiles/teleios.dir/core/observatory.cc.o" "gcc" "src/CMakeFiles/teleios.dir/core/observatory.cc.o.d"
  "/root/repo/src/eo/ontology.cc" "src/CMakeFiles/teleios.dir/eo/ontology.cc.o" "gcc" "src/CMakeFiles/teleios.dir/eo/ontology.cc.o.d"
  "/root/repo/src/eo/product.cc" "src/CMakeFiles/teleios.dir/eo/product.cc.o" "gcc" "src/CMakeFiles/teleios.dir/eo/product.cc.o.d"
  "/root/repo/src/eo/scene.cc" "src/CMakeFiles/teleios.dir/eo/scene.cc.o" "gcc" "src/CMakeFiles/teleios.dir/eo/scene.cc.o.d"
  "/root/repo/src/geo/clip.cc" "src/CMakeFiles/teleios.dir/geo/clip.cc.o" "gcc" "src/CMakeFiles/teleios.dir/geo/clip.cc.o.d"
  "/root/repo/src/geo/crs.cc" "src/CMakeFiles/teleios.dir/geo/crs.cc.o" "gcc" "src/CMakeFiles/teleios.dir/geo/crs.cc.o.d"
  "/root/repo/src/geo/geometry.cc" "src/CMakeFiles/teleios.dir/geo/geometry.cc.o" "gcc" "src/CMakeFiles/teleios.dir/geo/geometry.cc.o.d"
  "/root/repo/src/geo/polygonize.cc" "src/CMakeFiles/teleios.dir/geo/polygonize.cc.o" "gcc" "src/CMakeFiles/teleios.dir/geo/polygonize.cc.o.d"
  "/root/repo/src/geo/predicates.cc" "src/CMakeFiles/teleios.dir/geo/predicates.cc.o" "gcc" "src/CMakeFiles/teleios.dir/geo/predicates.cc.o.d"
  "/root/repo/src/geo/rtree.cc" "src/CMakeFiles/teleios.dir/geo/rtree.cc.o" "gcc" "src/CMakeFiles/teleios.dir/geo/rtree.cc.o.d"
  "/root/repo/src/geo/wkt.cc" "src/CMakeFiles/teleios.dir/geo/wkt.cc.o" "gcc" "src/CMakeFiles/teleios.dir/geo/wkt.cc.o.d"
  "/root/repo/src/linkeddata/generators.cc" "src/CMakeFiles/teleios.dir/linkeddata/generators.cc.o" "gcc" "src/CMakeFiles/teleios.dir/linkeddata/generators.cc.o.d"
  "/root/repo/src/mining/annotation.cc" "src/CMakeFiles/teleios.dir/mining/annotation.cc.o" "gcc" "src/CMakeFiles/teleios.dir/mining/annotation.cc.o.d"
  "/root/repo/src/mining/annotation_service.cc" "src/CMakeFiles/teleios.dir/mining/annotation_service.cc.o" "gcc" "src/CMakeFiles/teleios.dir/mining/annotation_service.cc.o.d"
  "/root/repo/src/mining/features.cc" "src/CMakeFiles/teleios.dir/mining/features.cc.o" "gcc" "src/CMakeFiles/teleios.dir/mining/features.cc.o.d"
  "/root/repo/src/mining/kmeans.cc" "src/CMakeFiles/teleios.dir/mining/kmeans.cc.o" "gcc" "src/CMakeFiles/teleios.dir/mining/kmeans.cc.o.d"
  "/root/repo/src/mining/knn.cc" "src/CMakeFiles/teleios.dir/mining/knn.cc.o" "gcc" "src/CMakeFiles/teleios.dir/mining/knn.cc.o.d"
  "/root/repo/src/noa/burned_area.cc" "src/CMakeFiles/teleios.dir/noa/burned_area.cc.o" "gcc" "src/CMakeFiles/teleios.dir/noa/burned_area.cc.o.d"
  "/root/repo/src/noa/chain.cc" "src/CMakeFiles/teleios.dir/noa/chain.cc.o" "gcc" "src/CMakeFiles/teleios.dir/noa/chain.cc.o.d"
  "/root/repo/src/noa/classification.cc" "src/CMakeFiles/teleios.dir/noa/classification.cc.o" "gcc" "src/CMakeFiles/teleios.dir/noa/classification.cc.o.d"
  "/root/repo/src/noa/hotspot.cc" "src/CMakeFiles/teleios.dir/noa/hotspot.cc.o" "gcc" "src/CMakeFiles/teleios.dir/noa/hotspot.cc.o.d"
  "/root/repo/src/noa/mapping.cc" "src/CMakeFiles/teleios.dir/noa/mapping.cc.o" "gcc" "src/CMakeFiles/teleios.dir/noa/mapping.cc.o.d"
  "/root/repo/src/noa/refinement.cc" "src/CMakeFiles/teleios.dir/noa/refinement.cc.o" "gcc" "src/CMakeFiles/teleios.dir/noa/refinement.cc.o.d"
  "/root/repo/src/rdf/dictionary.cc" "src/CMakeFiles/teleios.dir/rdf/dictionary.cc.o" "gcc" "src/CMakeFiles/teleios.dir/rdf/dictionary.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/CMakeFiles/teleios.dir/rdf/term.cc.o" "gcc" "src/CMakeFiles/teleios.dir/rdf/term.cc.o.d"
  "/root/repo/src/rdf/triple_store.cc" "src/CMakeFiles/teleios.dir/rdf/triple_store.cc.o" "gcc" "src/CMakeFiles/teleios.dir/rdf/triple_store.cc.o.d"
  "/root/repo/src/rdf/turtle.cc" "src/CMakeFiles/teleios.dir/rdf/turtle.cc.o" "gcc" "src/CMakeFiles/teleios.dir/rdf/turtle.cc.o.d"
  "/root/repo/src/relational/evaluator.cc" "src/CMakeFiles/teleios.dir/relational/evaluator.cc.o" "gcc" "src/CMakeFiles/teleios.dir/relational/evaluator.cc.o.d"
  "/root/repo/src/relational/expression.cc" "src/CMakeFiles/teleios.dir/relational/expression.cc.o" "gcc" "src/CMakeFiles/teleios.dir/relational/expression.cc.o.d"
  "/root/repo/src/relational/operators.cc" "src/CMakeFiles/teleios.dir/relational/operators.cc.o" "gcc" "src/CMakeFiles/teleios.dir/relational/operators.cc.o.d"
  "/root/repo/src/relational/sql_engine.cc" "src/CMakeFiles/teleios.dir/relational/sql_engine.cc.o" "gcc" "src/CMakeFiles/teleios.dir/relational/sql_engine.cc.o.d"
  "/root/repo/src/relational/sql_lexer.cc" "src/CMakeFiles/teleios.dir/relational/sql_lexer.cc.o" "gcc" "src/CMakeFiles/teleios.dir/relational/sql_lexer.cc.o.d"
  "/root/repo/src/relational/sql_parser.cc" "src/CMakeFiles/teleios.dir/relational/sql_parser.cc.o" "gcc" "src/CMakeFiles/teleios.dir/relational/sql_parser.cc.o.d"
  "/root/repo/src/relational/sql_planner.cc" "src/CMakeFiles/teleios.dir/relational/sql_planner.cc.o" "gcc" "src/CMakeFiles/teleios.dir/relational/sql_planner.cc.o.d"
  "/root/repo/src/sciql/sciql_engine.cc" "src/CMakeFiles/teleios.dir/sciql/sciql_engine.cc.o" "gcc" "src/CMakeFiles/teleios.dir/sciql/sciql_engine.cc.o.d"
  "/root/repo/src/sciql/sciql_parser.cc" "src/CMakeFiles/teleios.dir/sciql/sciql_parser.cc.o" "gcc" "src/CMakeFiles/teleios.dir/sciql/sciql_parser.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/teleios.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/teleios.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/teleios.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/teleios.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/dictionary.cc" "src/CMakeFiles/teleios.dir/storage/dictionary.cc.o" "gcc" "src/CMakeFiles/teleios.dir/storage/dictionary.cc.o.d"
  "/root/repo/src/storage/persistence.cc" "src/CMakeFiles/teleios.dir/storage/persistence.cc.o" "gcc" "src/CMakeFiles/teleios.dir/storage/persistence.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/teleios.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/teleios.dir/storage/table.cc.o.d"
  "/root/repo/src/strabon/sparql_algebra.cc" "src/CMakeFiles/teleios.dir/strabon/sparql_algebra.cc.o" "gcc" "src/CMakeFiles/teleios.dir/strabon/sparql_algebra.cc.o.d"
  "/root/repo/src/strabon/sparql_eval.cc" "src/CMakeFiles/teleios.dir/strabon/sparql_eval.cc.o" "gcc" "src/CMakeFiles/teleios.dir/strabon/sparql_eval.cc.o.d"
  "/root/repo/src/strabon/sparql_lexer.cc" "src/CMakeFiles/teleios.dir/strabon/sparql_lexer.cc.o" "gcc" "src/CMakeFiles/teleios.dir/strabon/sparql_lexer.cc.o.d"
  "/root/repo/src/strabon/sparql_parser.cc" "src/CMakeFiles/teleios.dir/strabon/sparql_parser.cc.o" "gcc" "src/CMakeFiles/teleios.dir/strabon/sparql_parser.cc.o.d"
  "/root/repo/src/strabon/spatial_functions.cc" "src/CMakeFiles/teleios.dir/strabon/spatial_functions.cc.o" "gcc" "src/CMakeFiles/teleios.dir/strabon/spatial_functions.cc.o.d"
  "/root/repo/src/strabon/strabon.cc" "src/CMakeFiles/teleios.dir/strabon/strabon.cc.o" "gcc" "src/CMakeFiles/teleios.dir/strabon/strabon.cc.o.d"
  "/root/repo/src/strabon/temporal.cc" "src/CMakeFiles/teleios.dir/strabon/temporal.cc.o" "gcc" "src/CMakeFiles/teleios.dir/strabon/temporal.cc.o.d"
  "/root/repo/src/vault/formats.cc" "src/CMakeFiles/teleios.dir/vault/formats.cc.o" "gcc" "src/CMakeFiles/teleios.dir/vault/formats.cc.o.d"
  "/root/repo/src/vault/vault.cc" "src/CMakeFiles/teleios.dir/vault/vault.cc.o" "gcc" "src/CMakeFiles/teleios.dir/vault/vault.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
