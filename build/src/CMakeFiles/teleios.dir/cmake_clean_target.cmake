file(REMOVE_RECURSE
  "libteleios.a"
)
