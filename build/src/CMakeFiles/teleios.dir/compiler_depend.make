# Empty compiler generated dependencies file for teleios.
# This may be replaced when dependencies are built.
