# Empty dependencies file for bench_columnstore.
# This may be replaced when dependencies are built.
