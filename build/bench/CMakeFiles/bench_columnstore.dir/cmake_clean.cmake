file(REMOVE_RECURSE
  "CMakeFiles/bench_columnstore.dir/bench_columnstore.cc.o"
  "CMakeFiles/bench_columnstore.dir/bench_columnstore.cc.o.d"
  "bench_columnstore"
  "bench_columnstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_columnstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
