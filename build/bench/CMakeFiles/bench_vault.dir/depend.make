# Empty dependencies file for bench_vault.
# This may be replaced when dependencies are built.
