file(REMOVE_RECURSE
  "CMakeFiles/bench_vault.dir/bench_vault.cc.o"
  "CMakeFiles/bench_vault.dir/bench_vault.cc.o.d"
  "bench_vault"
  "bench_vault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
