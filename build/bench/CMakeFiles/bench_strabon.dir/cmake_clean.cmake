file(REMOVE_RECURSE
  "CMakeFiles/bench_strabon.dir/bench_strabon.cc.o"
  "CMakeFiles/bench_strabon.dir/bench_strabon.cc.o.d"
  "bench_strabon"
  "bench_strabon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strabon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
