# Empty dependencies file for bench_strabon.
# This may be replaced when dependencies are built.
