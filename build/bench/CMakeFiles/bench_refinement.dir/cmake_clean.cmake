file(REMOVE_RECURSE
  "CMakeFiles/bench_refinement.dir/bench_refinement.cc.o"
  "CMakeFiles/bench_refinement.dir/bench_refinement.cc.o.d"
  "bench_refinement"
  "bench_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
