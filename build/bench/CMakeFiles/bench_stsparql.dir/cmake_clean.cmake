file(REMOVE_RECURSE
  "CMakeFiles/bench_stsparql.dir/bench_stsparql.cc.o"
  "CMakeFiles/bench_stsparql.dir/bench_stsparql.cc.o.d"
  "bench_stsparql"
  "bench_stsparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stsparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
