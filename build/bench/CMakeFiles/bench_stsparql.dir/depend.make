# Empty dependencies file for bench_stsparql.
# This may be replaced when dependencies are built.
