file(REMOVE_RECURSE
  "CMakeFiles/bench_noa_chain.dir/bench_noa_chain.cc.o"
  "CMakeFiles/bench_noa_chain.dir/bench_noa_chain.cc.o.d"
  "bench_noa_chain"
  "bench_noa_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noa_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
