# Empty compiler generated dependencies file for bench_noa_chain.
# This may be replaced when dependencies are built.
