# Empty dependencies file for bench_e2e_pipeline.
# This may be replaced when dependencies are built.
