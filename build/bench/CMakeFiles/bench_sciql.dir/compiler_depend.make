# Empty compiler generated dependencies file for bench_sciql.
# This may be replaced when dependencies are built.
