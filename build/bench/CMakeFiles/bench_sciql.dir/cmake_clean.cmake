file(REMOVE_RECURSE
  "CMakeFiles/bench_sciql.dir/bench_sciql.cc.o"
  "CMakeFiles/bench_sciql.dir/bench_sciql.cc.o.d"
  "bench_sciql"
  "bench_sciql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sciql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
