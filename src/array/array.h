#ifndef TELEIOS_ARRAY_ARRAY_H_
#define TELEIOS_ARRAY_ARRAY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/column.h"
#include "storage/table.h"

namespace teleios::array {

/// A named, bounded array dimension over the integer range
/// [start, start + size), SciQL-style.
struct Dimension {
  std::string name;
  int64_t start = 0;
  int64_t size = 0;
};

/// A SciQL multi-dimensional array: named bounded dimensions plus one or
/// more cell attributes, each stored as a dense column in row-major order
/// (last dimension fastest). This is the in-DBMS image representation of
/// the TELEIOS database tier.
class Array {
 public:
  /// Creates an array with every attribute cell set to its default value.
  static Result<std::shared_ptr<Array>> Create(
      std::string name, std::vector<Dimension> dims,
      std::vector<storage::Field> attributes,
      const std::vector<Value>& defaults = {});

  const std::string& name() const { return name_; }
  const std::vector<Dimension>& dims() const { return dims_; }
  size_t num_dims() const { return dims_.size(); }
  size_t num_attributes() const { return attrs_.size(); }
  const storage::Field& attribute(size_t i) const { return attr_fields_[i]; }

  /// Index of the named attribute, or -1.
  int AttributeIndex(const std::string& name) const;
  /// Index of the named dimension, or -1.
  int DimensionIndex(const std::string& name) const;

  /// Total number of cells.
  size_t num_cells() const { return num_cells_; }

  /// Row-major linear index for `coords` (dimension order); OutOfRange if
  /// any coordinate is outside its dimension.
  Result<size_t> LinearIndex(const std::vector<int64_t>& coords) const;

  /// Inverse of LinearIndex.
  std::vector<int64_t> CoordsOf(size_t linear) const;

  /// Cell accessors.
  Value Get(const std::vector<int64_t>& coords, size_t attr) const;
  Value GetLinear(size_t linear, size_t attr) const {
    return attrs_[attr].Get(linear);
  }
  Status Set(const std::vector<int64_t>& coords, size_t attr, const Value& v);
  Status SetLinear(size_t linear, size_t attr, const Value& v);

  /// Direct mutable double storage of a kFloat64 attribute — the fast path
  /// used by image processing kernels. TypeError for other types.
  Result<double*> MutableDoubles(size_t attr);
  Result<const double*> Doubles(size_t attr) const;

  /// Materializes the array as a table: one column per dimension followed
  /// by one per attribute, one row per cell (row-major order). This is how
  /// SciQL SELECTs lower onto the relational engine.
  storage::Table ToTable() const;

  size_t MemoryUsage() const;

 private:
  Array() = default;

  std::string name_;
  std::vector<Dimension> dims_;
  std::vector<storage::Field> attr_fields_;
  std::vector<storage::Column> attrs_;
  std::vector<size_t> strides_;
  size_t num_cells_ = 0;
};

using ArrayPtr = std::shared_ptr<Array>;

}  // namespace teleios::array

#endif  // TELEIOS_ARRAY_ARRAY_H_
