#ifndef TELEIOS_ARRAY_ARRAY_OPS_H_
#define TELEIOS_ARRAY_ARRAY_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "array/array.h"
#include "common/status.h"

namespace teleios::array {

/// An inclusive-exclusive slab range per dimension; a SciQL slab
/// `a[x1:x2, y1:y2]`.
struct Range {
  int64_t start;
  int64_t end;  // exclusive
};

/// Crops an array to the given slab (one Range per dimension); the output
/// keeps the original coordinate origin of the slab.
Result<ArrayPtr> Slice(const Array& input, const std::vector<Range>& slab);

/// Resampling kernels for Resample2D.
enum class ResampleKernel { kNearest, kBilinear };

/// Resamples a 2-D DOUBLE attribute to `new_h` x `new_w` cells (all
/// attributes resampled; non-double attributes use nearest neighbour).
Result<ArrayPtr> Resample2D(const Array& input, int64_t new_h, int64_t new_w,
                            ResampleKernel kernel);

/// 2-D convolution of one DOUBLE attribute with an odd-sized kernel
/// (zero padding at borders). Returns a one-attribute array "v".
Result<ArrayPtr> Convolve2D(const Array& input, size_t attr,
                            const std::vector<double>& kernel,
                            int kernel_size);

/// Applies `fn(cell values) -> new value` to every cell of attribute
/// `attr` in place.
Status MapCells(Array* array, size_t attr,
                const std::function<Value(const std::vector<Value>&)>& fn);

/// Per-attribute summary statistics of a DOUBLE attribute.
struct ArrayStats {
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
  size_t count = 0;
};

Result<ArrayStats> ComputeStats(const Array& input, size_t attr);

/// Tiled (structural group-by) aggregation of a 2-D array: partitions into
/// tiles of `tile_h` x `tile_w` and computes the aggregate ("avg", "min",
/// "max", "sum", "count") of `attr` per tile. Output dims are the tile
/// indices.
Result<ArrayPtr> TileAggregate2D(const Array& input, size_t attr,
                                 int64_t tile_h, int64_t tile_w,
                                 const std::string& aggregate);

}  // namespace teleios::array

#endif  // TELEIOS_ARRAY_ARRAY_OPS_H_
