#include "array/array_ops.h"

#include <algorithm>
#include <cmath>

#include "exec/parallel_for.h"
#include "governor/memory_budget.h"

namespace teleios::array {

using storage::ColumnType;
using storage::Field;

namespace {

Status Check2D(const Array& input) {
  if (input.num_dims() != 2) {
    return Status::InvalidArgument("operation requires a 2-D array");
  }
  return Status::OK();
}

}  // namespace

Result<ArrayPtr> Slice(const Array& input, const std::vector<Range>& slab) {
  if (slab.size() != input.num_dims()) {
    return Status::InvalidArgument("slab arity mismatch");
  }
  std::vector<Dimension> out_dims;
  for (size_t d = 0; d < slab.size(); ++d) {
    const Dimension& dim = input.dims()[d];
    int64_t start = std::max(slab[d].start, dim.start);
    int64_t end = std::min(slab[d].end, dim.start + dim.size);
    if (start >= end) {
      return Status::OutOfRange("empty slab on dimension '" + dim.name + "'");
    }
    out_dims.push_back({dim.name, start, end - start});
  }
  std::vector<Field> attrs;
  for (size_t a = 0; a < input.num_attributes(); ++a) {
    attrs.push_back(input.attribute(a));
  }
  TELEIOS_ASSIGN_OR_RETURN(
      ArrayPtr out, Array::Create(input.name() + "_slice", out_dims, attrs));
  std::vector<int64_t> coords(out_dims.size());
  for (size_t i = 0; i < out->num_cells(); ++i) {
    coords = out->CoordsOf(i);
    TELEIOS_ASSIGN_OR_RETURN(size_t src, input.LinearIndex(coords));
    for (size_t a = 0; a < attrs.size(); ++a) {
      TELEIOS_RETURN_IF_ERROR(out->SetLinear(i, a, input.GetLinear(src, a)));
    }
  }
  return out;
}

Result<ArrayPtr> Resample2D(const Array& input, int64_t new_h, int64_t new_w,
                            ResampleKernel kernel) {
  TELEIOS_RETURN_IF_ERROR(Check2D(input));
  if (new_h <= 0 || new_w <= 0) {
    return Status::InvalidArgument("non-positive output size");
  }
  const Dimension& dy = input.dims()[0];
  const Dimension& dx = input.dims()[1];
  std::vector<Field> attrs;
  for (size_t a = 0; a < input.num_attributes(); ++a) {
    attrs.push_back(input.attribute(a));
  }
  TELEIOS_ASSIGN_OR_RETURN(
      ArrayPtr out,
      Array::Create(input.name() + "_resampled",
                    {{dy.name, 0, new_h}, {dx.name, 0, new_w}}, attrs));
  double sy = static_cast<double>(dy.size) / static_cast<double>(new_h);
  double sx = static_cast<double>(dx.size) / static_cast<double>(new_w);
  for (int64_t y = 0; y < new_h; ++y) {
    for (int64_t x = 0; x < new_w; ++x) {
      double fy = (static_cast<double>(y) + 0.5) * sy - 0.5;
      double fx = (static_cast<double>(x) + 0.5) * sx - 0.5;
      size_t dst = static_cast<size_t>(y * new_w + x);
      for (size_t a = 0; a < attrs.size(); ++a) {
        if (kernel == ResampleKernel::kBilinear &&
            attrs[a].type == ColumnType::kFloat64) {
          int64_t y0 = static_cast<int64_t>(std::floor(fy));
          int64_t x0 = static_cast<int64_t>(std::floor(fx));
          double wy = fy - static_cast<double>(y0);
          double wx = fx - static_cast<double>(x0);
          auto sample = [&](int64_t yy, int64_t xx) -> double {
            yy = std::clamp(yy, int64_t{0}, dy.size - 1);
            xx = std::clamp(xx, int64_t{0}, dx.size - 1);
            return input
                .GetLinear(static_cast<size_t>(yy * dx.size + xx), a)
                .ToDouble()
                .value_or(0.0);
          };
          double v = sample(y0, x0) * (1 - wy) * (1 - wx) +
                     sample(y0, x0 + 1) * (1 - wy) * wx +
                     sample(y0 + 1, x0) * wy * (1 - wx) +
                     sample(y0 + 1, x0 + 1) * wy * wx;
          TELEIOS_RETURN_IF_ERROR(out->SetLinear(dst, a, Value(v)));
        } else {
          int64_t yy = std::clamp(static_cast<int64_t>(std::llround(fy)),
                                  int64_t{0}, dy.size - 1);
          int64_t xx = std::clamp(static_cast<int64_t>(std::llround(fx)),
                                  int64_t{0}, dx.size - 1);
          TELEIOS_RETURN_IF_ERROR(out->SetLinear(
              dst, a,
              input.GetLinear(static_cast<size_t>(yy * dx.size + xx), a)));
        }
      }
    }
  }
  return out;
}

Result<ArrayPtr> Convolve2D(const Array& input, size_t attr,
                            const std::vector<double>& kernel,
                            int kernel_size) {
  TELEIOS_RETURN_IF_ERROR(Check2D(input));
  if (kernel_size % 2 == 0 ||
      kernel.size() != static_cast<size_t>(kernel_size * kernel_size)) {
    return Status::InvalidArgument("kernel must be odd-sized square");
  }
  TELEIOS_ASSIGN_OR_RETURN(const double* src, input.Doubles(attr));
  const Dimension& dy = input.dims()[0];
  const Dimension& dx = input.dims()[1];
  // The output raster is the op's one big allocation.
  TELEIOS_ASSIGN_OR_RETURN(
      governor::BudgetCharge charge,
      governor::ChargeCurrent(
          static_cast<size_t>(dy.size) * static_cast<size_t>(dx.size) *
              sizeof(double),
          "convolution output raster"));
  TELEIOS_ASSIGN_OR_RETURN(
      ArrayPtr out,
      Array::Create(input.name() + "_conv",
                    {{dy.name, dy.start, dy.size}, {dx.name, dx.start, dx.size}},
                    {{"v", ColumnType::kFloat64}}, {Value(0.0)}));
  TELEIOS_ASSIGN_OR_RETURN(double* dst, out->MutableDoubles(0));
  int half = kernel_size / 2;
  // Every output row depends only on input rows, so row-morsels write
  // disjoint output and the result is bit-identical at any thread count.
  exec::ParallelOptions opts;
  opts.label = "exec.convolve";
  opts.grain = 8;  // rows per morsel
  TELEIOS_RETURN_IF_ERROR(exec::ParallelFor(
      static_cast<size_t>(dy.size), opts,
      [&](size_t, size_t row_begin, size_t row_end) -> Status {
        for (int64_t y = static_cast<int64_t>(row_begin);
             y < static_cast<int64_t>(row_end); ++y) {
          for (int64_t x = 0; x < dx.size; ++x) {
            double acc = 0.0;
            for (int ky = -half; ky <= half; ++ky) {
              int64_t yy = y + ky;
              if (yy < 0 || yy >= dy.size) continue;
              for (int kx = -half; kx <= half; ++kx) {
                int64_t xx = x + kx;
                if (xx < 0 || xx >= dx.size) continue;
                acc += src[yy * dx.size + xx] *
                       kernel[static_cast<size_t>((ky + half) * kernel_size +
                                                  (kx + half))];
              }
            }
            dst[y * dx.size + x] = acc;
          }
        }
        return Status::OK();
      }));
  return out;
}

Status MapCells(Array* array, size_t attr,
                const std::function<Value(const std::vector<Value>&)>& fn) {
  size_t n = array->num_cells();
  size_t na = array->num_attributes();
  std::vector<Value> cell(na);
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < na; ++a) cell[a] = array->GetLinear(i, a);
    TELEIOS_RETURN_IF_ERROR(array->SetLinear(i, attr, fn(cell)));
  }
  return Status::OK();
}

Result<ArrayStats> ComputeStats(const Array& input, size_t attr) {
  TELEIOS_ASSIGN_OR_RETURN(const double* data, input.Doubles(attr));
  ArrayStats stats;
  size_t n = input.num_cells();
  if (n == 0) return stats;
  // Per-morsel partials merged in morsel-index order: the morsel plan
  // depends only on n, so the floating-point accumulation order — and
  // therefore the result — is identical at every thread count.
  struct Partial {
    double min = 0, max = 0, sum = 0, sq = 0;
  };
  exec::MorselPlan plan = exec::PlanMorsels(n);
  std::vector<Partial> partials(plan.count);
  exec::ParallelOptions opts;
  opts.label = "exec.stats";
  TELEIOS_RETURN_IF_ERROR(exec::ParallelFor(
      n, opts, [&](size_t m, size_t begin, size_t end) -> Status {
        Partial p;
        p.min = data[begin];
        p.max = data[begin];
        for (size_t i = begin; i < end; ++i) {
          p.min = std::min(p.min, data[i]);
          p.max = std::max(p.max, data[i]);
          p.sum += data[i];
          p.sq += data[i] * data[i];
        }
        partials[m] = p;
        return Status::OK();
      }));
  stats.min = partials[0].min;
  stats.max = partials[0].max;
  double sum = 0;
  double sq = 0;
  for (const Partial& p : partials) {
    stats.min = std::min(stats.min, p.min);
    stats.max = std::max(stats.max, p.max);
    sum += p.sum;
    sq += p.sq;
  }
  stats.count = n;
  stats.mean = sum / static_cast<double>(n);
  double var = sq / static_cast<double>(n) - stats.mean * stats.mean;
  stats.stddev = var > 0 ? std::sqrt(var) : 0.0;
  return stats;
}

Result<ArrayPtr> TileAggregate2D(const Array& input, size_t attr,
                                 int64_t tile_h, int64_t tile_w,
                                 const std::string& aggregate) {
  TELEIOS_RETURN_IF_ERROR(Check2D(input));
  if (tile_h <= 0 || tile_w <= 0) {
    return Status::InvalidArgument("non-positive tile size");
  }
  TELEIOS_ASSIGN_OR_RETURN(const double* src, input.Doubles(attr));
  const Dimension& dy = input.dims()[0];
  const Dimension& dx = input.dims()[1];
  int64_t th = (dy.size + tile_h - 1) / tile_h;
  int64_t tw = (dx.size + tile_w - 1) / tile_w;
  TELEIOS_ASSIGN_OR_RETURN(
      governor::BudgetCharge charge,
      governor::ChargeCurrent(
          static_cast<size_t>(th) * static_cast<size_t>(tw) * sizeof(double),
          "tile-aggregate output raster"));
  TELEIOS_ASSIGN_OR_RETURN(
      ArrayPtr out,
      Array::Create(input.name() + "_tiles",
                    {{"ty", 0, th}, {"tx", 0, tw}},
                    {{"v", ColumnType::kFloat64}}, {Value(0.0)}));
  TELEIOS_ASSIGN_OR_RETURN(double* dst, out->MutableDoubles(0));
  if (aggregate != "avg" && aggregate != "sum" && aggregate != "min" &&
      aggregate != "max" && aggregate != "count") {
    return Status::InvalidArgument("unknown tile aggregate '" + aggregate +
                                   "'");
  }
  // Each tile reads its own input window and writes its own output cell,
  // so tile-morsels are fully independent.
  exec::ParallelOptions opts;
  opts.label = "exec.tile_aggregate";
  opts.grain = 16;  // tiles per morsel
  TELEIOS_RETURN_IF_ERROR(exec::ParallelFor(
      static_cast<size_t>(th * tw), opts,
      [&](size_t, size_t begin, size_t end) -> Status {
        for (size_t t = begin; t < end; ++t) {
          int64_t ty = static_cast<int64_t>(t) / tw;
          int64_t tx = static_cast<int64_t>(t) % tw;
          double acc = 0;
          double mn = 0, mx = 0;
          int64_t count = 0;
          for (int64_t y = ty * tile_h;
               y < std::min((ty + 1) * tile_h, dy.size); ++y) {
            for (int64_t x = tx * tile_w;
                 x < std::min((tx + 1) * tile_w, dx.size); ++x) {
              double v = src[y * dx.size + x];
              if (count == 0) {
                mn = mx = v;
              } else {
                mn = std::min(mn, v);
                mx = std::max(mx, v);
              }
              acc += v;
              ++count;
            }
          }
          double result;
          if (aggregate == "avg") {
            result = count ? acc / static_cast<double>(count) : 0.0;
          } else if (aggregate == "sum") {
            result = acc;
          } else if (aggregate == "min") {
            result = mn;
          } else if (aggregate == "max") {
            result = mx;
          } else {
            result = static_cast<double>(count);
          }
          dst[ty * tw + tx] = result;
        }
        return Status::OK();
      }));
  return out;
}

}  // namespace teleios::array
