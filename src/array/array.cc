#include "array/array.h"

namespace teleios::array {

using storage::Column;
using storage::ColumnType;
using storage::Field;
using storage::Schema;
using storage::Table;

Result<ArrayPtr> Array::Create(std::string name, std::vector<Dimension> dims,
                               std::vector<Field> attributes,
                               const std::vector<Value>& defaults) {
  if (dims.empty()) return Status::InvalidArgument("array needs >= 1 dimension");
  if (attributes.empty()) {
    return Status::InvalidArgument("array needs >= 1 attribute");
  }
  size_t cells = 1;
  for (const Dimension& d : dims) {
    if (d.size <= 0) {
      return Status::InvalidArgument("dimension '" + d.name +
                                     "' has non-positive size");
    }
    cells *= static_cast<size_t>(d.size);
    if (cells > (size_t{1} << 32)) {
      return Status::OutOfRange("array too large");
    }
  }
  if (!defaults.empty() && defaults.size() != attributes.size()) {
    return Status::InvalidArgument("defaults arity mismatch");
  }
  auto arr = std::shared_ptr<Array>(new Array());
  arr->name_ = std::move(name);
  arr->dims_ = std::move(dims);
  arr->attr_fields_ = std::move(attributes);
  arr->num_cells_ = cells;
  arr->strides_.assign(arr->dims_.size(), 1);
  for (size_t i = arr->dims_.size(); i-- > 1;) {
    arr->strides_[i - 1] =
        arr->strides_[i] * static_cast<size_t>(arr->dims_[i].size);
  }
  for (size_t a = 0; a < arr->attr_fields_.size(); ++a) {
    Column col(arr->attr_fields_[a].type);
    col.Reserve(cells);
    // Arrays are dense: absent an explicit default, cells start at the
    // type's zero value (not NULL), so raw-buffer fills via
    // MutableDoubles produce valid cells.
    Value def;
    if (!defaults.empty() && !defaults[a].is_null()) {
      def = defaults[a];
    } else {
      switch (arr->attr_fields_[a].type) {
        case ColumnType::kBool:
          def = Value(false);
          break;
        case ColumnType::kInt64:
          def = Value(int64_t{0});
          break;
        case ColumnType::kFloat64:
          def = Value(0.0);
          break;
        case ColumnType::kString:
          def = Value(std::string());
          break;
      }
    }
    for (size_t i = 0; i < cells; ++i) {
      TELEIOS_RETURN_IF_ERROR(col.Append(def));
    }
    arr->attrs_.push_back(std::move(col));
  }
  return arr;
}

int Array::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < attr_fields_.size(); ++i) {
    if (attr_fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Array::DimensionIndex(const std::string& name) const {
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<size_t> Array::LinearIndex(const std::vector<int64_t>& coords) const {
  if (coords.size() != dims_.size()) {
    return Status::InvalidArgument("coordinate arity mismatch");
  }
  size_t idx = 0;
  for (size_t d = 0; d < dims_.size(); ++d) {
    int64_t off = coords[d] - dims_[d].start;
    if (off < 0 || off >= dims_[d].size) {
      return Status::OutOfRange("coordinate " + std::to_string(coords[d]) +
                                " outside dimension '" + dims_[d].name + "'");
    }
    idx += static_cast<size_t>(off) * strides_[d];
  }
  return idx;
}

std::vector<int64_t> Array::CoordsOf(size_t linear) const {
  std::vector<int64_t> coords(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    coords[d] = dims_[d].start + static_cast<int64_t>(linear / strides_[d]);
    linear %= strides_[d];
  }
  return coords;
}

Value Array::Get(const std::vector<int64_t>& coords, size_t attr) const {
  auto idx = LinearIndex(coords);
  if (!idx.ok()) return Value();
  return attrs_[attr].Get(*idx);
}

Status Array::Set(const std::vector<int64_t>& coords, size_t attr,
                  const Value& v) {
  TELEIOS_ASSIGN_OR_RETURN(size_t idx, LinearIndex(coords));
  return attrs_[attr].Set(idx, v);
}

Status Array::SetLinear(size_t linear, size_t attr, const Value& v) {
  return attrs_[attr].Set(linear, v);
}

Result<double*> Array::MutableDoubles(size_t attr) {
  if (attrs_[attr].type() != ColumnType::kFloat64) {
    return Status::TypeError("attribute '" + attr_fields_[attr].name +
                             "' is not DOUBLE");
  }
  return attrs_[attr].mutable_doubles().data();
}

Result<const double*> Array::Doubles(size_t attr) const {
  if (attrs_[attr].type() != ColumnType::kFloat64) {
    return Status::TypeError("attribute '" + attr_fields_[attr].name +
                             "' is not DOUBLE");
  }
  return attrs_[attr].doubles().data();
}

Table Array::ToTable() const {
  std::vector<Field> fields;
  for (const Dimension& d : dims_) {
    fields.push_back({d.name, ColumnType::kInt64});
  }
  for (const Field& f : attr_fields_) fields.push_back(f);
  Table out{Schema(std::move(fields))};
  for (size_t d = 0; d < dims_.size(); ++d) {
    Column& col = out.column(d);
    col.Reserve(num_cells_);
    // Row-major coordinate pattern: repeat each value `strides_[d]` times,
    // cycling through the dimension `num_cells_ / (size*stride)` times.
    size_t stride = strides_[d];
    size_t size = static_cast<size_t>(dims_[d].size);
    size_t cycles = num_cells_ / (size * stride);
    for (size_t cyc = 0; cyc < cycles; ++cyc) {
      for (size_t v = 0; v < size; ++v) {
        int64_t coord = dims_[d].start + static_cast<int64_t>(v);
        for (size_t rep = 0; rep < stride; ++rep) col.AppendInt64(coord);
      }
    }
  }
  for (size_t a = 0; a < attrs_.size(); ++a) {
    out.column(dims_.size() + a) = attrs_[a];
  }
  return out;
}

size_t Array::MemoryUsage() const {
  size_t bytes = 0;
  for (const Column& c : attrs_) bytes += c.MemoryUsage();
  return bytes;
}

}  // namespace teleios::array
