#ifndef TELEIOS_GOVERNOR_MEMORY_BUDGET_H_
#define TELEIOS_GOVERNOR_MEMORY_BUDGET_H_

#include <cstddef>
#include <limits>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace teleios::governor {

/// A hierarchical memory budget: the process root owns the global limit
/// and per-query/per-chain children charge against both their own limit
/// and every ancestor's. Engines reserve *before* allocating, so an
/// oversized query surfaces as a clean `kResourceExhausted` for that
/// query instead of a process-wide `std::bad_alloc` abort.
///
/// Reservations are advisory accounting of the big, size-predictable
/// buffers (hash-table partials, sort selections, array/raster
/// materializations, centroid partials) — not an allocator hook. The
/// invariant that matters for robustness is RAII: every Reserve is
/// paired with a Release through BudgetCharge, so `used()` returns to
/// zero when a query finishes, on success *and* on every error path.
///
/// Reserve/Release are virtual so a FaultInjectingBudget (see
/// governor/fault_injection.h) can be dropped in anywhere a budget is
/// installed, mirroring io::FaultInjectingFileSystem.
class MemoryBudget {
 public:
  static constexpr size_t kUnlimited = std::numeric_limits<size_t>::max();

  /// `parent` (may be nullptr) must outlive this budget. `limit` is this
  /// node's own cap; kUnlimited defers entirely to the ancestors. Every
  /// budget self-registers for AllBudgetStats() enumeration.
  MemoryBudget(std::string name, size_t limit,
               MemoryBudget* parent = nullptr);
  virtual ~MemoryBudget();

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Reserves `bytes` against this budget and every ancestor; on any
  /// refusal nothing is left charged anywhere and the result is
  /// `kResourceExhausted` naming the budget that refused.
  virtual Status Reserve(size_t bytes);

  /// Returns `bytes` previously reserved (here and up the chain).
  virtual void Release(size_t bytes);

  const std::string& name() const { return name_; }
  size_t limit() const { return limit_; }
  MemoryBudget* parent() const { return parent_; }

  size_t used() const {
    MutexLock lock(mu_);
    return used_;
  }
  /// High-water mark of used() since construction (or ResetPeak).
  size_t peak() const {
    MutexLock lock(mu_);
    return peak_;
  }
  void ResetPeak() {
    MutexLock lock(mu_);
    peak_ = used_;
  }

 private:
  const std::string name_;
  const size_t limit_;
  MemoryBudget* const parent_;
  mutable Mutex mu_;
  size_t used_ TELEIOS_GUARDED_BY(mu_) = 0;
  size_t peak_ TELEIOS_GUARDED_BY(mu_) = 0;
};

/// RAII ownership of one reservation: releases on destruction. Movable,
/// so it can live in a Result<> and be handed across scopes; an empty
/// charge (default-constructed or moved-from) releases nothing.
class BudgetCharge {
 public:
  BudgetCharge() = default;
  BudgetCharge(MemoryBudget* budget, size_t bytes)
      : budget_(budget), bytes_(bytes) {}
  ~BudgetCharge() { reset(); }

  BudgetCharge(BudgetCharge&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  BudgetCharge& operator=(BudgetCharge&& other) noexcept {
    if (this != &other) {
      reset();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  BudgetCharge(const BudgetCharge&) = delete;
  BudgetCharge& operator=(const BudgetCharge&) = delete;

  /// Releases the reservation now (idempotent).
  void reset() {
    if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

  size_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;
  size_t bytes_ = 0;
};

/// Reserves `bytes` on `budget` and wraps the reservation in a charge;
/// `what` labels the refusal message ("group-aggregate hash tables").
Result<BudgetCharge> TryCharge(MemoryBudget* budget, size_t bytes,
                               const std::string& what);

/// Point-in-time reading of one live budget, for `sys.budgets`.
struct BudgetStats {
  std::string name;
  std::string parent;  ///< parent budget's name, "" at the root
  size_t limit = 0;    ///< MemoryBudget::kUnlimited when uncapped
  size_t used = 0;
  size_t peak = 0;
};

/// Snapshot of every live MemoryBudget (the process root, per-query
/// children, engine scratch budgets). The registration lock is held for
/// the whole walk, so no budget is destroyed mid-read; creation order is
/// preserved (parents precede children).
std::vector<BudgetStats> AllBudgetStats();

/// The process-root budget. Its limit comes from TELEIOS_MEMORY_BUDGET
/// (bytes, with an optional k/m/g suffix; unset or 0 = unlimited), read
/// once at first use.
MemoryBudget& ProcessBudget();

/// The budget the *current thread's* work charges against; defaults to
/// ProcessBudget(). The facade installs a per-query child here, and
/// exec::ParallelFor propagates the caller's budget onto pool workers
/// for the duration of a parallel region, so morsel-local reservations
/// land on the right query.
MemoryBudget* CurrentBudget();

/// Installs `budget` as the current thread's budget (nullptr restores
/// the process root); returns the previous value.
MemoryBudget* SetCurrentBudget(MemoryBudget* budget);

/// RAII thread-local budget override.
class ScopedBudget {
 public:
  explicit ScopedBudget(MemoryBudget* budget)
      : prev_(SetCurrentBudget(budget)) {}
  ~ScopedBudget() { SetCurrentBudget(prev_); }
  ScopedBudget(const ScopedBudget&) = delete;
  ScopedBudget& operator=(const ScopedBudget&) = delete;

 private:
  MemoryBudget* prev_;
};

/// TryCharge against the current thread's budget — the one-liner used
/// at the engines' allocation-heavy call sites.
Result<BudgetCharge> ChargeCurrent(size_t bytes, const std::string& what);

/// Runs `fn`, translating a real allocation failure into
/// `kResourceExhausted`. This is the ONLY place TELEIOS may catch
/// std::bad_alloc (teleios_lint rule TL005): everywhere else OOM either
/// never happens (the budget refused first) or propagates here. Used by
/// the facade around whole statements as the last-resort backstop for
/// allocations the budget estimates missed.
template <typename Fn>
auto WithOomGuard(const char* what, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        std::string(what) +
        ": allocation failed (std::bad_alloc); raise "
        "TELEIOS_MEMORY_BUDGET headroom or shrink the query");
  }
}

}  // namespace teleios::governor

#endif  // TELEIOS_GOVERNOR_MEMORY_BUDGET_H_
