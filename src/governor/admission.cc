#include "governor/admission.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/event_log.h"
#include "obs/metrics.h"

namespace teleios::governor {

AdmissionConfig AdmissionConfig::FromEnv() {
  AdmissionConfig config;
  const char* env = std::getenv("TELEIOS_MAX_CONCURRENT_QUERIES");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) config.max_concurrent = static_cast<int>(v);
  }
  return config;
}

void AdmissionTicket::reset() {
  if (controller_ != nullptr) controller_->ReleaseSlot();
  controller_ = nullptr;
}

void AdmissionController::Reconfigure(const AdmissionConfig& config) {
  {
    MutexLock lock(mu_);
    config_ = config;
  }
  cv_.notify_all();
}

void AdmissionController::ReportGaugesLocked() const {
  obs::SetGauge("teleios_governor_admission_running",
                static_cast<double>(running_));
  obs::SetGauge("teleios_governor_admission_queued",
                static_cast<double>(queue_.size()));
}

Result<AdmissionTicket> AdmissionController::Admit(
    const CancellationToken* token) {
  auto arrival = std::chrono::steady_clock::now();
  MutexLock lock(mu_);
  // Fast path: a free slot and nobody queued ahead.
  if (running_ < config_.max_concurrent && queue_.empty()) {
    ++running_;
    obs::Count("teleios_governor_admission_admitted_total");
    ReportGaugesLocked();
    return AdmissionTicket(this);
  }
  if (static_cast<int>(queue_.size()) >= config_.max_queue) {
    obs::Count("teleios_governor_admission_shed_total");
    obs::PostEvent("admission.shed",
                   {{"reason", "queue_full"},
                    {"queued", std::to_string(queue_.size())},
                    {"running", std::to_string(running_)}});
    return Status::Unavailable(
        "admission queue full (" + std::to_string(queue_.size()) +
        " waiting, " + std::to_string(running_) +
        " running); shedding load — retry later");
  }
  const uint64_t seq = next_seq_++;
  queue_.push_back(seq);
  ReportGaugesLocked();

  // The wait never outlives the caller's deadline; deadline-less callers
  // are bounded by max_wait so a wedged statement cannot strand the
  // queue forever.
  auto give_up_at = arrival + config_.max_wait;
  if (token != nullptr && token->has_deadline()) {
    give_up_at = std::min(give_up_at, token->deadline());
  }

  for (;;) {
    if (!queue_.empty() && queue_.front() == seq &&
        running_ < config_.max_concurrent) {
      queue_.pop_front();
      ++running_;
      obs::Count("teleios_governor_admission_admitted_total");
      obs::Observe("teleios_governor_admission_wait_millis",
                   std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - arrival)
                       .count());
      ReportGaugesLocked();
      return AdmissionTicket(this);
    }
    if (token != nullptr) {
      Status live = token->Check();
      if (!live.ok()) {
        AbandonLocked(seq);
        return Status(live.code(),
                      "abandoned admission queue: " + live.message());
      }
    }
    if (std::chrono::steady_clock::now() >= give_up_at) {
      AbandonLocked(seq);
      obs::Count("teleios_governor_admission_timeout_total");
      obs::PostEvent("admission.shed",
                     {{"reason", "wait_timeout"},
                      {"queued", std::to_string(queue_.size())},
                      {"running", std::to_string(running_)}});
      return Status::Unavailable(
          "timed out waiting for an admission slot (" +
          std::to_string(running_) + " running); shedding load");
    }
    // Wake at least every 10ms to poll the token even when no slot
    // frees; correctness only needs the give_up_at bound.
    cv_.wait_until(lock.native(),
                   std::min(give_up_at, std::chrono::steady_clock::now() +
                                            std::chrono::milliseconds(10)));
  }
}

void AdmissionController::AbandonLocked(uint64_t seq) {
  auto it = std::find(queue_.begin(), queue_.end(), seq);
  if (it != queue_.end()) queue_.erase(it);
  ReportGaugesLocked();
  // The head may have changed — let the next waiter re-evaluate.
  cv_.notify_all();
}

void AdmissionController::ReleaseSlot() {
  {
    MutexLock lock(mu_);
    if (running_ > 0) --running_;
    ReportGaugesLocked();
  }
  cv_.notify_all();
}

int AdmissionController::running() const {
  MutexLock lock(mu_);
  return running_;
}

int AdmissionController::queued() const {
  MutexLock lock(mu_);
  return static_cast<int>(queue_.size());
}

}  // namespace teleios::governor
