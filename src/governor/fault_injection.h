#ifndef TELEIOS_GOVERNOR_FAULT_INJECTION_H_
#define TELEIOS_GOVERNOR_FAULT_INJECTION_H_

#include <cstdint>
#include <string>

#include "common/thread_annotations.h"
#include "governor/memory_budget.h"

namespace teleios::governor {

/// A deterministic OOM program, mirroring io::FaultSpec: the
/// `inject_at`-th counted Reserve() after Arm() is refused with
/// kResourceExhausted; with `every_n` > 0 the refusal also repeats every
/// `every_n` reservations after that. Zero-byte reservations are not
/// counted (they never allocate).
struct BudgetFaultSpec {
  uint64_t inject_at = 1;  // 1-based reservation index; 0 disables
  uint64_t every_n = 0;
};

/// Wraps any MemoryBudget and deterministically refuses reservations per
/// an armed BudgetFaultSpec — the allocation-failure analogue of
/// io::FaultInjectingFileSystem. Disarmed it is a transparent
/// pass-through that still counts reservations. Passed-through
/// reservations charge `base`, so accounting exactness (balance to zero)
/// is testable under injection too. Every injected refusal increments
/// `teleios_governor_oom_injected_total`.
///
/// Install it with ScopedBudget (or as a query budget's parent) and
/// every engine charge site becomes a provably exception-safe OOM
/// point: tests sweep `inject_at` over k = 1..N and assert no crash, a
/// clean kResourceExhausted, and zero residual charge.
class FaultInjectingBudget : public MemoryBudget {
 public:
  /// `base` must outlive this wrapper.
  explicit FaultInjectingBudget(MemoryBudget* base)
      : MemoryBudget("oom-injector", kUnlimited, base) {}

  /// Installs `spec` and resets the reservation counter.
  void Arm(const BudgetFaultSpec& spec) {
    MutexLock lock(fault_mu_);
    spec_ = spec;
    armed_ = true;
    reservations_ = 0;
    injected_ = 0;
  }
  /// Back to pass-through (the counter keeps its value).
  void Disarm() {
    MutexLock lock(fault_mu_);
    armed_ = false;
  }

  /// Reservations counted since the last Arm() (or construction).
  uint64_t reservations() const {
    MutexLock lock(fault_mu_);
    return reservations_;
  }
  /// Refusals injected since the last Arm().
  uint64_t injected() const {
    MutexLock lock(fault_mu_);
    return injected_;
  }

  Status Reserve(size_t bytes) override;

 private:
  mutable Mutex fault_mu_;
  BudgetFaultSpec spec_ TELEIOS_GUARDED_BY(fault_mu_);
  bool armed_ TELEIOS_GUARDED_BY(fault_mu_) = false;
  uint64_t reservations_ TELEIOS_GUARDED_BY(fault_mu_) = 0;
  uint64_t injected_ TELEIOS_GUARDED_BY(fault_mu_) = 0;
};

}  // namespace teleios::governor

#endif  // TELEIOS_GOVERNOR_FAULT_INJECTION_H_
