#include "governor/memory_budget.h"

#include <cctype>
#include <cstdlib>

#include "obs/metrics.h"

namespace teleios::governor {

namespace {

/// Updates the root-budget gauges; only the process root reports, so the
/// series mean one thing regardless of how many children exist.
void ReportRootGauges(const MemoryBudget& budget) {
  obs::SetGauge("teleios_governor_budget_used_bytes",
                static_cast<double>(budget.used()));
  obs::SetGauge("teleios_governor_budget_peak_bytes",
                static_cast<double>(budget.peak()));
}

/// Parses TELEIOS_MEMORY_BUDGET: plain bytes with an optional k/m/g
/// (binary) suffix; unset, 0 or unparsable = unlimited.
size_t EnvBudgetBytes() {
  const char* env = std::getenv("TELEIOS_MEMORY_BUDGET");
  if (env == nullptr || *env == '\0') return MemoryBudget::kUnlimited;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) return MemoryBudget::kUnlimited;
  switch (std::tolower(static_cast<unsigned char>(*end))) {
    case 'k':
      v <<= 10;
      break;
    case 'm':
      v <<= 20;
      break;
    case 'g':
      v <<= 30;
      break;
    default:
      break;
  }
  return v == 0 ? MemoryBudget::kUnlimited : static_cast<size_t>(v);
}

}  // namespace

Status MemoryBudget::Reserve(size_t bytes) {
  if (bytes == 0) return Status::OK();
  {
    MutexLock lock(mu_);
    if (limit_ != kUnlimited &&
        (bytes > limit_ || used_ > limit_ - bytes)) {
      obs::Count("teleios_governor_budget_denied_total");
      return Status::ResourceExhausted(
          "memory budget '" + name_ + "' exhausted: requested " +
          std::to_string(bytes) + " bytes with " + std::to_string(used_) +
          "/" + std::to_string(limit_) + " in use");
    }
    used_ += bytes;
  }
  if (parent_ != nullptr) {
    Status up = parent_->Reserve(bytes);
    if (!up.ok()) {
      MutexLock lock(mu_);
      used_ -= bytes;
      return up;
    }
  }
  {
    // Peak is recorded only once the whole ancestor chain accepted, so
    // a refused reservation never inflates the high-water mark.
    MutexLock lock(mu_);
    if (used_ > peak_) peak_ = used_;
  }
  if (parent_ == nullptr) ReportRootGauges(*this);
  return Status::OK();
}

void MemoryBudget::Release(size_t bytes) {
  if (bytes == 0) return;
  {
    MutexLock lock(mu_);
    used_ = bytes > used_ ? 0 : used_ - bytes;
  }
  if (parent_ != nullptr) {
    parent_->Release(bytes);
  } else {
    ReportRootGauges(*this);
  }
}

Result<BudgetCharge> TryCharge(MemoryBudget* budget, size_t bytes,
                               const std::string& what) {
  Status reserved = budget->Reserve(bytes);
  if (!reserved.ok()) {
    return Status(reserved.code(), what + ": " + reserved.message());
  }
  return BudgetCharge(budget, bytes);
}

MemoryBudget& ProcessBudget() {
  static MemoryBudget* root =
      new MemoryBudget("process", EnvBudgetBytes());
  return *root;
}

namespace {
thread_local MemoryBudget* g_current_budget = nullptr;
}  // namespace

MemoryBudget* CurrentBudget() {
  return g_current_budget != nullptr ? g_current_budget : &ProcessBudget();
}

MemoryBudget* SetCurrentBudget(MemoryBudget* budget) {
  MemoryBudget* prev = g_current_budget;
  g_current_budget = budget;
  return prev;
}

Result<BudgetCharge> ChargeCurrent(size_t bytes, const std::string& what) {
  return TryCharge(CurrentBudget(), bytes, what);
}

}  // namespace teleios::governor
