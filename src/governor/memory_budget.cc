#include "governor/memory_budget.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "obs/event_log.h"
#include "obs/metrics.h"

namespace teleios::governor {

namespace {

/// Registry of live budgets backing AllBudgetStats(). Creation order is
/// kept (a vector, not a set) so parents list before their children.
Mutex& BudgetRegistryMutex() {
  static Mutex* mu = new Mutex();
  return *mu;
}

std::vector<MemoryBudget*>& BudgetRegistry() {
  static std::vector<MemoryBudget*>* budgets =
      new std::vector<MemoryBudget*>();
  return *budgets;
}

/// Updates the root-budget gauges; only the process root reports, so the
/// series mean one thing regardless of how many children exist.
void ReportRootGauges(const MemoryBudget& budget) {
  obs::SetGauge("teleios_governor_budget_used_bytes",
                static_cast<double>(budget.used()));
  obs::SetGauge("teleios_governor_budget_peak_bytes",
                static_cast<double>(budget.peak()));
}

/// Parses TELEIOS_MEMORY_BUDGET: plain bytes with an optional k/m/g
/// (binary) suffix; unset, 0 or unparsable = unlimited.
size_t EnvBudgetBytes() {
  const char* env = std::getenv("TELEIOS_MEMORY_BUDGET");
  if (env == nullptr || *env == '\0') return MemoryBudget::kUnlimited;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) return MemoryBudget::kUnlimited;
  switch (std::tolower(static_cast<unsigned char>(*end))) {
    case 'k':
      v <<= 10;
      break;
    case 'm':
      v <<= 20;
      break;
    case 'g':
      v <<= 30;
      break;
    default:
      break;
  }
  return v == 0 ? MemoryBudget::kUnlimited : static_cast<size_t>(v);
}

}  // namespace

MemoryBudget::MemoryBudget(std::string name, size_t limit,
                           MemoryBudget* parent)
    : name_(std::move(name)), limit_(limit), parent_(parent) {
  MutexLock lock(BudgetRegistryMutex());
  BudgetRegistry().push_back(this);
}

MemoryBudget::~MemoryBudget() {
  MutexLock lock(BudgetRegistryMutex());
  auto& budgets = BudgetRegistry();
  budgets.erase(std::find(budgets.begin(), budgets.end(), this));
}

std::vector<BudgetStats> AllBudgetStats() {
  MutexLock lock(BudgetRegistryMutex());
  std::vector<BudgetStats> out;
  out.reserve(BudgetRegistry().size());
  for (const MemoryBudget* budget : BudgetRegistry()) {
    BudgetStats stats;
    stats.name = budget->name();
    stats.parent =
        budget->parent() != nullptr ? budget->parent()->name() : "";
    stats.limit = budget->limit();
    stats.used = budget->used();
    stats.peak = budget->peak();
    out.push_back(std::move(stats));
  }
  return out;
}

Status MemoryBudget::Reserve(size_t bytes) {
  if (bytes == 0) return Status::OK();
  bool refused = false;
  size_t used_now = 0;
  {
    MutexLock lock(mu_);
    if (limit_ != kUnlimited &&
        (bytes > limit_ || used_ > limit_ - bytes)) {
      refused = true;
      used_now = used_;
    } else {
      used_ += bytes;
    }
  }
  if (refused) {
    // Counted and posted outside mu_ so the event sink's I/O never runs
    // under a budget lock.
    obs::Count("teleios_governor_budget_denied_total");
    obs::PostEvent("budget.refused",
                   {{"budget", name_},
                    {"requested_bytes", std::to_string(bytes)},
                    {"used_bytes", std::to_string(used_now)},
                    {"limit_bytes", std::to_string(limit_)}});
    return Status::ResourceExhausted(
        "memory budget '" + name_ + "' exhausted: requested " +
        std::to_string(bytes) + " bytes with " + std::to_string(used_now) +
        "/" + std::to_string(limit_) + " in use");
  }
  if (parent_ != nullptr) {
    Status up = parent_->Reserve(bytes);
    if (!up.ok()) {
      MutexLock lock(mu_);
      used_ -= bytes;
      return up;
    }
  }
  {
    // Peak is recorded only once the whole ancestor chain accepted, so
    // a refused reservation never inflates the high-water mark.
    MutexLock lock(mu_);
    if (used_ > peak_) peak_ = used_;
  }
  if (parent_ == nullptr) ReportRootGauges(*this);
  return Status::OK();
}

void MemoryBudget::Release(size_t bytes) {
  if (bytes == 0) return;
  {
    MutexLock lock(mu_);
    used_ = bytes > used_ ? 0 : used_ - bytes;
  }
  if (parent_ != nullptr) {
    parent_->Release(bytes);
  } else {
    ReportRootGauges(*this);
  }
}

Result<BudgetCharge> TryCharge(MemoryBudget* budget, size_t bytes,
                               const std::string& what) {
  Status reserved = budget->Reserve(bytes);
  if (!reserved.ok()) {
    return Status(reserved.code(), what + ": " + reserved.message());
  }
  return BudgetCharge(budget, bytes);
}

MemoryBudget& ProcessBudget() {
  static MemoryBudget* root =
      new MemoryBudget("process", EnvBudgetBytes());
  return *root;
}

namespace {
thread_local MemoryBudget* g_current_budget = nullptr;
}  // namespace

MemoryBudget* CurrentBudget() {
  return g_current_budget != nullptr ? g_current_budget : &ProcessBudget();
}

MemoryBudget* SetCurrentBudget(MemoryBudget* budget) {
  MemoryBudget* prev = g_current_budget;
  g_current_budget = budget;
  return prev;
}

Result<BudgetCharge> ChargeCurrent(size_t bytes, const std::string& what) {
  return TryCharge(CurrentBudget(), bytes, what);
}

}  // namespace teleios::governor
