#include "governor/fault_injection.h"

#include "obs/metrics.h"

namespace teleios::governor {

Status FaultInjectingBudget::Reserve(size_t bytes) {
  if (bytes == 0) return Status::OK();
  bool inject = false;
  uint64_t index = 0;
  {
    MutexLock lock(fault_mu_);
    index = ++reservations_;
    if (armed_ && spec_.inject_at > 0) {
      if (index == spec_.inject_at) {
        inject = true;
      } else if (spec_.every_n > 0 && index > spec_.inject_at &&
                 (index - spec_.inject_at) % spec_.every_n == 0) {
        inject = true;
      }
    }
    if (inject) ++injected_;
  }
  if (inject) {
    obs::Count("teleios_governor_oom_injected_total");
    return Status::ResourceExhausted(
        "injected allocation failure at reservation #" +
        std::to_string(index));
  }
  // Pass-through: MemoryBudget::Reserve charges this node (unlimited)
  // and the wrapped base via the parent chain.
  return MemoryBudget::Reserve(bytes);
}

}  // namespace teleios::governor
