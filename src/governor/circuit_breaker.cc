#include "governor/circuit_breaker.h"

#include "obs/metrics.h"

namespace teleios::governor {

namespace {

void ReportState(const std::string& name, CircuitBreaker::State state) {
  obs::SetGauge(obs::WithLabel("teleios_governor_breaker_state", "breaker",
                               name),
                static_cast<double>(static_cast<int>(state)));
}

}  // namespace

CircuitBreaker::CircuitBreaker(std::string name, CircuitBreakerConfig config)
    : name_(std::move(name)), config_(config) {
  MutexLock lock(mu_);
  ReportStateLocked();
}

void CircuitBreaker::Reconfigure(const CircuitBreakerConfig& config) {
  MutexLock lock(mu_);
  config_ = config;
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  probe_in_flight_ = false;
  ReportStateLocked();
}

void CircuitBreaker::SetClockForTest(Clock clock) {
  MutexLock lock(mu_);
  clock_ = std::move(clock);
}

std::chrono::steady_clock::time_point CircuitBreaker::NowLocked() const {
  return clock_ ? clock_() : std::chrono::steady_clock::now();
}

void CircuitBreaker::TripLocked() {
  state_ = State::kOpen;
  opened_at_ = NowLocked();
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  probe_in_flight_ = false;
  ++trips_;
  obs::Count(obs::WithLabel("teleios_governor_breaker_trips_total",
                            "breaker", name_));
  ReportStateLocked();
}

void CircuitBreaker::ReportStateLocked() const {
  ReportState(name_, state_);
}

Status CircuitBreaker::Admit() {
  MutexLock lock(mu_);
  switch (state_) {
    case State::kClosed:
      return Status::OK();
    case State::kOpen: {
      if (NowLocked() - opened_at_ < config_.open_duration) {
        obs::Count(obs::WithLabel("teleios_governor_breaker_shed_total",
                                  "breaker", name_));
        return Status::Unavailable(
            "circuit breaker '" + name_ +
            "' is open: dependency failing, shedding calls until the "
            "cool-down elapses");
      }
      state_ = State::kHalfOpen;
      half_open_successes_ = 0;
      probe_in_flight_ = true;
      ReportStateLocked();
      return Status::OK();
    }
    case State::kHalfOpen: {
      // One probe at a time: concurrent callers are shed until the probe
      // reports back, so a recovering dependency is not stampeded.
      if (probe_in_flight_) {
        obs::Count(obs::WithLabel("teleios_governor_breaker_shed_total",
                                  "breaker", name_));
        return Status::Unavailable("circuit breaker '" + name_ +
                                   "' is half-open: probe in flight");
      }
      probe_in_flight_ = true;
      return Status::OK();
    }
  }
  return Status::Internal("circuit breaker '" + name_ +
                          "': unknown state");
}

void CircuitBreaker::RecordSuccess() {
  MutexLock lock(mu_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_successes_ >= config_.half_open_successes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        ReportStateLocked();
      }
      break;
    case State::kOpen:
      // A straggler from before the trip; the cool-down stands.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  MutexLock lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        TripLocked();
      }
      break;
    case State::kHalfOpen:
      // The probe failed: back to a full cool-down.
      TripLocked();
      break;
    case State::kOpen:
      break;
  }
}

bool CircuitBreaker::IsInfrastructureFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kDataLoss:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

Status CircuitBreaker::Run(
    const std::function<Status()>& fn,
    const std::function<bool(const Status&)>& is_failure) {
  Status admitted = Admit();
  if (!admitted.ok()) return admitted;
  Status result = fn();
  bool failed = is_failure ? is_failure(result)
                           : IsInfrastructureFailure(result);
  if (failed) {
    RecordFailure();
  } else {
    RecordSuccess();
  }
  return result;
}

CircuitBreaker::State CircuitBreaker::state() const {
  MutexLock lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::trips() const {
  MutexLock lock(mu_);
  return trips_;
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace teleios::governor
