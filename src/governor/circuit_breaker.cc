#include "governor/circuit_breaker.h"

#include <algorithm>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"

namespace teleios::governor {

namespace {

void ReportState(const std::string& name, CircuitBreaker::State state) {
  obs::SetGauge(obs::WithLabel("teleios_governor_breaker_state", "breaker",
                               name),
                static_cast<double>(static_cast<int>(state)));
}

/// Registry of live breakers backing AllBreakerStats().
Mutex& BreakerRegistryMutex() {
  static Mutex* mu = new Mutex();
  return *mu;
}

std::vector<CircuitBreaker*>& BreakerRegistry() {
  static std::vector<CircuitBreaker*>* breakers =
      new std::vector<CircuitBreaker*>();
  return *breakers;
}

}  // namespace

CircuitBreaker::CircuitBreaker(std::string name, CircuitBreakerConfig config)
    : name_(std::move(name)), config_(config) {
  {
    MutexLock lock(mu_);
    ReportStateLocked();
  }
  MutexLock lock(BreakerRegistryMutex());
  BreakerRegistry().push_back(this);
}

CircuitBreaker::~CircuitBreaker() {
  MutexLock lock(BreakerRegistryMutex());
  auto& breakers = BreakerRegistry();
  breakers.erase(std::find(breakers.begin(), breakers.end(), this));
}

std::vector<BreakerStats> AllBreakerStats() {
  MutexLock lock(BreakerRegistryMutex());
  std::vector<BreakerStats> out;
  out.reserve(BreakerRegistry().size());
  for (const CircuitBreaker* breaker : BreakerRegistry()) {
    out.push_back({breaker->name(), breaker->state(), breaker->trips()});
  }
  return out;
}

void CircuitBreaker::TransitionLocked(State next) {
  if (next == state_) return;
  State prev = state_;
  state_ = next;
  ReportStateLocked();
  obs::PostEvent("breaker.transition", {{"breaker", name_},
                                        {"from", StateName(prev)},
                                        {"to", StateName(next)},
                                        {"trips", std::to_string(trips_)}});
}

void CircuitBreaker::Reconfigure(const CircuitBreakerConfig& config) {
  MutexLock lock(mu_);
  config_ = config;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  probe_in_flight_ = false;
  TransitionLocked(State::kClosed);
}

void CircuitBreaker::SetClockForTest(Clock clock) {
  MutexLock lock(mu_);
  clock_ = std::move(clock);
}

std::chrono::steady_clock::time_point CircuitBreaker::NowLocked() const {
  return clock_ ? clock_() : std::chrono::steady_clock::now();
}

void CircuitBreaker::TripLocked() {
  opened_at_ = NowLocked();
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  probe_in_flight_ = false;
  ++trips_;
  obs::Count(obs::WithLabel("teleios_governor_breaker_trips_total",
                            "breaker", name_));
  TransitionLocked(State::kOpen);
}

void CircuitBreaker::ReportStateLocked() const {
  ReportState(name_, state_);
}

Status CircuitBreaker::Admit() {
  MutexLock lock(mu_);
  switch (state_) {
    case State::kClosed:
      return Status::OK();
    case State::kOpen: {
      if (NowLocked() - opened_at_ < config_.open_duration) {
        obs::Count(obs::WithLabel("teleios_governor_breaker_shed_total",
                                  "breaker", name_));
        return Status::Unavailable(
            "circuit breaker '" + name_ +
            "' is open: dependency failing, shedding calls until the "
            "cool-down elapses");
      }
      half_open_successes_ = 0;
      probe_in_flight_ = true;
      TransitionLocked(State::kHalfOpen);
      return Status::OK();
    }
    case State::kHalfOpen: {
      // One probe at a time: concurrent callers are shed until the probe
      // reports back, so a recovering dependency is not stampeded.
      if (probe_in_flight_) {
        obs::Count(obs::WithLabel("teleios_governor_breaker_shed_total",
                                  "breaker", name_));
        return Status::Unavailable("circuit breaker '" + name_ +
                                   "' is half-open: probe in flight");
      }
      probe_in_flight_ = true;
      return Status::OK();
    }
  }
  return Status::Internal("circuit breaker '" + name_ +
                          "': unknown state");
}

void CircuitBreaker::RecordSuccess() {
  MutexLock lock(mu_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_successes_ >= config_.half_open_successes) {
        consecutive_failures_ = 0;
        TransitionLocked(State::kClosed);
      }
      break;
    case State::kOpen:
      // A straggler from before the trip; the cool-down stands.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  MutexLock lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        TripLocked();
      }
      break;
    case State::kHalfOpen:
      // The probe failed: back to a full cool-down.
      TripLocked();
      break;
    case State::kOpen:
      break;
  }
}

bool CircuitBreaker::IsInfrastructureFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kDataLoss:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

Status CircuitBreaker::Run(
    const std::function<Status()>& fn,
    const std::function<bool(const Status&)>& is_failure) {
  Status admitted = Admit();
  if (!admitted.ok()) return admitted;
  Status result = fn();
  bool failed = is_failure ? is_failure(result)
                           : IsInfrastructureFailure(result);
  if (failed) {
    RecordFailure();
  } else {
    RecordSuccess();
  }
  return result;
}

CircuitBreaker::State CircuitBreaker::state() const {
  MutexLock lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::trips() const {
  MutexLock lock(mu_);
  return trips_;
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace teleios::governor
