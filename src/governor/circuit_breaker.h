#ifndef TELEIOS_GOVERNOR_CIRCUIT_BREAKER_H_
#define TELEIOS_GOVERNOR_CIRCUIT_BREAKER_H_

#include <chrono>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace teleios::governor {

struct CircuitBreakerConfig {
  /// Consecutive qualifying failures that trip the breaker open.
  int failure_threshold = 3;
  /// Cool-down after tripping before a half-open probe is let through.
  std::chrono::milliseconds open_duration{250};
  /// Consecutive half-open successes needed to close again.
  int half_open_successes = 1;
};

/// Classic closed → open → half-open overload breaker around a flaky
/// dependency (vault ingestion, NOA export). Closed it passes everything
/// through and counts consecutive qualifying failures; at
/// `failure_threshold` it trips open and sheds calls instantly with
/// `kUnavailable` (no I/O, no retry backoff) until `open_duration` has
/// elapsed. Then exactly one probe call is admitted (half-open): success
/// closes the breaker, failure re-opens it for another cool-down.
///
/// This composes with io::RetryPolicy one level down: retries smooth
/// transient faults, the breaker stops a persistent fault from turning
/// every caller into a slow failure.
///
/// Time is read through an injectable clock so tests drive the state
/// machine deterministically without sleeping. Thread-safe; immovable
/// (owns a Mutex) — reconfigure in place via Reconfigure().
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  using Clock = std::function<std::chrono::steady_clock::time_point()>;

  explicit CircuitBreaker(std::string name,
                          CircuitBreakerConfig config = {});
  ~CircuitBreaker();

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Swaps the thresholds and resets to closed (tests, env overrides).
  void Reconfigure(const CircuitBreakerConfig& config);

  /// Replaces the time source (tests); nullptr restores steady_clock.
  void SetClockForTest(Clock clock);

  /// kUnavailable while the breaker is shedding; OK admits the call (and,
  /// from open, moves to half-open once the cool-down elapsed). Every
  /// admitted call MUST be followed by RecordSuccess or RecordFailure.
  Status Admit();

  void RecordSuccess();
  void RecordFailure();

  /// Admit → run → record in one step. `is_failure` decides which
  /// outcomes count against the breaker; by default only infrastructure
  /// faults (kIoError, kDataLoss, kUnavailable) do, so a NotFound or a
  /// validation error never trips it. Non-qualifying errors still return
  /// to the caller unchanged, recorded as breaker successes.
  Status Run(const std::function<Status()>& fn,
             const std::function<bool(const Status&)>& is_failure = nullptr);

  State state() const;
  const std::string& name() const { return name_; }

  /// Times the breaker tripped open since construction.
  uint64_t trips() const;

  static const char* StateName(State state);
  /// Default Run() failure predicate, exposed for callers that record
  /// outcomes manually around non-Status code paths.
  static bool IsInfrastructureFailure(const Status& status);

 private:
  std::chrono::steady_clock::time_point NowLocked() const
      TELEIOS_REQUIRES(mu_);
  void TripLocked() TELEIOS_REQUIRES(mu_);
  void ReportStateLocked() const TELEIOS_REQUIRES(mu_);
  /// State change + gauge + `breaker.transition` event in one place.
  void TransitionLocked(State next) TELEIOS_REQUIRES(mu_);

  const std::string name_;
  mutable Mutex mu_;
  CircuitBreakerConfig config_ TELEIOS_GUARDED_BY(mu_);
  Clock clock_ TELEIOS_GUARDED_BY(mu_);
  State state_ TELEIOS_GUARDED_BY(mu_) = State::kClosed;
  int consecutive_failures_ TELEIOS_GUARDED_BY(mu_) = 0;
  int half_open_successes_ TELEIOS_GUARDED_BY(mu_) = 0;
  bool probe_in_flight_ TELEIOS_GUARDED_BY(mu_) = false;
  std::chrono::steady_clock::time_point opened_at_ TELEIOS_GUARDED_BY(mu_);
  uint64_t trips_ TELEIOS_GUARDED_BY(mu_) = 0;
};

/// Point-in-time reading of one live breaker, for `sys.breakers`.
struct BreakerStats {
  std::string name;
  CircuitBreaker::State state = CircuitBreaker::State::kClosed;
  uint64_t trips = 0;
};

/// Snapshot of every live CircuitBreaker, in construction order. The
/// registration lock is held for the walk, so no breaker is destroyed
/// mid-read.
std::vector<BreakerStats> AllBreakerStats();

}  // namespace teleios::governor

#endif  // TELEIOS_GOVERNOR_CIRCUIT_BREAKER_H_
