#ifndef TELEIOS_GOVERNOR_ADMISSION_H_
#define TELEIOS_GOVERNOR_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/cancellation.h"

namespace teleios::governor {

struct AdmissionConfig {
  /// Statements executing at once; further arrivals queue.
  int max_concurrent = 4;
  /// Bounded FIFO wait queue; arrivals beyond it are shed immediately.
  int max_queue = 16;
  /// Upper bound on queue wait for callers without a deadline of their
  /// own; zero sheds immediately when no slot is free.
  std::chrono::milliseconds max_wait{30000};

  /// max_concurrent from TELEIOS_MAX_CONCURRENT_QUERIES when set to a
  /// positive integer; the defaults above otherwise.
  static AdmissionConfig FromEnv();
};

class AdmissionController;

/// RAII occupancy of one admission slot; releasing (destruction or
/// reset) wakes the next queued waiter. Movable so the facade can hold
/// it across a statement's execution.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket() { reset(); }

  AdmissionTicket(AdmissionTicket&& other) noexcept
      : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      reset();
      controller_ = other.controller_;
      other.controller_ = nullptr;
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  void reset();
  bool valid() const { return controller_ != nullptr; }

 private:
  friend class AdmissionController;
  explicit AdmissionTicket(AdmissionController* controller)
      : controller_(controller) {}

  AdmissionController* controller_ = nullptr;
};

/// Bounded-concurrency admission control for the observatory facade:
/// at most `max_concurrent` statements run at once, up to `max_queue`
/// more wait in strict FIFO order (sequence-numbered tickets), and
/// anything beyond that is shed instantly with `kUnavailable` — a full
/// system says "try later" in microseconds instead of thrashing.
///
/// Waiting is deadline-aware: a caller whose CancellationToken carries a
/// deadline never waits past it (the wait returns the token's own
/// kDeadlineExceeded / kCancelled), and deadline-less callers are
/// bounded by `max_wait`. A waiter that gives up removes itself from
/// the queue, so later arrivals cannot deadlock behind it.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {})
      : config_(config) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Applies to subsequent Admit calls; running statements and queued
  /// waiters are not disturbed.
  void Reconfigure(const AdmissionConfig& config);

  /// Blocks until a slot frees (FIFO), the caller's deadline expires, or
  /// max_wait elapses. `token` may be nullptr. Sheds with kUnavailable
  /// when the queue is full or the wait times out; returns the token's
  /// status when it cancels/expires first.
  Result<AdmissionTicket> Admit(const CancellationToken* token);

  int running() const;
  int queued() const;

 private:
  friend class AdmissionTicket;
  void ReleaseSlot();
  void ReportGaugesLocked() const TELEIOS_REQUIRES(mu_);
  /// Removes a give-up waiter's ticket so later arrivals don't deadlock
  /// behind it.
  void AbandonLocked(uint64_t seq) TELEIOS_REQUIRES(mu_);

  mutable Mutex mu_;
  std::condition_variable cv_;
  AdmissionConfig config_ TELEIOS_GUARDED_BY(mu_);
  int running_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ TELEIOS_GUARDED_BY(mu_) = 0;
  /// Waiting tickets in arrival order; the front is next to admit.
  std::deque<uint64_t> queue_ TELEIOS_GUARDED_BY(mu_);
};

}  // namespace teleios::governor

#endif  // TELEIOS_GOVERNOR_ADMISSION_H_
