#ifndef TELEIOS_RELATIONAL_SQL_PARSER_H_
#define TELEIOS_RELATIONAL_SQL_PARSER_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "relational/expression.h"
#include "relational/operators.h"
#include "relational/sql_lexer.h"
#include "storage/table.h"

namespace teleios::relational {

/// One item of a SELECT list.
struct SelectItem {
  bool is_star = false;
  ExprPtr expr;       // null when is_star
  std::string alias;  // empty => derived from the expression
};

struct TableRef {
  std::string name;
  std::string alias;  // empty if none
  /// SciQL slab ranges `name[a:b, c:d]` (start, end-exclusive per dim);
  /// empty for plain SQL table references.
  std::vector<std::pair<int64_t, int64_t>> slab;
};

struct JoinClause {
  TableRef table;
  ExprPtr condition;  // ON expression (equality conjunction expected)
  JoinType type = JoinType::kInner;
};

struct OrderItem {
  std::string column;  // output column name or alias
  bool descending = false;
};

struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // may be null
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = none
  int64_t offset = 0;
};

struct CreateTableStatement {
  std::string name;
  std::vector<storage::Field> fields;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;          // empty => schema order
  std::vector<std::vector<ExprPtr>> rows;    // constant expressions
};

struct DropTableStatement {
  std::string name;
};

struct DeleteStatement {
  std::string table;
  ExprPtr where;  // may be null (delete all)
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
};

using Statement =
    std::variant<SelectStatement, CreateTableStatement, InsertStatement,
                 DropTableStatement, DeleteStatement, UpdateStatement>;

/// Parses one SQL statement (trailing ';' optional).
Result<Statement> ParseSql(const std::string& sql);

/// Parses an expression at the cursor (exported for the SciQL parser).
Result<ExprPtr> ParseExpression(TokenCursor* cursor);

/// Parses a full SELECT statement at the cursor (exported for the SciQL
/// parser, which lowers array SELECTs onto the relational planner).
Result<SelectStatement> ParseSelectStatement(TokenCursor* cursor);

/// Parses a type name (INT/BIGINT/DOUBLE/FLOAT/VARCHAR/TEXT/BOOL...).
Result<storage::ColumnType> ParseTypeName(TokenCursor* cursor);

}  // namespace teleios::relational

#endif  // TELEIOS_RELATIONAL_SQL_PARSER_H_
