#include "relational/sql_parser.h"

#include "common/strings.h"

namespace teleios::relational {

namespace {

/// True if an identifier is a reserved word that terminates expressions.
bool IsReserved(const std::string& word) {
  static const char* kWords[] = {
      "select", "from",  "where",  "group", "by",     "having", "order",
      "limit",  "offset", "join",  "inner", "left",   "outer",  "on",
      "and",    "or",    "not",    "as",    "values", "insert", "into",
      "create", "table", "drop",   "distinct", "like", "is",    "null",
      "in",     "between", "asc",  "desc",  "delete", "update", "set",
      "union",  "true",  "false",  "array", "dimension", "default"};
  for (const char* w : kWords) {
    if (StrEqualsIgnoreCase(word, w)) return true;
  }
  return false;
}

Result<ExprPtr> ParseOr(TokenCursor* cur);

Result<ExprPtr> ParsePrimary(TokenCursor* cur) {
  const Token& t = cur->Peek();
  switch (t.type) {
    case TokenType::kInteger: {
      Token tok = cur->Next();
      return Expr::Literal(Value(tok.int_value));
    }
    case TokenType::kFloat: {
      Token tok = cur->Next();
      return Expr::Literal(Value(tok.float_value));
    }
    case TokenType::kString: {
      Token tok = cur->Next();
      return Expr::Literal(Value(tok.text));
    }
    case TokenType::kSymbol:
      if (cur->AcceptSymbol("(")) {
        TELEIOS_ASSIGN_OR_RETURN(ExprPtr e, ParseOr(cur));
        TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol(")"));
        return e;
      }
      if (cur->AcceptSymbol("[")) {
        // SciQL dimension reference [x] — treated as a plain column ref.
        TELEIOS_ASSIGN_OR_RETURN(std::string name, cur->ExpectIdentifier());
        TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol("]"));
        return Expr::ColumnRef(name);
      }
      return cur->MakeError("expected expression");
    case TokenType::kIdentifier: {
      if (cur->AcceptKeyword("null")) return Expr::Literal(Value());
      if (cur->AcceptKeyword("true")) return Expr::Literal(Value(true));
      if (cur->AcceptKeyword("false")) return Expr::Literal(Value(false));
      if (cur->PeekKeyword("count") && cur->Peek(1).type == TokenType::kSymbol &&
          cur->Peek(1).text == "(" && cur->Peek(2).type == TokenType::kSymbol &&
          cur->Peek(2).text == "*") {
        cur->Next();  // count
        cur->Next();  // (
        cur->Next();  // *
        TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol(")"));
        return Expr::Function("count", {});
      }
      Token tok = cur->Next();
      std::string name = tok.text;
      if (cur->PeekSymbol("(")) {
        cur->Next();
        std::vector<ExprPtr> args;
        if (!cur->PeekSymbol(")")) {
          do {
            TELEIOS_ASSIGN_OR_RETURN(ExprPtr a, ParseOr(cur));
            args.push_back(std::move(a));
          } while (cur->AcceptSymbol(","));
        }
        TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol(")"));
        return Expr::Function(name, std::move(args));
      }
      // Qualified column: table.column
      if (cur->PeekSymbol(".") && cur->Peek(1).type == TokenType::kIdentifier) {
        cur->Next();
        Token col = cur->Next();
        return Expr::ColumnRef(name + "." + col.text);
      }
      return Expr::ColumnRef(name);
    }
    case TokenType::kEnd:
      return cur->MakeError("unexpected end of input in expression");
  }
  return cur->MakeError("expected expression");
}

Result<ExprPtr> ParseUnary(TokenCursor* cur) {
  if (cur->AcceptSymbol("-")) {
    TELEIOS_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary(cur));
    return Expr::Unary(UnaryOp::kNeg, std::move(e));
  }
  if (cur->AcceptSymbol("+")) return ParseUnary(cur);
  if (cur->AcceptKeyword("not")) {
    TELEIOS_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary(cur));
    return Expr::Unary(UnaryOp::kNot, std::move(e));
  }
  return ParsePrimary(cur);
}

Result<ExprPtr> ParseMul(TokenCursor* cur) {
  TELEIOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary(cur));
  while (true) {
    BinaryOp op;
    if (cur->PeekSymbol("*")) op = BinaryOp::kMul;
    else if (cur->PeekSymbol("/")) op = BinaryOp::kDiv;
    else if (cur->PeekSymbol("%")) op = BinaryOp::kMod;
    else break;
    cur->Next();
    TELEIOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary(cur));
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> ParseAdd(TokenCursor* cur) {
  TELEIOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMul(cur));
  while (true) {
    BinaryOp op;
    if (cur->PeekSymbol("+")) op = BinaryOp::kAdd;
    else if (cur->PeekSymbol("-")) op = BinaryOp::kSub;
    else if (cur->PeekSymbol("||")) op = BinaryOp::kAdd;  // string concat
    else break;
    cur->Next();
    TELEIOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMul(cur));
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> ParseComparison(TokenCursor* cur) {
  TELEIOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdd(cur));
  // IS [NOT] NULL
  if (cur->PeekKeyword("is")) {
    cur->Next();
    bool negated = cur->AcceptKeyword("not");
    TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("null"));
    ExprPtr test = Expr::Function("isnull", {std::move(lhs)});
    return negated ? Expr::Unary(UnaryOp::kNot, std::move(test)) : test;
  }
  bool negated = false;
  if (cur->PeekKeyword("not") &&
      (StrEqualsIgnoreCase(cur->Peek(1).text, "like") ||
       StrEqualsIgnoreCase(cur->Peek(1).text, "in") ||
       StrEqualsIgnoreCase(cur->Peek(1).text, "between"))) {
    cur->Next();
    negated = true;
  }
  if (cur->AcceptKeyword("like")) {
    TELEIOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdd(cur));
    ExprPtr e = Expr::Binary(BinaryOp::kLike, std::move(lhs), std::move(rhs));
    return negated ? Expr::Unary(UnaryOp::kNot, std::move(e)) : e;
  }
  if (cur->AcceptKeyword("between")) {
    TELEIOS_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdd(cur));
    TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("and"));
    TELEIOS_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdd(cur));
    ExprPtr e = Expr::Binary(
        BinaryOp::kAnd, Expr::Binary(BinaryOp::kGe, lhs, std::move(lo)),
        Expr::Binary(BinaryOp::kLe, lhs, std::move(hi)));
    return negated ? Expr::Unary(UnaryOp::kNot, std::move(e)) : e;
  }
  if (cur->AcceptKeyword("in")) {
    TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol("("));
    ExprPtr any;
    do {
      TELEIOS_ASSIGN_OR_RETURN(ExprPtr item, ParseOr(cur));
      ExprPtr eq = Expr::Binary(BinaryOp::kEq, lhs, std::move(item));
      any = any ? Expr::Binary(BinaryOp::kOr, std::move(any), std::move(eq))
                : std::move(eq);
    } while (cur->AcceptSymbol(","));
    TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol(")"));
    return negated ? Expr::Unary(UnaryOp::kNot, std::move(any)) : any;
  }
  BinaryOp op;
  if (cur->PeekSymbol("=")) op = BinaryOp::kEq;
  else if (cur->PeekSymbol("<>") || cur->PeekSymbol("!=")) op = BinaryOp::kNe;
  else if (cur->PeekSymbol("<=")) op = BinaryOp::kLe;
  else if (cur->PeekSymbol(">=")) op = BinaryOp::kGe;
  else if (cur->PeekSymbol("<")) op = BinaryOp::kLt;
  else if (cur->PeekSymbol(">")) op = BinaryOp::kGt;
  else return lhs;
  cur->Next();
  TELEIOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdd(cur));
  return Expr::Binary(op, std::move(lhs), std::move(rhs));
}

Result<ExprPtr> ParseAnd(TokenCursor* cur) {
  TELEIOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison(cur));
  while (cur->AcceptKeyword("and")) {
    TELEIOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison(cur));
    lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> ParseOr(TokenCursor* cur) {
  TELEIOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd(cur));
  while (cur->AcceptKeyword("or")) {
    TELEIOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd(cur));
    lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<SelectItem> ParseSelectItem(TokenCursor* cur) {
  SelectItem item;
  if (cur->AcceptSymbol("*")) {
    item.is_star = true;
    return item;
  }
  TELEIOS_ASSIGN_OR_RETURN(item.expr, ParseExpression(cur));
  if (cur->AcceptKeyword("as")) {
    TELEIOS_ASSIGN_OR_RETURN(item.alias, cur->ExpectIdentifier());
  } else if (cur->Peek().type == TokenType::kIdentifier &&
             !IsReserved(cur->Peek().text)) {
    item.alias = cur->Next().text;
  }
  if (item.alias.empty()) {
    item.alias = item.expr->kind == ExprKind::kColumnRef
                     ? item.expr->column
                     : item.expr->ToString();
  }
  return item;
}

Result<int64_t> ParseSignedInteger(TokenCursor* cur) {
  bool neg = cur->AcceptSymbol("-");
  if (cur->Peek().type != TokenType::kInteger) {
    return cur->MakeError("expected integer");
  }
  int64_t v = cur->Next().int_value;
  return neg ? -v : v;
}

Result<TableRef> ParseTableRef(TokenCursor* cur) {
  TableRef ref;
  // Quoted names allow characters outside identifier syntax (EO product
  // names like "MSG2-SEVIRI-scene").
  if (cur->Peek().type == TokenType::kString) {
    ref.name = cur->Next().text;
  } else {
    TELEIOS_ASSIGN_OR_RETURN(ref.name, cur->ExpectIdentifier());
    // Schema-qualified names (`sys.queries`): the dotted text as a whole
    // is the catalog name.
    while (cur->PeekSymbol(".") &&
           cur->Peek(1).type == TokenType::kIdentifier) {
      cur->Next();
      ref.name += "." + cur->Next().text;
    }
  }
  if (cur->AcceptSymbol("[")) {
    do {
      TELEIOS_ASSIGN_OR_RETURN(int64_t start, ParseSignedInteger(cur));
      TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol(":"));
      TELEIOS_ASSIGN_OR_RETURN(int64_t end, ParseSignedInteger(cur));
      ref.slab.emplace_back(start, end);
    } while (cur->AcceptSymbol(","));
    TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol("]"));
  }
  if (cur->AcceptKeyword("as")) {
    TELEIOS_ASSIGN_OR_RETURN(ref.alias, cur->ExpectIdentifier());
  } else if (cur->Peek().type == TokenType::kIdentifier &&
             !IsReserved(cur->Peek().text)) {
    ref.alias = cur->Next().text;
  }
  return ref;
}

Result<SelectStatement> ParseSelect(TokenCursor* cur) {
  SelectStatement stmt;
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("select"));
  stmt.distinct = cur->AcceptKeyword("distinct");
  do {
    TELEIOS_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem(cur));
    stmt.items.push_back(std::move(item));
  } while (cur->AcceptSymbol(","));
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("from"));
  TELEIOS_ASSIGN_OR_RETURN(stmt.from, ParseTableRef(cur));
  while (true) {
    JoinType type = JoinType::kInner;
    if (cur->PeekKeyword("join") || cur->PeekKeyword("inner")) {
      cur->AcceptKeyword("inner");
      TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("join"));
    } else if (cur->PeekKeyword("left")) {
      cur->Next();
      cur->AcceptKeyword("outer");
      TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("join"));
      type = JoinType::kLeftOuter;
    } else {
      break;
    }
    JoinClause join;
    join.type = type;
    TELEIOS_ASSIGN_OR_RETURN(join.table, ParseTableRef(cur));
    TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("on"));
    TELEIOS_ASSIGN_OR_RETURN(join.condition, ParseExpression(cur));
    stmt.joins.push_back(std::move(join));
  }
  if (cur->AcceptKeyword("where")) {
    TELEIOS_ASSIGN_OR_RETURN(stmt.where, ParseExpression(cur));
  }
  if (cur->AcceptKeyword("group")) {
    TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("by"));
    do {
      TELEIOS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression(cur));
      stmt.group_by.push_back(std::move(e));
    } while (cur->AcceptSymbol(","));
  }
  if (cur->AcceptKeyword("having")) {
    TELEIOS_ASSIGN_OR_RETURN(stmt.having, ParseExpression(cur));
  }
  if (cur->AcceptKeyword("order")) {
    TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("by"));
    do {
      OrderItem item;
      TELEIOS_ASSIGN_OR_RETURN(item.column, cur->ExpectIdentifier());
      if (cur->AcceptKeyword("desc")) item.descending = true;
      else cur->AcceptKeyword("asc");
      stmt.order_by.push_back(std::move(item));
    } while (cur->AcceptSymbol(","));
  }
  if (cur->AcceptKeyword("limit")) {
    if (cur->Peek().type != TokenType::kInteger) {
      return cur->MakeError("expected integer after LIMIT");
    }
    stmt.limit = cur->Next().int_value;
  }
  if (cur->AcceptKeyword("offset")) {
    if (cur->Peek().type != TokenType::kInteger) {
      return cur->MakeError("expected integer after OFFSET");
    }
    stmt.offset = cur->Next().int_value;
  }
  return stmt;
}

Result<CreateTableStatement> ParseCreateTable(TokenCursor* cur) {
  CreateTableStatement stmt;
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("create"));
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("table"));
  TELEIOS_ASSIGN_OR_RETURN(stmt.name, cur->ExpectIdentifier());
  TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol("("));
  do {
    storage::Field f;
    TELEIOS_ASSIGN_OR_RETURN(f.name, cur->ExpectIdentifier());
    TELEIOS_ASSIGN_OR_RETURN(f.type, ParseTypeName(cur));
    stmt.fields.push_back(std::move(f));
  } while (cur->AcceptSymbol(","));
  TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol(")"));
  return stmt;
}

Result<InsertStatement> ParseInsert(TokenCursor* cur) {
  InsertStatement stmt;
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("insert"));
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("into"));
  TELEIOS_ASSIGN_OR_RETURN(stmt.table, cur->ExpectIdentifier());
  if (cur->AcceptSymbol("(")) {
    do {
      TELEIOS_ASSIGN_OR_RETURN(std::string col, cur->ExpectIdentifier());
      stmt.columns.push_back(std::move(col));
    } while (cur->AcceptSymbol(","));
    TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol(")"));
  }
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("values"));
  do {
    TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol("("));
    std::vector<ExprPtr> row;
    do {
      TELEIOS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression(cur));
      row.push_back(std::move(e));
    } while (cur->AcceptSymbol(","));
    TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol(")"));
    stmt.rows.push_back(std::move(row));
  } while (cur->AcceptSymbol(","));
  return stmt;
}

Result<DeleteStatement> ParseDelete(TokenCursor* cur) {
  DeleteStatement stmt;
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("delete"));
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("from"));
  TELEIOS_ASSIGN_OR_RETURN(stmt.table, cur->ExpectIdentifier());
  if (cur->AcceptKeyword("where")) {
    TELEIOS_ASSIGN_OR_RETURN(stmt.where, ParseExpression(cur));
  }
  return stmt;
}

Result<UpdateStatement> ParseUpdate(TokenCursor* cur) {
  UpdateStatement stmt;
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("update"));
  TELEIOS_ASSIGN_OR_RETURN(stmt.table, cur->ExpectIdentifier());
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("set"));
  do {
    TELEIOS_ASSIGN_OR_RETURN(std::string col, cur->ExpectIdentifier());
    TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol("="));
    TELEIOS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression(cur));
    stmt.assignments.emplace_back(std::move(col), std::move(e));
  } while (cur->AcceptSymbol(","));
  if (cur->AcceptKeyword("where")) {
    TELEIOS_ASSIGN_OR_RETURN(stmt.where, ParseExpression(cur));
  }
  return stmt;
}

}  // namespace

Result<ExprPtr> ParseExpression(TokenCursor* cursor) {
  return ParseOr(cursor);
}

Result<SelectStatement> ParseSelectStatement(TokenCursor* cursor) {
  return ParseSelect(cursor);
}

Result<storage::ColumnType> ParseTypeName(TokenCursor* cursor) {
  TELEIOS_ASSIGN_OR_RETURN(std::string type_name,
                           cursor->ExpectIdentifier());
  std::string t = StrLower(type_name);
  if (t == "int" || t == "integer" || t == "bigint" || t == "smallint") {
    return storage::ColumnType::kInt64;
  }
  if (t == "double" || t == "float" || t == "real" || t == "decimal") {
    return storage::ColumnType::kFloat64;
  }
  if (t == "varchar" || t == "text" || t == "string" || t == "char") {
    // Optional length: VARCHAR(32)
    if (cursor->AcceptSymbol("(")) {
      cursor->Next();  // length
      TELEIOS_RETURN_IF_ERROR(cursor->ExpectSymbol(")"));
    }
    return storage::ColumnType::kString;
  }
  if (t == "bool" || t == "boolean") {
    return storage::ColumnType::kBool;
  }
  return Status::ParseError("unknown type name '" + type_name + "'");
}

Result<Statement> ParseSql(const std::string& sql) {
  TELEIOS_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(sql));
  TokenCursor cur(std::move(tokens));
  Statement result;
  if (cur.PeekKeyword("select")) {
    TELEIOS_ASSIGN_OR_RETURN(SelectStatement s, ParseSelect(&cur));
    result = std::move(s);
  } else if (cur.PeekKeyword("create")) {
    TELEIOS_ASSIGN_OR_RETURN(CreateTableStatement s, ParseCreateTable(&cur));
    result = std::move(s);
  } else if (cur.PeekKeyword("insert")) {
    TELEIOS_ASSIGN_OR_RETURN(InsertStatement s, ParseInsert(&cur));
    result = std::move(s);
  } else if (cur.PeekKeyword("drop")) {
    cur.Next();
    TELEIOS_RETURN_IF_ERROR(cur.ExpectKeyword("table"));
    DropTableStatement s;
    TELEIOS_ASSIGN_OR_RETURN(s.name, cur.ExpectIdentifier());
    result = std::move(s);
  } else if (cur.PeekKeyword("delete")) {
    TELEIOS_ASSIGN_OR_RETURN(DeleteStatement s, ParseDelete(&cur));
    result = std::move(s);
  } else if (cur.PeekKeyword("update")) {
    TELEIOS_ASSIGN_OR_RETURN(UpdateStatement s, ParseUpdate(&cur));
    result = std::move(s);
  } else {
    return cur.MakeError("expected a statement");
  }
  cur.AcceptSymbol(";");
  if (!cur.AtEnd()) {
    return cur.MakeError("unexpected trailing input");
  }
  return result;
}

}  // namespace teleios::relational
