#include "relational/evaluator.h"

#include <cmath>

#include "common/strings.h"

namespace teleios::relational {

namespace {

bool BothInts(const Value& a, const Value& b) {
  return a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64;
}

Result<Value> Arithmetic(BinaryOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value();
  if (op == BinaryOp::kAdd && lhs.type() == ValueType::kString &&
      rhs.type() == ValueType::kString) {
    return Value(lhs.AsString() + rhs.AsString());
  }
  if (BothInts(lhs, rhs)) {
    int64_t a = lhs.AsInt64();
    int64_t b = rhs.AsInt64();
    switch (op) {
      case BinaryOp::kAdd:
        return Value(a + b);
      case BinaryOp::kSub:
        return Value(a - b);
      case BinaryOp::kMul:
        return Value(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Value(a % b);
      default:
        break;
    }
  }
  TELEIOS_ASSIGN_OR_RETURN(double a, lhs.ToDouble());
  TELEIOS_ASSIGN_OR_RETURN(double b, rhs.ToDouble());
  switch (op) {
    case BinaryOp::kAdd:
      return Value(a + b);
    case BinaryOp::kSub:
      return Value(a - b);
    case BinaryOp::kMul:
      return Value(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value(a / b);
    case BinaryOp::kMod:
      if (b == 0.0) return Status::InvalidArgument("modulo by zero");
      return Value(std::fmod(a, b));
    default:
      break;
  }
  return Status::Internal("bad arithmetic op");
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard matching with backtracking on '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> ApplyBinary(BinaryOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return Arithmetic(op, lhs, rhs);
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (lhs.is_null() || rhs.is_null()) return Value();
      int c = lhs.Compare(rhs);
      switch (op) {
        case BinaryOp::kEq:
          return Value(c == 0);
        case BinaryOp::kNe:
          return Value(c != 0);
        case BinaryOp::kLt:
          return Value(c < 0);
        case BinaryOp::kLe:
          return Value(c <= 0);
        case BinaryOp::kGt:
          return Value(c > 0);
        default:
          return Value(c >= 0);
      }
    }
    case BinaryOp::kAnd:
      return Value(lhs.Truthy() && rhs.Truthy());
    case BinaryOp::kOr:
      return Value(lhs.Truthy() || rhs.Truthy());
    case BinaryOp::kLike: {
      if (lhs.is_null() || rhs.is_null()) return Value();
      if (lhs.type() != ValueType::kString ||
          rhs.type() != ValueType::kString) {
        return Status::TypeError("LIKE requires string operands");
      }
      return Value(LikeMatch(lhs.AsString(), rhs.AsString()));
    }
  }
  return Status::Internal("bad binary op");
}

Result<Value> ApplyFunction(const std::string& name,
                            const std::vector<Value>& args) {
  auto need = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument(name + " expects " +
                                     std::to_string(n) + " argument(s)");
    }
    return Status::OK();
  };
  if (name == "isnull") {
    TELEIOS_RETURN_IF_ERROR(need(1));
    return Value(args[0].is_null());
  }
  if (name == "coalesce") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value();
  }
  if (name == "if") {
    TELEIOS_RETURN_IF_ERROR(need(3));
    return args[0].Truthy() ? args[1] : args[2];
  }
  if (name == "least" || name == "greatest") {
    if (args.empty()) return Status::InvalidArgument(name + " needs args");
    Value best = args[0];
    for (const Value& v : args) {
      if (v.is_null()) return Value();
      bool better = name == "least" ? v.Compare(best) < 0 : v.Compare(best) > 0;
      if (better) best = v;
    }
    return best;
  }
  // Remaining functions: NULL in -> NULL out.
  for (const Value& v : args) {
    if (v.is_null()) return Value();
  }
  if (name == "abs") {
    TELEIOS_RETURN_IF_ERROR(need(1));
    if (args[0].type() == ValueType::kInt64) {
      return Value(std::abs(args[0].AsInt64()));
    }
    TELEIOS_ASSIGN_OR_RETURN(double x, args[0].ToDouble());
    return Value(std::fabs(x));
  }
  if (name == "sqrt" || name == "ln" || name == "exp" || name == "floor" ||
      name == "ceil" || name == "round" || name == "sin" || name == "cos") {
    TELEIOS_RETURN_IF_ERROR(need(1));
    TELEIOS_ASSIGN_OR_RETURN(double x, args[0].ToDouble());
    if (name == "sqrt") {
      if (x < 0) return Status::InvalidArgument("sqrt of negative");
      return Value(std::sqrt(x));
    }
    if (name == "ln") {
      if (x <= 0) return Status::InvalidArgument("ln of non-positive");
      return Value(std::log(x));
    }
    if (name == "exp") return Value(std::exp(x));
    if (name == "sin") return Value(std::sin(x));
    if (name == "cos") return Value(std::cos(x));
    if (name == "floor") return Value(static_cast<int64_t>(std::floor(x)));
    if (name == "ceil") return Value(static_cast<int64_t>(std::ceil(x)));
    return Value(static_cast<int64_t>(std::llround(x)));
  }
  if (name == "pow") {
    TELEIOS_RETURN_IF_ERROR(need(2));
    TELEIOS_ASSIGN_OR_RETURN(double x, args[0].ToDouble());
    TELEIOS_ASSIGN_OR_RETURN(double y, args[1].ToDouble());
    return Value(std::pow(x, y));
  }
  if (name == "length") {
    TELEIOS_RETURN_IF_ERROR(need(1));
    if (args[0].type() != ValueType::kString) {
      return Status::TypeError("length expects a string");
    }
    return Value(static_cast<int64_t>(args[0].AsString().size()));
  }
  if (name == "lower" || name == "upper") {
    TELEIOS_RETURN_IF_ERROR(need(1));
    if (args[0].type() != ValueType::kString) {
      return Status::TypeError(name + " expects a string");
    }
    std::string s = args[0].AsString();
    for (char& c : s) {
      c = name == "lower" ? static_cast<char>(std::tolower(c))
                          : static_cast<char>(std::toupper(c));
    }
    return Value(std::move(s));
  }
  if (name == "substr") {
    TELEIOS_RETURN_IF_ERROR(need(3));
    if (args[0].type() != ValueType::kString) {
      return Status::TypeError("substr expects a string");
    }
    TELEIOS_ASSIGN_OR_RETURN(int64_t start, args[1].ToInt64());
    TELEIOS_ASSIGN_OR_RETURN(int64_t len, args[2].ToInt64());
    const std::string& s = args[0].AsString();
    if (start < 1) start = 1;  // SQL 1-based
    if (static_cast<size_t>(start) > s.size() || len <= 0) {
      return Value(std::string());
    }
    return Value(s.substr(static_cast<size_t>(start - 1),
                          static_cast<size_t>(len)));
  }
  if (name == "concat") {
    std::string out;
    for (const Value& v : args) out += v.ToString();
    return Value(std::move(out));
  }
  return Status::NotFound("unknown function '" + name + "'");
}

Result<Value> Evaluate(const ExprPtr& expr, const ColumnResolver& resolver) {
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return expr->literal;
    case ExprKind::kColumnRef:
      return resolver(expr->column);
    case ExprKind::kUnary: {
      TELEIOS_ASSIGN_OR_RETURN(Value v, Evaluate(expr->children[0], resolver));
      if (expr->unary_op == UnaryOp::kNot) return Value(!v.Truthy());
      if (v.is_null()) return Value();
      if (v.type() == ValueType::kInt64) return Value(-v.AsInt64());
      TELEIOS_ASSIGN_OR_RETURN(double x, v.ToDouble());
      return Value(-x);
    }
    case ExprKind::kBinary: {
      TELEIOS_ASSIGN_OR_RETURN(Value lhs,
                               Evaluate(expr->children[0], resolver));
      // Short-circuit AND/OR.
      if (expr->binary_op == BinaryOp::kAnd && !lhs.Truthy()) {
        return Value(false);
      }
      if (expr->binary_op == BinaryOp::kOr && lhs.Truthy()) {
        return Value(true);
      }
      TELEIOS_ASSIGN_OR_RETURN(Value rhs,
                               Evaluate(expr->children[1], resolver));
      return ApplyBinary(expr->binary_op, lhs, rhs);
    }
    case ExprKind::kFunction: {
      std::vector<Value> args;
      args.reserve(expr->children.size());
      for (const ExprPtr& c : expr->children) {
        TELEIOS_ASSIGN_OR_RETURN(Value v, Evaluate(c, resolver));
        args.push_back(std::move(v));
      }
      return ApplyFunction(expr->function, args);
    }
  }
  return Status::Internal("bad expression kind");
}

Result<int> BoundExpr::BindNode(const ExprPtr& expr,
                                const storage::Table& table) {
  Node node;
  node.kind = expr->kind;
  node.literal = expr->literal;
  node.unary_op = expr->unary_op;
  node.binary_op = expr->binary_op;
  node.function = expr->function;
  if (expr->kind == ExprKind::kColumnRef) {
    int idx = table.schema().FieldIndex(expr->column);
    if (idx < 0) {
      // Try without "qualifier." prefix.
      size_t dot = expr->column.find('.');
      if (dot != std::string::npos) {
        idx = table.schema().FieldIndex(expr->column.substr(dot + 1));
      }
    }
    if (idx < 0) {
      return Status::NotFound("unknown column '" + expr->column + "'");
    }
    node.column_index = idx;
  }
  for (const ExprPtr& c : expr->children) {
    TELEIOS_ASSIGN_OR_RETURN(int ci, BindNode(c, table));
    node.children.push_back(ci);
  }
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size() - 1);
}

Result<BoundExpr> BoundExpr::Bind(const ExprPtr& expr,
                                  const storage::Table& table) {
  BoundExpr bound;
  TELEIOS_ASSIGN_OR_RETURN(bound.root_, bound.BindNode(expr, table));
  return bound;
}

Result<Value> BoundExpr::EvalNode(int idx, const storage::Table& table,
                                  size_t row) const {
  const Node& node = nodes_[idx];
  switch (node.kind) {
    case ExprKind::kLiteral:
      return node.literal;
    case ExprKind::kColumnRef:
      return table.Get(row, node.column_index);
    case ExprKind::kUnary: {
      TELEIOS_ASSIGN_OR_RETURN(Value v, EvalNode(node.children[0], table, row));
      if (node.unary_op == UnaryOp::kNot) return Value(!v.Truthy());
      if (v.is_null()) return Value();
      if (v.type() == ValueType::kInt64) return Value(-v.AsInt64());
      TELEIOS_ASSIGN_OR_RETURN(double x, v.ToDouble());
      return Value(-x);
    }
    case ExprKind::kBinary: {
      TELEIOS_ASSIGN_OR_RETURN(Value lhs,
                               EvalNode(node.children[0], table, row));
      if (node.binary_op == BinaryOp::kAnd && !lhs.Truthy()) {
        return Value(false);
      }
      if (node.binary_op == BinaryOp::kOr && lhs.Truthy()) {
        return Value(true);
      }
      TELEIOS_ASSIGN_OR_RETURN(Value rhs,
                               EvalNode(node.children[1], table, row));
      return ApplyBinary(node.binary_op, lhs, rhs);
    }
    case ExprKind::kFunction: {
      std::vector<Value> args;
      args.reserve(node.children.size());
      for (int c : node.children) {
        TELEIOS_ASSIGN_OR_RETURN(Value v, EvalNode(c, table, row));
        args.push_back(std::move(v));
      }
      return ApplyFunction(node.function, args);
    }
  }
  return Status::Internal("bad bound expression kind");
}

Result<Value> BoundExpr::Eval(const storage::Table& table, size_t row) const {
  return EvalNode(root_, table, row);
}

}  // namespace teleios::relational
