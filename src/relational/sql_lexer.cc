#include "relational/sql_lexer.h"

#include <cctype>

#include "common/strings.h"

namespace teleios::relational {

Result<std::vector<Token>> LexSql(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tok.type = TokenType::kIdentifier;
      tok.text = input.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.' &&
          !(i + 1 < n && input[i + 1] == '.')) {  // leave ".." ranges alone
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          is_float = true;
          while (i < n &&
                 std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        } else {
          i = save;  // not an exponent
        }
      }
      std::string text = input.substr(start, i - start);
      if (is_float) {
        TELEIOS_ASSIGN_OR_RETURN(tok.float_value, ParseDouble(text));
        tok.type = TokenType::kFloat;
      } else {
        TELEIOS_ASSIGN_OR_RETURN(tok.int_value, ParseInt64(text));
        tok.type = TokenType::kInteger;
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == quote) {
          if (i + 1 < n && input[i + 1] == quote) {  // doubled quote escape
            text += quote;
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += input[i++];
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string at offset %zu", tok.position));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char symbols first.
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!=", "||", ".."};
    bool matched = false;
    for (const char* sym : kTwoChar) {
      if (i + 1 < n && input[i] == sym[0] && input[i + 1] == sym[1]) {
        tok.type = TokenType::kSymbol;
        tok.text = sym;
        i += 2;
        tokens.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingles = "()[]{},;.+-*/%=<>:?";
    if (kSingles.find(c) != std::string::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError(
        StrFormat("unexpected character '%c' at offset %zu", c, i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

const Token& TokenCursor::Peek(size_t ahead) const {
  size_t idx = pos_ + ahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;
  return tokens_[idx];
}

Token TokenCursor::Next() {
  Token t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool TokenCursor::AcceptKeyword(const std::string& kw) {
  if (PeekKeyword(kw)) {
    Next();
    return true;
  }
  return false;
}

bool TokenCursor::AcceptSymbol(const std::string& sym) {
  if (PeekSymbol(sym)) {
    Next();
    return true;
  }
  return false;
}

Status TokenCursor::ExpectKeyword(const std::string& kw) {
  if (!AcceptKeyword(kw)) {
    return MakeError("expected keyword '" + kw + "'");
  }
  return Status::OK();
}

Status TokenCursor::ExpectSymbol(const std::string& sym) {
  if (!AcceptSymbol(sym)) {
    return MakeError("expected '" + sym + "'");
  }
  return Status::OK();
}

Result<std::string> TokenCursor::ExpectIdentifier() {
  if (Peek().type != TokenType::kIdentifier) {
    return MakeError("expected identifier");
  }
  return Next().text;
}

bool TokenCursor::PeekKeyword(const std::string& kw) const {
  const Token& t = Peek();
  return t.type == TokenType::kIdentifier && StrEqualsIgnoreCase(t.text, kw);
}

bool TokenCursor::PeekSymbol(const std::string& sym) const {
  const Token& t = Peek();
  return t.type == TokenType::kSymbol && t.text == sym;
}

Status TokenCursor::MakeError(const std::string& message) const {
  const Token& t = Peek();
  std::string got = t.type == TokenType::kEnd ? "<end>" : t.text;
  return Status::ParseError(message + " but got '" + got + "' at offset " +
                            std::to_string(t.position));
}

}  // namespace teleios::relational
