#ifndef TELEIOS_RELATIONAL_OPERATORS_H_
#define TELEIOS_RELATIONAL_OPERATORS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/evaluator.h"
#include "relational/expression.h"
#include "storage/table.h"

namespace teleios::relational {

/// Rows of `table` for which `predicate` is truthy (candidate list).
///
/// Predicates that decompose into a conjunction of simple comparisons
/// (column vs constant, column vs column, column-difference vs constant,
/// string equality via dictionary code) are evaluated on the raw typed
/// vectors — the MonetDB-style vectorized selection path. Anything else
/// falls back to the row-wise expression interpreter.
Result<storage::SelectionVector> FilterIndices(const storage::Table& table,
                                               const ExprPtr& predicate);

/// The row-wise interpreter path only (no vectorization) — exposed for
/// the ablation benchmark; produces identical results to FilterIndices.
Result<storage::SelectionVector> FilterIndicesInterpreted(
    const storage::Table& table, const ExprPtr& predicate);

/// True if FilterIndices would take the vectorized path for `predicate`
/// against `table` (introspection for tests and EXPLAIN).
bool IsVectorizablePredicate(const storage::Table& table,
                             const ExprPtr& predicate);

/// Materialized filter.
Result<storage::Table> Filter(const storage::Table& table,
                              const ExprPtr& predicate);

/// One output column to compute in Project: expression + output name.
struct ProjectItem {
  ExprPtr expr;
  std::string alias;
};

/// Computes one output column per item. Output column types are inferred
/// from the first non-null computed value (defaulting to DOUBLE).
Result<storage::Table> ProjectCompute(const storage::Table& table,
                                      const std::vector<ProjectItem>& items);

enum class JoinType { kInner, kLeftOuter };

/// Hash join on equality of `left_keys[i]` = `right_keys[i]`. Column name
/// clashes in the output are disambiguated with a "r_" prefix.
Result<storage::Table> HashJoin(const storage::Table& left,
                                const storage::Table& right,
                                const std::vector<std::string>& left_keys,
                                const std::vector<std::string>& right_keys,
                                JoinType type = JoinType::kInner);

/// One aggregate to compute in GroupAggregate.
struct AggregateItem {
  std::string function;  // count/sum/avg/min/max (lower case)
  ExprPtr argument;      // nullptr for count(*)
  std::string alias;
};

/// Hash group-by over `group_columns` computing `aggregates`. An empty
/// group list computes global aggregates (one output row).
Result<storage::Table> GroupAggregate(
    const storage::Table& table, const std::vector<std::string>& group_columns,
    const std::vector<AggregateItem>& aggregates);

struct SortKey {
  std::string column;
  bool descending = false;
};

/// Stable sort by the given keys (NULLs first).
Result<storage::Table> Sort(const storage::Table& table,
                            const std::vector<SortKey>& keys);

/// Rows [offset, offset+limit).
storage::Table Limit(const storage::Table& table, size_t limit,
                     size_t offset = 0);

/// Removes duplicate rows (first occurrence kept).
storage::Table Distinct(const storage::Table& table);

}  // namespace teleios::relational

#endif  // TELEIOS_RELATIONAL_OPERATORS_H_
