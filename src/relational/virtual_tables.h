#ifndef TELEIOS_RELATIONAL_VIRTUAL_TABLES_H_
#define TELEIOS_RELATIONAL_VIRTUAL_TABLES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace teleios::relational {

/// Supplies materialized-on-read system tables (the `sys.*` schema) to
/// the query engines. A provider is consulted per statement: every
/// served table referenced by a SELECT is materialized at execution
/// time, so the result reflects live registry/governor/executor state
/// rather than anything stored in the catalog. Providers must be
/// thread-safe — concurrent statements materialize concurrently.
class VirtualTableProvider {
 public:
  virtual ~VirtualTableProvider() = default;

  /// True when this provider serves `name` (e.g. "sys.queries").
  virtual bool Serves(const std::string& name) const = 0;

  /// The served names, sorted (diagnostics, `sys.tables`-style listings).
  virtual std::vector<std::string> TableNames() const = 0;

  /// Builds a fresh snapshot table for `name`; kNotFound when the name
  /// is not served.
  virtual Result<storage::TablePtr> Materialize(const std::string& name) = 0;
};

}  // namespace teleios::relational

#endif  // TELEIOS_RELATIONAL_VIRTUAL_TABLES_H_
