#include "relational/operators.h"

#include <algorithm>
#include <unordered_map>

#include "exec/parallel_for.h"
#include "governor/memory_budget.h"

namespace teleios::relational {

using storage::Column;
using storage::ColumnType;
using storage::Field;
using storage::Schema;
using storage::SelectionVector;
using storage::Table;

namespace {

/// One vectorizable conjunct. Shapes:
///   kColConst:  col CMP constant            (numeric or bool column)
///   kColCol:    colA CMP colB               (numeric columns)
///   kDiffConst: (colA - colB) CMP constant  (numeric columns)
///   kStrEq:     col = 'literal' / col <> 'literal' (dictionary code test)
///   kBoolCol:   bare bool column reference
struct VecPred {
  enum class Kind { kColConst, kColCol, kDiffConst, kStrEq, kBoolCol };
  Kind kind;
  BinaryOp cmp = BinaryOp::kEq;
  int col_a = -1;
  int col_b = -1;
  double constant = 0;
  int32_t code = storage::Dictionary::kInvalidCode;  // kStrEq
  bool negate = false;                               // kStrEq: <>
};

bool IsNumericColumn(const Table& table, int col) {
  ColumnType t = table.column(static_cast<size_t>(col)).type();
  return t == ColumnType::kInt64 || t == ColumnType::kFloat64 ||
         t == ColumnType::kBool;
}

double NumericAt(const Column& col, size_t row) {
  switch (col.type()) {
    case ColumnType::kInt64:
      return static_cast<double>(col.GetInt64(row));
    case ColumnType::kFloat64:
      return col.GetFloat64(row);
    case ColumnType::kBool:
      return col.GetBool(row) ? 1.0 : 0.0;
    case ColumnType::kString:
      return 0.0;
  }
  return 0.0;
}

bool CompareDoubles(BinaryOp cmp, double a, double b) {
  switch (cmp) {
    case BinaryOp::kEq:
      return a == b;
    case BinaryOp::kNe:
      return a != b;
    case BinaryOp::kLt:
      return a < b;
    case BinaryOp::kLe:
      return a <= b;
    case BinaryOp::kGt:
      return a > b;
    case BinaryOp::kGe:
      return a >= b;
    default:
      return false;
  }
}

bool IsComparison(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kNe || op == BinaryOp::kLt ||
         op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;
}

int ResolveColumn(const Table& table, const ExprPtr& e) {
  if (e->kind != ExprKind::kColumnRef) return -1;
  int idx = table.schema().FieldIndex(e->column);
  if (idx < 0) {
    size_t dot = e->column.find('.');
    if (dot != std::string::npos) {
      idx = table.schema().FieldIndex(e->column.substr(dot + 1));
    }
  }
  return idx;
}

bool NumericLiteral(const ExprPtr& e, double* out) {
  if (e->kind != ExprKind::kLiteral) return false;
  auto d = e->literal.ToDouble();
  if (!d.ok()) return false;
  *out = *d;
  return true;
}

/// Tries to compile one conjunct; false if the shape is unsupported.
bool CompileConjunct(const Table& table, const ExprPtr& e, VecPred* out) {
  // Bare bool column.
  if (e->kind == ExprKind::kColumnRef) {
    int col = ResolveColumn(table, e);
    if (col < 0 ||
        table.column(static_cast<size_t>(col)).type() != ColumnType::kBool) {
      return false;
    }
    out->kind = VecPred::Kind::kBoolCol;
    out->col_a = col;
    return true;
  }
  if (e->kind != ExprKind::kBinary || !IsComparison(e->binary_op)) {
    return false;
  }
  const ExprPtr& lhs = e->children[0];
  const ExprPtr& rhs = e->children[1];
  // String equality: col = 'x' (either side).
  auto try_str = [&](const ExprPtr& col_e, const ExprPtr& lit_e) {
    if (e->binary_op != BinaryOp::kEq && e->binary_op != BinaryOp::kNe) {
      return false;
    }
    int col = ResolveColumn(table, col_e);
    if (col < 0 || table.column(static_cast<size_t>(col)).type() !=
                       ColumnType::kString) {
      return false;
    }
    if (lit_e->kind != ExprKind::kLiteral ||
        lit_e->literal.type() != ValueType::kString) {
      return false;
    }
    out->kind = VecPred::Kind::kStrEq;
    out->col_a = col;
    out->code = table.column(static_cast<size_t>(col))
                    .dict()
                    .Lookup(lit_e->literal.AsString());
    out->negate = e->binary_op == BinaryOp::kNe;
    return true;
  };
  if (try_str(lhs, rhs) || try_str(rhs, lhs)) return true;

  double constant = 0;
  // col CMP const / const CMP col.
  int col = ResolveColumn(table, lhs);
  if (col >= 0 && IsNumericColumn(table, col) &&
      NumericLiteral(rhs, &constant)) {
    out->kind = VecPred::Kind::kColConst;
    out->cmp = e->binary_op;
    out->col_a = col;
    out->constant = constant;
    return true;
  }
  col = ResolveColumn(table, rhs);
  if (col >= 0 && IsNumericColumn(table, col) &&
      NumericLiteral(lhs, &constant)) {
    // Mirror the comparison: const CMP col == col CMP' const.
    BinaryOp mirrored = e->binary_op;
    switch (e->binary_op) {
      case BinaryOp::kLt:
        mirrored = BinaryOp::kGt;
        break;
      case BinaryOp::kLe:
        mirrored = BinaryOp::kGe;
        break;
      case BinaryOp::kGt:
        mirrored = BinaryOp::kLt;
        break;
      case BinaryOp::kGe:
        mirrored = BinaryOp::kLe;
        break;
      default:
        break;
    }
    out->kind = VecPred::Kind::kColConst;
    out->cmp = mirrored;
    out->col_a = col;
    out->constant = constant;
    return true;
  }
  // colA CMP colB.
  int col_a = ResolveColumn(table, lhs);
  int col_b = ResolveColumn(table, rhs);
  if (col_a >= 0 && col_b >= 0 && IsNumericColumn(table, col_a) &&
      IsNumericColumn(table, col_b)) {
    out->kind = VecPred::Kind::kColCol;
    out->cmp = e->binary_op;
    out->col_a = col_a;
    out->col_b = col_b;
    return true;
  }
  // (colA - colB) CMP const.
  if (lhs->kind == ExprKind::kBinary && lhs->binary_op == BinaryOp::kSub &&
      NumericLiteral(rhs, &constant)) {
    int a = ResolveColumn(table, lhs->children[0]);
    int b = ResolveColumn(table, lhs->children[1]);
    if (a >= 0 && b >= 0 && IsNumericColumn(table, a) &&
        IsNumericColumn(table, b)) {
      out->kind = VecPred::Kind::kDiffConst;
      out->cmp = e->binary_op;
      out->col_a = a;
      out->col_b = b;
      out->constant = constant;
      return true;
    }
  }
  return false;
}

void SplitAnd(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    SplitAnd(e->children[0], out);
    SplitAnd(e->children[1], out);
    return;
  }
  out->push_back(e);
}

bool CompilePredicate(const Table& table, const ExprPtr& predicate,
                      std::vector<VecPred>* preds) {
  std::vector<ExprPtr> conjuncts;
  SplitAnd(predicate, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    VecPred pred;
    if (!CompileConjunct(table, c, &pred)) return false;
    preds->push_back(pred);
  }
  return true;
}

/// Applies one compiled conjunct on the raw vectors.
void ApplyVecPred(const Table& table, const VecPred& pred,
                  SelectionVector* sel) {
  const Column& a = table.column(static_cast<size_t>(pred.col_a));
  SelectionVector out;
  out.reserve(sel->size());
  switch (pred.kind) {
    case VecPred::Kind::kColConst: {
      // Specialize the hot types to avoid per-row dispatch.
      if (a.type() == ColumnType::kFloat64) {
        const double* data = a.doubles().data();
        for (uint32_t r : *sel) {
          if (!a.IsNull(r) && CompareDoubles(pred.cmp, data[r], pred.constant)) {
            out.push_back(r);
          }
        }
      } else if (a.type() == ColumnType::kInt64) {
        const int64_t* data = a.ints().data();
        for (uint32_t r : *sel) {
          if (!a.IsNull(r) &&
              CompareDoubles(pred.cmp, static_cast<double>(data[r]),
                             pred.constant)) {
            out.push_back(r);
          }
        }
      } else {
        for (uint32_t r : *sel) {
          if (!a.IsNull(r) &&
              CompareDoubles(pred.cmp, NumericAt(a, r), pred.constant)) {
            out.push_back(r);
          }
        }
      }
      break;
    }
    case VecPred::Kind::kColCol: {
      const Column& b = table.column(static_cast<size_t>(pred.col_b));
      for (uint32_t r : *sel) {
        if (!a.IsNull(r) && !b.IsNull(r) &&
            CompareDoubles(pred.cmp, NumericAt(a, r), NumericAt(b, r))) {
          out.push_back(r);
        }
      }
      break;
    }
    case VecPred::Kind::kDiffConst: {
      const Column& b = table.column(static_cast<size_t>(pred.col_b));
      if (a.type() == ColumnType::kFloat64 &&
          b.type() == ColumnType::kFloat64) {
        const double* da = a.doubles().data();
        const double* db = b.doubles().data();
        for (uint32_t r : *sel) {
          if (!a.IsNull(r) && !b.IsNull(r) &&
              CompareDoubles(pred.cmp, da[r] - db[r], pred.constant)) {
            out.push_back(r);
          }
        }
      } else {
        for (uint32_t r : *sel) {
          if (!a.IsNull(r) && !b.IsNull(r) &&
              CompareDoubles(pred.cmp, NumericAt(a, r) - NumericAt(b, r),
                             pred.constant)) {
            out.push_back(r);
          }
        }
      }
      break;
    }
    case VecPred::Kind::kStrEq: {
      const auto& codes = a.codes();
      for (uint32_t r : *sel) {
        if (a.IsNull(r)) continue;
        bool eq = codes[r] == pred.code;
        if (eq != pred.negate) out.push_back(r);
      }
      break;
    }
    case VecPred::Kind::kBoolCol: {
      for (uint32_t r : *sel) {
        if (!a.IsNull(r) && a.GetBool(r)) out.push_back(r);
      }
      break;
    }
  }
  *sel = std::move(out);
}

}  // namespace

bool IsVectorizablePredicate(const Table& table, const ExprPtr& predicate) {
  std::vector<VecPred> preds;
  return CompilePredicate(table, predicate, &preds);
}

namespace {

/// Concatenates per-morsel selections in morsel-index order — exactly
/// the row order a serial scan would produce.
SelectionVector MergeSelections(std::vector<SelectionVector>& partials) {
  size_t total = 0;
  for (const SelectionVector& p : partials) total += p.size();
  SelectionVector sel;
  sel.reserve(total);
  for (SelectionVector& p : partials) {
    sel.insert(sel.end(), p.begin(), p.end());
  }
  return sel;
}

}  // namespace

Result<SelectionVector> FilterIndicesInterpreted(const Table& table,
                                                 const ExprPtr& predicate) {
  TELEIOS_ASSIGN_OR_RETURN(BoundExpr bound,
                           BoundExpr::Bind(predicate, table));
  // Worst case the partials plus their merged copy hold every row index.
  TELEIOS_ASSIGN_OR_RETURN(
      governor::BudgetCharge charge,
      governor::ChargeCurrent(table.num_rows() * 2 * sizeof(uint32_t),
                              "filter selection vectors"));
  exec::ParallelOptions opts;
  opts.label = "exec.filter";
  exec::MorselPlan plan = exec::PlanMorsels(table.num_rows(), opts.grain);
  std::vector<SelectionVector> partials(plan.count);
  TELEIOS_RETURN_IF_ERROR(exec::ParallelFor(
      table.num_rows(), opts,
      [&](size_t morsel, size_t begin, size_t end) -> Status {
        SelectionVector& sel = partials[morsel];
        for (size_t r = begin; r < end; ++r) {
          TELEIOS_ASSIGN_OR_RETURN(Value v, bound.Eval(table, r));
          if (v.Truthy()) sel.push_back(static_cast<uint32_t>(r));
        }
        return Status::OK();
      }));
  return MergeSelections(partials);
}

Result<SelectionVector> FilterIndices(const Table& table,
                                      const ExprPtr& predicate) {
  std::vector<VecPred> preds;
  if (CompilePredicate(table, predicate, &preds)) {
    TELEIOS_ASSIGN_OR_RETURN(
        governor::BudgetCharge charge,
        governor::ChargeCurrent(table.num_rows() * 2 * sizeof(uint32_t),
                                "filter selection vectors"));
    exec::ParallelOptions opts;
    opts.label = "exec.filter";
    exec::MorselPlan plan = exec::PlanMorsels(table.num_rows(), opts.grain);
    std::vector<SelectionVector> partials(plan.count);
    TELEIOS_RETURN_IF_ERROR(exec::ParallelFor(
        table.num_rows(), opts,
        [&](size_t morsel, size_t begin, size_t end) -> Status {
          SelectionVector& sel = partials[morsel];
          sel.resize(end - begin);
          for (size_t i = begin; i < end; ++i) {
            sel[i - begin] = static_cast<uint32_t>(i);
          }
          for (const VecPred& pred : preds) {
            ApplyVecPred(table, pred, &sel);
            if (sel.empty()) break;
          }
          return Status::OK();
        }));
    return MergeSelections(partials);
  }
  return FilterIndicesInterpreted(table, predicate);
}

Result<Table> Filter(const Table& table, const ExprPtr& predicate) {
  TELEIOS_ASSIGN_OR_RETURN(SelectionVector sel,
                           FilterIndices(table, predicate));
  return table.Take(sel);
}

namespace {

ColumnType InferColumnType(const std::vector<Value>& values) {
  for (const Value& v : values) {
    if (v.is_null()) continue;
    auto ct = storage::ColumnTypeForValue(v.type());
    if (ct.ok()) return *ct;
  }
  return ColumnType::kFloat64;
}

/// Hash key for grouping / joins: the row's key values rendered with type
/// tags so 1 (int) and "1" never collide.
std::string MakeKey(const Table& table, size_t row,
                    const std::vector<int>& cols) {
  std::string key;
  for (int c : cols) {
    Value v = table.Get(row, c);
    key += static_cast<char>('0' + static_cast<int>(v.type()));
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

}  // namespace

Result<Table> ProjectCompute(const Table& table,
                             const std::vector<ProjectItem>& items) {
  std::vector<BoundExpr> bound;
  bound.reserve(items.size());
  for (const ProjectItem& item : items) {
    TELEIOS_ASSIGN_OR_RETURN(BoundExpr b, BoundExpr::Bind(item.expr, table));
    bound.push_back(std::move(b));
  }
  std::vector<std::vector<Value>> results(items.size());
  for (auto& column : results) column.resize(table.num_rows());
  exec::ParallelOptions opts;
  opts.label = "exec.project";
  TELEIOS_RETURN_IF_ERROR(exec::ParallelFor(
      table.num_rows(), opts,
      [&](size_t, size_t begin, size_t end) -> Status {
        for (size_t r = begin; r < end; ++r) {
          for (size_t i = 0; i < items.size(); ++i) {
            TELEIOS_ASSIGN_OR_RETURN(Value v, bound[i].Eval(table, r));
            results[i][r] = std::move(v);
          }
        }
        return Status::OK();
      }));
  std::vector<Field> fields;
  for (size_t i = 0; i < items.size(); ++i) {
    fields.push_back({items[i].alias, InferColumnType(results[i])});
  }
  Table out{Schema(std::move(fields))};
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t i = 0; i < items.size(); ++i) {
      TELEIOS_RETURN_IF_ERROR(out.column(i).Append(results[i][r]));
    }
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys,
                       JoinType type) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  std::vector<int> lcols, rcols;
  for (const std::string& k : left_keys) {
    int i = left.schema().FieldIndex(k);
    if (i < 0) return Status::NotFound("join key '" + k + "' not in left");
    lcols.push_back(i);
  }
  for (const std::string& k : right_keys) {
    int i = right.schema().FieldIndex(k);
    if (i < 0) return Status::NotFound("join key '" + k + "' not in right");
    rcols.push_back(i);
  }

  // Build on the right side.
  std::unordered_map<std::string, std::vector<uint32_t>> build;
  build.reserve(right.num_rows());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    bool has_null = false;
    for (int c : rcols) {
      if (right.column(c).IsNull(r)) {
        has_null = true;
        break;
      }
    }
    if (has_null) continue;  // SQL: NULL keys never match
    build[MakeKey(right, r, rcols)].push_back(static_cast<uint32_t>(r));
  }

  // Output schema: all left columns, then right columns with clash rename.
  std::vector<Field> fields;
  for (const Field& f : left.schema().fields()) fields.push_back(f);
  for (const Field& f : right.schema().fields()) {
    std::string name = f.name;
    bool clash = left.schema().FieldIndex(name) >= 0;
    fields.push_back({clash ? "r_" + name : name, f.type});
  }
  Table out{Schema(std::move(fields))};

  size_t nl = left.num_columns();
  size_t nr = right.num_columns();
  for (size_t r = 0; r < left.num_rows(); ++r) {
    bool has_null = false;
    for (int c : lcols) {
      if (left.column(c).IsNull(r)) {
        has_null = true;
        break;
      }
    }
    const std::vector<uint32_t>* matches = nullptr;
    if (!has_null) {
      auto it = build.find(MakeKey(left, r, lcols));
      if (it != build.end()) matches = &it->second;
    }
    if (matches) {
      for (uint32_t rr : *matches) {
        for (size_t c = 0; c < nl; ++c) {
          TELEIOS_RETURN_IF_ERROR(out.column(c).Append(left.Get(r, c)));
        }
        for (size_t c = 0; c < nr; ++c) {
          TELEIOS_RETURN_IF_ERROR(
              out.column(nl + c).Append(right.Get(rr, c)));
        }
      }
    } else if (type == JoinType::kLeftOuter) {
      for (size_t c = 0; c < nl; ++c) {
        TELEIOS_RETURN_IF_ERROR(out.column(c).Append(left.Get(r, c)));
      }
      for (size_t c = 0; c < nr; ++c) out.column(nl + c).AppendNull();
    }
  }
  return out;
}

namespace {

struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min, max;
  bool seen = false;

  void Update(const Value& v) {
    if (v.is_null()) return;
    ++count;
    auto d = v.ToDouble();
    if (d.ok()) {
      sum += *d;
      if (v.type() == ValueType::kInt64) {
        isum += v.AsInt64();
      } else {
        sum_is_int = false;
      }
    }
    if (!seen || v.Compare(min) < 0) min = v;
    if (!seen || v.Compare(max) > 0) max = v;
    seen = true;
  }

  /// Folds a later morsel's partial state into this one. Partials are
  /// merged in morsel-index order, so the floating-point accumulation
  /// order is fixed by the morsel plan — identical at any thread count.
  void Merge(const AggState& later) {
    count += later.count;
    sum += later.sum;
    isum += later.isum;
    sum_is_int = sum_is_int && later.sum_is_int;
    if (later.seen) {
      if (!seen || later.min.Compare(min) < 0) min = later.min;
      if (!seen || later.max.Compare(max) > 0) max = later.max;
      seen = true;
    }
  }

  Result<Value> Finish(const std::string& fn) const {
    if (fn == "count") return Value(count);
    if (!seen) return Value();  // empty group -> NULL (except count)
    if (fn == "sum") return sum_is_int ? Value(isum) : Value(sum);
    if (fn == "avg") return Value(sum / static_cast<double>(count));
    if (fn == "min") return min;
    if (fn == "max") return max;
    return Status::NotFound("unknown aggregate '" + fn + "'");
  }
};

}  // namespace

Result<Table> GroupAggregate(const Table& table,
                             const std::vector<std::string>& group_columns,
                             const std::vector<AggregateItem>& aggregates) {
  std::vector<int> gcols;
  for (const std::string& g : group_columns) {
    int i = table.schema().FieldIndex(g);
    if (i < 0) return Status::NotFound("group column '" + g + "' not found");
    gcols.push_back(i);
  }
  std::vector<BoundExpr> bound_args;
  std::vector<bool> has_arg;
  for (const AggregateItem& a : aggregates) {
    if (a.argument) {
      TELEIOS_ASSIGN_OR_RETURN(BoundExpr b,
                               BoundExpr::Bind(a.argument, table));
      bound_args.push_back(std::move(b));
      has_arg.push_back(true);
    } else {
      bound_args.emplace_back();
      has_arg.push_back(false);
    }
  }

  struct Group {
    uint32_t first_row;
    std::vector<AggState> states;
  };
  struct Partial {
    std::unordered_map<std::string, Group> groups;
    std::vector<std::string> order;  // first-seen order within the morsel
  };

  // Reserve for the worst case — every row its own group (key bytes +
  // bucket + one state per aggregate) — so an aggregation too big for
  // the budget is refused up front instead of dying mid-build.
  TELEIOS_ASSIGN_OR_RETURN(
      governor::BudgetCharge charge,
      governor::ChargeCurrent(
          table.num_rows() *
              (sizeof(Group) + 48 + aggregates.size() * sizeof(AggState)),
          "group-aggregate hash tables"));

  // Morsel-parallel pre-aggregation: each morsel builds its own hash
  // table, then the partials fold together in morsel-index order, which
  // reproduces the serial first-seen group order and accumulation order.
  exec::ParallelOptions opts;
  opts.label = "exec.aggregate";
  exec::MorselPlan plan = exec::PlanMorsels(table.num_rows(), opts.grain);
  std::vector<Partial> partials(plan.count);
  TELEIOS_RETURN_IF_ERROR(exec::ParallelFor(
      table.num_rows(), opts,
      [&](size_t morsel, size_t begin, size_t end) -> Status {
        Partial& part = partials[morsel];
        for (size_t r = begin; r < end; ++r) {
          std::string key =
              gcols.empty() ? std::string() : MakeKey(table, r, gcols);
          auto it = part.groups.find(key);
          if (it == part.groups.end()) {
            Group g;
            g.first_row = static_cast<uint32_t>(r);
            g.states.resize(aggregates.size());
            it = part.groups.emplace(key, std::move(g)).first;
            part.order.push_back(key);
          }
          for (size_t a = 0; a < aggregates.size(); ++a) {
            Value v;
            if (has_arg[a]) {
              TELEIOS_ASSIGN_OR_RETURN(v, bound_args[a].Eval(table, r));
            } else {
              v = Value(int64_t{1});  // count(*)
            }
            it->second.states[a].Update(v);
          }
        }
        return Status::OK();
      }));

  std::unordered_map<std::string, Group> groups;
  std::vector<std::string> group_order;
  for (Partial& part : partials) {
    for (const std::string& key : part.order) {
      Group& incoming = part.groups.at(key);
      auto it = groups.find(key);
      if (it == groups.end()) {
        groups.emplace(key, std::move(incoming));
        group_order.push_back(key);
      } else {
        for (size_t a = 0; a < aggregates.size(); ++a) {
          it->second.states[a].Merge(incoming.states[a]);
        }
      }
    }
  }

  // Global aggregate over an empty input still yields one row.
  if (gcols.empty() && groups.empty()) {
    Group g;
    g.first_row = 0;
    g.states.resize(aggregates.size());
    groups.emplace("", std::move(g));
    group_order.push_back("");
  }

  // Compute results first to infer output types.
  std::vector<std::vector<Value>> agg_values(aggregates.size());
  for (const std::string& key : group_order) {
    const Group& g = groups.at(key);
    for (size_t a = 0; a < aggregates.size(); ++a) {
      TELEIOS_ASSIGN_OR_RETURN(Value v,
                               g.states[a].Finish(aggregates[a].function));
      agg_values[a].push_back(std::move(v));
    }
  }

  std::vector<Field> fields;
  for (int c : gcols) fields.push_back(table.schema().field(c));
  for (size_t a = 0; a < aggregates.size(); ++a) {
    ColumnType t = aggregates[a].function == "count"
                       ? ColumnType::kInt64
                       : InferColumnType(agg_values[a]);
    fields.push_back({aggregates[a].alias, t});
  }
  Table out{Schema(std::move(fields))};
  size_t gi = 0;
  for (const std::string& key : group_order) {
    const Group& g = groups.at(key);
    size_t c = 0;
    for (int gc : gcols) {
      TELEIOS_RETURN_IF_ERROR(
          out.column(c++).Append(table.Get(g.first_row, gc)));
    }
    for (size_t a = 0; a < aggregates.size(); ++a) {
      TELEIOS_RETURN_IF_ERROR(out.column(c++).Append(agg_values[a][gi]));
    }
    ++gi;
  }
  return out;
}

Result<Table> Sort(const Table& table, const std::vector<SortKey>& keys) {
  std::vector<int> cols;
  for (const SortKey& k : keys) {
    int i = table.schema().FieldIndex(k.column);
    if (i < 0) return Status::NotFound("sort column '" + k.column + "' not found");
    cols.push_back(i);
  }
  // The permutation vector plus stable_sort's temporary buffer.
  TELEIOS_ASSIGN_OR_RETURN(
      governor::BudgetCharge charge,
      governor::ChargeCurrent(table.num_rows() * 2 * sizeof(uint32_t),
                              "sort selection"));
  SelectionVector sel(table.num_rows());
  for (size_t i = 0; i < sel.size(); ++i) sel[i] = static_cast<uint32_t>(i);
  std::stable_sort(sel.begin(), sel.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      int c = table.Get(a, cols[k]).Compare(table.Get(b, cols[k]));
      if (c != 0) return keys[k].descending ? c > 0 : c < 0;
    }
    return false;
  });
  return table.Take(sel);
}

Table Limit(const Table& table, size_t limit, size_t offset) {
  SelectionVector sel;
  for (size_t r = offset; r < table.num_rows() && sel.size() < limit; ++r) {
    sel.push_back(static_cast<uint32_t>(r));
  }
  return table.Take(sel);
}

Table Distinct(const Table& table) {
  std::vector<int> cols(table.num_columns());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = static_cast<int>(i);
  std::unordered_map<std::string, bool> seen;
  SelectionVector sel;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::string key = MakeKey(table, r, cols);
    if (seen.emplace(std::move(key), true).second) {
      sel.push_back(static_cast<uint32_t>(r));
    }
  }
  return table.Take(sel);
}

}  // namespace teleios::relational
