#ifndef TELEIOS_RELATIONAL_EXPRESSION_H_
#define TELEIOS_RELATIONAL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace teleios::relational {

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kFunction,
};

enum class UnaryOp { kNeg, kNot };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kLike,
};

const char* BinaryOpName(BinaryOp op);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression tree node, shared by the SQL and SciQL front ends.
struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef: optionally qualified "table.column".
  std::string column;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;

  // kFunction: lower-cased name.
  std::string function;

  std::vector<ExprPtr> children;

  static ExprPtr Literal(Value v);
  static ExprPtr ColumnRef(std::string name);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Function(std::string name, std::vector<ExprPtr> args);

  /// SQL-ish rendering for debugging and plan explanation.
  std::string ToString() const;
};

/// True when `name` is one of the SQL aggregate functions
/// (count/sum/avg/min/max).
bool IsAggregateFunction(const std::string& name);

/// True when the tree contains an aggregate function call.
bool ContainsAggregate(const ExprPtr& expr);

/// Collects the distinct column names referenced by the tree.
void CollectColumnRefs(const ExprPtr& expr, std::vector<std::string>* out);

}  // namespace teleios::relational

#endif  // TELEIOS_RELATIONAL_EXPRESSION_H_
