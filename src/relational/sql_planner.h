#ifndef TELEIOS_RELATIONAL_SQL_PLANNER_H_
#define TELEIOS_RELATIONAL_SQL_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/sql_parser.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace teleios::relational {

/// Plans and executes a SELECT against the catalog.
///
/// The planner applies two classic column-store rewrites before
/// execution: (1) WHERE conjuncts whose columns all come from a single
/// base table are pushed below the join; (2) join conditions are
/// decomposed into hash-join equality keys, with non-equality residue
/// applied as a post-join filter.
Result<storage::Table> ExecuteSelect(const SelectStatement& stmt,
                                     const storage::Catalog& catalog);

/// Renders the plan the optimizer would run, for EXPLAIN-style debugging.
Result<std::string> ExplainSelect(const SelectStatement& stmt,
                                  const storage::Catalog& catalog);

}  // namespace teleios::relational

#endif  // TELEIOS_RELATIONAL_SQL_PLANNER_H_
