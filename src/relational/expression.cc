#include "relational/expression.h"

#include <algorithm>

#include "common/strings.h"

namespace teleios::relational {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::ColumnRef(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Function(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunction;
  e->function = StrLower(name);
  e->children = std::move(args);
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.type() == ValueType::kString
                 ? "'" + literal.ToString() + "'"
                 : literal.ToString();
    case ExprKind::kColumnRef:
      return column;
    case ExprKind::kUnary:
      return (unary_op == UnaryOp::kNeg ? "-" : "NOT ") +
             children[0]->ToString();
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " +
             BinaryOpName(binary_op) + " " + children[1]->ToString() + ")";
    case ExprKind::kFunction: {
      std::string s = function + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) s += ", ";
        s += children[i]->ToString();
      }
      return s + ")";
    }
  }
  return "?";
}

bool IsAggregateFunction(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" ||
         name == "min" || name == "max";
}

bool ContainsAggregate(const ExprPtr& expr) {
  if (!expr) return false;
  if (expr->kind == ExprKind::kFunction && IsAggregateFunction(expr->function)) {
    return true;
  }
  return std::any_of(expr->children.begin(), expr->children.end(),
                     [](const ExprPtr& c) { return ContainsAggregate(c); });
}

void CollectColumnRefs(const ExprPtr& expr, std::vector<std::string>* out) {
  if (!expr) return;
  if (expr->kind == ExprKind::kColumnRef) {
    if (std::find(out->begin(), out->end(), expr->column) == out->end()) {
      out->push_back(expr->column);
    }
  }
  for (const ExprPtr& c : expr->children) CollectColumnRefs(c, out);
}

}  // namespace teleios::relational
