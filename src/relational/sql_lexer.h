#ifndef TELEIOS_RELATIONAL_SQL_LEXER_H_
#define TELEIOS_RELATIONAL_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace teleios::relational {

enum class TokenType {
  kIdentifier,  // unquoted word (case preserved; keywords matched later)
  kInteger,
  kFloat,
  kString,   // 'quoted'
  kSymbol,   // punctuation / operator, in `text`
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;   // identifier/symbol text or string contents
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;  // byte offset, for error messages
};

/// Tokenizes an SQL/SciQL statement. Symbols recognised: multi-char
/// (<= >= <> != ||) and single-char ( ) [ ] { } , ; . + - * / % = < > : ?.
/// Comments: `-- to end of line`.
Result<std::vector<Token>> LexSql(const std::string& input);

/// Cursor over a token stream with keyword-aware helpers.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  Token Next();
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  /// True + advance if the current token is the keyword `kw`
  /// (case-insensitive identifier match).
  bool AcceptKeyword(const std::string& kw);
  /// True + advance if the current token is symbol `sym`.
  bool AcceptSymbol(const std::string& sym);

  /// Errors unless the current token is keyword `kw`; advances.
  Status ExpectKeyword(const std::string& kw);
  /// Errors unless the current token is symbol `sym`; advances.
  Status ExpectSymbol(const std::string& sym);
  /// Errors unless the current token is an identifier; returns its text.
  Result<std::string> ExpectIdentifier();

  /// True if the current token is keyword `kw` (no advance).
  bool PeekKeyword(const std::string& kw) const;
  bool PeekSymbol(const std::string& sym) const;

  Status MakeError(const std::string& message) const;

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace teleios::relational

#endif  // TELEIOS_RELATIONAL_SQL_LEXER_H_
