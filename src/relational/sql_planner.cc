#include "relational/sql_planner.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace teleios::relational {

using storage::Table;

namespace {

/// Splits a conjunction into its AND-ed factors.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind == ExprKind::kBinary && expr->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(expr->children[0], out);
    SplitConjuncts(expr->children[1], out);
    return;
  }
  out->push_back(expr);
}

ExprPtr AndTogether(const std::vector<ExprPtr>& exprs) {
  ExprPtr acc;
  for (const ExprPtr& e : exprs) {
    acc = acc ? Expr::Binary(BinaryOp::kAnd, acc, e) : e;
  }
  return acc;
}

/// Strips a "qualifier." prefix.
std::string BareName(const std::string& name) {
  size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

/// Qualifier part of a column ref, or "".
std::string Qualifier(const std::string& name) {
  size_t dot = name.find('.');
  return dot == std::string::npos ? std::string() : name.substr(0, dot);
}

/// True if every column referenced by `expr` exists in `schema` and any
/// qualifier matches `names` (table name or alias).
bool ResolvableAgainst(const ExprPtr& expr, const storage::Schema& schema,
                       const std::vector<std::string>& names) {
  std::vector<std::string> cols;
  CollectColumnRefs(expr, &cols);
  for (const std::string& c : cols) {
    std::string q = Qualifier(c);
    if (!q.empty() &&
        std::find(names.begin(), names.end(), q) == names.end()) {
      return false;
    }
    if (schema.FieldIndex(BareName(c)) < 0 && schema.FieldIndex(c) < 0) {
      return false;
    }
  }
  return true;
}

struct JoinKeys {
  std::vector<std::string> left;
  std::vector<std::string> right;
  std::vector<ExprPtr> residue;  // non-equality conditions
};

/// Decomposes an ON condition into equality key pairs between the two
/// sides plus residue.
JoinKeys DecomposeJoinCondition(const ExprPtr& cond,
                                const storage::Schema& left_schema,
                                const storage::Schema& right_schema) {
  JoinKeys keys;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(cond, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    if (c->kind == ExprKind::kBinary && c->binary_op == BinaryOp::kEq &&
        c->children[0]->kind == ExprKind::kColumnRef &&
        c->children[1]->kind == ExprKind::kColumnRef) {
      std::string a = BareName(c->children[0]->column);
      std::string b = BareName(c->children[1]->column);
      if (left_schema.FieldIndex(a) >= 0 && right_schema.FieldIndex(b) >= 0) {
        keys.left.push_back(a);
        keys.right.push_back(b);
        continue;
      }
      if (left_schema.FieldIndex(b) >= 0 && right_schema.FieldIndex(a) >= 0) {
        keys.left.push_back(b);
        keys.right.push_back(a);
        continue;
      }
    }
    keys.residue.push_back(c);
  }
  return keys;
}

/// Rewrites every occurrence of subtree `target` (matched structurally via
/// ToString) with a column reference to `alias`.
ExprPtr RewriteSubtree(const ExprPtr& expr, const std::string& target_str,
                       const std::string& alias) {
  if (expr->ToString() == target_str) return Expr::ColumnRef(alias);
  if (expr->children.empty()) return expr;
  auto copy = std::make_shared<Expr>(*expr);
  for (ExprPtr& c : copy->children) {
    c = RewriteSubtree(c, target_str, alias);
  }
  return copy;
}

struct PlanTrace {
  std::vector<std::string> steps;
  void Add(std::string s) { steps.push_back(std::move(s)); }
};

Result<Table> RunSelect(const SelectStatement& stmt,
                        const storage::Catalog& catalog, PlanTrace* trace) {
  // --- FROM + pushdown + joins -------------------------------------------
  storage::TablePtr base_ptr;
  std::vector<ExprPtr> conjuncts;
  {
    obs::TraceSpan plan_span("plan");
    TELEIOS_ASSIGN_OR_RETURN(base_ptr, catalog.GetTable(stmt.from.name));
    if (stmt.where) SplitConjuncts(stmt.where, &conjuncts);
    plan_span.SetAttr("conjuncts", std::to_string(conjuncts.size()));
    plan_span.SetAttr("joins", std::to_string(stmt.joins.size()));
  }

  auto push_down = [&](const Table& table,
                       const std::vector<std::string>& names)
      -> Result<Table> {
    std::vector<ExprPtr> pushed;
    std::vector<ExprPtr> rest;
    for (const ExprPtr& c : conjuncts) {
      if (ResolvableAgainst(c, table.schema(), names)) {
        pushed.push_back(c);
      } else {
        rest.push_back(c);
      }
    }
    conjuncts = std::move(rest);
    if (pushed.empty()) return table;
    trace->Add("  pushdown filter: " + AndTogether(pushed)->ToString());
    return Filter(table, AndTogether(pushed));
  };

  Table current = *base_ptr;
  trace->Add("scan " + stmt.from.name);
  {
    obs::TraceSpan scan_span("scan");
    scan_span.SetAttr("table", stmt.from.name);
    scan_span.SetAttr("rows", std::to_string(current.num_rows()));
    obs::Count("teleios_relational_scans_total");
  }
  if (!stmt.joins.empty()) {
    std::vector<std::string> left_names = {stmt.from.name};
    if (!stmt.from.alias.empty()) left_names.push_back(stmt.from.alias);
    TELEIOS_ASSIGN_OR_RETURN(current, push_down(current, left_names));
    for (const JoinClause& join : stmt.joins) {
      TELEIOS_ASSIGN_OR_RETURN(storage::TablePtr right_ptr,
                               catalog.GetTable(join.table.name));
      Table right = *right_ptr;
      std::vector<std::string> right_names = {join.table.name};
      if (!join.table.alias.empty()) right_names.push_back(join.table.alias);
      // Push single-side conjuncts below the join (inner joins only; for
      // left outer joins pushing into the right side is still sound, but
      // pushing a left-side filter is too — both are row-preserving here).
      {
        std::vector<ExprPtr> pushed;
        std::vector<ExprPtr> rest;
        for (const ExprPtr& c : conjuncts) {
          if (ResolvableAgainst(c, right.schema(), right_names)) {
            pushed.push_back(c);
          } else {
            rest.push_back(c);
          }
        }
        if (join.type == JoinType::kInner && !pushed.empty()) {
          conjuncts = std::move(rest);
          trace->Add("  pushdown filter (right): " +
                     AndTogether(pushed)->ToString());
          TELEIOS_ASSIGN_OR_RETURN(right, Filter(right, AndTogether(pushed)));
        }
      }
      JoinKeys keys = DecomposeJoinCondition(join.condition, current.schema(),
                                             right.schema());
      if (keys.left.empty()) {
        return Status::Unimplemented(
            "join requires at least one equality condition between the two "
            "tables: " +
            join.condition->ToString());
      }
      trace->Add("hash join on " + keys.left[0] + " = " + keys.right[0] +
                 (join.type == JoinType::kLeftOuter ? " (left outer)" : ""));
      {
        obs::TraceSpan join_span("hash join");
        join_span.SetAttr("right", join.table.name);
        TELEIOS_ASSIGN_OR_RETURN(
            current,
            HashJoin(current, right, keys.left, keys.right, join.type));
        join_span.SetAttr("rows", std::to_string(current.num_rows()));
      }
      if (!keys.residue.empty()) {
        TELEIOS_ASSIGN_OR_RETURN(current,
                                 Filter(current, AndTogether(keys.residue)));
      }
      left_names.insert(left_names.end(), right_names.begin(),
                        right_names.end());
    }
  }
  if (!conjuncts.empty()) {
    ExprPtr where = AndTogether(conjuncts);
    trace->Add("filter " + where->ToString() +
               (IsVectorizablePredicate(current, where) ? " [vectorized]"
                                                        : " [interpreted]"));
    obs::TraceSpan filter_span("filter");
    TELEIOS_ASSIGN_OR_RETURN(current, Filter(current, where));
    filter_span.SetAttr("rows", std::to_string(current.num_rows()));
  }

  // --- aggregation or plain projection -----------------------------------
  bool has_aggregate =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& it) {
                    return !it.is_star && ContainsAggregate(it.expr);
                  });

  Table output;
  if (has_aggregate) {
    // Materialize non-trivial group expressions as columns.
    std::vector<std::string> group_names;
    {
      std::vector<ProjectItem> pre;
      for (size_t c = 0; c < current.num_columns(); ++c) {
        const std::string& name = current.schema().field(c).name;
        pre.push_back({Expr::ColumnRef(name), name});
      }
      int gi = 0;
      for (const ExprPtr& g : stmt.group_by) {
        if (g->kind == ExprKind::kColumnRef) {
          group_names.push_back(BareName(g->column));
        } else {
          std::string name = "_g" + std::to_string(gi++);
          pre.push_back({g, name});
          group_names.push_back(name);
        }
      }
      if (gi > 0) {
        TELEIOS_ASSIGN_OR_RETURN(current, ProjectCompute(current, pre));
      }
    }
    // Select items: group columns or aggregate calls.
    std::vector<AggregateItem> aggs;
    struct OutputItem {
      bool from_group;
      std::string name;   // group column or aggregate alias
      std::string alias;  // output name
    };
    std::vector<OutputItem> outputs;
    for (const SelectItem& item : stmt.items) {
      if (item.is_star) {
        return Status::InvalidArgument("SELECT * with GROUP BY");
      }
      if (ContainsAggregate(item.expr)) {
        if (item.expr->kind != ExprKind::kFunction ||
            !IsAggregateFunction(item.expr->function)) {
          return Status::Unimplemented(
              "aggregate must be a direct function call: " +
              item.expr->ToString());
        }
        AggregateItem agg;
        agg.function = item.expr->function;
        agg.argument =
            item.expr->children.empty() ? nullptr : item.expr->children[0];
        agg.alias = item.alias;
        aggs.push_back(agg);
        outputs.push_back({false, item.alias, item.alias});
      } else {
        // Must match a group expression.
        std::string bare = item.expr->kind == ExprKind::kColumnRef
                               ? BareName(item.expr->column)
                               : item.expr->ToString();
        auto it = std::find(group_names.begin(), group_names.end(), bare);
        if (it == group_names.end()) {
          // Try structural match against the original group expressions.
          bool found = false;
          for (size_t g = 0; g < stmt.group_by.size(); ++g) {
            if (stmt.group_by[g]->ToString() == item.expr->ToString()) {
              bare = group_names[g];
              found = true;
              break;
            }
          }
          if (!found) {
            return Status::InvalidArgument(
                "non-aggregate select item not in GROUP BY: " +
                item.expr->ToString());
          }
        }
        outputs.push_back({true, bare, item.alias});
      }
    }
    // HAVING may reference aggregates; materialize them too.
    ExprPtr having = stmt.having;
    if (having) {
      std::vector<ExprPtr> agg_calls;
      std::function<void(const ExprPtr&)> collect = [&](const ExprPtr& e) {
        if (e->kind == ExprKind::kFunction && IsAggregateFunction(e->function)) {
          agg_calls.push_back(e);
          return;
        }
        for (const ExprPtr& c : e->children) collect(c);
      };
      collect(having);
      for (const ExprPtr& call : agg_calls) {
        std::string call_str = call->ToString();
        // Reuse an existing aggregate when the select list already has it.
        std::string alias;
        for (size_t i = 0; i < stmt.items.size(); ++i) {
          if (!stmt.items[i].is_star &&
              stmt.items[i].expr->ToString() == call_str) {
            alias = stmt.items[i].alias;
            break;
          }
        }
        if (alias.empty()) {
          alias = "_h" + std::to_string(aggs.size());
          AggregateItem agg;
          agg.function = call->function;
          agg.argument = call->children.empty() ? nullptr : call->children[0];
          agg.alias = alias;
          aggs.push_back(agg);
        }
        having = RewriteSubtree(having, call_str, alias);
      }
    }
    trace->Add("group aggregate (" + std::to_string(group_names.size()) +
               " keys, " + std::to_string(aggs.size()) + " aggregates)");
    obs::TraceSpan agg_span("aggregate");
    TELEIOS_ASSIGN_OR_RETURN(Table agg_out,
                             GroupAggregate(current, group_names, aggs));
    agg_span.SetAttr("groups", std::to_string(agg_out.num_rows()));
    if (having) {
      trace->Add("having " + having->ToString());
      TELEIOS_ASSIGN_OR_RETURN(agg_out, Filter(agg_out, having));
    }
    // Final projection to requested output order / names.
    std::vector<ProjectItem> proj;
    for (const OutputItem& o : outputs) {
      proj.push_back({Expr::ColumnRef(o.name), o.alias});
    }
    TELEIOS_ASSIGN_OR_RETURN(output, ProjectCompute(agg_out, proj));
  } else {
    bool star_only = stmt.items.size() == 1 && stmt.items[0].is_star;
    if (star_only) {
      output = current;
    } else {
      std::vector<ProjectItem> proj;
      for (const SelectItem& item : stmt.items) {
        if (item.is_star) {
          for (size_t c = 0; c < current.num_columns(); ++c) {
            const std::string& name = current.schema().field(c).name;
            proj.push_back({Expr::ColumnRef(name), name});
          }
        } else {
          proj.push_back({item.expr, item.alias});
        }
      }
      trace->Add("project " + std::to_string(proj.size()) + " columns");
      TELEIOS_ASSIGN_OR_RETURN(output, ProjectCompute(current, proj));
    }
  }

  if (stmt.distinct) {
    trace->Add("distinct");
    output = Distinct(output);
  }
  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    for (const OrderItem& o : stmt.order_by) {
      keys.push_back({o.column, o.descending});
    }
    trace->Add("sort");
    obs::TraceSpan sort_span("sort");
    TELEIOS_ASSIGN_OR_RETURN(output, Sort(output, keys));
  }
  if (stmt.limit >= 0 || stmt.offset > 0) {
    size_t limit = stmt.limit >= 0 ? static_cast<size_t>(stmt.limit)
                                   : output.num_rows();
    trace->Add("limit " + std::to_string(limit));
    output = Limit(output, limit, static_cast<size_t>(stmt.offset));
  }
  return output;
}

}  // namespace

Result<Table> ExecuteSelect(const SelectStatement& stmt,
                            const storage::Catalog& catalog) {
  PlanTrace trace;
  obs::TraceSpan exec_span("execute");
  Result<Table> result = RunSelect(stmt, catalog, &trace);
  if (result.ok()) {
    exec_span.SetAttr("rows", std::to_string(result->num_rows()));
    obs::Count("teleios_relational_rows_emitted_total", result->num_rows());
  }
  return result;
}

Result<std::string> ExplainSelect(const SelectStatement& stmt,
                                  const storage::Catalog& catalog) {
  PlanTrace trace;
  TELEIOS_ASSIGN_OR_RETURN(Table out, RunSelect(stmt, catalog, &trace));
  (void)out;  // EXPLAIN wants the trace, not the rows; execution errors
              // still propagate via ASSIGN_OR_RETURN above.
  std::ostringstream os;
  for (const std::string& s : trace.steps) os << s << "\n";
  return os.str();
}

}  // namespace teleios::relational
