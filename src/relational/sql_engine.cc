#include "relational/sql_engine.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/evaluator.h"
#include "relational/sql_planner.h"

namespace teleios::relational {

using storage::Column;
using storage::Field;
using storage::Schema;
using storage::Table;
using storage::TablePtr;

namespace {

/// Evaluates a constant expression (no column refs allowed).
Result<Value> EvalConstant(const ExprPtr& expr) {
  return Evaluate(expr, [](const std::string& name) -> Result<Value> {
    return Status::InvalidArgument("column reference '" + name +
                                   "' in constant context");
  });
}

Table AffectedRows(int64_t n) {
  Table t{Schema({{"affected", storage::ColumnType::kInt64}})};
  t.column(0).AppendInt64(n);
  return t;
}

}  // namespace

Result<Table> SqlEngine::Execute(const std::string& sql) {
  obs::Count("teleios_sql_statements_total");
  obs::TraceSpan statement_span("sql.statement",
                                obs::MetricsRegistry::Global().GetHistogram(
                                    "teleios_sql_execute_millis"));
  Result<Table> result = ParseAndExecute(sql);
  if (result.ok()) {
    obs::Count("teleios_sql_result_rows_total", result->num_rows());
  } else {
    obs::Count(obs::WithLabel("teleios_sql_errors_total", "code",
                              StatusCodeName(result.status().code())));
  }
  return result;
}

Result<Table> SqlEngine::ParseAndExecute(const std::string& sql) {
  Statement stmt;
  {
    obs::TraceSpan parse_span("parse");
    TELEIOS_ASSIGN_OR_RETURN(stmt, ParseSql(sql));
  }
  return ExecuteStatement(stmt);
}

Result<std::string> SqlEngine::Explain(const std::string& sql) {
  TELEIOS_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  const auto* select = std::get_if<SelectStatement>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  return ExplainSelect(*select, *catalog_);
}

Result<Table> SqlEngine::ExecuteStatement(const Statement& stmt) {
  if (const auto* select = std::get_if<SelectStatement>(&stmt)) {
    // Serve `sys.*` references through an overlay catalog: a cheap copy
    // of the base (shared table pointers) plus a fresh snapshot of every
    // served table this statement touches, materialized at execute time.
    if (virtual_tables_ != nullptr) {
      std::vector<const std::string*> names;
      names.push_back(&select->from.name);
      for (const JoinClause& join : select->joins) {
        names.push_back(&join.table.name);
      }
      storage::Catalog overlay;
      std::vector<std::string> materialized;
      for (const std::string* name : names) {
        if (!virtual_tables_->Serves(*name)) continue;
        if (materialized.empty()) overlay = *catalog_;
        if (std::find(materialized.begin(), materialized.end(), *name) !=
            materialized.end()) {
          continue;  // self-join: one snapshot per statement
        }
        TELEIOS_ASSIGN_OR_RETURN(TablePtr table,
                                 virtual_tables_->Materialize(*name));
        // The provider shadows any stored table of the same name.
        if (overlay.HasTable(*name)) {
          TELEIOS_RETURN_IF_ERROR(overlay.DropTable(*name));
        }
        TELEIOS_RETURN_IF_ERROR(overlay.CreateTable(*name, std::move(table)));
        materialized.push_back(*name);
      }
      if (!materialized.empty()) return ExecuteSelect(*select, overlay);
    }
    return ExecuteSelect(*select, *catalog_);  // emits its own execute span
  }
  obs::TraceSpan exec_span("execute");
  if (const auto* create = std::get_if<CreateTableStatement>(&stmt)) {
    auto table = std::make_shared<Table>(Schema(create->fields));
    TELEIOS_RETURN_IF_ERROR(catalog_->CreateTable(create->name, table));
    return AffectedRows(0);
  }
  if (const auto* drop = std::get_if<DropTableStatement>(&stmt)) {
    TELEIOS_RETURN_IF_ERROR(catalog_->DropTable(drop->name));
    return AffectedRows(0);
  }
  if (const auto* insert = std::get_if<InsertStatement>(&stmt)) {
    TELEIOS_ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(insert->table));
    // Map provided column order to schema order.
    std::vector<int> slots;
    if (insert->columns.empty()) {
      for (size_t i = 0; i < table->num_columns(); ++i) {
        slots.push_back(static_cast<int>(i));
      }
    } else {
      for (const std::string& c : insert->columns) {
        int idx = table->schema().FieldIndex(c);
        if (idx < 0) return Status::NotFound("no column '" + c + "'");
        slots.push_back(idx);
      }
    }
    for (const auto& row_exprs : insert->rows) {
      if (row_exprs.size() != slots.size()) {
        return Status::InvalidArgument("INSERT arity mismatch");
      }
      std::vector<Value> row(table->num_columns());  // defaults to NULL
      for (size_t i = 0; i < slots.size(); ++i) {
        TELEIOS_ASSIGN_OR_RETURN(row[slots[i]], EvalConstant(row_exprs[i]));
      }
      TELEIOS_RETURN_IF_ERROR(table->AppendRow(row));
    }
    return AffectedRows(static_cast<int64_t>(insert->rows.size()));
  }
  if (const auto* del = std::get_if<DeleteStatement>(&stmt)) {
    TELEIOS_ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(del->table));
    storage::SelectionVector keep;
    if (del->where) {
      TELEIOS_ASSIGN_OR_RETURN(BoundExpr bound,
                               BoundExpr::Bind(del->where, *table));
      for (size_t r = 0; r < table->num_rows(); ++r) {
        TELEIOS_ASSIGN_OR_RETURN(Value v, bound.Eval(*table, r));
        if (!v.Truthy()) keep.push_back(static_cast<uint32_t>(r));
      }
    }
    int64_t removed = static_cast<int64_t>(table->num_rows() - keep.size());
    *table = table->Take(keep);
    return AffectedRows(removed);
  }
  if (const auto* update = std::get_if<UpdateStatement>(&stmt)) {
    TELEIOS_ASSIGN_OR_RETURN(TablePtr table,
                             catalog_->GetTable(update->table));
    std::vector<int> slots;
    std::vector<BoundExpr> exprs;
    for (const auto& [col, expr] : update->assignments) {
      int idx = table->schema().FieldIndex(col);
      if (idx < 0) return Status::NotFound("no column '" + col + "'");
      slots.push_back(idx);
      TELEIOS_ASSIGN_OR_RETURN(BoundExpr b, BoundExpr::Bind(expr, *table));
      exprs.push_back(std::move(b));
    }
    BoundExpr where;
    bool has_where = update->where != nullptr;
    if (has_where) {
      TELEIOS_ASSIGN_OR_RETURN(where, BoundExpr::Bind(update->where, *table));
    }
    // Rebuild the table row by row (columns are append-only).
    Table rebuilt{table->schema()};
    int64_t changed = 0;
    for (size_t r = 0; r < table->num_rows(); ++r) {
      bool hit = true;
      if (has_where) {
        TELEIOS_ASSIGN_OR_RETURN(Value v, where.Eval(*table, r));
        hit = v.Truthy();
      }
      std::vector<Value> row(table->num_columns());
      for (size_t c = 0; c < table->num_columns(); ++c) {
        row[c] = table->Get(r, c);
      }
      if (hit) {
        ++changed;
        for (size_t i = 0; i < slots.size(); ++i) {
          TELEIOS_ASSIGN_OR_RETURN(row[slots[i]], exprs[i].Eval(*table, r));
        }
      }
      TELEIOS_RETURN_IF_ERROR(rebuilt.AppendRow(row));
    }
    *table = std::move(rebuilt);
    return AffectedRows(changed);
  }
  return Status::Internal("unhandled statement variant");
}

}  // namespace teleios::relational
