#ifndef TELEIOS_RELATIONAL_SQL_ENGINE_H_
#define TELEIOS_RELATIONAL_SQL_ENGINE_H_

#include <string>

#include "common/status.h"
#include "relational/sql_parser.h"
#include "relational/virtual_tables.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace teleios::relational {

/// The SQL entry point of the database tier: parses, plans and executes
/// statements against a Catalog. SELECT returns a result table; DDL/DML
/// return an empty table (with an "affected" row count for DML).
class SqlEngine {
 public:
  /// `catalog` must outlive the engine.
  explicit SqlEngine(storage::Catalog* catalog) : catalog_(catalog) {}

  /// Parses and executes one statement.
  Result<storage::Table> Execute(const std::string& sql);

  /// Returns the optimizer's plan steps for a SELECT.
  Result<std::string> Explain(const std::string& sql);

  /// Installs a `sys.*` provider (nullptr to detach; must outlive the
  /// engine). SELECTs referencing a served name run against an overlay
  /// catalog holding a fresh snapshot of those tables; DDL/DML never see
  /// virtual tables.
  void set_virtual_tables(VirtualTableProvider* provider) {
    virtual_tables_ = provider;
  }

  storage::Catalog* catalog() { return catalog_; }

 private:
  Result<storage::Table> ParseAndExecute(const std::string& sql);
  Result<storage::Table> ExecuteStatement(const Statement& stmt);

  storage::Catalog* catalog_;
  VirtualTableProvider* virtual_tables_ = nullptr;
};

}  // namespace teleios::relational

#endif  // TELEIOS_RELATIONAL_SQL_ENGINE_H_
