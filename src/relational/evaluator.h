#ifndef TELEIOS_RELATIONAL_EVALUATOR_H_
#define TELEIOS_RELATIONAL_EVALUATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "relational/expression.h"
#include "storage/table.h"

namespace teleios::relational {

/// Resolves a column name to a Value for the current row; used to bind
/// expression trees against arbitrary row providers (tables, SciQL cells,
/// SPARQL solutions).
using ColumnResolver =
    std::function<Result<Value>(const std::string& name)>;

/// Evaluates `expr` with column refs resolved by `resolver`.
///
/// Semantics (SQL-ish): arithmetic promotes int->double when mixed; any
/// NULL operand yields NULL for arithmetic and comparisons; AND/OR use
/// two-valued truthiness over non-null values with NULL treated as false.
/// Scalar functions: abs, sqrt, floor, ceil, round, ln, exp, pow, least,
/// greatest, length, lower, upper, substr, concat, coalesce, if.
Result<Value> Evaluate(const ExprPtr& expr, const ColumnResolver& resolver);

/// An expression pre-bound to a table schema: column refs are resolved to
/// column indices once, making per-row evaluation cheap.
class BoundExpr {
 public:
  /// Binds against `table`'s schema. An unknown column is an error unless
  /// it can be resolved by dropping a "qualifier." prefix.
  static Result<BoundExpr> Bind(const ExprPtr& expr,
                                const storage::Table& table);

  /// Evaluates for row `row` of the bound table.
  Result<Value> Eval(const storage::Table& table, size_t row) const;

 private:
  struct Node {
    ExprKind kind;
    Value literal;
    int column_index = -1;
    UnaryOp unary_op = UnaryOp::kNeg;
    BinaryOp binary_op = BinaryOp::kAdd;
    std::string function;
    std::vector<int> children;  // indices into nodes_
  };

  Result<int> BindNode(const ExprPtr& expr, const storage::Table& table);
  Result<Value> EvalNode(int idx, const storage::Table& table,
                         size_t row) const;

  std::vector<Node> nodes_;
  int root_ = -1;
};

/// SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

/// Applies a binary operator to two scalar values.
Result<Value> ApplyBinary(BinaryOp op, const Value& lhs, const Value& rhs);

/// Applies a scalar (non-aggregate) function.
Result<Value> ApplyFunction(const std::string& name,
                            const std::vector<Value>& args);

}  // namespace teleios::relational

#endif  // TELEIOS_RELATIONAL_EVALUATOR_H_
