#include "mining/knn.h"

#include <algorithm>
#include <map>

#include "mining/kmeans.h"

namespace teleios::mining {

Status KnnClassifier::Fit(std::vector<std::vector<double>> samples,
                          std::vector<std::string> labels) {
  if (samples.size() != labels.size()) {
    return Status::InvalidArgument("samples/labels size mismatch");
  }
  if (samples.empty()) return Status::InvalidArgument("empty training set");
  size_t dims = samples[0].size();
  for (const auto& s : samples) {
    if (s.size() != dims) return Status::InvalidArgument("ragged samples");
  }
  samples_ = std::move(samples);
  labels_ = std::move(labels);
  return Status::OK();
}

Result<std::string> KnnClassifier::Predict(const std::vector<double>& sample,
                                           int k) const {
  if (samples_.empty()) return Status::InvalidArgument("classifier not fit");
  if (sample.size() != samples_[0].size()) {
    return Status::InvalidArgument("feature dimension mismatch");
  }
  k = std::max(1, std::min<int>(k, static_cast<int>(samples_.size())));
  std::vector<std::pair<double, size_t>> dists;
  dists.reserve(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) {
    dists.emplace_back(SquaredDistance(sample, samples_[i]), i);
  }
  std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
  std::map<std::string, int> votes;
  for (int i = 0; i < k; ++i) votes[labels_[dists[i].second]] += 1;
  int best_count = -1;
  std::string best;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best_count = count;
      best = label;
    }
  }
  // Tie break: nearest neighbour wins.
  const std::string& nearest = labels_[dists[0].second];
  if (votes[nearest] == best_count) return nearest;
  return best;
}

Result<double> KnnClassifier::Score(
    const std::vector<std::vector<double>>& samples,
    const std::vector<std::string>& labels, int k) const {
  if (samples.size() != labels.size() || samples.empty()) {
    return Status::InvalidArgument("bad evaluation set");
  }
  size_t correct = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    TELEIOS_ASSIGN_OR_RETURN(std::string predicted, Predict(samples[i], k));
    if (predicted == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

}  // namespace teleios::mining
