#include "mining/features.h"

#include <cmath>

#include "exec/parallel_for.h"
#include "governor/memory_budget.h"

namespace teleios::mining {

std::vector<std::string> FeatureNames() {
  return {"vis_mean",   "vis_std",   "nir_mean",  "nir_std",
          "t39_mean",   "t39_std",   "t108_mean", "t108_std",
          "ndvi_mean",  "t_diff",    "land_frac", "cloud_frac",
          "contrast"};
}

Result<std::vector<Patch>> CutPatches(const eo::Scene& scene, int size) {
  if (size <= 0 || size > scene.spec.width || size > scene.spec.height) {
    return Status::InvalidArgument("bad patch size");
  }
  int w = scene.spec.width;
  int h = scene.spec.height;
  int cols = w / size;
  int rows = h / size;
  // Feature vectors plus footprints dominate the patch grid's footprint.
  TELEIOS_ASSIGN_OR_RETURN(
      governor::BudgetCharge charge,
      governor::ChargeCurrent(static_cast<size_t>(rows) * cols *
                                  (sizeof(Patch) + 16 * sizeof(double)),
                              "patch grid"));
  // The patch grid is known up front, so each morsel fills its own
  // pre-sized slots; output order matches the serial row-major sweep.
  std::vector<Patch> patches(static_cast<size_t>(rows) * cols);
  exec::ParallelOptions opts;
  opts.label = "exec.cut_patches";
  opts.grain = 16;  // patches per morsel
  TELEIOS_RETURN_IF_ERROR(exec::ParallelFor(
      patches.size(), opts,
      [&](size_t, size_t begin, size_t end) -> Status {
    for (size_t pi = begin; pi < end; ++pi) {
      int row = static_cast<int>(pi / cols) * size;
      int col = static_cast<int>(pi % cols) * size;
      Patch patch;
      patch.col = col;
      patch.row = row;
      patch.size = size;
      double n = static_cast<double>(size) * size;
      double vis = 0, vis2 = 0, nir = 0, nir2 = 0;
      double t39 = 0, t39_2 = 0, t108 = 0, t108_2 = 0;
      double ndvi = 0, land = 0, cloud = 0, contrast = 0;
      int contrast_count = 0;
      for (int r = row; r < row + size; ++r) {
        for (int c = col; c < col + size; ++c) {
          size_t i = static_cast<size_t>(r) * w + c;
          double v = scene.vis006[i];
          double ni = scene.nir016[i];
          double a = scene.tir039[i];
          double b = scene.tir108[i];
          vis += v;
          vis2 += v * v;
          nir += ni;
          nir2 += ni * ni;
          t39 += a;
          t39_2 += a * a;
          t108 += b;
          t108_2 += b * b;
          double denom = ni + v;
          ndvi += denom > 1e-9 ? (ni - v) / denom : 0.0;
          land += scene.landmask[i];
          cloud += scene.cloudmask[i];
          // Horizontal texture contrast on the 10.8um band.
          if (c + 1 < col + size) {
            contrast += std::fabs(b - scene.tir108[i + 1]);
            ++contrast_count;
          }
        }
      }
      auto stddev = [n](double sum, double sq) {
        double mean = sum / n;
        double var = sq / n - mean * mean;
        return var > 0 ? std::sqrt(var) : 0.0;
      };
      patch.features = {
          vis / n,
          stddev(vis, vis2),
          nir / n,
          stddev(nir, nir2),
          t39 / n,
          stddev(t39, t39_2),
          t108 / n,
          stddev(t108, t108_2),
          ndvi / n,
          (t39 - t108) / n,
          land / n,
          cloud / n,
          contrast_count > 0 ? contrast / contrast_count : 0.0,
      };
      geo::Point tl = scene.transform.PixelToWorld(col, row);
      geo::Point tr = scene.transform.PixelToWorld(col + size, row);
      geo::Point br = scene.transform.PixelToWorld(col + size, row + size);
      geo::Point bl = scene.transform.PixelToWorld(col, row + size);
      patch.footprint.outer = {tl, tr, br, bl};
      patches[pi] = std::move(patch);
    }
    return Status::OK();
      }));
  return patches;
}

FeatureScaling NormalizeFeatures(std::vector<Patch>* patches) {
  FeatureScaling scaling;
  if (patches->empty()) return scaling;
  size_t dims = (*patches)[0].features.size();
  scaling.mean.assign(dims, 0.0);
  scaling.stddev.assign(dims, 0.0);
  double n = static_cast<double>(patches->size());
  for (const Patch& p : *patches) {
    for (size_t d = 0; d < dims; ++d) scaling.mean[d] += p.features[d];
  }
  for (size_t d = 0; d < dims; ++d) scaling.mean[d] /= n;
  for (const Patch& p : *patches) {
    for (size_t d = 0; d < dims; ++d) {
      double diff = p.features[d] - scaling.mean[d];
      scaling.stddev[d] += diff * diff;
    }
  }
  for (size_t d = 0; d < dims; ++d) {
    scaling.stddev[d] = std::sqrt(scaling.stddev[d] / n);
    if (scaling.stddev[d] < 1e-12) scaling.stddev[d] = 1.0;
  }
  for (Patch& p : *patches) {
    for (size_t d = 0; d < dims; ++d) {
      p.features[d] = (p.features[d] - scaling.mean[d]) / scaling.stddev[d];
    }
  }
  return scaling;
}

std::vector<double> ApplyScaling(const std::vector<double>& features,
                                 const FeatureScaling& scaling) {
  std::vector<double> out(features.size());
  for (size_t d = 0; d < features.size(); ++d) {
    out[d] = (features[d] - scaling.mean[d]) / scaling.stddev[d];
  }
  return out;
}

}  // namespace teleios::mining
