#ifndef TELEIOS_MINING_KNN_H_
#define TELEIOS_MINING_KNN_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace teleios::mining {

/// k-nearest-neighbours classifier over feature vectors, used as the
/// second image-information-mining classifier (majority vote, ties broken
/// by nearest neighbour's label).
class KnnClassifier {
 public:
  /// Stores the training set; `labels` parallel to `samples`.
  Status Fit(std::vector<std::vector<double>> samples,
             std::vector<std::string> labels);

  /// Majority label among the k nearest training samples.
  Result<std::string> Predict(const std::vector<double>& sample,
                              int k = 5) const;

  /// Fraction of `samples` predicted as `labels` (leave-nothing-out).
  Result<double> Score(const std::vector<std::vector<double>>& samples,
                       const std::vector<std::string>& labels,
                       int k = 5) const;

  size_t size() const { return samples_.size(); }

 private:
  std::vector<std::vector<double>> samples_;
  std::vector<std::string> labels_;
};

}  // namespace teleios::mining

#endif  // TELEIOS_MINING_KNN_H_
