#ifndef TELEIOS_MINING_KMEANS_H_
#define TELEIOS_MINING_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace teleios::mining {

struct KMeansResult {
  std::vector<std::vector<double>> centroids;  // k x dims
  std::vector<int> assignments;                // per sample
  double inertia = 0;  // sum of squared distances to assigned centroid
  int iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding, deterministic under `seed`.
/// `data` is n x dims (all rows equal length).
Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& data,
                            int k, int max_iterations = 50,
                            uint64_t seed = 7);

/// Squared Euclidean distance.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

}  // namespace teleios::mining

#endif  // TELEIOS_MINING_KMEANS_H_
