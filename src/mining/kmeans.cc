#include "mining/kmeans.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include "exec/parallel_for.h"
#include "governor/memory_budget.h"

namespace teleios::mining {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }
  double Uniform() {
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;
  }

 private:
  uint64_t state_;
};

}  // namespace

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& data,
                            int k, int max_iterations, uint64_t seed) {
  if (data.empty()) return Status::InvalidArgument("empty data");
  if (k <= 0 || static_cast<size_t>(k) > data.size()) {
    return Status::InvalidArgument("bad k");
  }
  size_t n = data.size();
  size_t dims = data[0].size();
  for (const auto& row : data) {
    if (row.size() != dims) {
      return Status::InvalidArgument("ragged data");
    }
  }
  Rng rng(seed);
  KMeansResult result;

  // All parallel regions below use one morsel plan whose partials are
  // merged in morsel-index order, so clustering is deterministic for a
  // given seed at any thread count.
  constexpr size_t kGrain = 1024;
  exec::MorselPlan plan = exec::PlanMorsels(n, kGrain);

  // The working set beyond the caller's data: seeding distances,
  // assignments, and per-morsel centroid partials.
  TELEIOS_ASSIGN_OR_RETURN(
      governor::BudgetCharge charge,
      governor::ChargeCurrent(
          n * (sizeof(double) + sizeof(int)) +
              plan.count * static_cast<size_t>(k) *
                  (dims * sizeof(double) + sizeof(int)),
          "k-means working buffers"));
  exec::ParallelOptions opts;
  opts.grain = kGrain;

  // k-means++ seeding.
  result.centroids.push_back(data[rng.Next() % n]);
  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  std::vector<double> morsel_totals(plan.count);
  while (result.centroids.size() < static_cast<size_t>(k)) {
    opts.label = "exec.kmeans_seed";
    TELEIOS_RETURN_IF_ERROR(exec::ParallelFor(
        n, opts, [&](size_t m, size_t begin, size_t end) -> Status {
          double t = 0;
          for (size_t i = begin; i < end; ++i) {
            dist2[i] = std::min(
                dist2[i], SquaredDistance(data[i], result.centroids.back()));
            t += dist2[i];
          }
          morsel_totals[m] = t;
          return Status::OK();
        }));
    double total = 0;
    for (size_t m = 0; m < plan.count; ++m) total += morsel_totals[m];
    double target = rng.Uniform() * total;
    size_t chosen = n - 1;
    double acc = 0;
    for (size_t i = 0; i < n; ++i) {
      acc += dist2[i];
      if (acc >= target) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(data[chosen]);
  }

  result.assignments.assign(n, -1);
  struct UpdatePartial {
    std::vector<double> sums;  // k * dims, row-major by cluster
    std::vector<int> counts;
    uint8_t changed = 0;
  };
  std::vector<UpdatePartial> partials(plan.count);
  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assign + per-morsel partial sums for the update step. Each morsel
    // writes its own assignment slots and its own partial.
    opts.label = "exec.kmeans_assign";
    TELEIOS_RETURN_IF_ERROR(exec::ParallelFor(
        n, opts, [&](size_t m, size_t begin, size_t end) -> Status {
          UpdatePartial& p = partials[m];
          p.sums.assign(static_cast<size_t>(k) * dims, 0.0);
          p.counts.assign(k, 0);
          p.changed = 0;
          for (size_t i = begin; i < end; ++i) {
            int best = 0;
            double best_d = SquaredDistance(data[i], result.centroids[0]);
            for (int c = 1; c < k; ++c) {
              double d = SquaredDistance(data[i], result.centroids[c]);
              if (d < best_d) {
                best_d = d;
                best = c;
              }
            }
            if (result.assignments[i] != best) {
              result.assignments[i] = best;
              p.changed = 1;
            }
            ++p.counts[best];
            const std::vector<double>& row = data[i];
            double* sum = &p.sums[static_cast<size_t>(best) * dims];
            for (size_t d = 0; d < dims; ++d) sum[d] += row[d];
          }
          return Status::OK();
        }));
    bool changed = false;
    for (const UpdatePartial& p : partials) changed |= p.changed != 0;
    if (!changed && iter > 0) break;
    // Update: fold partials in morsel-index order.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<int> counts(k, 0);
    for (const UpdatePartial& p : partials) {
      for (int c = 0; c < k; ++c) {
        counts[c] += p.counts[c];
        const double* sum = &p.sums[static_cast<size_t>(c) * dims];
        for (size_t d = 0; d < dims; ++d) sums[c][d] += sum[d];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep old centroid for empty cluster
      for (size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] = sums[c][d] / counts[c];
      }
    }
  }
  result.inertia = 0;
  opts.label = "exec.kmeans_inertia";
  TELEIOS_RETURN_IF_ERROR(exec::ParallelFor(
      n, opts, [&](size_t m, size_t begin, size_t end) -> Status {
        double t = 0;
        for (size_t i = begin; i < end; ++i) {
          t += SquaredDistance(data[i],
                               result.centroids[result.assignments[i]]);
        }
        morsel_totals[m] = t;
        return Status::OK();
      }));
  for (size_t m = 0; m < plan.count; ++m) result.inertia += morsel_totals[m];
  return result;
}

}  // namespace teleios::mining
