#include "mining/kmeans.h"

#include <cmath>
#include <limits>

namespace teleios::mining {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }
  double Uniform() {
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;
  }

 private:
  uint64_t state_;
};

}  // namespace

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& data,
                            int k, int max_iterations, uint64_t seed) {
  if (data.empty()) return Status::InvalidArgument("empty data");
  if (k <= 0 || static_cast<size_t>(k) > data.size()) {
    return Status::InvalidArgument("bad k");
  }
  size_t n = data.size();
  size_t dims = data[0].size();
  for (const auto& row : data) {
    if (row.size() != dims) {
      return Status::InvalidArgument("ragged data");
    }
  }
  Rng rng(seed);
  KMeansResult result;

  // k-means++ seeding.
  result.centroids.push_back(data[rng.Next() % n]);
  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  while (result.centroids.size() < static_cast<size_t>(k)) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      dist2[i] = std::min(dist2[i],
                          SquaredDistance(data[i], result.centroids.back()));
      total += dist2[i];
    }
    double target = rng.Uniform() * total;
    size_t chosen = n - 1;
    double acc = 0;
    for (size_t i = 0; i < n; ++i) {
      acc += dist2[i];
      if (acc >= target) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(data[chosen]);
  }

  result.assignments.assign(n, -1);
  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter + 1;
    bool changed = false;
    // Assign.
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = SquaredDistance(data[i], result.centroids[0]);
      for (int c = 1; c < k; ++c) {
        double d = SquaredDistance(data[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignments[i] != best) {
        result.assignments[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<int> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      int c = result.assignments[i];
      ++counts[c];
      for (size_t d = 0; d < dims; ++d) sums[c][d] += data[i][d];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep old centroid for empty cluster
      for (size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] = sums[c][d] / counts[c];
      }
    }
  }
  result.inertia = 0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia +=
        SquaredDistance(data[i], result.centroids[result.assignments[i]]);
  }
  return result;
}

}  // namespace teleios::mining
