#ifndef TELEIOS_MINING_ANNOTATION_SERVICE_H_
#define TELEIOS_MINING_ANNOTATION_SERVICE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "mining/annotation.h"
#include "mining/knn.h"

namespace teleios::mining {

/// The service-tier "Automatic/Interactive Semantic Annotation"
/// component (paper §3, Figure 2): automatic annotation seeds the patch
/// concepts via clustering; the interactive loop lets an analyst correct
/// individual patch labels, and every correction is propagated to
/// similar patches through a kNN model trained on the accumulated
/// feedback — the classic relevance-feedback loop of EO image
/// information mining.
class AnnotationService {
 public:
  /// Seeds the service with automatic annotations of `patches`
  /// (k-means + rule labelling, as AnnotatePatches).
  Status Annotate(const std::vector<Patch>& patches, int k,
                  uint64_t seed = 7);

  /// Current annotations (indexed like the seeded patches).
  const std::vector<Annotation>& annotations() const { return annotations_; }

  /// Analyst feedback: relabel patch `index` as `concept_iri`. The
  /// correction is recorded with confidence 1 and added to the feedback
  /// training set.
  Status Correct(size_t index, const std::string& concept_iri);

  /// Propagates accumulated corrections: every uncorrected patch whose
  /// k nearest feedback samples agree on a different concept is
  /// relabelled (with confidence `propagated_confidence`). Returns the
  /// number of patches that changed.
  Result<size_t> Propagate(int k = 3, double propagated_confidence = 0.75);

  /// Publishes the current annotations to Strabon (replacing any prior
  /// publication for the product).
  Result<size_t> Publish(const std::string& product_id,
                         strabon::Strabon* strabon) const;

  size_t corrections() const { return feedback_features_.size(); }

 private:
  std::vector<Patch> normalized_;  // z-scored features for similarity
  std::vector<Annotation> annotations_;
  std::vector<bool> corrected_;
  std::vector<std::vector<double>> feedback_features_;
  std::vector<std::string> feedback_labels_;
};

}  // namespace teleios::mining

#endif  // TELEIOS_MINING_ANNOTATION_SERVICE_H_
