#ifndef TELEIOS_MINING_ANNOTATION_H_
#define TELEIOS_MINING_ANNOTATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "mining/features.h"
#include "mining/kmeans.h"
#include "strabon/strabon.h"

namespace teleios::mining {

/// A patch annotated with a domain-ontology concept — the knowledge
/// discovery output that closes the semantic gap (paper §1-2): patches of
/// standard products get concepts like Sea, Forest, Hotspot attached and
/// published as stRDF.
struct Annotation {
  Patch patch;
  std::string concept_iri;  // noa: concept class
  double confidence = 1.0;
};

/// Maps a k-means cluster centroid (in *raw, unnormalized* feature space,
/// see FeatureNames()) to a landcover/event concept using the band
/// signatures of the synthetic SEVIRI sensor:
///   cloud_frac > .5 -> Cloud; land_frac < .5 -> Sea; t_diff large ->
///   Hotspot; high NDVI -> Forest; mid NDVI -> Agricultural; else
///   BareSoil.
std::string ConceptForCentroid(const std::vector<double>& raw_centroid);

/// Clusters patches (k-means on normalized features), labels each cluster
/// with ConceptForCentroid (centroids un-normalized first), and returns
/// per-patch annotations. `k` clusters, deterministic under `seed`.
Result<std::vector<Annotation>> AnnotatePatches(
    const std::vector<Patch>& patches, int k, uint64_t seed = 7);

/// Publishes annotations into Strabon as stRDF:
///   <patchUri> rdf:type noa:Patch ; noa:hasConcept <concept> ;
///              noa:hasGeometry "..."^^strdf:WKT ;
///              noa:hasConfidence "..."^^xsd:double ;
///              noa:derivedFromProduct <productUri> .
/// Returns the number of triples added.
Result<size_t> PublishAnnotations(const std::vector<Annotation>& annotations,
                                  const std::string& product_id,
                                  strabon::Strabon* strabon);

/// Renders the exact triples PublishAnnotations would add as a Turtle
/// document, by publishing into a scratch store and serializing it. The
/// durability layer logs this rendering in the WAL: replaying it with
/// LoadTurtle reproduces the publication without re-running clustering.
Result<std::string> RenderAnnotationsTurtle(
    const std::vector<Annotation>& annotations,
    const std::string& product_id);

/// The SPARQL update that removes every annotation patch derived from
/// `product_id` — the delete half of a republish, shared by the live
/// path and WAL replay so both delete exactly the same triples.
std::string DeleteAnnotationsUpdate(const std::string& product_id);

}  // namespace teleios::mining

#endif  // TELEIOS_MINING_ANNOTATION_H_
