#include "mining/annotation.h"

#include "common/strings.h"
#include "eo/product.h"
#include "geo/wkt.h"

namespace teleios::mining {

using rdf::Term;

std::string ConceptForCentroid(const std::vector<double>& f) {
  // Indices per FeatureNames():
  // 0 vis_mean, 2 nir_mean, 4 t39_mean, 6 t108_mean, 8 ndvi_mean,
  // 9 t_diff, 10 land_frac, 11 cloud_frac.
  std::string ns(eo::kNoaNs);
  if (f[11] > 0.5) return ns + "Cloud";
  if (f[10] < 0.5) return ns + "Sea";
  if (f[9] > 10.0) return ns + "Hotspot";
  if (f[8] > 0.35) return ns + "Forest";
  if (f[8] > 0.15) return ns + "Agricultural";
  if (f[0] > 0.25) return ns + "Urban";
  return ns + "BareSoil";
}

Result<std::vector<Annotation>> AnnotatePatches(
    const std::vector<Patch>& patches, int k, uint64_t seed) {
  if (patches.empty()) return Status::InvalidArgument("no patches");
  // Normalize a copy for clustering; keep raw features for labelling.
  std::vector<Patch> normalized = patches;
  FeatureScaling scaling = NormalizeFeatures(&normalized);
  std::vector<std::vector<double>> data;
  data.reserve(normalized.size());
  for (const Patch& p : normalized) data.push_back(p.features);
  TELEIOS_ASSIGN_OR_RETURN(KMeansResult km, KMeans(data, k, 60, seed));

  // Un-normalize centroids to raw feature space for rule-based labels.
  std::vector<std::string> cluster_concepts(km.centroids.size());
  for (size_t c = 0; c < km.centroids.size(); ++c) {
    std::vector<double> raw(km.centroids[c].size());
    for (size_t d = 0; d < raw.size(); ++d) {
      raw[d] = km.centroids[c][d] * scaling.stddev[d] + scaling.mean[d];
    }
    cluster_concepts[c] = ConceptForCentroid(raw);
  }

  std::vector<Annotation> annotations;
  annotations.reserve(patches.size());
  for (size_t i = 0; i < patches.size(); ++i) {
    Annotation a;
    a.patch = patches[i];
    int c = km.assignments[i];
    a.concept_iri = cluster_concepts[static_cast<size_t>(c)];
    // Confidence: inverse distance to the centroid, squashed to (0, 1].
    double d2 = SquaredDistance(data[i],
                                km.centroids[static_cast<size_t>(c)]);
    a.confidence = 1.0 / (1.0 + d2);
    annotations.push_back(std::move(a));
  }
  return annotations;
}

Result<size_t> PublishAnnotations(const std::vector<Annotation>& annotations,
                                  const std::string& product_id,
                                  strabon::Strabon* strabon) {
  std::string ns(eo::kNoaNs);
  Term product = Term::Iri(ns + "product/" + product_id);
  size_t added = 0;
  for (size_t i = 0; i < annotations.size(); ++i) {
    const Annotation& a = annotations[i];
    Term patch = Term::Iri(ns + "patch/" + product_id + "/" +
                           std::to_string(a.patch.row) + "_" +
                           std::to_string(a.patch.col));
    strabon->Add(patch, Term::Iri(rdf::kRdfType), Term::Iri(ns + "Patch"));
    strabon->Add(patch, Term::Iri(ns + "hasConcept"),
                 Term::Iri(a.concept_iri));
    strabon->Add(patch, Term::Iri(ns + "hasGeometry"),
                 Term::WktLiteral(geo::WriteWkt(
                     geo::Geometry::MakePolygon(a.patch.footprint))));
    strabon->Add(patch, Term::Iri(ns + "hasConfidence"),
                 Term::DoubleLiteral(a.confidence));
    strabon->Add(patch, Term::Iri(ns + "derivedFromProduct"), product);
    added += 5;
  }
  return added;
}

Result<std::string> RenderAnnotationsTurtle(
    const std::vector<Annotation>& annotations,
    const std::string& product_id) {
  strabon::Strabon scratch;
  TELEIOS_RETURN_IF_ERROR(
      PublishAnnotations(annotations, product_id, &scratch).status());
  return scratch.ToTurtle();
}

std::string DeleteAnnotationsUpdate(const std::string& product_id) {
  std::string ns(eo::kNoaNs);
  return "DELETE { ?patch ?p ?o } WHERE { ?patch a <" + ns + "Patch> ; "
         "<" + ns + "derivedFromProduct> <" + ns + "product/" + product_id +
         "> ; ?p ?o . }";
}

}  // namespace teleios::mining
