#include "mining/annotation_service.h"

#include "eo/product.h"

namespace teleios::mining {

Status AnnotationService::Annotate(const std::vector<Patch>& patches, int k,
                                   uint64_t seed) {
  TELEIOS_ASSIGN_OR_RETURN(annotations_, AnnotatePatches(patches, k, seed));
  normalized_ = patches;
  NormalizeFeatures(&normalized_);
  corrected_.assign(patches.size(), false);
  feedback_features_.clear();
  feedback_labels_.clear();
  return Status::OK();
}

Status AnnotationService::Correct(size_t index,
                                  const std::string& concept_iri) {
  if (index >= annotations_.size()) {
    return Status::OutOfRange("no patch with index " +
                              std::to_string(index));
  }
  annotations_[index].concept_iri = concept_iri;
  annotations_[index].confidence = 1.0;
  corrected_[index] = true;
  feedback_features_.push_back(normalized_[index].features);
  feedback_labels_.push_back(concept_iri);
  return Status::OK();
}

Result<size_t> AnnotationService::Propagate(int k,
                                            double propagated_confidence) {
  if (feedback_features_.empty()) {
    return Status::InvalidArgument("no corrections to propagate");
  }
  KnnClassifier knn;
  TELEIOS_RETURN_IF_ERROR(knn.Fit(feedback_features_, feedback_labels_));
  size_t changed = 0;
  for (size_t i = 0; i < annotations_.size(); ++i) {
    if (corrected_[i]) continue;
    TELEIOS_ASSIGN_OR_RETURN(std::string predicted,
                             knn.Predict(normalized_[i].features, k));
    if (predicted != annotations_[i].concept_iri) {
      annotations_[i].concept_iri = predicted;
      annotations_[i].confidence = propagated_confidence;
      ++changed;
    }
  }
  return changed;
}

Result<size_t> AnnotationService::Publish(const std::string& product_id,
                                          strabon::Strabon* strabon) const {
  if (annotations_.empty()) {
    return Status::InvalidArgument("nothing annotated yet");
  }
  // Replace any previous annotation set for this product. The DELETE
  // must succeed before the new set goes in: publishing on top of a
  // failed DELETE would leave the stale annotations alongside the new
  // ones, and the caller would never know (found by the [[nodiscard]]
  // sweep — this return used to be dropped).
  Result<size_t> deleted =
      strabon->Update(DeleteAnnotationsUpdate(product_id));
  if (!deleted.ok()) return deleted.status();
  return PublishAnnotations(annotations_, product_id, strabon);
}

}  // namespace teleios::mining
