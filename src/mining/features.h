#ifndef TELEIOS_MINING_FEATURES_H_
#define TELEIOS_MINING_FEATURES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "eo/scene.h"
#include "geo/geometry.h"

namespace teleios::mining {

/// A square image patch with its compact feature-vector representation —
/// the content-extraction unit of the TELEIOS ingestion tier (paper §3:
/// "create a set of patches by cutting images into square patches ...
/// compressed into a compact multi-element feature vector").
struct Patch {
  int col = 0;  // top-left pixel
  int row = 0;
  int size = 0;
  std::vector<double> features;
  /// Footprint in world coordinates.
  geo::Polygon footprint;
};

/// Names of the extracted features, aligned with Patch::features.
std::vector<std::string> FeatureNames();

/// Cuts `scene` into size x size patches (stride = size) and computes per
/// patch: mean/std of each band, NDVI mean, the 3.9-10.8um difference,
/// land fraction, cloud fraction, and a texture contrast measure.
Result<std::vector<Patch>> CutPatches(const eo::Scene& scene, int size);

/// z-score normalization (in place) across a patch set, returning the
/// per-feature (mean, std) so new samples can be projected consistently.
struct FeatureScaling {
  std::vector<double> mean;
  std::vector<double> stddev;
};

FeatureScaling NormalizeFeatures(std::vector<Patch>* patches);

/// Applies an existing scaling to one feature vector.
std::vector<double> ApplyScaling(const std::vector<double>& features,
                                 const FeatureScaling& scaling);

}  // namespace teleios::mining

#endif  // TELEIOS_MINING_FEATURES_H_
