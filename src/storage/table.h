#ifndef TELEIOS_STORAGE_TABLE_H_
#define TELEIOS_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/column.h"

namespace teleios::storage {

/// A named, typed column slot in a table schema.
struct Field {
  std::string name;
  ColumnType type;
};

/// An ordered set of named fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of `name`, or -1.
  int FieldIndex(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// A columnar table: a schema plus one Column per field, all equal length.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }

  /// Column by name; NotFound if the name is unknown.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Appends one row; `row.size()` must equal the field count and each
  /// value must be appendable to its column.
  Status AppendRow(const std::vector<Value>& row);

  /// Cell accessor.
  Value Get(size_t row, size_t col) const { return columns_[col].Get(row); }

  /// New table with only the rows in `sel` (in order).
  Table Take(const SelectionVector& sel) const;

  /// New table with only the named columns (projection).
  Result<Table> Project(const std::vector<std::string>& names) const;

  /// Appends all rows of `other`; schemas must match by type.
  Status AppendTable(const Table& other);

  size_t MemoryUsage() const;

  /// Pretty ASCII rendering (up to `max_rows` rows).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace teleios::storage

#endif  // TELEIOS_STORAGE_TABLE_H_
