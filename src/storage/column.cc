#include "storage/column.h"

namespace teleios::storage {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kBool:
      return "BOOL";
    case ColumnType::kInt64:
      return "BIGINT";
    case ColumnType::kFloat64:
      return "DOUBLE";
    case ColumnType::kString:
      return "VARCHAR";
  }
  return "?";
}

Result<ColumnType> ColumnTypeForValue(ValueType t) {
  switch (t) {
    case ValueType::kBool:
      return ColumnType::kBool;
    case ValueType::kInt64:
      return ColumnType::kInt64;
    case ValueType::kFloat64:
      return ColumnType::kFloat64;
    case ValueType::kString:
      return ColumnType::kString;
    case ValueType::kNull:
      return Status::TypeError("NULL has no column type");
  }
  return Status::Internal("bad value type");
}

ValueType ValueTypeForColumn(ColumnType t) {
  switch (t) {
    case ColumnType::kBool:
      return ValueType::kBool;
    case ColumnType::kInt64:
      return ValueType::kInt64;
    case ColumnType::kFloat64:
      return ValueType::kFloat64;
    case ColumnType::kString:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

Column::Column(ColumnType type) : type_(type) {
  if (type_ == ColumnType::kString) dict_ = std::make_shared<Dictionary>();
}

Status Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case ColumnType::kBool:
      if (v.type() != ValueType::kBool) break;
      AppendBool(v.AsBool());
      return Status::OK();
    case ColumnType::kInt64: {
      auto r = v.ToInt64();
      if (!r.ok()) break;
      AppendInt64(*r);
      return Status::OK();
    }
    case ColumnType::kFloat64: {
      auto r = v.ToDouble();
      if (!r.ok()) break;
      AppendFloat64(*r);
      return Status::OK();
    }
    case ColumnType::kString:
      if (v.type() != ValueType::kString) break;
      AppendString(v.AsString());
      return Status::OK();
  }
  return Status::TypeError(std::string("cannot append ") +
                           ValueTypeName(v.type()) + " to " +
                           ColumnTypeName(type_) + " column");
}

void Column::AppendBool(bool v) {
  validity_.push_back(1);
  bools_.push_back(v ? 1 : 0);
}

void Column::AppendInt64(int64_t v) {
  validity_.push_back(1);
  ints_.push_back(v);
}

void Column::AppendFloat64(double v) {
  validity_.push_back(1);
  doubles_.push_back(v);
}

void Column::AppendString(std::string_view v) {
  validity_.push_back(1);
  codes_.push_back(dict_->Intern(v));
}

void Column::AppendNull() {
  validity_.push_back(0);
  switch (type_) {
    case ColumnType::kBool:
      bools_.push_back(0);
      break;
    case ColumnType::kInt64:
      ints_.push_back(0);
      break;
    case ColumnType::kFloat64:
      doubles_.push_back(0.0);
      break;
    case ColumnType::kString:
      codes_.push_back(Dictionary::kInvalidCode);
      break;
  }
}

Value Column::Get(size_t row) const {
  if (IsNull(row)) return Value();
  switch (type_) {
    case ColumnType::kBool:
      return Value(GetBool(row));
    case ColumnType::kInt64:
      return Value(GetInt64(row));
    case ColumnType::kFloat64:
      return Value(GetFloat64(row));
    case ColumnType::kString:
      return Value(GetString(row));
  }
  return Value();
}

Status Column::Set(size_t row, const Value& v) {
  if (row >= size()) return Status::OutOfRange("Set past end of column");
  if (v.is_null()) {
    validity_[row] = 0;
    return Status::OK();
  }
  switch (type_) {
    case ColumnType::kBool:
      if (v.type() != ValueType::kBool) break;
      bools_[row] = v.AsBool() ? 1 : 0;
      validity_[row] = 1;
      return Status::OK();
    case ColumnType::kInt64: {
      auto r = v.ToInt64();
      if (!r.ok()) break;
      ints_[row] = *r;
      validity_[row] = 1;
      return Status::OK();
    }
    case ColumnType::kFloat64: {
      auto r = v.ToDouble();
      if (!r.ok()) break;
      doubles_[row] = *r;
      validity_[row] = 1;
      return Status::OK();
    }
    case ColumnType::kString:
      if (v.type() != ValueType::kString) break;
      codes_[row] = dict_->Intern(v.AsString());
      validity_[row] = 1;
      return Status::OK();
  }
  return Status::TypeError(std::string("cannot set ") +
                           ValueTypeName(v.type()) + " into " +
                           ColumnTypeName(type_) + " column");
}

Column Column::Take(const SelectionVector& sel) const {
  Column out(type_);
  out.Reserve(sel.size());
  for (uint32_t row : sel) {
    if (IsNull(row)) {
      out.AppendNull();
      continue;
    }
    switch (type_) {
      case ColumnType::kBool:
        out.AppendBool(GetBool(row));
        break;
      case ColumnType::kInt64:
        out.AppendInt64(GetInt64(row));
        break;
      case ColumnType::kFloat64:
        out.AppendFloat64(GetFloat64(row));
        break;
      case ColumnType::kString:
        out.AppendString(GetString(row));
        break;
    }
  }
  return out;
}

size_t Column::MemoryUsage() const {
  size_t bytes = validity_.capacity() + bools_.capacity() +
                 ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double) +
                 codes_.capacity() * sizeof(int32_t);
  if (dict_) bytes += dict_->MemoryUsage();
  return bytes;
}

void Column::Reserve(size_t n) {
  validity_.reserve(n);
  switch (type_) {
    case ColumnType::kBool:
      bools_.reserve(n);
      break;
    case ColumnType::kInt64:
      ints_.reserve(n);
      break;
    case ColumnType::kFloat64:
      doubles_.reserve(n);
      break;
    case ColumnType::kString:
      codes_.reserve(n);
      break;
  }
}

}  // namespace teleios::storage
