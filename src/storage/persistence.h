#ifndef TELEIOS_STORAGE_PERSISTENCE_H_
#define TELEIOS_STORAGE_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace teleios::storage {

/// Writes `table` to `path` in the TELEIOS binary table format ("TELT").
/// The format stores the schema, row count, validity bytes and typed
/// payloads; string columns are written dictionary + codes.
Status WriteTable(const Table& table, const std::string& path);

/// Reads a table previously written with WriteTable.
Result<Table> ReadTable(const std::string& path);

/// Writes `table` as CSV with a header row (for interop / debugging).
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV with a header row into a table. Column types are inferred
/// from the data (BIGINT if every non-empty cell parses as an integer,
/// then DOUBLE, else VARCHAR); empty cells become NULL. Quoted fields
/// with doubled-quote escapes are supported (the WriteCsv dialect).
Result<Table> ReadCsv(const std::string& path);

}  // namespace teleios::storage

#endif  // TELEIOS_STORAGE_PERSISTENCE_H_
