#ifndef TELEIOS_STORAGE_PERSISTENCE_H_
#define TELEIOS_STORAGE_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace teleios::storage {

/// Writes `table` to `path` in the TELEIOS binary table format ("TELT",
/// version 2). The format stores the schema, row count, validity bytes
/// and typed payloads (string columns as dictionary + codes) in
/// CRC32C-checksummed sections, and the file is produced with an atomic
/// durable write (tmp + fsync + rename): a crash mid-write leaves the
/// previous file intact, never a hybrid.
Status WriteTable(const Table& table, const std::string& path);

/// Reads a table previously written with WriteTable. Corrupt bytes
/// surface as kDataLoss (checksum mismatch) or ParseError (truncation,
/// implausible counts, out-of-range dictionary codes) — never a crash.
Result<Table> ReadTable(const std::string& path);

/// Writes `table` as CSV with a header row (for interop / debugging;
/// atomic write, no checksum — it is an exchange format).
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV with a header row into a table. Column types are inferred
/// from the data (BIGINT if every non-empty cell parses as an integer,
/// then DOUBLE, else VARCHAR); empty cells become NULL. Quoted fields
/// with doubled-quote escapes are supported (the WriteCsv dialect).
Result<Table> ReadCsv(const std::string& path);

/// Persists every table of `catalog` under `dir`: one TELT file per
/// table plus a checksummed MANIFEST written last (atomically), so a
/// crash at any point leaves the previous snapshot loadable.
Status SaveCatalog(const Catalog& catalog, const std::string& dir);

/// Loads a SaveCatalog snapshot into `catalog` (tables must not already
/// exist). Returns the number of tables loaded.
Result<size_t> LoadCatalog(const std::string& dir, Catalog* catalog);

/// What a snapshot covers — carried in `#GEN` / `#LSN` meta lines inside
/// the MANIFEST, so the "this WAL prefix is already applied" mark
/// commits atomically with the table data it describes (the recovery
/// layer skips catalog WAL records at or below `lsn` on replay).
struct SnapshotMeta {
  bool loaded = false;      ///< false: no snapshot exists at the path
  uint64_t generation = 0;  ///< table-file generation of the snapshot
  uint64_t lsn = 0;         ///< highest catalog mutation LSN included
  size_t tables = 0;
};

/// SaveCatalog plus checkpoint bookkeeping: stamps the MANIFEST with the
/// caller's `lsn` high-water mark and reports the generation written.
Status SaveCatalogCheckpoint(const Catalog& catalog, const std::string& dir,
                             uint64_t lsn, SnapshotMeta* meta = nullptr);

/// LoadCatalog that tolerates a missing snapshot (fresh directory:
/// returns `loaded = false` and leaves `catalog` untouched) and reports
/// the snapshot's meta for WAL replay. A manifest or table file whose
/// format version is newer than this binary fails with kDataLoss.
Result<SnapshotMeta> LoadCatalogSnapshot(const std::string& dir,
                                         Catalog* catalog);

}  // namespace teleios::storage

#endif  // TELEIOS_STORAGE_PERSISTENCE_H_
