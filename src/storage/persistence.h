#ifndef TELEIOS_STORAGE_PERSISTENCE_H_
#define TELEIOS_STORAGE_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace teleios::storage {

/// Writes `table` to `path` in the TELEIOS binary table format ("TELT",
/// version 2). The format stores the schema, row count, validity bytes
/// and typed payloads (string columns as dictionary + codes) in
/// CRC32C-checksummed sections, and the file is produced with an atomic
/// durable write (tmp + fsync + rename): a crash mid-write leaves the
/// previous file intact, never a hybrid.
Status WriteTable(const Table& table, const std::string& path);

/// Reads a table previously written with WriteTable. Corrupt bytes
/// surface as kDataLoss (checksum mismatch) or ParseError (truncation,
/// implausible counts, out-of-range dictionary codes) — never a crash.
Result<Table> ReadTable(const std::string& path);

/// Writes `table` as CSV with a header row (for interop / debugging;
/// atomic write, no checksum — it is an exchange format).
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV with a header row into a table. Column types are inferred
/// from the data (BIGINT if every non-empty cell parses as an integer,
/// then DOUBLE, else VARCHAR); empty cells become NULL. Quoted fields
/// with doubled-quote escapes are supported (the WriteCsv dialect).
Result<Table> ReadCsv(const std::string& path);

/// Persists every table of `catalog` under `dir`: one TELT file per
/// table plus a checksummed MANIFEST written last (atomically), so a
/// crash at any point leaves the previous snapshot loadable.
Status SaveCatalog(const Catalog& catalog, const std::string& dir);

/// Loads a SaveCatalog snapshot into `catalog` (tables must not already
/// exist). Returns the number of tables loaded.
Result<size_t> LoadCatalog(const std::string& dir, Catalog* catalog);

}  // namespace teleios::storage

#endif  // TELEIOS_STORAGE_PERSISTENCE_H_
