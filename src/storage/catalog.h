#ifndef TELEIOS_STORAGE_CATALOG_H_
#define TELEIOS_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace teleios::storage {

/// Named-table registry: the database-tier catalog that both the SQL
/// engine and the data vault register tables into.
class Catalog {
 public:
  /// Registers `table` under `name`; AlreadyExists if taken.
  Status CreateTable(const std::string& name, TablePtr table);

  /// Drops a table; NotFound if absent.
  Status DropTable(const std::string& name);

  /// Looks a table up; NotFound if absent.
  Result<TablePtr> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Sorted table names.
  std::vector<std::string> TableNames() const;

  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, TablePtr> tables_;
};

}  // namespace teleios::storage

#endif  // TELEIOS_STORAGE_CATALOG_H_
