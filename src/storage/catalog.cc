#include "storage/catalog.h"

#include "obs/metrics.h"

namespace teleios::storage {

Status Catalog::CreateTable(const std::string& name, TablePtr table) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_[name] = std::move(table);
  obs::Count("teleios_storage_tables_created_total");
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (!tables_.erase(name)) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  static auto* lookups = obs::MetricsRegistry::Global().GetCounter(
      "teleios_storage_catalog_lookups_total");
  lookups->Inc();
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace teleios::storage
