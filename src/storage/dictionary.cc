#include "storage/dictionary.h"

namespace teleios::storage {

int32_t Dictionary::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  int32_t code = static_cast<int32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string_view(strings_.back()), code);
  return code;
}

int32_t Dictionary::Lookup(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidCode : it->second;
}

size_t Dictionary::MemoryUsage() const {
  size_t bytes = strings_.size() * sizeof(std::string);
  for (const auto& s : strings_) bytes += s.capacity();
  bytes += index_.size() * (sizeof(std::string_view) + sizeof(int32_t) + 16);
  return bytes;
}

}  // namespace teleios::storage
