#include "storage/dictionary.h"

#include "obs/metrics.h"

namespace teleios::storage {

int32_t Dictionary::Intern(std::string_view s) {
  // Interning runs once per stored string; the counters are cached
  // function-local statics so the cost is one relaxed atomic add.
  static auto* hits = obs::MetricsRegistry::Global().GetCounter(
      "teleios_storage_dict_hits_total");
  static auto* interned = obs::MetricsRegistry::Global().GetCounter(
      "teleios_storage_dict_interned_total");
  auto it = index_.find(s);
  if (it != index_.end()) {
    hits->Inc();
    return it->second;
  }
  interned->Inc();
  int32_t code = static_cast<int32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string_view(strings_.back()), code);
  return code;
}

int32_t Dictionary::Lookup(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidCode : it->second;
}

size_t Dictionary::MemoryUsage() const {
  size_t bytes = strings_.size() * sizeof(std::string);
  for (const auto& s : strings_) bytes += s.capacity();
  bytes += index_.size() * (sizeof(std::string_view) + sizeof(int32_t) + 16);
  return bytes;
}

}  // namespace teleios::storage
