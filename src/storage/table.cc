#include "storage/table.h"

#include <algorithm>
#include <sstream>

namespace teleios::storage {

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    os << fields_[i].name << " " << ColumnTypeName(fields_[i].type);
  }
  os << ")";
  return os.str();
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) columns_.emplace_back(f.type);
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  int idx = schema_.FieldIndex(name);
  if (idx < 0) return Status::NotFound("no column named '" + name + "'");
  return &columns_[idx];
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    TELEIOS_RETURN_IF_ERROR(columns_[i].Append(row[i]));
  }
  return Status::OK();
}

Table Table::Take(const SelectionVector& sel) const {
  Table out(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c] = columns_[c].Take(sel);
  }
  return out;
}

Result<Table> Table::Project(const std::vector<std::string>& names) const {
  std::vector<Field> fields;
  std::vector<int> idx;
  for (const std::string& n : names) {
    int i = schema_.FieldIndex(n);
    if (i < 0) return Status::NotFound("no column named '" + n + "'");
    fields.push_back(schema_.field(i));
    idx.push_back(i);
  }
  Table out{Schema(std::move(fields))};
  for (size_t c = 0; c < idx.size(); ++c) {
    out.columns_[c] = columns_[idx[c]];
  }
  return out;
}

Status Table::AppendTable(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument("column count mismatch");
  }
  for (size_t c = 0; c < num_columns(); ++c) {
    if (other.column(c).type() != column(c).type()) {
      return Status::TypeError("column type mismatch in AppendTable");
    }
  }
  for (size_t r = 0; r < other.num_rows(); ++r) {
    for (size_t c = 0; c < num_columns(); ++c) {
      TELEIOS_RETURN_IF_ERROR(columns_[c].Append(other.Get(r, c)));
    }
  }
  return Status::OK();
}

size_t Table::MemoryUsage() const {
  size_t bytes = 0;
  for (const Column& c : columns_) bytes += c.MemoryUsage();
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    if (i) os << " | ";
    os << schema_.field(i).name;
  }
  os << "\n";
  size_t n = std::min(num_rows(), max_rows);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < num_columns(); ++c) {
      if (c) os << " | ";
      os << Get(r, c).ToString();
    }
    os << "\n";
  }
  if (num_rows() > n) {
    os << "... (" << num_rows() << " rows total)\n";
  }
  return os.str();
}

}  // namespace teleios::storage
