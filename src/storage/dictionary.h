#ifndef TELEIOS_STORAGE_DICTIONARY_H_
#define TELEIOS_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace teleios::storage {

/// Order-preserving insertion dictionary mapping strings to dense int32
/// codes, MonetDB-style. Used for dictionary-encoded string columns and
/// as the RDF term dictionary backend.
///
/// Interned strings live in a deque, so references returned by At() stay
/// valid for the dictionary's lifetime.
class Dictionary {
 public:
  static constexpr int32_t kInvalidCode = -1;

  /// Returns the code of `s`, interning it if unseen.
  int32_t Intern(std::string_view s);

  /// Returns the code of `s` or kInvalidCode if not interned.
  int32_t Lookup(std::string_view s) const;

  /// Returns the string for `code`; requires a valid code.
  const std::string& At(int32_t code) const { return strings_[code]; }

  int32_t size() const { return static_cast<int32_t>(strings_.size()); }

  /// Approximate heap bytes used (strings + hash index).
  size_t MemoryUsage() const;

 private:
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, int32_t> index_;
};

}  // namespace teleios::storage

#endif  // TELEIOS_STORAGE_DICTIONARY_H_
