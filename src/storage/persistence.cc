#include "storage/persistence.h"

#include <cstdint>
#include <fstream>

#include "common/strings.h"

namespace teleios::storage {

namespace {

constexpr char kMagic[4] = {'T', 'E', 'L', 'T'};

void WriteU32(std::ostream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteString(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadU32(std::istream& is, uint32_t* v) {
  return static_cast<bool>(
      is.read(reinterpret_cast<char*>(v), sizeof(*v)));
}
bool ReadU64(std::istream& is, uint64_t* v) {
  return static_cast<bool>(
      is.read(reinterpret_cast<char*>(v), sizeof(*v)));
}
bool ReadString(std::istream& is, std::string* s) {
  uint32_t n = 0;
  if (!ReadU32(is, &n)) return false;
  s->resize(n);
  return static_cast<bool>(is.read(s->data(), n));
}

std::string CsvEscape(const std::string& s) {
  bool needs = s.find_first_of(",\"\n") != std::string::npos;
  if (!needs) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Status WriteTable(const Table& table, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open '" + path + "' for writing");
  os.write(kMagic, 4);
  WriteU32(os, static_cast<uint32_t>(table.num_columns()));
  WriteU64(os, table.num_rows());
  for (const Field& f : table.schema().fields()) {
    WriteString(os, f.name);
    WriteU32(os, static_cast<uint32_t>(f.type));
  }
  size_t rows = table.num_rows();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    for (size_t r = 0; r < rows; ++r) {
      uint8_t valid = col.IsNull(r) ? 0 : 1;
      os.write(reinterpret_cast<const char*>(&valid), 1);
    }
    switch (col.type()) {
      case ColumnType::kBool:
        for (size_t r = 0; r < rows; ++r) {
          uint8_t b = (!col.IsNull(r) && col.GetBool(r)) ? 1 : 0;
          os.write(reinterpret_cast<const char*>(&b), 1);
        }
        break;
      case ColumnType::kInt64:
        for (size_t r = 0; r < rows; ++r) {
          int64_t v = col.IsNull(r) ? 0 : col.GetInt64(r);
          os.write(reinterpret_cast<const char*>(&v), sizeof(v));
        }
        break;
      case ColumnType::kFloat64:
        for (size_t r = 0; r < rows; ++r) {
          double v = col.IsNull(r) ? 0.0 : col.GetFloat64(r);
          os.write(reinterpret_cast<const char*>(&v), sizeof(v));
        }
        break;
      case ColumnType::kString: {
        const Dictionary& dict = col.dict();
        WriteU32(os, static_cast<uint32_t>(dict.size()));
        for (int32_t i = 0; i < dict.size(); ++i) WriteString(os, dict.At(i));
        for (size_t r = 0; r < rows; ++r) {
          int32_t code = col.IsNull(r) ? -1 : col.GetStringCode(r);
          os.write(reinterpret_cast<const char*>(&code), sizeof(code));
        }
        break;
      }
    }
  }
  if (!os) return Status::IoError("write failure on '" + path + "'");
  return Status::OK();
}

Result<Table> ReadTable(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open '" + path + "' for reading");
  char magic[4];
  if (!is.read(magic, 4) || std::string(magic, 4) != std::string(kMagic, 4)) {
    return Status::ParseError("'" + path + "' is not a TELT file");
  }
  uint32_t ncols = 0;
  uint64_t nrows = 0;
  if (!ReadU32(is, &ncols) || !ReadU64(is, &nrows)) {
    return Status::ParseError("truncated TELT header");
  }
  std::vector<Field> fields;
  for (uint32_t c = 0; c < ncols; ++c) {
    Field f;
    uint32_t t = 0;
    if (!ReadString(is, &f.name) || !ReadU32(is, &t)) {
      return Status::ParseError("truncated TELT schema");
    }
    f.type = static_cast<ColumnType>(t);
    fields.push_back(std::move(f));
  }
  Table table{Schema(std::move(fields))};
  for (uint32_t c = 0; c < ncols; ++c) {
    Column& col = table.column(c);
    col.Reserve(nrows);
    std::vector<uint8_t> valid(nrows);
    if (nrows > 0 &&
        !is.read(reinterpret_cast<char*>(valid.data()),
                 static_cast<std::streamsize>(nrows))) {
      return Status::ParseError("truncated TELT validity");
    }
    switch (col.type()) {
      case ColumnType::kBool:
        for (uint64_t r = 0; r < nrows; ++r) {
          uint8_t b = 0;
          if (!is.read(reinterpret_cast<char*>(&b), 1)) {
            return Status::ParseError("truncated TELT payload");
          }
          if (valid[r]) col.AppendBool(b != 0);
          else col.AppendNull();
        }
        break;
      case ColumnType::kInt64:
        for (uint64_t r = 0; r < nrows; ++r) {
          int64_t v = 0;
          if (!is.read(reinterpret_cast<char*>(&v), sizeof(v))) {
            return Status::ParseError("truncated TELT payload");
          }
          if (valid[r]) col.AppendInt64(v);
          else col.AppendNull();
        }
        break;
      case ColumnType::kFloat64:
        for (uint64_t r = 0; r < nrows; ++r) {
          double v = 0;
          if (!is.read(reinterpret_cast<char*>(&v), sizeof(v))) {
            return Status::ParseError("truncated TELT payload");
          }
          if (valid[r]) col.AppendFloat64(v);
          else col.AppendNull();
        }
        break;
      case ColumnType::kString: {
        uint32_t dict_size = 0;
        if (!ReadU32(is, &dict_size)) {
          return Status::ParseError("truncated TELT dictionary");
        }
        std::vector<std::string> dict(dict_size);
        for (uint32_t i = 0; i < dict_size; ++i) {
          if (!ReadString(is, &dict[i])) {
            return Status::ParseError("truncated TELT dictionary entry");
          }
        }
        for (uint64_t r = 0; r < nrows; ++r) {
          int32_t code = 0;
          if (!is.read(reinterpret_cast<char*>(&code), sizeof(code))) {
            return Status::ParseError("truncated TELT codes");
          }
          if (valid[r] && code >= 0 && code < static_cast<int32_t>(dict_size)) {
            col.AppendString(dict[code]);
          } else {
            col.AppendNull();
          }
        }
        break;
      }
    }
  }
  return table;
}

namespace {

/// Splits one CSV record honoring quotes; returns false on a dangling
/// quote.
bool SplitCsvRecord(const std::string& line, std::vector<std::string>* out) {
  out->clear();
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
      continue;
    }
    if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      out->push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (quoted) return false;
  out->push_back(std::move(cur));
  return true;
}

}  // namespace

Result<Table> ReadCsv(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IoError("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(is, line)) {
    return Status::ParseError("empty CSV file '" + path + "'");
  }
  std::vector<std::string> header;
  if (!SplitCsvRecord(line, &header) || header.empty()) {
    return Status::ParseError("bad CSV header in '" + path + "'");
  }
  std::vector<std::vector<std::string>> records;
  size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> record;
    if (!SplitCsvRecord(line, &record)) {
      return Status::ParseError("unterminated quote at " + path + ":" +
                                std::to_string(lineno));
    }
    if (record.size() != header.size()) {
      return Status::ParseError("column count mismatch at " + path + ":" +
                                std::to_string(lineno));
    }
    records.push_back(std::move(record));
  }
  // Infer per-column types.
  std::vector<Field> fields;
  for (size_t c = 0; c < header.size(); ++c) {
    bool all_int = true;
    bool all_double = true;
    bool any_value = false;
    for (const auto& record : records) {
      const std::string& cell = record[c];
      if (cell.empty()) continue;
      any_value = true;
      if (all_int && !ParseInt64(cell).ok()) all_int = false;
      if (all_double && !ParseDouble(cell).ok()) all_double = false;
    }
    ColumnType type = ColumnType::kString;
    if (any_value && all_int) type = ColumnType::kInt64;
    else if (any_value && all_double) type = ColumnType::kFloat64;
    fields.push_back({header[c], type});
  }
  Table table{Schema(std::move(fields))};
  for (const auto& record : records) {
    std::vector<Value> row;
    for (size_t c = 0; c < record.size(); ++c) {
      const std::string& cell = record[c];
      if (cell.empty()) {
        row.emplace_back();
      } else {
        switch (table.schema().field(c).type) {
          case ColumnType::kInt64:
            row.emplace_back(*ParseInt64(cell));
            break;
          case ColumnType::kFloat64:
            row.emplace_back(*ParseDouble(cell));
            break;
          default:
            row.emplace_back(cell);
        }
      }
    }
    TELEIOS_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::IoError("cannot open '" + path + "' for writing");
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c) os << ",";
    os << CsvEscape(table.schema().field(c).name);
  }
  os << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) os << ",";
      Value v = table.Get(r, c);
      if (!v.is_null()) os << CsvEscape(v.ToString());
    }
    os << "\n";
  }
  if (!os) return Status::IoError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace teleios::storage
