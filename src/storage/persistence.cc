#include "storage/persistence.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <sstream>

#include "common/strings.h"
#include "io/codec.h"
#include "io/filesystem.h"

namespace teleios::storage {

namespace {

// TELT v2 on-disk layout:
//   "TELT" | u32 version=2 | header block | one block per column
// where a block is io::AppendBlockTo framing (u64 len, u32 CRC32C,
// payload). The header payload is (u32 ncols, u64 nrows, ncols x
// (string name, u32 type)); a column payload is nrows validity bytes
// followed by the typed cells (strings: u32 dict size, dict entries,
// nrows x i32 codes).
constexpr char kMagic[4] = {'T', 'E', 'L', 'T'};
constexpr uint32_t kTeltVersion = 2;
constexpr uint32_t kMaxColumns = 1u << 16;
constexpr uint32_t kMaxColumnType = static_cast<uint32_t>(ColumnType::kString);

std::string CsvEscape(const std::string& s) {
  bool needs = s.find_first_of(",\"\n") != std::string::npos;
  if (!needs) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::string SerializeColumn(const Column& col, size_t rows) {
  std::string payload;
  for (size_t r = 0; r < rows; ++r) {
    payload.push_back(col.IsNull(r) ? '\0' : '\1');
  }
  switch (col.type()) {
    case ColumnType::kBool:
      for (size_t r = 0; r < rows; ++r) {
        payload.push_back((!col.IsNull(r) && col.GetBool(r)) ? '\1' : '\0');
      }
      break;
    case ColumnType::kInt64:
      for (size_t r = 0; r < rows; ++r) {
        io::PutI64(&payload, col.IsNull(r) ? 0 : col.GetInt64(r));
      }
      break;
    case ColumnType::kFloat64:
      for (size_t r = 0; r < rows; ++r) {
        io::PutF64(&payload, col.IsNull(r) ? 0.0 : col.GetFloat64(r));
      }
      break;
    case ColumnType::kString: {
      const Dictionary& dict = col.dict();
      io::PutU32(&payload, static_cast<uint32_t>(dict.size()));
      for (int32_t i = 0; i < dict.size(); ++i) {
        io::PutStr(&payload, dict.At(i));
      }
      for (size_t r = 0; r < rows; ++r) {
        io::PutI32(&payload, col.IsNull(r) ? -1 : col.GetStringCode(r));
      }
      break;
    }
  }
  return payload;
}

Status ParseColumn(std::string_view payload, uint64_t nrows, Column* col) {
  io::ByteReader reader(payload);
  if (nrows > payload.size()) {
    return Status::ParseError("column block shorter than its validity map");
  }
  std::vector<uint8_t> valid(static_cast<size_t>(nrows));
  if (nrows > 0 && !reader.ReadBytes(valid.data(), valid.size())) {
    return Status::ParseError("truncated TELT validity");
  }
  col->Reserve(nrows);
  switch (col->type()) {
    case ColumnType::kBool:
      for (uint64_t r = 0; r < nrows; ++r) {
        uint8_t b = 0;
        if (!reader.ReadBytes(&b, 1)) {
          return Status::ParseError("truncated TELT payload");
        }
        if (valid[r]) col->AppendBool(b != 0);
        else col->AppendNull();
      }
      break;
    case ColumnType::kInt64:
      for (uint64_t r = 0; r < nrows; ++r) {
        int64_t v = 0;
        if (!reader.ReadI64(&v)) {
          return Status::ParseError("truncated TELT payload");
        }
        if (valid[r]) col->AppendInt64(v);
        else col->AppendNull();
      }
      break;
    case ColumnType::kFloat64:
      for (uint64_t r = 0; r < nrows; ++r) {
        double v = 0;
        if (!reader.ReadF64(&v)) {
          return Status::ParseError("truncated TELT payload");
        }
        if (valid[r]) col->AppendFloat64(v);
        else col->AppendNull();
      }
      break;
    case ColumnType::kString: {
      uint32_t dict_size = 0;
      if (!reader.ReadU32(&dict_size)) {
        return Status::ParseError("truncated TELT dictionary");
      }
      // Each entry takes at least its 4-byte length prefix.
      if (dict_size > reader.remaining() / sizeof(uint32_t)) {
        return Status::ParseError("implausible TELT dictionary size");
      }
      std::vector<std::string> dict(dict_size);
      for (uint32_t i = 0; i < dict_size; ++i) {
        if (!reader.ReadStr(&dict[i])) {
          return Status::ParseError("truncated TELT dictionary entry");
        }
      }
      for (uint64_t r = 0; r < nrows; ++r) {
        int32_t code = 0;
        if (!reader.ReadI32(&code)) {
          return Status::ParseError("truncated TELT codes");
        }
        if (!valid[r]) {
          col->AppendNull();
        } else if (code < 0 || code >= static_cast<int32_t>(dict_size)) {
          return Status::ParseError(
              "TELT dictionary code " + std::to_string(code) +
              " out of range (dictionary size " + std::to_string(dict_size) +
              ")");
        } else {
          col->AppendString(dict[code]);
        }
      }
      break;
    }
  }
  if (!reader.exhausted()) {
    return Status::ParseError("trailing bytes in TELT column block");
  }
  return Status::OK();
}

}  // namespace

Status WriteTable(const Table& table, const std::string& path) {
  std::string image(kMagic, sizeof(kMagic));
  io::PutU32(&image, kTeltVersion);
  std::string header;
  io::PutU32(&header, static_cast<uint32_t>(table.num_columns()));
  io::PutU64(&header, table.num_rows());
  for (const Field& f : table.schema().fields()) {
    io::PutStr(&header, f.name);
    io::PutU32(&header, static_cast<uint32_t>(f.type));
  }
  io::AppendBlockTo(&image, header);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    io::AppendBlockTo(&image,
                      SerializeColumn(table.column(c), table.num_rows()));
  }
  return io::GetFileSystem()->WriteFileAtomic(path, image);
}

Result<Table> ReadTable(const std::string& path) {
  TELEIOS_ASSIGN_OR_RETURN(std::unique_ptr<io::ReadableFile> file,
                           io::GetFileSystem()->NewReadableFile(path));
  io::FileReader reader(std::move(file));
  char magic[4];
  uint32_t version = 0;
  if (!reader.ReadExact(magic, sizeof(magic)) ||
      std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    if (!reader.status().ok()) return reader.status();
    return Status::ParseError("'" + path + "' is not a TELT file");
  }
  if (!reader.ReadExact(&version, sizeof(version))) {
    return io::TruncatedOr(reader, "truncated TELT version");
  }
  if (version > kTeltVersion) {
    // Forward-compatibility guard: a newer writer may have reshaped the
    // sections, so parsing by this binary's layout could silently
    // misread data — refuse loudly instead of guessing.
    return Status::DataLoss(
        "TELT version " + std::to_string(version) +
        " is newer than this binary (understands <= " +
        std::to_string(kTeltVersion) + "); upgrade before loading");
  }
  if (version != kTeltVersion) {
    return Status::ParseError("unsupported TELT version " +
                              std::to_string(version));
  }
  TELEIOS_ASSIGN_OR_RETURN(std::string header, io::ReadBlock(&reader));
  io::ByteReader h(header);
  uint32_t ncols = 0;
  uint64_t nrows = 0;
  if (!h.ReadU32(&ncols) || !h.ReadU64(&nrows)) {
    return Status::ParseError("truncated TELT header");
  }
  if (ncols > kMaxColumns) {
    return Status::ParseError("implausible TELT column count " +
                              std::to_string(ncols));
  }
  if (nrows > io::kMaxBlockLen) {
    // A column block stores at least one validity byte per row, so more
    // rows than the block size cap cannot be real.
    return Status::ParseError("implausible TELT row count " +
                              std::to_string(nrows));
  }
  std::vector<Field> fields;
  for (uint32_t c = 0; c < ncols; ++c) {
    Field f;
    uint32_t t = 0;
    if (!h.ReadStr(&f.name) || !h.ReadU32(&t)) {
      return Status::ParseError("truncated TELT schema");
    }
    if (t > kMaxColumnType) {
      return Status::ParseError("invalid TELT column type " +
                                std::to_string(t));
    }
    f.type = static_cast<ColumnType>(t);
    fields.push_back(std::move(f));
  }
  if (!h.exhausted()) {
    return Status::ParseError("trailing bytes in TELT header");
  }
  Table table{Schema(std::move(fields))};
  for (uint32_t c = 0; c < ncols; ++c) {
    TELEIOS_ASSIGN_OR_RETURN(std::string payload, io::ReadBlock(&reader));
    TELEIOS_RETURN_IF_ERROR(ParseColumn(payload, nrows, &table.column(c)));
  }
  char extra;
  if (reader.ReadExact(&extra, 1)) {
    return Status::ParseError("trailing data after TELT columns");
  }
  if (!reader.status().ok()) return reader.status();
  return table;
}

namespace {

/// Splits one CSV record honoring quotes; returns false on a dangling
/// quote.
bool SplitCsvRecord(const std::string& line, std::vector<std::string>* out) {
  out->clear();
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
      continue;
    }
    if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      out->push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (quoted) return false;
  out->push_back(std::move(cur));
  return true;
}

}  // namespace

Result<Table> ReadCsv(const std::string& path) {
  TELEIOS_ASSIGN_OR_RETURN(std::string content,
                           io::GetFileSystem()->ReadFile(path));
  std::istringstream is(content);
  std::string line;
  if (!std::getline(is, line)) {
    return Status::ParseError("empty CSV file '" + path + "'");
  }
  std::vector<std::string> header;
  if (!SplitCsvRecord(line, &header) || header.empty()) {
    return Status::ParseError("bad CSV header in '" + path + "'");
  }
  std::vector<std::vector<std::string>> records;
  size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> record;
    if (!SplitCsvRecord(line, &record)) {
      return Status::ParseError("unterminated quote at " + path + ":" +
                                std::to_string(lineno));
    }
    if (record.size() != header.size()) {
      return Status::ParseError("column count mismatch at " + path + ":" +
                                std::to_string(lineno));
    }
    records.push_back(std::move(record));
  }
  // Infer per-column types.
  std::vector<Field> fields;
  for (size_t c = 0; c < header.size(); ++c) {
    bool all_int = true;
    bool all_double = true;
    bool any_value = false;
    for (const auto& record : records) {
      const std::string& cell = record[c];
      if (cell.empty()) continue;
      any_value = true;
      if (all_int && !ParseInt64(cell).ok()) all_int = false;
      if (all_double && !ParseDouble(cell).ok()) all_double = false;
    }
    ColumnType type = ColumnType::kString;
    if (any_value && all_int) type = ColumnType::kInt64;
    else if (any_value && all_double) type = ColumnType::kFloat64;
    fields.push_back({header[c], type});
  }
  Table table{Schema(std::move(fields))};
  for (const auto& record : records) {
    std::vector<Value> row;
    for (size_t c = 0; c < record.size(); ++c) {
      const std::string& cell = record[c];
      if (cell.empty()) {
        row.emplace_back();
      } else {
        switch (table.schema().field(c).type) {
          case ColumnType::kInt64:
            row.emplace_back(*ParseInt64(cell));
            break;
          case ColumnType::kFloat64:
            row.emplace_back(*ParseDouble(cell));
            break;
          default:
            row.emplace_back(cell);
        }
      }
    }
    TELEIOS_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c) out += ",";
    out += CsvEscape(table.schema().field(c).name);
  }
  out += "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) out += ",";
      Value v = table.Get(r, c);
      if (!v.is_null()) out += CsvEscape(v.ToString());
    }
    out += "\n";
  }
  return io::GetFileSystem()->WriteFileAtomic(path, out);
}

namespace {

constexpr std::string_view kManifestMagic = "#TELCAT1";
constexpr char kManifestName[] = "/MANIFEST";

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Matches `table_<digits>[_<digits>].telt` — a snapshot table file of
/// any generation (including the pre-generation `table_<N>.telt` form).
/// Returns the first number (the generation) or nullopt for other files.
std::optional<uint64_t> TableFileGeneration(const std::string& file) {
  constexpr std::string_view kPrefix = "table_";
  constexpr std::string_view kSuffix = ".telt";
  if (file.size() <= kPrefix.size() + kSuffix.size() ||
      file.compare(0, kPrefix.size(), kPrefix) != 0 ||
      file.compare(file.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return std::nullopt;
  }
  std::string_view middle(file.data() + kPrefix.size(),
                          file.size() - kPrefix.size() - kSuffix.size());
  uint64_t gen = 0;
  size_t i = 0;
  for (; i < middle.size() && middle[i] >= '0' && middle[i] <= '9'; ++i) {
    gen = gen * 10 + static_cast<uint64_t>(middle[i] - '0');
  }
  if (i == 0) return std::nullopt;  // no digits after the prefix
  if (i < middle.size()) {
    // Optional `_<index>` tail; anything else is not a table file.
    if (middle[i] != '_') return std::nullopt;
    for (++i; i < middle.size(); ++i) {
      if (middle[i] < '0' || middle[i] > '9') return std::nullopt;
    }
  }
  return gen;
}

}  // namespace

Status SaveCatalog(const Catalog& catalog, const std::string& dir) {
  return SaveCatalogCheckpoint(catalog, dir, /*lsn=*/0, nullptr);
}

Status SaveCatalogCheckpoint(const Catalog& catalog, const std::string& dir,
                             uint64_t lsn, SnapshotMeta* meta) {
  io::FileSystem* fs = io::GetFileSystem();
  TELEIOS_RETURN_IF_ERROR(fs->CreateDir(dir));
  // Table files are written under generation-unique names
  // (`table_<gen>_<idx>.telt`), never reusing a name that exists in the
  // directory: files referenced by the live MANIFEST are never touched,
  // so a crash anywhere in this function leaves the previous snapshot
  // fully intact — never a hybrid of old and new table versions.
  TELEIOS_ASSIGN_OR_RETURN(std::vector<std::string> existing,
                           fs->ListDirectory(dir));
  uint64_t generation = 0;
  for (const std::string& path : existing) {
    if (std::optional<uint64_t> gen = TableFileGeneration(Basename(path))) {
      generation = std::max(generation, *gen + 1);
    }
  }
  std::string manifest(kManifestMagic);
  manifest += "\n";
  // Meta lines ride inside the same atomic MANIFEST write, so the
  // generation and applied-LSN mark can never disagree with the table
  // data: the rename commits both or neither.
  manifest += "#GEN " + std::to_string(generation) + "\n";
  manifest += "#LSN " + std::to_string(lsn) + "\n";
  size_t index = 0;
  for (const std::string& name : catalog.TableNames()) {
    if (name.find('\n') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      return Status::InvalidArgument("table name not snapshot-safe: '" +
                                     name + "'");
    }
    TELEIOS_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(name));
    std::string file = "table_" + std::to_string(generation) + "_" +
                       std::to_string(index++) + ".telt";
    TELEIOS_RETURN_IF_ERROR(WriteTable(*table, dir + "/" + file));
    manifest += file + "\t" + name + "\n";
  }
  io::AppendCrcTrailer(&manifest);
  // The manifest lands last, atomically: a crash before this point
  // leaves the previous MANIFEST (and thus the previous snapshot) in
  // force; the freshly written table files are inert until referenced.
  TELEIOS_RETURN_IF_ERROR(fs->WriteFileAtomic(dir + kManifestName, manifest));
  // The new MANIFEST is in force; every table file that predates this
  // generation (older snapshots, leftovers of crashed saves) is now
  // unreferenced garbage. Best-effort removal — a failure here cannot
  // hurt correctness, only disk usage.
  for (const std::string& path : existing) {
    if (TableFileGeneration(Basename(path))) (void)fs->RemoveFile(path);
  }
  if (meta != nullptr) {
    meta->loaded = true;
    meta->generation = generation;
    meta->lsn = lsn;
    meta->tables = index;
  }
  return Status::OK();
}

namespace {

/// Checks the manifest's `#TELCAT<N>` magic line: OK for this binary's
/// format, kDataLoss for a newer one, ParseError for anything else.
Status CheckManifestMagic(const std::string& line, const std::string& dir) {
  if (line == kManifestMagic) return Status::OK();
  constexpr std::string_view kMagicPrefix = "#TELCAT";
  if (line.size() > kMagicPrefix.size() &&
      line.compare(0, kMagicPrefix.size(), kMagicPrefix) == 0) {
    uint64_t format = 0;
    size_t i = kMagicPrefix.size();
    for (; i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i) {
      format = format * 10 + static_cast<uint64_t>(line[i] - '0');
    }
    if (i == line.size() && format > 1) {
      return Status::DataLoss(
          "catalog manifest in '" + dir + "' has format " +
          std::to_string(format) +
          ", newer than this binary (understands <= 1); refusing to guess "
          "the layout");
    }
  }
  return Status::ParseError("'" + dir + "' has no catalog manifest");
}

/// Parses `#GEN <n>` / `#LSN <n>` meta lines; other `#` lines are
/// ignored (same-format additions must be skippable by older readers —
/// layout changes bump the magic instead).
void ParseManifestMeta(const std::string& line, SnapshotMeta* meta) {
  auto parse_u64 = [](std::string_view text, uint64_t* out) {
    if (text.empty()) return false;
    uint64_t v = 0;
    for (char c : text) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = v;
    return true;
  };
  constexpr std::string_view kGen = "#GEN ";
  constexpr std::string_view kLsn = "#LSN ";
  if (line.compare(0, kGen.size(), kGen) == 0) {
    (void)parse_u64(std::string_view(line).substr(kGen.size()),
                    &meta->generation);
  } else if (line.compare(0, kLsn.size(), kLsn) == 0) {
    (void)parse_u64(std::string_view(line).substr(kLsn.size()), &meta->lsn);
  }
}

Result<SnapshotMeta> LoadCatalogImpl(const std::string& dir,
                                     Catalog* catalog) {
  io::FileSystem* fs = io::GetFileSystem();
  TELEIOS_ASSIGN_OR_RETURN(std::string raw,
                           fs->ReadFile(dir + kManifestName));
  TELEIOS_ASSIGN_OR_RETURN(std::string content, io::VerifyCrcTrailer(raw));
  std::istringstream is(content);
  std::string line;
  if (!std::getline(is, line)) {
    return Status::ParseError("'" + dir + "' has no catalog manifest");
  }
  TELEIOS_RETURN_IF_ERROR(CheckManifestMagic(line, dir));
  SnapshotMeta meta;
  meta.loaded = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      ParseManifestMeta(line, &meta);
      continue;
    }
    size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::ParseError("malformed manifest line: '" + line + "'");
    }
    std::string file = line.substr(0, tab);
    std::string name = line.substr(tab + 1);
    if (file.find('/') != std::string::npos) {
      return Status::ParseError("manifest file entry escapes snapshot: '" +
                                file + "'");
    }
    TELEIOS_ASSIGN_OR_RETURN(Table table, ReadTable(dir + "/" + file));
    TELEIOS_RETURN_IF_ERROR(catalog->CreateTable(
        name, std::make_shared<Table>(std::move(table))));
    ++meta.tables;
  }
  return meta;
}

}  // namespace

Result<size_t> LoadCatalog(const std::string& dir, Catalog* catalog) {
  TELEIOS_ASSIGN_OR_RETURN(SnapshotMeta meta, LoadCatalogImpl(dir, catalog));
  return meta.tables;
}

Result<SnapshotMeta> LoadCatalogSnapshot(const std::string& dir,
                                         Catalog* catalog) {
  // PosixFileSystem reports a missing file as IoError, so probe
  // explicitly: an absent MANIFEST is a fresh observatory directory,
  // not a failure.
  TELEIOS_ASSIGN_OR_RETURN(
      bool exists, io::GetFileSystem()->FileExists(dir + kManifestName));
  if (!exists) return SnapshotMeta{};
  return LoadCatalogImpl(dir, catalog);
}

}  // namespace teleios::storage
