#ifndef TELEIOS_STORAGE_COLUMN_H_
#define TELEIOS_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/dictionary.h"

namespace teleios::storage {

/// Physical column types. Strings are dictionary-encoded (int32 codes into
/// a per-column Dictionary), the MonetDB BAT-tail idiom.
enum class ColumnType {
  kBool,
  kInt64,
  kFloat64,
  kString,
};

const char* ColumnTypeName(ColumnType t);

/// Maps a scalar ValueType to its column storage type.
Result<ColumnType> ColumnTypeForValue(ValueType t);
/// Maps a column type to the scalar type its cells produce.
ValueType ValueTypeForColumn(ColumnType t);

/// Row indices selected by a predicate — MonetDB candidate-list idiom.
using SelectionVector = std::vector<uint32_t>;

/// A typed, nullable, append-only column of values (the "tail" of a BAT;
/// the "head" is the implicit dense row id).
class Column {
 public:
  explicit Column(ColumnType type);

  ColumnType type() const { return type_; }
  size_t size() const { return validity_.size(); }

  /// Appends a typed value; Value() appends NULL. Numeric values are
  /// coerced (int<->float); anything else is a TypeError.
  Status Append(const Value& v);

  /// Fast typed appends (no coercion, marks valid).
  void AppendBool(bool v);
  void AppendInt64(int64_t v);
  void AppendFloat64(double v);
  void AppendString(std::string_view v);
  void AppendNull();

  bool IsNull(size_t row) const { return !validity_[row]; }

  /// Generic accessor; returns Value() for NULL.
  Value Get(size_t row) const;

  /// Typed accessors; require valid row of the matching type.
  bool GetBool(size_t row) const { return bools_[row] != 0; }
  int64_t GetInt64(size_t row) const { return ints_[row]; }
  double GetFloat64(size_t row) const { return doubles_[row]; }
  const std::string& GetString(size_t row) const {
    return dict_->At(codes_[row]);
  }
  /// Dictionary code of a string cell (kInvalidCode semantics not used for
  /// valid rows).
  int32_t GetStringCode(size_t row) const { return codes_[row]; }

  const Dictionary& dict() const { return *dict_; }
  Dictionary& dict() { return *dict_; }

  /// Raw typed storage (for vectorized operators / benchmarks).
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<int32_t>& codes() const { return codes_; }

  /// Mutable typed storage — used by the array engine, whose cells are
  /// updatable in place (unlike append-only relational columns).
  std::vector<int64_t>& mutable_ints() { return ints_; }
  std::vector<double>& mutable_doubles() { return doubles_; }

  /// Overwrites a cell with a (coercible) value or NULL.
  Status Set(size_t row, const Value& v);

  /// Returns a new column holding rows listed in `sel`.
  Column Take(const SelectionVector& sel) const;

  /// Approximate heap usage in bytes.
  size_t MemoryUsage() const;

  void Reserve(size_t n);

 private:
  ColumnType type_;
  std::vector<uint8_t> validity_;  // 1 = valid
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<int32_t> codes_;
  std::shared_ptr<Dictionary> dict_;  // only for kString
};

}  // namespace teleios::storage

#endif  // TELEIOS_STORAGE_COLUMN_H_
