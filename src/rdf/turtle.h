#ifndef TELEIOS_RDF_TURTLE_H_
#define TELEIOS_RDF_TURTLE_H_

#include <map>
#include <string>

#include "common/status.h"
#include "rdf/triple_store.h"

namespace teleios::rdf {

/// Parses Turtle text into `store`. Supported subset: @prefix / PREFIX,
/// IRIs, prefixed names, `a`, blank nodes (_:label), literals with
/// escapes, @lang, ^^datatype, numeric and boolean shorthand, `;` and `,`
/// continuation, `#` comments. Returns the number of triples added.
Result<size_t> ParseTurtle(const std::string& text, TripleStore* store);

/// Serializes the whole store as Turtle, grouping by subject and using
/// `prefixes` (name -> IRI prefix) to shorten IRIs.
std::string WriteTurtle(const TripleStore& store,
                        const std::map<std::string, std::string>& prefixes);

}  // namespace teleios::rdf

#endif  // TELEIOS_RDF_TURTLE_H_
