#include "rdf/dictionary.h"

namespace teleios::rdf {

TermId TermDictionary::Intern(const Term& term) {
  std::string key = term.ToNTriples();
  int32_t before = keys_.size();
  int32_t code = keys_.Intern(key);
  if (code == before) {
    terms_.push_back(term);  // newly interned
  }
  return code;
}

TermId TermDictionary::Lookup(const Term& term) const {
  return keys_.Lookup(term.ToNTriples());
}

size_t TermDictionary::MemoryUsage() const {
  size_t bytes = keys_.MemoryUsage();
  for (const Term& t : terms_) {
    bytes += t.lexical.capacity() + t.datatype.capacity() + t.lang.capacity() +
             sizeof(Term);
  }
  return bytes;
}

}  // namespace teleios::rdf
