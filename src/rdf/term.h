#ifndef TELEIOS_RDF_TERM_H_
#define TELEIOS_RDF_TERM_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace teleios::rdf {

/// Well-known datatype IRIs.
inline constexpr const char* kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr const char* kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
inline constexpr const char* kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";
inline constexpr const char* kXsdDateTime =
    "http://www.w3.org/2001/XMLSchema#dateTime";
/// stRDF spatial literal datatype (WKT with optional CRS), per the
/// Strabon system the paper builds on.
inline constexpr const char* kStrdfWkt = "http://strdf.di.uoa.gr/ontology#WKT";
/// stRDF temporal period datatype.
inline constexpr const char* kStrdfPeriod =
    "http://strdf.di.uoa.gr/ontology#period";
inline constexpr const char* kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

enum class TermKind { kIri, kBlank, kLiteral };

/// An RDF term: IRI, blank node, or (optionally typed / language-tagged)
/// literal.
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;   // IRI text, blank label, or literal lexical form
  std::string datatype;  // literal datatype IRI; empty = plain string
  std::string lang;      // literal language tag (mutually exclusive)

  static Term Iri(std::string iri);
  static Term Blank(std::string label);
  static Term Literal(std::string value, std::string datatype = "",
                      std::string lang = "");
  static Term IntegerLiteral(int64_t v);
  static Term DoubleLiteral(double v);
  static Term BooleanLiteral(bool v);
  /// WKT geometry literal typed strdf:WKT.
  static Term WktLiteral(std::string wkt);

  bool IsIri() const { return kind == TermKind::kIri; }
  bool IsBlank() const { return kind == TermKind::kBlank; }
  bool IsLiteral() const { return kind == TermKind::kLiteral; }
  bool IsWkt() const { return IsLiteral() && datatype == kStrdfWkt; }

  /// Canonical N-Triples rendering; doubles as the dictionary key.
  std::string ToNTriples() const;

  bool operator==(const Term& other) const {
    return kind == other.kind && lexical == other.lexical &&
           datatype == other.datatype && lang == other.lang;
  }
};

/// Escapes a string for an N-Triples literal body.
std::string EscapeNTriplesString(const std::string& s);

}  // namespace teleios::rdf

#endif  // TELEIOS_RDF_TERM_H_
