#include "rdf/triple_store.h"

#include <algorithm>

namespace teleios::rdf {

namespace {

/// Deduplication set key.
struct TripleLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};

}  // namespace

void TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  AddEncoded({dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)});
}

void TripleStore::AddEncoded(Triple t) {
  // Duplicate check via the SPO index when valid, else linear for small
  // stores / rebuild later. To keep Add O(log n) amortized we accept
  // duplicates here and deduplicate on index build.
  triples_.push_back(t);
  indexes_valid_ = false;
}

void TripleStore::EnsureIndexes() const {
  if (indexes_valid_) return;
  // Deduplicate (stable first occurrence).
  {
    std::vector<Triple> sorted = triples_;
    std::sort(sorted.begin(), sorted.end(), TripleLess());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    const_cast<TripleStore*>(this)->triples_ = std::move(sorted);
  }
  size_t n = triples_.size();
  spo_.resize(n);
  pos_.resize(n);
  osp_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    spo_[i] = pos_[i] = osp_[i] = static_cast<uint32_t>(i);
  }
  // triples_ already sorted SPO.
  std::sort(pos_.begin(), pos_.end(), [&](uint32_t a, uint32_t b) {
    const Triple& x = triples_[a];
    const Triple& y = triples_[b];
    if (x.p != y.p) return x.p < y.p;
    if (x.o != y.o) return x.o < y.o;
    return x.s < y.s;
  });
  std::sort(osp_.begin(), osp_.end(), [&](uint32_t a, uint32_t b) {
    const Triple& x = triples_[a];
    const Triple& y = triples_[b];
    if (x.o != y.o) return x.o < y.o;
    if (x.s != y.s) return x.s < y.s;
    return x.p < y.p;
  });
  indexes_valid_ = true;
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pat) const {
  EnsureIndexes();
  std::vector<Triple> out;
  auto matches = [&](const Triple& t) {
    return (!pat.s || *pat.s == t.s) && (!pat.p || *pat.p == t.p) &&
           (!pat.o || *pat.o == t.o);
  };
  if (pat.s) {
    // triples_ sorted SPO; binary search S range.
    auto lo = std::lower_bound(
        triples_.begin(), triples_.end(), *pat.s,
        [](const Triple& t, TermId s) { return t.s < s; });
    for (auto it = lo; it != triples_.end() && it->s == *pat.s; ++it) {
      if (matches(*it)) out.push_back(*it);
    }
    return out;
  }
  if (pat.p) {
    auto lo = std::lower_bound(
        pos_.begin(), pos_.end(), *pat.p,
        [&](uint32_t idx, TermId p) { return triples_[idx].p < p; });
    for (auto it = lo; it != pos_.end() && triples_[*it].p == *pat.p; ++it) {
      if (matches(triples_[*it])) out.push_back(triples_[*it]);
    }
    return out;
  }
  if (pat.o) {
    auto lo = std::lower_bound(
        osp_.begin(), osp_.end(), *pat.o,
        [&](uint32_t idx, TermId o) { return triples_[idx].o < o; });
    for (auto it = lo; it != osp_.end() && triples_[*it].o == *pat.o; ++it) {
      if (matches(triples_[*it])) out.push_back(triples_[*it]);
    }
    return out;
  }
  return triples_;  // full scan (already deduplicated)
}

std::vector<Triple> TripleStore::Match(const std::optional<Term>& s,
                                       const std::optional<Term>& p,
                                       const std::optional<Term>& o) const {
  TriplePattern pat;
  if (s) {
    TermId id = dict_.Lookup(*s);
    if (id == kNoTerm) return {};
    pat.s = id;
  }
  if (p) {
    TermId id = dict_.Lookup(*p);
    if (id == kNoTerm) return {};
    pat.p = id;
  }
  if (o) {
    TermId id = dict_.Lookup(*o);
    if (id == kNoTerm) return {};
    pat.o = id;
  }
  return Match(pat);
}

size_t TripleStore::Remove(const TriplePattern& pat) {
  auto matches = [&](const Triple& t) {
    return (!pat.s || *pat.s == t.s) && (!pat.p || *pat.p == t.p) &&
           (!pat.o || *pat.o == t.o);
  };
  size_t before = triples_.size();
  triples_.erase(std::remove_if(triples_.begin(), triples_.end(), matches),
                 triples_.end());
  indexes_valid_ = false;
  return before - triples_.size();
}

size_t TripleStore::MemoryUsage() const {
  return dict_.MemoryUsage() + triples_.capacity() * sizeof(Triple) +
         (spo_.capacity() + pos_.capacity() + osp_.capacity()) *
             sizeof(uint32_t);
}

}  // namespace teleios::rdf
