#ifndef TELEIOS_RDF_DICTIONARY_H_
#define TELEIOS_RDF_DICTIONARY_H_

#include <cstdint>
#include <vector>

#include "rdf/term.h"
#include "storage/dictionary.h"

namespace teleios::rdf {

/// Dense id of an interned term.
using TermId = int32_t;
inline constexpr TermId kNoTerm = -1;

/// Term dictionary: maps RDF terms to dense ids, keyed by the canonical
/// N-Triples rendering (the column-store dictionary idiom — Strabon's
/// MonetDB backend stores triples as integer columns over this mapping).
class TermDictionary {
 public:
  /// Interns `term`, returning its id.
  TermId Intern(const Term& term);

  /// Id of `term` or kNoTerm.
  TermId Lookup(const Term& term) const;

  /// Term for a valid id.
  const Term& At(TermId id) const { return terms_[static_cast<size_t>(id)]; }

  int32_t size() const { return static_cast<int32_t>(terms_.size()); }

  size_t MemoryUsage() const;

 private:
  storage::Dictionary keys_;
  std::vector<Term> terms_;
};

}  // namespace teleios::rdf

#endif  // TELEIOS_RDF_DICTIONARY_H_
