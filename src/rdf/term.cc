#include "rdf/term.h"

#include "common/strings.h"

namespace teleios::rdf {

Term Term::Iri(std::string iri) {
  Term t;
  t.kind = TermKind::kIri;
  t.lexical = std::move(iri);
  return t;
}

Term Term::Blank(std::string label) {
  Term t;
  t.kind = TermKind::kBlank;
  t.lexical = std::move(label);
  return t;
}

Term Term::Literal(std::string value, std::string datatype,
                   std::string lang) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.lexical = std::move(value);
  t.datatype = std::move(datatype);
  t.lang = std::move(lang);
  return t;
}

Term Term::IntegerLiteral(int64_t v) {
  return Literal(std::to_string(v), kXsdInteger);
}

Term Term::DoubleLiteral(double v) {
  return Literal(StrFormat("%.10g", v), kXsdDouble);
}

Term Term::BooleanLiteral(bool v) {
  return Literal(v ? "true" : "false", kXsdBoolean);
}

Term Term::WktLiteral(std::string wkt) {
  return Literal(std::move(wkt), kStrdfWkt);
}

std::string EscapeNTriplesString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Term::ToNTriples() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + lexical + ">";
    case TermKind::kBlank:
      return "_:" + lexical;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeNTriplesString(lexical) + "\"";
      if (!lang.empty()) {
        out += "@" + lang;
      } else if (!datatype.empty()) {
        out += "^^<" + datatype + ">";
      }
      return out;
    }
  }
  return "";
}

}  // namespace teleios::rdf
