#include "rdf/turtle.h"

#include <cctype>
#include <sstream>

#include "common/strings.h"

namespace teleios::rdf {

namespace {

class TurtleParser {
 public:
  TurtleParser(const std::string& text, TripleStore* store)
      : text_(text), store_(store) {}

  Result<size_t> Run() {
    size_t added = 0;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size()) break;
      if (TryDirective()) continue;
      TELEIOS_ASSIGN_OR_RETURN(Term subject, ParseTerm());
      if (subject.IsLiteral()) {
        return Err("literal cannot be a subject");
      }
      TELEIOS_ASSIGN_OR_RETURN(size_t n, ParsePredicateObjectList(subject));
      added += n;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '.') {
        ++pos_;
      } else {
        return Err("expected '.' after triples");
      }
    }
    return added;
  }

 private:
  Status Err(const std::string& msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool TryDirective() {
    size_t save = pos_;
    std::string word;
    if (text_[pos_] == '@') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        word += text_[pos_++];
      }
    } else {
      size_t p = pos_;
      while (p < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[p]))) {
        word += text_[p++];
      }
      if (!StrEqualsIgnoreCase(word, "prefix") &&
          !StrEqualsIgnoreCase(word, "base")) {
        return false;
      }
      pos_ = p;
    }
    if (StrEqualsIgnoreCase(word, "prefix")) {
      SkipWs();
      std::string name;
      while (pos_ < text_.size() && text_[pos_] != ':') {
        name += text_[pos_++];
      }
      ++pos_;  // ':'
      SkipWs();
      auto iri = ParseIriRef();
      if (iri.ok()) prefixes_[std::string(StrTrim(name))] = *iri;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '.') ++pos_;
      return true;
    }
    if (StrEqualsIgnoreCase(word, "base")) {
      SkipWs();
      auto iri = ParseIriRef();
      if (iri.ok()) base_ = *iri;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '.') ++pos_;
      return true;
    }
    pos_ = save;
    return false;
  }

  Result<std::string> ParseIriRef() {
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Err("expected IRI");
    }
    ++pos_;
    std::string iri;
    while (pos_ < text_.size() && text_[pos_] != '>') {
      iri += text_[pos_++];
    }
    if (pos_ >= text_.size()) return Err("unterminated IRI");
    ++pos_;  // '>'
    if (!base_.empty() && iri.find("://") == std::string::npos) {
      return base_ + iri;
    }
    return iri;
  }

  Result<Term> ParseTerm() {
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    if (c == '<') {
      TELEIOS_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
      return Term::Iri(std::move(iri));
    }
    if (c == '_') {
      pos_ += 2;  // "_:"
      std::string label;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        label += text_[pos_++];
      }
      return Term::Blank(std::move(label));
    }
    if (c == '"' || c == '\'') {
      return ParseLiteral();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+') {
      std::string num;
      bool is_double = false;
      if (c == '-' || c == '+') num += text_[pos_++];
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E' ||
              ((text_[pos_] == '-' || text_[pos_] == '+') && pos_ > 0 &&
               (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
        if (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E') {
          is_double = true;
        }
        num += text_[pos_++];
      }
      // Trailing '.' is the statement terminator, not part of the number.
      if (!num.empty() && num.back() == '.') {
        num.pop_back();
        --pos_;
        is_double = num.find('.') != std::string::npos;
      }
      return Term::Literal(num, is_double ? kXsdDouble : kXsdInteger);
    }
    // 'a' keyword or prefixed name or true/false.
    std::string word;
    size_t p = pos_;
    while (p < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[p])) ||
            text_[p] == '_' || text_[p] == '-' || text_[p] == '.' ||
            text_[p] == ':')) {
      word += text_[p++];
    }
    if (word == "a") {
      pos_ = p;
      return Term::Iri(kRdfType);
    }
    if (word == "true" || word == "false") {
      pos_ = p;
      return Term::BooleanLiteral(word == "true");
    }
    size_t colon = word.find(':');
    if (colon == std::string::npos) {
      return Err("expected term, got '" + word + "'");
    }
    // Prefixed name may not end with '.' (statement dot).
    while (!word.empty() && word.back() == '.') {
      word.pop_back();
      --p;
    }
    pos_ = p;
    std::string prefix = word.substr(0, colon);
    std::string local = word.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Err("unknown prefix '" + prefix + ":'");
    }
    return Term::Iri(it->second + local);
  }

  Result<Term> ParseLiteral() {
    char quote = text_[pos_];
    bool triple_quoted = false;
    if (pos_ + 2 < text_.size() && text_[pos_ + 1] == quote &&
        text_[pos_ + 2] == quote) {
      triple_quoted = true;
      pos_ += 3;
    } else {
      ++pos_;
    }
    std::string value;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          case 'r':
            value += '\r';
            break;
          case '\\':
            value += '\\';
            break;
          case '"':
            value += '"';
            break;
          case '\'':
            value += '\'';
            break;
          default:
            value += e;
        }
        continue;
      }
      if (c == quote) {
        if (triple_quoted) {
          if (pos_ + 2 < text_.size() && text_[pos_ + 1] == quote &&
              text_[pos_ + 2] == quote) {
            pos_ += 3;
            break;
          }
          value += c;
          ++pos_;
          continue;
        }
        ++pos_;
        break;
      }
      value += c;
      ++pos_;
    }
    // Suffix: @lang or ^^datatype.
    if (pos_ < text_.size() && text_[pos_] == '@') {
      ++pos_;
      std::string lang;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '-')) {
        lang += text_[pos_++];
      }
      return Term::Literal(std::move(value), "", std::move(lang));
    }
    if (pos_ + 1 < text_.size() && text_[pos_] == '^' &&
        text_[pos_ + 1] == '^') {
      pos_ += 2;
      TELEIOS_ASSIGN_OR_RETURN(Term dt, ParseTerm());
      if (!dt.IsIri()) return Err("datatype must be an IRI");
      return Term::Literal(std::move(value), dt.lexical);
    }
    return Term::Literal(std::move(value));
  }

  Result<size_t> ParsePredicateObjectList(const Term& subject) {
    size_t added = 0;
    while (true) {
      TELEIOS_ASSIGN_OR_RETURN(Term predicate, ParseTerm());
      if (!predicate.IsIri()) return Err("predicate must be an IRI");
      while (true) {
        TELEIOS_ASSIGN_OR_RETURN(Term object, ParseTerm());
        store_->Add(subject, predicate, object);
        ++added;
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ';') {
        ++pos_;
        SkipWs();
        // Allow trailing ';' before '.'.
        if (pos_ < text_.size() && text_[pos_] == '.') break;
        continue;
      }
      break;
    }
    return added;
  }

  const std::string& text_;
  TripleStore* store_;
  size_t pos_ = 0;
  std::string base_;
  std::map<std::string, std::string> prefixes_;
};

/// Shortens `iri` with the longest matching prefix.
std::string Shorten(const std::string& iri,
                    const std::map<std::string, std::string>& prefixes) {
  std::string best_name;
  size_t best_len = 0;
  for (const auto& [name, p] : prefixes) {
    if (p.size() > best_len && StrStartsWith(iri, p)) {
      best_len = p.size();
      best_name = name;
    }
  }
  if (best_len == 0) return "<" + iri + ">";
  std::string local = iri.substr(best_len);
  for (char c : local) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-') {
      return "<" + iri + ">";  // local part not a valid PN_LOCAL
    }
  }
  return best_name + ":" + local;
}

std::string TermToTurtle(const Term& t,
                         const std::map<std::string, std::string>& prefixes) {
  if (t.IsIri()) {
    if (t.lexical == kRdfType) return "a";
    return Shorten(t.lexical, prefixes);
  }
  if (t.IsBlank()) return "_:" + t.lexical;
  std::string out = "\"" + EscapeNTriplesString(t.lexical) + "\"";
  if (!t.lang.empty()) {
    out += "@" + t.lang;
  } else if (!t.datatype.empty()) {
    out += "^^" + Shorten(t.datatype, prefixes);
  }
  return out;
}

}  // namespace

Result<size_t> ParseTurtle(const std::string& text, TripleStore* store) {
  TurtleParser parser(text, store);
  return parser.Run();
}

std::string WriteTurtle(const TripleStore& store,
                        const std::map<std::string, std::string>& prefixes) {
  std::ostringstream os;
  for (const auto& [name, iri] : prefixes) {
    os << "@prefix " << name << ": <" << iri << "> .\n";
  }
  if (!prefixes.empty()) os << "\n";
  // Group by subject (Match({}) returns SPO order after index build).
  std::vector<Triple> all = store.Match(TriplePattern{});
  const TermDictionary& dict = store.dict();
  for (size_t i = 0; i < all.size();) {
    TermId s = all[i].s;
    os << TermToTurtle(dict.At(s), prefixes);
    size_t j = i;
    bool first = true;
    while (j < all.size() && all[j].s == s) {
      os << (first ? " " : " ;\n    ");
      first = false;
      os << TermToTurtle(dict.At(all[j].p), prefixes) << " "
         << TermToTurtle(dict.At(all[j].o), prefixes);
      TermId p = all[j].p;
      ++j;
      while (j < all.size() && all[j].s == s && all[j].p == p) {
        os << ", " << TermToTurtle(dict.At(all[j].o), prefixes);
        ++j;
      }
    }
    os << " .\n";
    i = j;
  }
  return os.str();
}

}  // namespace teleios::rdf
