#ifndef TELEIOS_RDF_TRIPLE_STORE_H_
#define TELEIOS_RDF_TRIPLE_STORE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace teleios::rdf {

struct Triple {
  TermId s;
  TermId p;
  TermId o;

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

/// A triple pattern; unset positions are wildcards.
struct TriplePattern {
  std::optional<TermId> s;
  std::optional<TermId> p;
  std::optional<TermId> o;
};

/// Dictionary-encoded triple store with SPO/POS/OSP sorted permutation
/// indexes (built lazily, invalidated on write) — the Strabon storage
/// scheme over a column store.
class TripleStore {
 public:
  TermDictionary& dict() { return dict_; }
  const TermDictionary& dict() const { return dict_; }

  /// Interns the terms and adds the triple (duplicates are kept out).
  void Add(const Term& s, const Term& p, const Term& o);
  void AddEncoded(Triple t);

  /// Removes all triples matching the pattern; returns the count.
  size_t Remove(const TriplePattern& pattern);

  /// All triples matching the pattern, using the best index.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Convenience: match with Terms (unknown terms match nothing).
  std::vector<Triple> Match(const std::optional<Term>& s,
                            const std::optional<Term>& p,
                            const std::optional<Term>& o) const;

  size_t size() const { return triples_.size(); }
  const std::vector<Triple>& triples() const { return triples_; }

  size_t MemoryUsage() const;

 private:
  void EnsureIndexes() const;

  TermDictionary dict_;
  std::vector<Triple> triples_;

  // Lazily built sorted permutations (indices into triples_).
  mutable bool indexes_valid_ = false;
  mutable std::vector<uint32_t> spo_;
  mutable std::vector<uint32_t> pos_;
  mutable std::vector<uint32_t> osp_;
};

}  // namespace teleios::rdf

#endif  // TELEIOS_RDF_TRIPLE_STORE_H_
