#include "exec/thread_pool.h"

#include <cstdlib>

namespace teleios::exec {

namespace {

/// Worker index on the pool that owns the calling thread; -1 elsewhere.
/// One slot per thread is enough: workers never run on another pool's
/// threads.
thread_local const ThreadPool* t_worker_pool = nullptr;
thread_local int t_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int threads, std::string name)
    : name_(std::move(name)) {
  if (threads < 1) threads = 1;
  int workers = threads - 1;
  auto metric = [&](const std::string& base) {
    return obs::WithLabel(base, "pool", name_);
  };
  auto& registry = obs::MetricsRegistry::Global();
  queue_depth_ = registry.GetGauge(metric("teleios_exec_queue_depth"));
  busy_workers_ = registry.GetGauge(metric("teleios_exec_busy_workers"));
  tasks_total_ = registry.GetCounter(metric("teleios_exec_tasks_total"));
  steals_total_ = registry.GetCounter(metric("teleios_exec_steals_total"));
  schedule_millis_ =
      registry.GetHistogram(metric("teleios_exec_schedule_millis"));
  registry.GetGauge(metric("teleios_exec_workers"))
      ->Set(static_cast<double>(workers));

  deques_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    deques_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(inject_mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Tasks still queued at shutdown run on the destroying thread so a
  // TaskGroup waiting elsewhere can never hang on a dropped task.
  Task task;
  while (NextTask(-1, &task)) RunTask(std::move(task));
}

bool ThreadPool::OnWorkerThread() const {
  return t_worker_pool == this && t_worker_index >= 0;
}

ThreadPool::Stats ThreadPool::Snapshot() {
  Stats stats;
  stats.name = name_;
  stats.workers = workers();
  stats.parallelism = parallelism();
  {
    MutexLock lock(inject_mu_);
    stats.queued = inject_.size();
  }
  for (const auto& worker : deques_) {
    MutexLock lock(worker->mu);
    stats.queued += worker->deque.size();
  }
  stats.busy = static_cast<int>(busy_workers_->value());
  stats.tasks_total = tasks_total_->value();
  stats.steals_total = steals_total_->value();
  return stats;
}

void ThreadPool::Submit(std::function<void()> task) {
  Task t{std::move(task), std::chrono::steady_clock::now()};
  queue_depth_->Add(1);
  if (workers_.empty()) {
    // Serial pool: degenerate to immediate inline execution.
    RunTask(std::move(t));
    return;
  }
  if (OnWorkerThread()) {
    Worker& own = *deques_[t_worker_index];
    MutexLock lock(own.mu);
    own.deque.push_back(std::move(t));
  } else {
    MutexLock lock(inject_mu_);
    inject_.push_back(std::move(t));
  }
  wake_.notify_one();
}

bool ThreadPool::NextTask(int self, Task* task) {
  // 1. Own deque, newest first (depth-first execution of forked work).
  if (self >= 0) {
    Worker& own = *deques_[self];
    MutexLock lock(own.mu);
    if (!own.deque.empty()) {
      *task = std::move(own.deque.back());
      own.deque.pop_back();
      return true;
    }
  }
  // 2. Injection queue, oldest first.
  {
    MutexLock lock(inject_mu_);
    if (!inject_.empty()) {
      *task = std::move(inject_.front());
      inject_.pop_front();
      return true;
    }
  }
  // 3. Steal from a sibling, oldest first. Start past our own slot so
  // victims rotate instead of worker 0 being mobbed.
  size_t n = deques_.size();
  for (size_t i = 0; i < n; ++i) {
    size_t victim = (static_cast<size_t>(self < 0 ? 0 : self) + 1 + i) % n;
    if (static_cast<int>(victim) == self) continue;
    Worker& other = *deques_[victim];
    MutexLock lock(other.mu);
    if (!other.deque.empty()) {
      *task = std::move(other.deque.front());
      other.deque.pop_front();
      steals_total_->Inc();
      return true;
    }
  }
  return false;
}

void ThreadPool::RunTask(Task task) {
  queue_depth_->Add(-1);
  schedule_millis_->Observe(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - task.enqueued)
          .count());
  busy_workers_->Add(1);
  tasks_total_->Inc();
  task.fn();
  busy_workers_->Add(-1);
}

bool ThreadPool::TryRunOneTask() {
  Task task;
  if (!NextTask(OnWorkerThread() ? t_worker_index : -1, &task)) {
    return false;
  }
  RunTask(std::move(task));
  return true;
}

void ThreadPool::WorkerLoop(int index) {
  t_worker_pool = this;
  t_worker_index = index;
  for (;;) {
    Task task;
    if (NextTask(index, &task)) {
      RunTask(std::move(task));
      continue;
    }
    MutexLock lock(inject_mu_);
    if (stop_) return;
    if (!inject_.empty()) continue;
    // Re-poll for stealable work every few milliseconds: pushes to
    // sibling deques notify wake_, but a notification can slip between
    // our failed scan and this wait.
    wake_.wait_for(lock.native(), std::chrono::milliseconds(2));
  }
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("TELEIOS_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace {

Mutex g_pool_mu;
std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool>* slot =
      new std::unique_ptr<ThreadPool>();
  return *slot;
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  MutexLock lock(g_pool_mu);
  auto& slot = GlobalSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(DefaultThreads());
  return *slot;
}

void ThreadPool::SetGlobalThreads(int threads) {
  MutexLock lock(g_pool_mu);
  auto& slot = GlobalSlot();
  slot.reset();  // join the old pool before the new one exists
  slot = std::make_unique<ThreadPool>(threads);
}

}  // namespace teleios::exec
