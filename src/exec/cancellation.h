#ifndef TELEIOS_EXEC_CANCELLATION_H_
#define TELEIOS_EXEC_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace teleios::exec {

/// Cooperative cancellation for long-running parallel work. A token is
/// shared between the party that may abort the work (a user hitting ^C,
/// an observatory query timeout) and the morsels executing it: the
/// scheduler checks the token between morsels, and long morsel bodies are
/// expected to poll Check() themselves at a reasonable cadence.
///
/// Cancellation and deadline expiry are sticky: once a token reports a
/// non-OK Check() it never goes back to OK. Thread-safe; cheap enough to
/// poll from inner loops (two relaxed atomic loads plus, when a deadline
/// is set, one steady_clock read).
class CancellationToken {
 public:
  CancellationToken() = default;

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation; running morsels finish, queued ones do not
  /// start.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms an absolute deadline; Check() fails once it has passed.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Convenience: deadline `timeout` from now.
  void CancelAfter(std::chrono::nanoseconds timeout) {
    SetDeadline(std::chrono::steady_clock::now() + timeout);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once SetDeadline/CancelAfter armed a deadline.
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// The armed deadline; meaningless unless has_deadline(). Exposed so
  /// cooperating layers (retry backoff, admission queues) can bound
  /// their own waits by the caller's deadline instead of overshooting
  /// it.
  std::chrono::steady_clock::time_point deadline() const {
    // deadline_ns_ holds a raw time_since_epoch().count(), i.e. native
    // steady_clock duration units.
    return std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(
            deadline_ns_.load(std::memory_order_relaxed)));
  }

  /// True when the token was cancelled or its deadline has passed.
  bool Expired() const {
    if (cancelled()) return true;
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == kNoDeadline) return false;
    return std::chrono::steady_clock::now().time_since_epoch().count() >=
           deadline;
  }

  /// OK while the work may continue; Cancelled / DeadlineExceeded once it
  /// must stop.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("work was cancelled");
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      return Status::DeadlineExceeded("deadline expired");
    }
    return Status::OK();
  }

 private:
  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace teleios::exec

#endif  // TELEIOS_EXEC_CANCELLATION_H_
