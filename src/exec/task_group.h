#ifndef TELEIOS_EXEC_TASK_GROUP_H_
#define TELEIOS_EXEC_TASK_GROUP_H_

#include <condition_variable>
#include <exception>
#include <functional>

#include "common/thread_annotations.h"
#include "exec/thread_pool.h"

namespace teleios::exec {

/// A fork-join scope over a ThreadPool: Run() forks tasks, Wait() joins
/// them all. The waiting thread does not idle — it helps drain the pool
/// (its own forked tasks first, then anything stealable), which both
/// speeds up the join and makes nested groups deadlock-free.
///
/// A task that throws does not take the process down: the first exception
/// (in completion order) is captured and rethrown from Wait() after every
/// task has finished. The destructor waits too (but swallows the
/// exception, destructor discipline) so tasks never outlive the group's
/// captured state.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool = &ThreadPool::Global())
      : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Forks `fn` onto the pool (inline on a zero-worker pool).
  void Run(std::function<void()> fn);

  /// Blocks until every forked task finished, helping execute pool work
  /// meanwhile; rethrows the first captured task exception.
  void Wait();

  ThreadPool* pool() const { return pool_; }

 private:
  void Finish(std::exception_ptr error) noexcept TELEIOS_EXCLUDES(mu_);

  ThreadPool* pool_;
  Mutex mu_;
  std::condition_variable done_;
  size_t pending_ TELEIOS_GUARDED_BY(mu_) = 0;
  std::exception_ptr error_ TELEIOS_GUARDED_BY(mu_);
};

}  // namespace teleios::exec

#endif  // TELEIOS_EXEC_TASK_GROUP_H_
