#ifndef TELEIOS_EXEC_THREAD_POOL_H_
#define TELEIOS_EXEC_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace teleios::exec {

/// A work-stealing thread pool: each worker owns a deque it pushes and
/// pops LIFO; a worker whose deque runs dry first drains the shared
/// injection queue (tasks submitted from outside the pool), then steals
/// FIFO from a sibling's deque. Stealing from the opposite end keeps the
/// thief off the victim's cache-hot tail and moves the oldest — typically
/// largest — pending work.
///
/// A pool of parallelism `threads` spawns `threads - 1` workers: the
/// thread that fans work out participates via TaskGroup::Wait /
/// ParallelFor, so TELEIOS_THREADS=1 means zero workers and every task
/// runs inline on the caller — the serial behaviour.
///
/// Observability (per pool, labelled pool="<name>"):
///   teleios_exec_workers              gauge   spawned worker threads
///   teleios_exec_queue_depth          gauge   tasks waiting to run
///   teleios_exec_busy_workers         gauge   tasks currently executing
///   teleios_exec_tasks_total          counter tasks executed
///   teleios_exec_steals_total         counter deque-to-deque steals
///   teleios_exec_schedule_millis      histo   submit-to-start latency
class ThreadPool {
 public:
  /// `threads` is the target parallelism including the submitting thread
  /// (clamped to >= 1); `name` labels the pool's metrics.
  explicit ThreadPool(int threads, std::string name = "global");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. From a worker thread the task lands on that
  /// worker's own deque (depth-first, cache-friendly); from any other
  /// thread it goes to the shared injection queue. With zero workers the
  /// task runs inline before Submit returns.
  void Submit(std::function<void()> task);

  /// Runs one queued task on the calling thread if any is available;
  /// false when every queue was empty. Lets threads blocked in
  /// TaskGroup::Wait help drain the pool instead of idling (and makes
  /// nested waits deadlock-free).
  bool TryRunOneTask();

  /// Spawned worker threads (parallelism - 1).
  int workers() const { return static_cast<int>(workers_.size()); }
  /// Target parallelism (workers() + the submitting thread).
  int parallelism() const { return workers() + 1; }

  const std::string& name() const { return name_; }

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  /// Instantaneous snapshot for introspection (`sys.pools`): queued
  /// counts every task waiting in the injection queue or a worker deque;
  /// busy / totals come from this pool's registry metrics.
  struct Stats {
    std::string name;
    int workers = 0;
    int parallelism = 0;
    size_t queued = 0;
    int busy = 0;
    uint64_t tasks_total = 0;
    uint64_t steals_total = 0;
  };
  Stats Snapshot();

  /// The process-wide pool, sized from TELEIOS_THREADS (default: the
  /// hardware concurrency) on first use.
  static ThreadPool& Global();

  /// Rebuilds the global pool with `threads` parallelism (tests, thread
  /// sweeps). Must not be called while tasks are in flight.
  static void SetGlobalThreads(int threads);

  /// Parallelism the global pool would be built with: TELEIOS_THREADS if
  /// set and valid, else std::thread::hardware_concurrency().
  static int DefaultThreads();

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct Worker {
    Mutex mu;
    std::deque<Task> deque TELEIOS_GUARDED_BY(mu);
  };

  void WorkerLoop(int index);
  /// Pops per the calling context (own deque -> injection queue ->
  /// steal); false when nothing is runnable.
  bool NextTask(int self, Task* task) TELEIOS_EXCLUDES(inject_mu_);
  void RunTask(Task task);

  std::string name_;
  std::vector<std::unique_ptr<Worker>> deques_;
  std::vector<std::thread> workers_;

  Mutex inject_mu_;
  std::deque<Task> inject_ TELEIOS_GUARDED_BY(inject_mu_);
  std::condition_variable wake_;
  bool stop_ TELEIOS_GUARDED_BY(inject_mu_) = false;

  // Metric handles, resolved once (the registry guarantees stable
  // pointers).
  obs::Gauge* queue_depth_;
  obs::Gauge* busy_workers_;
  obs::Counter* tasks_total_;
  obs::Counter* steals_total_;
  obs::Histogram* schedule_millis_;
};

}  // namespace teleios::exec

#endif  // TELEIOS_EXEC_THREAD_POOL_H_
