#include "exec/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <string>

#include "common/thread_annotations.h"
#include "exec/task_group.h"
#include "governor/memory_budget.h"
#include "obs/trace.h"

namespace teleios::exec {

MorselPlan PlanMorsels(size_t n, size_t grain_hint) {
  MorselPlan plan;
  if (n == 0) return plan;
  size_t grain = grain_hint;
  if (grain == 0) {
    grain = std::clamp<size_t>(n / 64, size_t{4096}, size_t{262144});
  }
  plan.grain = grain;
  plan.count = (n + grain - 1) / grain;
  return plan;
}

namespace {

/// Shared result slots for one parallel region. The lowest failing
/// morsel index wins so the reported error matches what serial execution
/// would have hit first.
struct RegionState {
  Mutex mu;
  size_t error_morsel TELEIOS_GUARDED_BY(mu) = SIZE_MAX;
  Status error TELEIOS_GUARDED_BY(mu);
  size_t exception_morsel TELEIOS_GUARDED_BY(mu) = SIZE_MAX;
  std::exception_ptr exception TELEIOS_GUARDED_BY(mu);
  std::atomic<size_t> cursor{0};
  std::atomic<size_t> executed{0};

  void RecordError(size_t morsel, Status status) {
    MutexLock lock(mu);
    if (morsel < error_morsel) {
      error_morsel = morsel;
      error = std::move(status);
    }
  }

  void RecordException(size_t morsel, std::exception_ptr e) {
    MutexLock lock(mu);
    if (morsel < exception_morsel) {
      exception_morsel = morsel;
      exception = e;
    }
  }
};

}  // namespace

Status ParallelFor(size_t n, const ParallelOptions& opts,
                   const MorselBody& body) {
  if (n == 0) return Status::OK();
  MorselPlan plan = PlanMorsels(n, opts.grain);
  ThreadPool* pool = opts.pool != nullptr ? opts.pool : &ThreadPool::Global();
  // Regions opened without an explicit token still honor the governed
  // statement they run inside: the facade installs the per-query token
  // as the thread's CurrentCancel, which is how KillQuery stops a
  // morsel-driven scan whose operator never threaded a token through.
  const CancellationToken* cancel =
      opts.cancel != nullptr ? opts.cancel : CurrentCancel();

  bool serial =
      plan.count == 1 || pool->parallelism() == 1 || pool->OnWorkerThread();
  size_t threads =
      serial ? 1
             : std::min(static_cast<size_t>(pool->parallelism()), plan.count);

  // Record the fan-out/fan-in as one span of the caller's trace; its
  // duration covers dispatch through join.
  std::unique_ptr<obs::TraceSpan> span;
  if (opts.label != nullptr && obs::TraceActive()) {
    span = std::make_unique<obs::TraceSpan>(opts.label);
    span->SetAttr("morsels", std::to_string(plan.count));
    span->SetAttr("grain", std::to_string(plan.grain));
    span->SetAttr("threads", std::to_string(threads));
  }

  if (serial) {
    for (size_t m = 0; m < plan.count; ++m) {
      if (cancel != nullptr) {
        TELEIOS_RETURN_IF_ERROR(cancel->Check());
      }
      TELEIOS_RETURN_IF_ERROR(body(m, plan.Begin(m), plan.End(m, n)));
    }
    return Status::OK();
  }

  RegionState state;
  // Workers charge the caller's budget, not the process root: a morsel
  // body that reserves memory on a pool thread lands on the same
  // per-query budget as the thread that opened the region.
  governor::MemoryBudget* region_budget = governor::CurrentBudget();
  auto runner = [&] {
    governor::ScopedBudget budget_scope(region_budget);
    // Nested regions opened from a morsel body (they run inline on the
    // worker) must see the same token as the thread that opened this
    // region.
    ScopedCancel cancel_scope(cancel);
    for (;;) {
      if (cancel != nullptr && cancel->Expired()) return;
      size_t m = state.cursor.fetch_add(1, std::memory_order_relaxed);
      if (m >= plan.count) return;
      try {
        Status s = body(m, plan.Begin(m), plan.End(m, n));
        if (!s.ok()) state.RecordError(m, std::move(s));
      } catch (...) {
        state.RecordException(m, std::current_exception());
      }
      state.executed.fetch_add(1, std::memory_order_relaxed);
    }
  };

  {
    TaskGroup group(pool);
    for (size_t t = 1; t < threads; ++t) group.Run(runner);
    runner();
    group.Wait();  // runner never throws; body exceptions are captured
  }

  MutexLock lock(state.mu);
  if (state.exception &&
      state.exception_morsel <= state.error_morsel) {
    std::rethrow_exception(state.exception);
  }
  if (state.error_morsel != SIZE_MAX) return state.error;
  if (state.executed.load(std::memory_order_relaxed) < plan.count) {
    // Cancellation stopped morsels from starting.
    if (cancel != nullptr) {
      Status s = cancel->Check();
      if (!s.ok()) return s;
    }
    return Status::Internal("parallel region lost morsels");
  }
  return Status::OK();
}

}  // namespace teleios::exec
