#include "exec/task_group.h"

#include <chrono>

namespace teleios::exec {

TaskGroup::~TaskGroup() {
  try {
    Wait();
    // teleios-lint: allow(TL004) -- destructor discipline, see below.
  } catch (...) {
    // Wait() rethrows a task exception; a destructor must not.
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    std::exception_ptr error;
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    Finish(error);
  });
}

void TaskGroup::Finish(std::exception_ptr error) noexcept {
  MutexLock lock(mu_);
  if (error && !error_) error_ = error;
  if (--pending_ == 0) done_.notify_all();
}

void TaskGroup::Wait() {
  for (;;) {
    {
      MutexLock lock(mu_);
      if (pending_ == 0) break;
    }
    if (pool_->TryRunOneTask()) continue;
    // Nothing runnable here, but our tasks are still in flight on other
    // workers; nap briefly so a task forked by *them* becomes stealable.
    MutexLock lock(mu_);
    if (pending_ == 0) break;
    done_.wait_for(lock.native(), std::chrono::microseconds(200));
  }
  MutexLock lock(mu_);
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace teleios::exec
