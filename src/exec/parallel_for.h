#ifndef TELEIOS_EXEC_PARALLEL_FOR_H_
#define TELEIOS_EXEC_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "common/status.h"
#include "common/cancellation.h"
#include "exec/thread_pool.h"

namespace teleios::exec {

/// A deterministic morsel decomposition of `n` items: `count` morsels of
/// `grain` items each (the last one ragged). The decomposition depends
/// only on `n` and the grain hint — never on the thread count — so
/// per-morsel partial results merged in morsel-index order give
/// bit-identical output at any TELEIOS_THREADS setting, floating-point
/// reductions included.
struct MorselPlan {
  size_t grain = 0;
  size_t count = 0;

  size_t Begin(size_t morsel) const { return morsel * grain; }
  size_t End(size_t morsel, size_t n) const {
    size_t end = (morsel + 1) * grain;
    return end < n ? end : n;
  }
};

/// Plans morsels for `n` items. `grain_hint` fixes the morsel size; 0
/// auto-tunes it from the problem size alone (roughly n/64, clamped to
/// [4096, 262144] items) so small inputs stay a single morsel — the
/// serial fast path — and large ones produce enough morsels to balance
/// across workers with headroom for stealing.
MorselPlan PlanMorsels(size_t n, size_t grain_hint = 0);

struct ParallelOptions {
  /// Morsel size; 0 = auto (see PlanMorsels).
  size_t grain = 0;
  /// Checked between morsels; long bodies should poll it too.
  const CancellationToken* cancel = nullptr;
  /// When set and a trace is active on the calling thread, the region is
  /// recorded as one span (attrs: morsels, grain, threads) — this is what
  /// makes parallel regions visible in PROFILE output.
  const char* label = nullptr;
  /// Pool to fan out on; nullptr = the global pool.
  ThreadPool* pool = nullptr;
};

/// `body(morsel, begin, end)` processes items [begin, end) of morsel
/// index `morsel`. Bodies run concurrently and must only touch disjoint
/// state (or their own slot of a pre-sized partials vector).
using MorselBody =
    std::function<Status(size_t morsel, size_t begin, size_t end)>;

/// Runs `body` over every morsel of [0, n). Morsels are claimed from a
/// shared cursor by up to `parallelism` threads (the caller included);
/// with one thread, a single morsel, or when already on a pool worker
/// (no nested fan-out) the morsels run inline in index order — the
/// serial behaviour.
///
/// Error contract: every morsel runs even if one fails (no early abort),
/// and the error of the lowest-index failing morsel is returned — the
/// same one serial execution would hit first, keeping error reporting
/// deterministic. Exceptions from `body` are rethrown (lowest morsel
/// index wins) after all morsels finished. Cancellation *does* stop
/// morsels that have not started; if any were skipped the token's status
/// (Cancelled / DeadlineExceeded) is returned.
Status ParallelFor(size_t n, const ParallelOptions& opts,
                   const MorselBody& body);

}  // namespace teleios::exec

#endif  // TELEIOS_EXEC_PARALLEL_FOR_H_
