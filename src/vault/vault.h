#ifndef TELEIOS_VAULT_VAULT_H_
#define TELEIOS_VAULT_VAULT_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "array/array.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "governor/circuit_breaker.h"
#include "io/retry.h"
#include "storage/catalog.h"
#include "vault/formats.h"

namespace teleios::vault {

/// Ingestion statistics exposed for the E8 benchmark (lazy vs eager).
struct VaultStats {
  size_t files_attached = 0;
  size_t rasters_ingested = 0;   // payloads actually read
  size_t cache_hits = 0;
  size_t bytes_ingested = 0;
  size_t attach_failures = 0;    // files skipped during Attach()
  size_t ingest_failures = 0;    // rasters quarantined after retries
};

/// A file Attach() could not harvest (corrupt, unreadable); the scan
/// continues past it — one bad product must not block the archive.
struct AttachFailure {
  std::string path;
  Status status;
};

/// A durable vault state change that just committed in memory. The
/// durability layer subscribes via set_transition_hook to mirror each
/// one into the write-ahead log, so attachments and quarantine survive a
/// restart. Hooks fire OUTSIDE the vault lock (after the change is
/// visible), so a subscriber may call back into the vault or take its
/// own locks without deadlocking.
struct VaultTransition {
  enum class Kind {
    kAttach,      ///< a file was attached (name + source path)
    kQuarantine,  ///< a raster entered quarantine (name + sticky status)
    kHeal,        ///< a quarantine entry was cleared (name)
  };
  Kind kind = Kind::kAttach;
  std::string name;
  std::string path;  ///< source file, kAttach only
  Status status;     ///< sticky failure, kQuarantine only
};

using VaultTransitionHook = std::function<void(const VaultTransition&)>;

/// The TELEIOS Data Vault: makes the DBMS aware of external file formats
/// (symbiosis of the database and the scientific file repository, per
/// Ivanova/Kersten/Manegold). Attach() harvests metadata only — queries
/// over the catalog work immediately; raster payloads are ingested into
/// arrays lazily on first touch and cached.
class DataVault {
 public:
  /// `catalog` receives the metadata tables ("vault_rasters",
  /// "vault_vectors"); must outlive the vault.
  explicit DataVault(storage::Catalog* catalog) : catalog_(catalog) {}

  /// Scans `directory` (sorted filesystem listing, so attach order is
  /// deterministic) for *.ter / *.vec / *.csv files, harvesting headers
  /// into the catalog. Returns the number of files attached. Files that
  /// fail to parse are skipped and recorded in attach_failures() — one
  /// corrupt product never aborts the scan.
  Result<size_t> Attach(const std::string& directory);

  /// Files the most recent Attach() skipped, in scan order. Returned by
  /// value: the vector can be rewritten by a concurrent Attach().
  std::vector<AttachFailure> attach_failures() const {
    MutexLock lock(mu_);
    return attach_failures_;
  }

  /// Registers a single file (used by tests and incremental ingestion).
  Status AttachFile(const std::string& path);

  /// Names of attached rasters / vectors.
  std::vector<std::string> RasterNames() const;
  std::vector<std::string> VectorNames() const;

  /// Header metadata of an attached raster.
  Result<TerHeader> GetRasterHeader(const std::string& name) const;

  /// Lazily ingests the named raster as a SciQL array with dimensions
  /// (y, x) and one DOUBLE attribute per band. Cached: repeated calls
  /// return the same array.
  Result<array::ArrayPtr> GetRasterArray(const std::string& name);

  /// Lazily ingests a single band as a one-attribute array "v".
  Result<array::ArrayPtr> GetBandArray(const std::string& name,
                                       const std::string& band);

  /// Reads an attached vector file (not cached; they are small).
  Result<VecFile> GetVector(const std::string& name) const;

  /// Eagerly ingests every attached raster (the non-vault baseline in
  /// benchmark E8).
  Status IngestAll();

  /// Drops cached payloads (metadata stays attached).
  void EvictCache();

  /// Retry policy for payload ingestion (transient I/O errors and
  /// checksum failures are retried before quarantining).
  void set_ingest_retry(const io::RetryPolicy& policy) {
    MutexLock lock(mu_);
    ingest_retry_ = policy;
  }

  /// Overload breaker around payload ingestion. Retries smooth a
  /// transient fault; when ingestion keeps failing the breaker opens and
  /// sheds further payload reads with kUnavailable (no I/O, no backoff)
  /// until its cool-down lets a probe through. Exposed so tests can
  /// Reconfigure() thresholds and inject a deterministic clock.
  governor::CircuitBreaker& ingest_breaker() { return ingest_breaker_; }

  /// Rasters whose ingestion exhausted the retry budget. Quarantined
  /// products fail fast (the sticky status is returned without touching
  /// the file again) until Heal() reinstates them.
  std::vector<std::string> QuarantinedNames() const;

  /// Re-probes every quarantined raster; products whose files read
  /// cleanly again (e.g. re-exported after corruption) are reinstated.
  /// Returns the number healed.
  size_t Heal();

  VaultStats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }

  /// Subscribes `hook` to durable state changes (see VaultTransition).
  /// One subscriber; installing replaces the previous. The Restore* /
  /// ClearQuarantine replay entry points below never fire it — replaying
  /// a WAL record must not append that record again.
  void set_transition_hook(VaultTransitionHook hook);

  /// Replay-side AttachFile: idempotent against state already restored
  /// from a catalog snapshot (the in-memory maps are filled if absent,
  /// and a metadata row is appended only when no row with that name
  /// exists), and it does not fire the transition hook.
  Status RestoreAttachment(const std::string& path);

  /// Replay-side quarantine: reinstates the sticky failure status for
  /// `name` without re-probing the file or firing the hook.
  void RestoreQuarantine(const std::string& name, Status sticky);

  /// Replay-side heal: drops `name` from quarantine (no-op when absent,
  /// no hook).
  void ClearQuarantine(const std::string& name);

  /// Point-in-time quarantine state (name -> sticky failure), for the
  /// checkpoint's carry-forward records.
  std::map<std::string, Status> QuarantineSnapshot() const;

  /// Source paths of every attached raster and vector, in attach-map
  /// order — the attachments a checkpoint must carry forward (CSV
  /// attachments live entirely in the catalog snapshot).
  std::vector<std::string> AttachedFilePaths() const;

 private:
  Status EnsureCatalogTables() TELEIOS_REQUIRES(mu_);
  /// ReadTer with retry; quarantines `name` when the budget is exhausted
  /// (reporting the transition through `quarantined` for the caller to
  /// fire once the vault lock is released).
  Result<TerRaster> IngestPayload(const std::string& name,
                                  const std::string& path,
                                  std::optional<VaultTransition>* quarantined)
      TELEIOS_REQUIRES(mu_);
  /// Invokes the subscribed hook (if any) with `transition`. Must be
  /// called WITHOUT mu_ held.
  void FireTransition(const VaultTransition& transition)
      TELEIOS_EXCLUDES(mu_);
  /// Lock-holding bodies of GetRasterArray/GetBandArray; the public
  /// wrappers fire any quarantine transition after the lock is released.
  Result<array::ArrayPtr> GetRasterArrayLocked(
      const std::string& name,
      std::optional<VaultTransition>* quarantined);
  Result<array::ArrayPtr> GetBandArrayLocked(
      const std::string& name, const std::string& band,
      std::optional<VaultTransition>* quarantined);

  /// One coarse lock over catalog maps, the payload cache, quarantine
  /// state, and stats. Held across payload ingestion, which deliberately
  /// serializes file reads when batch products ingest concurrently —
  /// lazy-ingest caching stays exactly-once per raster.
  mutable Mutex mu_;
  storage::Catalog* catalog_;
  std::map<std::string, TerHeader> rasters_ TELEIOS_GUARDED_BY(mu_);
  std::map<std::string, std::string> vectors_
      TELEIOS_GUARDED_BY(mu_);  // name -> path
  std::map<std::string, array::ArrayPtr> cache_ TELEIOS_GUARDED_BY(mu_);
  std::map<std::string, Status> quarantine_
      TELEIOS_GUARDED_BY(mu_);  // raster name -> last failure
  std::vector<AttachFailure> attach_failures_ TELEIOS_GUARDED_BY(mu_);
  io::RetryPolicy ingest_retry_ TELEIOS_GUARDED_BY(mu_);
  VaultStats stats_ TELEIOS_GUARDED_BY(mu_);
  VaultTransitionHook transition_hook_ TELEIOS_GUARDED_BY(mu_);
  /// Self-locking; safe to touch with or without mu_ held.
  governor::CircuitBreaker ingest_breaker_{"vault-ingest"};
};

}  // namespace teleios::vault

#endif  // TELEIOS_VAULT_VAULT_H_
