#ifndef TELEIOS_VAULT_VAULT_H_
#define TELEIOS_VAULT_VAULT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "array/array.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "governor/circuit_breaker.h"
#include "io/retry.h"
#include "storage/catalog.h"
#include "vault/formats.h"

namespace teleios::vault {

/// Ingestion statistics exposed for the E8 benchmark (lazy vs eager).
struct VaultStats {
  size_t files_attached = 0;
  size_t rasters_ingested = 0;   // payloads actually read
  size_t cache_hits = 0;
  size_t bytes_ingested = 0;
  size_t attach_failures = 0;    // files skipped during Attach()
  size_t ingest_failures = 0;    // rasters quarantined after retries
};

/// A file Attach() could not harvest (corrupt, unreadable); the scan
/// continues past it — one bad product must not block the archive.
struct AttachFailure {
  std::string path;
  Status status;
};

/// The TELEIOS Data Vault: makes the DBMS aware of external file formats
/// (symbiosis of the database and the scientific file repository, per
/// Ivanova/Kersten/Manegold). Attach() harvests metadata only — queries
/// over the catalog work immediately; raster payloads are ingested into
/// arrays lazily on first touch and cached.
class DataVault {
 public:
  /// `catalog` receives the metadata tables ("vault_rasters",
  /// "vault_vectors"); must outlive the vault.
  explicit DataVault(storage::Catalog* catalog) : catalog_(catalog) {}

  /// Scans `directory` (sorted filesystem listing, so attach order is
  /// deterministic) for *.ter / *.vec / *.csv files, harvesting headers
  /// into the catalog. Returns the number of files attached. Files that
  /// fail to parse are skipped and recorded in attach_failures() — one
  /// corrupt product never aborts the scan.
  Result<size_t> Attach(const std::string& directory);

  /// Files the most recent Attach() skipped, in scan order. Returned by
  /// value: the vector can be rewritten by a concurrent Attach().
  std::vector<AttachFailure> attach_failures() const {
    MutexLock lock(mu_);
    return attach_failures_;
  }

  /// Registers a single file (used by tests and incremental ingestion).
  Status AttachFile(const std::string& path);

  /// Names of attached rasters / vectors.
  std::vector<std::string> RasterNames() const;
  std::vector<std::string> VectorNames() const;

  /// Header metadata of an attached raster.
  Result<TerHeader> GetRasterHeader(const std::string& name) const;

  /// Lazily ingests the named raster as a SciQL array with dimensions
  /// (y, x) and one DOUBLE attribute per band. Cached: repeated calls
  /// return the same array.
  Result<array::ArrayPtr> GetRasterArray(const std::string& name);

  /// Lazily ingests a single band as a one-attribute array "v".
  Result<array::ArrayPtr> GetBandArray(const std::string& name,
                                       const std::string& band);

  /// Reads an attached vector file (not cached; they are small).
  Result<VecFile> GetVector(const std::string& name) const;

  /// Eagerly ingests every attached raster (the non-vault baseline in
  /// benchmark E8).
  Status IngestAll();

  /// Drops cached payloads (metadata stays attached).
  void EvictCache();

  /// Retry policy for payload ingestion (transient I/O errors and
  /// checksum failures are retried before quarantining).
  void set_ingest_retry(const io::RetryPolicy& policy) {
    MutexLock lock(mu_);
    ingest_retry_ = policy;
  }

  /// Overload breaker around payload ingestion. Retries smooth a
  /// transient fault; when ingestion keeps failing the breaker opens and
  /// sheds further payload reads with kUnavailable (no I/O, no backoff)
  /// until its cool-down lets a probe through. Exposed so tests can
  /// Reconfigure() thresholds and inject a deterministic clock.
  governor::CircuitBreaker& ingest_breaker() { return ingest_breaker_; }

  /// Rasters whose ingestion exhausted the retry budget. Quarantined
  /// products fail fast (the sticky status is returned without touching
  /// the file again) until Heal() reinstates them.
  std::vector<std::string> QuarantinedNames() const;

  /// Re-probes every quarantined raster; products whose files read
  /// cleanly again (e.g. re-exported after corruption) are reinstated.
  /// Returns the number healed.
  size_t Heal();

  VaultStats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }

 private:
  Status EnsureCatalogTables() TELEIOS_REQUIRES(mu_);
  /// ReadTer with retry; quarantines `name` when the budget is exhausted.
  Result<TerRaster> IngestPayload(const std::string& name,
                                  const std::string& path)
      TELEIOS_REQUIRES(mu_);

  /// One coarse lock over catalog maps, the payload cache, quarantine
  /// state, and stats. Held across payload ingestion, which deliberately
  /// serializes file reads when batch products ingest concurrently —
  /// lazy-ingest caching stays exactly-once per raster.
  mutable Mutex mu_;
  storage::Catalog* catalog_;
  std::map<std::string, TerHeader> rasters_ TELEIOS_GUARDED_BY(mu_);
  std::map<std::string, std::string> vectors_
      TELEIOS_GUARDED_BY(mu_);  // name -> path
  std::map<std::string, array::ArrayPtr> cache_ TELEIOS_GUARDED_BY(mu_);
  std::map<std::string, Status> quarantine_
      TELEIOS_GUARDED_BY(mu_);  // raster name -> last failure
  std::vector<AttachFailure> attach_failures_ TELEIOS_GUARDED_BY(mu_);
  io::RetryPolicy ingest_retry_ TELEIOS_GUARDED_BY(mu_);
  VaultStats stats_ TELEIOS_GUARDED_BY(mu_);
  /// Self-locking; safe to touch with or without mu_ held.
  governor::CircuitBreaker ingest_breaker_{"vault-ingest"};
};

}  // namespace teleios::vault

#endif  // TELEIOS_VAULT_VAULT_H_
