#ifndef TELEIOS_VAULT_FORMATS_H_
#define TELEIOS_VAULT_FORMATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/crs.h"
#include "geo/geometry.h"

namespace teleios::vault {

/// In-memory form of a `.ter` raster product file — the TELEIOS stand-in
/// for the mission-specific external formats (HDF/netCDF/GeoTIFF) a real
/// data vault understands. Multi-band float64 payload, band-major.
struct TerRaster {
  std::string name;          // product name
  std::string satellite;     // e.g. "Meteosat-9"
  std::string sensor;        // e.g. "SEVIRI"
  int32_t width = 0;
  int32_t height = 0;
  int64_t acquisition_time = 0;  // seconds since epoch (UTC)
  geo::GeoTransform transform;   // pixel -> lon/lat
  std::vector<std::string> band_names;
  std::vector<std::vector<double>> bands;  // band_names.size() x (w*h)

  size_t PixelCount() const {
    return static_cast<size_t>(width) * static_cast<size_t>(height);
  }
  /// Index of a band by name, or -1.
  int BandIndex(const std::string& name) const;
  /// Bounding box in world coordinates as WKT POLYGON.
  std::string FootprintWkt() const;
};

/// Header-only view of a .ter file: everything except the pixel payload.
/// This is what the vault harvests at attach time, *without* ingesting.
struct TerHeader {
  std::string name;
  std::string satellite;
  std::string sensor;
  int32_t width = 0;
  int32_t height = 0;
  int64_t acquisition_time = 0;
  geo::GeoTransform transform;
  std::vector<std::string> band_names;
  std::string path;  // where the payload lives

  std::string FootprintWkt() const;
};

Status WriteTer(const TerRaster& raster, const std::string& path);
/// Reads header + payload.
Result<TerRaster> ReadTer(const std::string& path);
/// Reads only the header (cheap; payload stays on disk).
Result<TerHeader> ReadTerHeader(const std::string& path);

/// One feature of a `.vec` vector product file — the stand-in for ESRI
/// shapefiles produced by the NOA chain.
struct VecFeature {
  int64_t id = 0;
  std::map<std::string, std::string> attributes;
  geo::Geometry geometry;
};

struct VecFile {
  std::string name;
  std::vector<VecFeature> features;
};

Status WriteVec(const VecFile& file, const std::string& path);
Result<VecFile> ReadVec(const std::string& path);

}  // namespace teleios::vault

#endif  // TELEIOS_VAULT_FORMATS_H_
