#include "vault/vault.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "governor/memory_budget.h"
#include "io/filesystem.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/persistence.h"

namespace teleios::vault {

using array::Array;
using array::ArrayPtr;
using array::Dimension;
using storage::ColumnType;
using storage::Schema;
using storage::Table;

Status DataVault::EnsureCatalogTables() {
  if (!catalog_->HasTable("vault_rasters")) {
    auto rasters = std::make_shared<Table>(Schema({
        {"name", ColumnType::kString},
        {"satellite", ColumnType::kString},
        {"sensor", ColumnType::kString},
        {"width", ColumnType::kInt64},
        {"height", ColumnType::kInt64},
        {"bands", ColumnType::kInt64},
        {"acq_time", ColumnType::kInt64},
        {"footprint", ColumnType::kString},
        {"path", ColumnType::kString},
    }));
    TELEIOS_RETURN_IF_ERROR(catalog_->CreateTable("vault_rasters", rasters));
  }
  if (!catalog_->HasTable("vault_vectors")) {
    auto vectors = std::make_shared<Table>(Schema({
        {"name", ColumnType::kString},
        {"features", ColumnType::kInt64},
        {"path", ColumnType::kString},
    }));
    TELEIOS_RETURN_IF_ERROR(catalog_->CreateTable("vault_vectors", vectors));
  }
  return Status::OK();
}

void DataVault::set_transition_hook(VaultTransitionHook hook) {
  MutexLock lock(mu_);
  transition_hook_ = std::move(hook);
}

void DataVault::FireTransition(const VaultTransition& transition) {
  VaultTransitionHook hook;
  {
    MutexLock lock(mu_);
    hook = transition_hook_;
  }
  // Invoked with no vault lock held: the subscriber (the durability
  // manager) takes its own lock and appends to the WAL, and may consult
  // the vault again without deadlocking.
  if (hook) hook(transition);
}

Status DataVault::AttachFile(const std::string& path) {
  obs::Count("teleios_vault_attach_total");
  std::optional<VaultTransition> attached;
  Status st = [&]() -> Status {
    MutexLock lock(mu_);
    TELEIOS_RETURN_IF_ERROR(EnsureCatalogTables());
    if (StrEndsWith(path, ".ter")) {
      TELEIOS_ASSIGN_OR_RETURN(TerHeader header, ReadTerHeader(path));
      if (rasters_.count(header.name)) {
        return Status::AlreadyExists("raster '" + header.name +
                                     "' already attached");
      }
      TELEIOS_ASSIGN_OR_RETURN(storage::TablePtr table,
                               catalog_->GetTable("vault_rasters"));
      TELEIOS_RETURN_IF_ERROR(table->AppendRow({
          Value(header.name),
          Value(header.satellite),
          Value(header.sensor),
          Value(static_cast<int64_t>(header.width)),
          Value(static_cast<int64_t>(header.height)),
          Value(static_cast<int64_t>(header.band_names.size())),
          Value(header.acquisition_time),
          Value(header.FootprintWkt()),
          Value(path),
      }));
      std::string name = header.name;
      rasters_[name] = std::move(header);
      ++stats_.files_attached;
      obs::Count("teleios_vault_files_attached_total");
      attached = VaultTransition{VaultTransition::Kind::kAttach, name, path,
                                 Status::OK()};
      return Status::OK();
    }
    if (StrEndsWith(path, ".csv")) {
      // Tabular auxiliary data (e.g. ground-station observations): the
      // vault materializes it as a catalog table named after the file.
      std::string name = io::PathStem(path);
      if (catalog_->HasTable(name)) {
        return Status::AlreadyExists("table '" + name + "' already attached");
      }
      TELEIOS_ASSIGN_OR_RETURN(storage::Table table,
                               storage::ReadCsv(path));
      TELEIOS_RETURN_IF_ERROR(catalog_->CreateTable(
          name, std::make_shared<storage::Table>(std::move(table))));
      ++stats_.files_attached;
      obs::Count("teleios_vault_files_attached_total");
      attached = VaultTransition{VaultTransition::Kind::kAttach, name, path,
                                 Status::OK()};
      return Status::OK();
    }
    if (StrEndsWith(path, ".vec")) {
      // Vector metadata needs a cheap scan for the feature count.
      TELEIOS_ASSIGN_OR_RETURN(VecFile file, ReadVec(path));
      std::string name = file.name.empty()
                             ? io::PathStem(path)
                             : file.name;
      if (vectors_.count(name)) {
        return Status::AlreadyExists("vector '" + name +
                                     "' already attached");
      }
      TELEIOS_ASSIGN_OR_RETURN(storage::TablePtr table,
                               catalog_->GetTable("vault_vectors"));
      TELEIOS_RETURN_IF_ERROR(table->AppendRow({
          Value(name),
          Value(static_cast<int64_t>(file.features.size())),
          Value(path),
      }));
      vectors_[name] = path;
      ++stats_.files_attached;
      obs::Count("teleios_vault_files_attached_total");
      attached = VaultTransition{VaultTransition::Kind::kAttach, name, path,
                                 Status::OK()};
      return Status::OK();
    }
    return Status::InvalidArgument("unknown vault file format: '" + path +
                                   "'");
  }();
  if (attached) FireTransition(*attached);
  return st;
}

Result<size_t> DataVault::Attach(const std::string& directory) {
  // ListDirectory returns a sorted listing, so attach order — and with it
  // the row order of the metadata tables — is deterministic.
  TELEIOS_ASSIGN_OR_RETURN(std::vector<std::string> listing,
                           io::GetFileSystem()->ListDirectory(directory));
  {
    MutexLock lock(mu_);
    attach_failures_.clear();
  }
  size_t attached = 0;
  for (const std::string& path : listing) {
    if (!StrEndsWith(path, ".ter") && !StrEndsWith(path, ".vec") &&
        !StrEndsWith(path, ".csv")) {
      continue;
    }
    Status st = AttachFile(path);
    if (st.ok()) {
      ++attached;
    } else if (st.code() != StatusCode::kAlreadyExists) {
      // Skip-and-record: a corrupt or unreadable product must not stop
      // the archive scan.
      TELEIOS_LOG(Warning) << "vault: skipping '" << path
                           << "': " << st.ToString();
      MutexLock lock(mu_);
      attach_failures_.push_back({path, std::move(st)});
      ++stats_.attach_failures;
      obs::Count("teleios_vault_attach_failures_total");
    }
  }
  return attached;
}

std::vector<std::string> DataVault::RasterNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, _] : rasters_) names.push_back(name);
  return names;
}

std::vector<std::string> DataVault::VectorNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, _] : vectors_) names.push_back(name);
  return names;
}

Result<TerHeader> DataVault::GetRasterHeader(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = rasters_.find(name);
  if (it == rasters_.end()) {
    return Status::NotFound("raster '" + name + "' not attached");
  }
  return it->second;
}

Result<TerRaster> DataVault::IngestPayload(
    const std::string& name, const std::string& path,
    std::optional<VaultTransition>* quarantined) {
  auto sticky = quarantine_.find(name);
  if (sticky != quarantine_.end()) {
    // Fail fast with the sticky status; Heal() reinstates the product
    // once its file reads cleanly again.
    return Status(sticky->second.code(),
                  "raster '" + name + "' is quarantined: " +
                      sticky->second.message());
  }
  // Breaker before retries: when ingestion is persistently failing, shed
  // instantly instead of burning a fresh retry budget per caller. A shed
  // call did no I/O, so it neither quarantines nor counts as a failure.
  TELEIOS_RETURN_IF_ERROR(ingest_breaker_.Admit());
  Result<TerRaster> raster = io::WithRetry(
      ingest_retry_, "vault ingest '" + name + "'",
      [&] { return ReadTer(path); });
  if (governor::CircuitBreaker::IsInfrastructureFailure(raster.status())) {
    ingest_breaker_.RecordFailure();
  } else {
    ingest_breaker_.RecordSuccess();
  }
  if (!raster.ok() && ingest_retry_.ShouldRetry(raster.status())) {
    // Retry budget exhausted on a fault that is not the caller's doing
    // (I/O error or corruption): quarantine so the archive keeps serving
    // the healthy products without re-reading a known-bad file.
    quarantine_[name] = raster.status();
    ++stats_.ingest_failures;
    obs::Count("teleios_vault_quarantined_total");
    obs::PostEvent("vault.quarantine",
                   {{"raster", name}, {"status", raster.status().ToString()}});
    TELEIOS_LOG(Warning) << "vault: quarantining raster '" << name
                         << "': " << raster.status().ToString();
    *quarantined = VaultTransition{VaultTransition::Kind::kQuarantine, name,
                                   path, raster.status()};
  }
  return raster;
}

std::vector<std::string> DataVault::QuarantinedNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, _] : quarantine_) names.push_back(name);
  return names;
}

size_t DataVault::Heal() {
  std::vector<std::string> cleared;
  size_t healed = 0;
  {
    MutexLock lock(mu_);
    for (auto it = quarantine_.begin(); it != quarantine_.end();) {
      auto raster = rasters_.find(it->first);
      if (raster == rasters_.end()) {
        // No longer attached: there is nothing left to heal, and keeping
        // the sticky status around would leak quarantine state forever.
        cleared.push_back(it->first);
        it = quarantine_.erase(it);
        continue;
      }
      // Cheap probe: if the header (magic + checksummed metadata block)
      // reads cleanly the file was plausibly re-exported; let ingestion
      // try again.
      if (ReadTerHeader(raster->second.path).ok()) {
        cleared.push_back(it->first);
        it = quarantine_.erase(it);
        ++healed;
        obs::Count("teleios_vault_healed_total");
      } else {
        ++it;
      }
    }
  }
  for (const std::string& name : cleared) {
    FireTransition(VaultTransition{VaultTransition::Kind::kHeal, name, "",
                                   Status::OK()});
  }
  return healed;
}

Result<ArrayPtr> DataVault::GetRasterArray(const std::string& name) {
  std::optional<VaultTransition> quarantined;
  Result<ArrayPtr> result = GetRasterArrayLocked(name, &quarantined);
  if (quarantined) FireTransition(*quarantined);
  return result;
}

Result<ArrayPtr> DataVault::GetRasterArrayLocked(
    const std::string& name, std::optional<VaultTransition>* quarantined) {
  MutexLock lock(mu_);
  auto cached = cache_.find(name);
  if (cached != cache_.end()) {
    ++stats_.cache_hits;
    obs::Count("teleios_vault_cache_hits_total");
    return cached->second;
  }
  auto it = rasters_.find(name);
  if (it == rasters_.end()) {
    return Status::NotFound("raster '" + name + "' not attached");
  }
  obs::TraceSpan span("vault.ingest",
                      obs::MetricsRegistry::Global().GetHistogram(
                          "teleios_vault_ingest_millis"));
  span.SetAttr("raster", name);
  // The header tells us the materialization cost before any payload I/O:
  // the decoded TerRaster plus the array it is copied into.
  TELEIOS_ASSIGN_OR_RETURN(
      governor::BudgetCharge charge,
      governor::ChargeCurrent(
          2 * static_cast<size_t>(it->second.width) *
              static_cast<size_t>(it->second.height) *
              it->second.band_names.size() * sizeof(double),
          "vault raster ingest '" + name + "'"));
  TELEIOS_ASSIGN_OR_RETURN(TerRaster raster,
                           IngestPayload(name, it->second.path, quarantined));
  std::vector<storage::Field> attrs;
  for (const std::string& band : raster.band_names) {
    attrs.push_back({band, ColumnType::kFloat64});
  }
  TELEIOS_ASSIGN_OR_RETURN(
      ArrayPtr array,
      Array::Create(name,
                    {{"y", 0, raster.height}, {"x", 0, raster.width}},
                    attrs));
  for (size_t b = 0; b < raster.bands.size(); ++b) {
    TELEIOS_ASSIGN_OR_RETURN(double* dst, array->MutableDoubles(b));
    std::copy(raster.bands[b].begin(), raster.bands[b].end(), dst);
    stats_.bytes_ingested += raster.bands[b].size() * sizeof(double);
    obs::Count("teleios_vault_bytes_materialized_total",
               raster.bands[b].size() * sizeof(double));
  }
  ++stats_.rasters_ingested;
  obs::Count("teleios_vault_rasters_ingested_total");
  cache_[name] = array;
  return array;
}

Result<ArrayPtr> DataVault::GetBandArray(const std::string& name,
                                         const std::string& band) {
  std::optional<VaultTransition> quarantined;
  Result<ArrayPtr> result = GetBandArrayLocked(name, band, &quarantined);
  if (quarantined) FireTransition(*quarantined);
  return result;
}

Result<ArrayPtr> DataVault::GetBandArrayLocked(
    const std::string& name, const std::string& band,
    std::optional<VaultTransition>* quarantined) {
  MutexLock lock(mu_);
  std::string key = name + "#" + band;
  auto cached = cache_.find(key);
  if (cached != cache_.end()) {
    ++stats_.cache_hits;
    obs::Count("teleios_vault_cache_hits_total");
    return cached->second;
  }
  auto it = rasters_.find(name);
  if (it == rasters_.end()) {
    return Status::NotFound("raster '" + name + "' not attached");
  }
  obs::TraceSpan span("vault.ingest",
                      obs::MetricsRegistry::Global().GetHistogram(
                          "teleios_vault_ingest_millis"));
  span.SetAttr("raster", key);
  // Whole payload decoded, one band copied out.
  TELEIOS_ASSIGN_OR_RETURN(
      governor::BudgetCharge charge,
      governor::ChargeCurrent(
          static_cast<size_t>(it->second.width) *
              static_cast<size_t>(it->second.height) *
              (it->second.band_names.size() + 1) * sizeof(double),
          "vault band ingest '" + key + "'"));
  TELEIOS_ASSIGN_OR_RETURN(TerRaster raster,
                           IngestPayload(name, it->second.path, quarantined));
  int b = raster.BandIndex(band);
  if (b < 0) {
    return Status::NotFound("raster '" + name + "' has no band '" + band +
                            "'");
  }
  TELEIOS_ASSIGN_OR_RETURN(
      ArrayPtr array,
      Array::Create(key, {{"y", 0, raster.height}, {"x", 0, raster.width}},
                    {{"v", ColumnType::kFloat64}}));
  TELEIOS_ASSIGN_OR_RETURN(double* dst, array->MutableDoubles(0));
  std::copy(raster.bands[static_cast<size_t>(b)].begin(),
            raster.bands[static_cast<size_t>(b)].end(), dst);
  stats_.bytes_ingested +=
      raster.bands[static_cast<size_t>(b)].size() * sizeof(double);
  obs::Count("teleios_vault_bytes_materialized_total",
             raster.bands[static_cast<size_t>(b)].size() * sizeof(double));
  ++stats_.rasters_ingested;
  obs::Count("teleios_vault_rasters_ingested_total");
  cache_[key] = array;
  return array;
}

Result<VecFile> DataVault::GetVector(const std::string& name) const {
  std::string path;
  {
    MutexLock lock(mu_);
    auto it = vectors_.find(name);
    if (it == vectors_.end()) {
      return Status::NotFound("vector '" + name + "' not attached");
    }
    path = it->second;
  }
  return ReadVec(path);
}

Status DataVault::IngestAll() {
  for (const std::string& name : RasterNames()) {
    TELEIOS_RETURN_IF_ERROR(GetRasterArray(name).status());
  }
  return Status::OK();
}

void DataVault::EvictCache() {
  MutexLock lock(mu_);
  cache_.clear();
}

namespace {

/// True when `table` already has a row whose first (name) column equals
/// `name` — the idempotence probe for replayed attachments. Linear scan:
/// recovery replays at most one record per attachment, and the metadata
/// tables are small.
bool TableHasNameRow(const storage::Table& table, const std::string& name) {
  for (size_t r = 0; r < table.num_rows(); ++r) {
    Value v = table.Get(r, 0);
    if (!v.is_null() && v.ToString() == name) return true;
  }
  return false;
}

}  // namespace

Status DataVault::RestoreAttachment(const std::string& path) {
  MutexLock lock(mu_);
  TELEIOS_RETURN_IF_ERROR(EnsureCatalogTables());
  if (StrEndsWith(path, ".ter")) {
    TELEIOS_ASSIGN_OR_RETURN(TerHeader header, ReadTerHeader(path));
    std::string name = header.name;
    TELEIOS_ASSIGN_OR_RETURN(storage::TablePtr table,
                             catalog_->GetTable("vault_rasters"));
    if (!TableHasNameRow(*table, name)) {
      TELEIOS_RETURN_IF_ERROR(table->AppendRow({
          Value(name),
          Value(header.satellite),
          Value(header.sensor),
          Value(static_cast<int64_t>(header.width)),
          Value(static_cast<int64_t>(header.height)),
          Value(static_cast<int64_t>(header.band_names.size())),
          Value(header.acquisition_time),
          Value(header.FootprintWkt()),
          Value(path),
      }));
    }
    if (!rasters_.count(name)) {
      rasters_[name] = std::move(header);
      ++stats_.files_attached;
    }
    return Status::OK();
  }
  if (StrEndsWith(path, ".csv")) {
    std::string name = io::PathStem(path);
    if (catalog_->HasTable(name)) return Status::OK();
    TELEIOS_ASSIGN_OR_RETURN(storage::Table table, storage::ReadCsv(path));
    TELEIOS_RETURN_IF_ERROR(catalog_->CreateTable(
        name, std::make_shared<storage::Table>(std::move(table))));
    ++stats_.files_attached;
    return Status::OK();
  }
  if (StrEndsWith(path, ".vec")) {
    TELEIOS_ASSIGN_OR_RETURN(VecFile file, ReadVec(path));
    std::string name = file.name.empty() ? io::PathStem(path) : file.name;
    TELEIOS_ASSIGN_OR_RETURN(storage::TablePtr table,
                             catalog_->GetTable("vault_vectors"));
    if (!TableHasNameRow(*table, name)) {
      TELEIOS_RETURN_IF_ERROR(table->AppendRow({
          Value(name),
          Value(static_cast<int64_t>(file.features.size())),
          Value(path),
      }));
    }
    if (!vectors_.count(name)) {
      vectors_[name] = path;
      ++stats_.files_attached;
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown vault file format: '" + path + "'");
}

void DataVault::RestoreQuarantine(const std::string& name, Status sticky) {
  MutexLock lock(mu_);
  quarantine_[name] = std::move(sticky);
}

void DataVault::ClearQuarantine(const std::string& name) {
  MutexLock lock(mu_);
  quarantine_.erase(name);
}

std::map<std::string, Status> DataVault::QuarantineSnapshot() const {
  MutexLock lock(mu_);
  return quarantine_;
}

std::vector<std::string> DataVault::AttachedFilePaths() const {
  MutexLock lock(mu_);
  std::vector<std::string> paths;
  for (const auto& [name, header] : rasters_) paths.push_back(header.path);
  for (const auto& [name, path] : vectors_) paths.push_back(path);
  return paths;
}

}  // namespace teleios::vault
