#include "vault/formats.h"

#include <fstream>

#include "common/strings.h"
#include "geo/wkt.h"

namespace teleios::vault {

namespace {

constexpr char kTerMagic[4] = {'T', 'E', 'R', '1'};

void WriteU32(std::ostream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteI64(std::ostream& os, int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteF64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteStr(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}
bool ReadU32(std::istream& is, uint32_t* v) {
  return static_cast<bool>(is.read(reinterpret_cast<char*>(v), sizeof(*v)));
}
bool ReadI64(std::istream& is, int64_t* v) {
  return static_cast<bool>(is.read(reinterpret_cast<char*>(v), sizeof(*v)));
}
bool ReadF64(std::istream& is, double* v) {
  return static_cast<bool>(is.read(reinterpret_cast<char*>(v), sizeof(*v)));
}
bool ReadStr(std::istream& is, std::string* s) {
  uint32_t n = 0;
  if (!ReadU32(is, &n) || n > (1u << 20)) return false;
  s->resize(n);
  return static_cast<bool>(is.read(s->data(), n));
}

std::string Footprint(const geo::GeoTransform& t, int32_t w, int32_t h) {
  geo::Point a = t.PixelToWorld(0, 0);
  geo::Point b = t.PixelToWorld(w, 0);
  geo::Point c = t.PixelToWorld(w, h);
  geo::Point d = t.PixelToWorld(0, h);
  geo::Envelope e = geo::Envelope::Empty();
  e.Expand(a);
  e.Expand(b);
  e.Expand(c);
  e.Expand(d);
  return geo::WriteWkt(
      geo::Geometry::MakeBox(e.min_x, e.min_y, e.max_x, e.max_y));
}

Status ReadHeaderInto(std::istream& is, const std::string& path,
                      TerHeader* h) {
  char magic[4];
  if (!is.read(magic, 4) ||
      std::string(magic, 4) != std::string(kTerMagic, 4)) {
    return Status::ParseError("'" + path + "' is not a TER file");
  }
  uint32_t w = 0, hh = 0, nbands = 0;
  if (!ReadStr(is, &h->name) || !ReadStr(is, &h->satellite) ||
      !ReadStr(is, &h->sensor) || !ReadU32(is, &w) || !ReadU32(is, &hh) ||
      !ReadU32(is, &nbands) || !ReadI64(is, &h->acquisition_time)) {
    return Status::ParseError("truncated TER header in '" + path + "'");
  }
  h->width = static_cast<int32_t>(w);
  h->height = static_cast<int32_t>(hh);
  double gt[6];
  for (double& g : gt) {
    if (!ReadF64(is, &g)) {
      return Status::ParseError("truncated TER geotransform");
    }
  }
  // GDAL geotransform order on disk: origin_x, pixel_w, rot_x, origin_y,
  // rot_y, pixel_h (see WriteTer).
  h->transform.origin_x = gt[0];
  h->transform.pixel_w = gt[1];
  h->transform.rot_x = gt[2];
  h->transform.origin_y = gt[3];
  h->transform.rot_y = gt[4];
  h->transform.pixel_h = gt[5];
  h->band_names.resize(nbands);
  for (std::string& b : h->band_names) {
    if (!ReadStr(is, &b)) return Status::ParseError("truncated TER bands");
  }
  h->path = path;
  return Status::OK();
}

}  // namespace

int TerRaster::BandIndex(const std::string& band) const {
  for (size_t i = 0; i < band_names.size(); ++i) {
    if (band_names[i] == band) return static_cast<int>(i);
  }
  return -1;
}

std::string TerRaster::FootprintWkt() const {
  return Footprint(transform, width, height);
}

std::string TerHeader::FootprintWkt() const {
  return Footprint(transform, width, height);
}

Status WriteTer(const TerRaster& raster, const std::string& path) {
  if (raster.bands.size() != raster.band_names.size()) {
    return Status::InvalidArgument("band name/payload arity mismatch");
  }
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open '" + path + "' for writing");
  os.write(kTerMagic, 4);
  WriteStr(os, raster.name);
  WriteStr(os, raster.satellite);
  WriteStr(os, raster.sensor);
  WriteU32(os, static_cast<uint32_t>(raster.width));
  WriteU32(os, static_cast<uint32_t>(raster.height));
  WriteU32(os, static_cast<uint32_t>(raster.bands.size()));
  WriteI64(os, raster.acquisition_time);
  const geo::GeoTransform& t = raster.transform;
  for (double g : {t.origin_x, t.pixel_w, t.rot_x, t.origin_y, t.rot_y,
                   t.pixel_h}) {
    WriteF64(os, g);
  }
  for (const std::string& b : raster.band_names) WriteStr(os, b);
  size_t pixels = raster.PixelCount();
  for (const auto& band : raster.bands) {
    if (band.size() != pixels) {
      return Status::InvalidArgument("band payload size mismatch");
    }
    os.write(reinterpret_cast<const char*>(band.data()),
             static_cast<std::streamsize>(pixels * sizeof(double)));
  }
  if (!os) return Status::IoError("write failure on '" + path + "'");
  return Status::OK();
}

Result<TerHeader> ReadTerHeader(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open '" + path + "'");
  TerHeader h;
  TELEIOS_RETURN_IF_ERROR(ReadHeaderInto(is, path, &h));
  return h;
}

Result<TerRaster> ReadTer(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open '" + path + "'");
  TerHeader h;
  TELEIOS_RETURN_IF_ERROR(ReadHeaderInto(is, path, &h));
  TerRaster r;
  r.name = h.name;
  r.satellite = h.satellite;
  r.sensor = h.sensor;
  r.width = h.width;
  r.height = h.height;
  r.acquisition_time = h.acquisition_time;
  r.transform = h.transform;
  r.band_names = h.band_names;
  size_t pixels = r.PixelCount();
  r.bands.resize(r.band_names.size());
  for (auto& band : r.bands) {
    band.resize(pixels);
    if (!is.read(reinterpret_cast<char*>(band.data()),
                 static_cast<std::streamsize>(pixels * sizeof(double)))) {
      return Status::ParseError("truncated TER payload in '" + path + "'");
    }
  }
  return r;
}

namespace {

std::string EscapeAttr(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '|' || c == ';' || c == '=' || c == '\\' || c == '\n') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

/// Splits on `sep` honoring backslash escapes, KEEPING the escapes (so
/// nested splits stay correct); call Unescape on the final fields.
std::vector<std::string> SplitEscaped(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      cur += s[i];
      cur += s[i + 1];
      ++i;
      continue;
    }
    if (s[i] == sep) {
      parts.push_back(cur);
      cur.clear();
      continue;
    }
    cur += s[i];
  }
  parts.push_back(cur);
  return parts;
}

std::string Unescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out += s[++i];
      continue;
    }
    out += s[i];
  }
  return out;
}

}  // namespace

Status WriteVec(const VecFile& file, const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::IoError("cannot open '" + path + "' for writing");
  os << "#VEC1 " << EscapeAttr(file.name) << "\n";
  for (const VecFeature& f : file.features) {
    os << f.id << "|";
    bool first = true;
    for (const auto& [k, v] : f.attributes) {
      if (!first) os << ";";
      first = false;
      os << EscapeAttr(k) << "=" << EscapeAttr(v);
    }
    os << "|" << geo::WriteWkt(f.geometry) << "\n";
  }
  if (!os) return Status::IoError("write failure on '" + path + "'");
  return Status::OK();
}

Result<VecFile> ReadVec(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IoError("cannot open '" + path + "'");
  VecFile file;
  std::string line;
  if (!std::getline(is, line) || !StrStartsWith(line, "#VEC1")) {
    return Status::ParseError("'" + path + "' is not a VEC file");
  }
  if (line.size() > 6) file.name = line.substr(6);
  size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> cols = SplitEscaped(line, '|');
    if (cols.size() != 3) {
      return Status::ParseError(
          StrFormat("bad VEC record at %s:%zu", path.c_str(), lineno));
    }
    VecFeature f;
    TELEIOS_ASSIGN_OR_RETURN(f.id, ParseInt64(Unescape(cols[0])));
    if (!cols[1].empty()) {
      for (const std::string& pair : SplitEscaped(cols[1], ';')) {
        std::vector<std::string> kv = SplitEscaped(pair, '=');
        if (kv.size() == 2) f.attributes[Unescape(kv[0])] = Unescape(kv[1]);
      }
    }
    TELEIOS_ASSIGN_OR_RETURN(f.geometry, geo::ParseWkt(Unescape(cols[2])));
    file.features.push_back(std::move(f));
  }
  return file;
}

}  // namespace teleios::vault
