#include "vault/formats.h"

#include <sstream>

#include "common/strings.h"
#include "geo/wkt.h"
#include "io/codec.h"
#include "io/filesystem.h"

namespace teleios::vault {

namespace {

// TER v2 on-disk layout:
//   "TER2" | header block | one block per band
// with io::AppendBlockTo framing (u64 len, u32 CRC32C, payload), so both
// the metadata and every pixel payload are corruption-checked; the
// header block alone is enough for attach-time harvesting (ReadTerHeader
// never touches the payload). Files are written atomically (tmp + fsync
// + rename).
constexpr char kTerMagic[4] = {'T', 'E', 'R', '2'};
constexpr uint32_t kMaxDim = 1u << 20;           // 1M pixels per axis
constexpr uint64_t kMaxPixels = 1ull << 27;      // 128M pixels (1 GiB band)
constexpr uint32_t kMaxBands = 1024;

std::string Footprint(const geo::GeoTransform& t, int32_t w, int32_t h) {
  geo::Point a = t.PixelToWorld(0, 0);
  geo::Point b = t.PixelToWorld(w, 0);
  geo::Point c = t.PixelToWorld(w, h);
  geo::Point d = t.PixelToWorld(0, h);
  geo::Envelope e = geo::Envelope::Empty();
  e.Expand(a);
  e.Expand(b);
  e.Expand(c);
  e.Expand(d);
  return geo::WriteWkt(
      geo::Geometry::MakeBox(e.min_x, e.min_y, e.max_x, e.max_y));
}

/// Reads magic + header block; leaves `reader` positioned at the first
/// band block.
Status ReadHeaderInto(io::FileReader* reader, const std::string& path,
                      TerHeader* h) {
  char magic[4];
  if (!reader->ReadExact(magic, 4) ||
      std::string_view(magic, 4) != std::string_view(kTerMagic, 4)) {
    if (!reader->status().ok()) return reader->status();
    return Status::ParseError("'" + path + "' is not a TER file");
  }
  TELEIOS_ASSIGN_OR_RETURN(std::string block, io::ReadBlock(reader));
  io::ByteReader r(block);
  uint32_t w = 0, hh = 0, nbands = 0;
  if (!r.ReadStr(&h->name) || !r.ReadStr(&h->satellite) ||
      !r.ReadStr(&h->sensor) || !r.ReadU32(&w) || !r.ReadU32(&hh) ||
      !r.ReadU32(&nbands) || !r.ReadI64(&h->acquisition_time)) {
    return Status::ParseError("truncated TER header in '" + path + "'");
  }
  if (w > kMaxDim || hh > kMaxDim ||
      static_cast<uint64_t>(w) * hh > kMaxPixels) {
    return Status::ParseError("implausible TER raster size " +
                              std::to_string(w) + "x" + std::to_string(hh));
  }
  if (nbands > kMaxBands) {
    return Status::ParseError("implausible TER band count " +
                              std::to_string(nbands));
  }
  h->width = static_cast<int32_t>(w);
  h->height = static_cast<int32_t>(hh);
  double gt[6];
  for (double& g : gt) {
    if (!r.ReadF64(&g)) {
      return Status::ParseError("truncated TER geotransform");
    }
  }
  // GDAL geotransform order on disk: origin_x, pixel_w, rot_x, origin_y,
  // rot_y, pixel_h (see WriteTer).
  h->transform.origin_x = gt[0];
  h->transform.pixel_w = gt[1];
  h->transform.rot_x = gt[2];
  h->transform.origin_y = gt[3];
  h->transform.rot_y = gt[4];
  h->transform.pixel_h = gt[5];
  h->band_names.resize(nbands);
  for (std::string& b : h->band_names) {
    if (!r.ReadStr(&b)) return Status::ParseError("truncated TER bands");
  }
  if (!r.exhausted()) {
    return Status::ParseError("trailing bytes in TER header");
  }
  h->path = path;
  return Status::OK();
}

}  // namespace

int TerRaster::BandIndex(const std::string& band) const {
  for (size_t i = 0; i < band_names.size(); ++i) {
    if (band_names[i] == band) return static_cast<int>(i);
  }
  return -1;
}

std::string TerRaster::FootprintWkt() const {
  return Footprint(transform, width, height);
}

std::string TerHeader::FootprintWkt() const {
  return Footprint(transform, width, height);
}

Status WriteTer(const TerRaster& raster, const std::string& path) {
  if (raster.bands.size() != raster.band_names.size()) {
    return Status::InvalidArgument("band name/payload arity mismatch");
  }
  std::string image(kTerMagic, sizeof(kTerMagic));
  std::string header;
  io::PutStr(&header, raster.name);
  io::PutStr(&header, raster.satellite);
  io::PutStr(&header, raster.sensor);
  io::PutU32(&header, static_cast<uint32_t>(raster.width));
  io::PutU32(&header, static_cast<uint32_t>(raster.height));
  io::PutU32(&header, static_cast<uint32_t>(raster.bands.size()));
  io::PutI64(&header, raster.acquisition_time);
  const geo::GeoTransform& t = raster.transform;
  for (double g : {t.origin_x, t.pixel_w, t.rot_x, t.origin_y, t.rot_y,
                   t.pixel_h}) {
    io::PutF64(&header, g);
  }
  for (const std::string& b : raster.band_names) io::PutStr(&header, b);
  io::AppendBlockTo(&image, header);
  size_t pixels = raster.PixelCount();
  for (const auto& band : raster.bands) {
    if (band.size() != pixels) {
      return Status::InvalidArgument("band payload size mismatch");
    }
    io::AppendBlockTo(
        &image,
        std::string_view(reinterpret_cast<const char*>(band.data()),
                         pixels * sizeof(double)));
  }
  return io::GetFileSystem()->WriteFileAtomic(path, image);
}

Result<TerHeader> ReadTerHeader(const std::string& path) {
  TELEIOS_ASSIGN_OR_RETURN(std::unique_ptr<io::ReadableFile> file,
                           io::GetFileSystem()->NewReadableFile(path));
  io::FileReader reader(std::move(file));
  TerHeader h;
  TELEIOS_RETURN_IF_ERROR(ReadHeaderInto(&reader, path, &h));
  return h;
}

Result<TerRaster> ReadTer(const std::string& path) {
  TELEIOS_ASSIGN_OR_RETURN(std::unique_ptr<io::ReadableFile> file,
                           io::GetFileSystem()->NewReadableFile(path));
  io::FileReader reader(std::move(file));
  TerHeader h;
  TELEIOS_RETURN_IF_ERROR(ReadHeaderInto(&reader, path, &h));
  TerRaster r;
  r.name = h.name;
  r.satellite = h.satellite;
  r.sensor = h.sensor;
  r.width = h.width;
  r.height = h.height;
  r.acquisition_time = h.acquisition_time;
  r.transform = h.transform;
  r.band_names = h.band_names;
  size_t pixels = r.PixelCount();
  r.bands.resize(r.band_names.size());
  for (auto& band : r.bands) {
    band.resize(pixels);
    TELEIOS_RETURN_IF_ERROR(io::ReadBlockInto(
        &reader, band.data(), pixels * sizeof(double)));
  }
  char extra;
  if (reader.ReadExact(&extra, 1)) {
    return Status::ParseError("trailing data after TER bands in '" + path +
                              "'");
  }
  if (!reader.status().ok()) return reader.status();
  return r;
}

namespace {

std::string EscapeAttr(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '|' || c == ';' || c == '=' || c == '\\' || c == '\n') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

/// Splits on `sep` honoring backslash escapes, KEEPING the escapes (so
/// nested splits stay correct); call Unescape on the final fields.
std::vector<std::string> SplitEscaped(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      cur += s[i];
      cur += s[i + 1];
      ++i;
      continue;
    }
    if (s[i] == sep) {
      parts.push_back(cur);
      cur.clear();
      continue;
    }
    cur += s[i];
  }
  parts.push_back(cur);
  return parts;
}

std::string Unescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out += s[++i];
      continue;
    }
    out += s[i];
  }
  return out;
}

}  // namespace

Status WriteVec(const VecFile& file, const std::string& path) {
  // VEC v2: the VEC1 line format plus a trailing `#CRC32C xxxxxxxx` line
  // covering the whole body, so any read-side corruption is caught.
  std::string out = "#VEC2 " + EscapeAttr(file.name) + "\n";
  for (const VecFeature& f : file.features) {
    out += std::to_string(f.id) + "|";
    bool first = true;
    for (const auto& [k, v] : f.attributes) {
      if (!first) out += ";";
      first = false;
      out += EscapeAttr(k) + "=" + EscapeAttr(v);
    }
    out += "|" + geo::WriteWkt(f.geometry) + "\n";
  }
  io::AppendCrcTrailer(&out);
  return io::GetFileSystem()->WriteFileAtomic(path, out);
}

Result<VecFile> ReadVec(const std::string& path) {
  TELEIOS_ASSIGN_OR_RETURN(std::string raw,
                           io::GetFileSystem()->ReadFile(path));
  TELEIOS_ASSIGN_OR_RETURN(std::string content, io::VerifyCrcTrailer(raw));
  std::istringstream is(content);
  VecFile file;
  std::string line;
  if (!std::getline(is, line) || !StrStartsWith(line, "#VEC2")) {
    return Status::ParseError("'" + path + "' is not a VEC file");
  }
  if (line.size() > 6) file.name = line.substr(6);
  size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> cols = SplitEscaped(line, '|');
    if (cols.size() != 3) {
      return Status::ParseError(
          StrFormat("bad VEC record at %s:%zu", path.c_str(), lineno));
    }
    VecFeature f;
    TELEIOS_ASSIGN_OR_RETURN(f.id, ParseInt64(Unescape(cols[0])));
    if (!cols[1].empty()) {
      for (const std::string& pair : SplitEscaped(cols[1], ';')) {
        std::vector<std::string> kv = SplitEscaped(pair, '=');
        if (kv.size() == 2) f.attributes[Unescape(kv[0])] = Unescape(kv[1]);
      }
    }
    TELEIOS_ASSIGN_OR_RETURN(f.geometry, geo::ParseWkt(Unescape(cols[2])));
    file.features.push_back(std::move(f));
  }
  return file;
}

}  // namespace teleios::vault
