#ifndef TELEIOS_OBS_EVENT_LOG_H_
#define TELEIOS_OBS_EVENT_LOG_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace teleios::obs {

/// One structured diagnostic event: a type tag plus flat string fields,
/// stamped with wall-clock milliseconds at Post time. Rendered as one
/// JSON object per event ({"ts_millis": ..., "type": "...", fields...}).
struct Event {
  int64_t unix_millis = 0;
  std::string type;
  std::vector<std::pair<std::string, std::string>> fields;

  std::string ToJson() const;
  /// First field value under `key`, or "".
  const std::string& Field(const std::string& key) const;
};

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscapeString(const std::string& s);

/// Where the JSONL sink's bytes go. The event log itself sits below the
/// io layer in the dependency DAG (io records metrics and posts events),
/// so it cannot open files: it writes through this seam instead, and the
/// io layer supplies the implementation. Standard dependency inversion —
/// obs declares the interface and the factory, io/event_sink.cc defines
/// the factory (same pattern as a log framework accepting a writer).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual Status Append(const std::string& line) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Opens the JSONL sink for `path` with rotate-aside semantics (an
/// existing file moves to `path + ".prev"` and the rename is fsynced).
/// Declared here, *defined* in src/io/event_sink.cc so every byte still
/// crosses the fault-injectable io::FileSystem seam without obs
/// including io headers.
Result<std::unique_ptr<EventSink>> OpenJsonlEventSink(
    const std::string& path);

/// A bounded ring of recent diagnostic events — the process's flight
/// recorder. Posting is cheap (one lock, no allocation beyond the event
/// itself) and safe from any thread, including under engine locks: the
/// log never calls back into the layers that feed it.
///
/// Event taxonomy (types posted by the substrate):
///   query.finish         every governed statement's completion record
///   query.slow           latency exceeded TELEIOS_SLOW_QUERY_MS
///   query.killed         a KillQuery(id) hit a live statement
///   budget.refused       a MemoryBudget reservation was refused
///   admission.shed       the admission queue shed an arrival
///   breaker.transition   a circuit breaker changed state
///   vault.quarantine     a raster was quarantined after a failed ingest
///
/// An optional JSONL sink mirrors every posted event to a file, one
/// JSON object per line, through the io seam (so fault injection covers
/// it); sink errors are counted, never propagated — diagnostics must not
/// fail the work they observe.
class EventLog {
 public:
  explicit EventLog(size_t capacity = kDefaultCapacity);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// The process-wide log every substrate hook posts to. Capacity comes
  /// from TELEIOS_EVENT_LOG_CAPACITY (default 512) and the JSONL sink
  /// from TELEIOS_EVENT_LOG_PATH, both read once at first use.
  static EventLog& Global();

  void Post(std::string type,
            std::vector<std::pair<std::string, std::string>> fields);

  /// The retained window, oldest first.
  std::vector<Event> Snapshot() const;

  /// Events posted since construction (>= Snapshot().size(): the ring
  /// drops the oldest once full).
  uint64_t posted_total() const;
  /// Events pushed out of the ring by newer ones.
  uint64_t dropped_total() const;

  /// Mirrors subsequent events to `path` as JSON lines via the io seam
  /// (empty path closes the sink). An existing file at `path` is first
  /// rotated to `path + ".prev"` (rename + parent-directory fsync), so
  /// the previous run's history survives one restart — sys.events can
  /// show what happened before a crash. The outgoing sink is synced and
  /// closed; failures there are counted, never propagated.
  Status SetSinkPath(const std::string& path);

  /// Flushes and fsyncs the sink (no-op without one). The durability
  /// layer calls this after checkpoint/recovery events so the post-
  /// restart history is itself crash-durable.
  Status SyncSink();

  /// Drops retained events and counters; keeps capacity and sink.
  void Reset();
  /// Tests: swaps the ring bound (drops overflow immediately).
  void SetCapacity(size_t capacity);

  static constexpr size_t kDefaultCapacity = 512;

 private:
  mutable Mutex mu_;
  size_t capacity_ TELEIOS_GUARDED_BY(mu_);
  std::deque<Event> ring_ TELEIOS_GUARDED_BY(mu_);
  uint64_t posted_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ TELEIOS_GUARDED_BY(mu_) = 0;
  std::unique_ptr<EventSink> sink_ TELEIOS_GUARDED_BY(mu_);
};

/// Posts to EventLog::Global() — the one-liner used at substrate call
/// sites, mirroring obs::Count.
void PostEvent(std::string type,
               std::vector<std::pair<std::string, std::string>> fields);

/// Milliseconds since the Unix epoch (system clock).
int64_t UnixMillisNow();

}  // namespace teleios::obs

#endif  // TELEIOS_OBS_EVENT_LOG_H_
