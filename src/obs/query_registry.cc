#include "obs/query_registry.h"

#include <cstdlib>
#include <utility>

#include "obs/event_log.h"
#include "obs/metrics.h"

namespace teleios::obs {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kQueued:
      return "queued";
    case QueryState::kRunning:
      return "running";
  }
  return "unknown";
}

IntrospectionConfig IntrospectionConfig::FromEnv() {
  IntrospectionConfig config;
  if (const char* env = std::getenv("TELEIOS_SLOW_QUERY_MS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    double v = std::strtod(env, &end);
    if (end != env && v >= 0) config.slow_query_millis = v;
  }
  if (const char* env = std::getenv("TELEIOS_TRACE_SAMPLE");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) {
      config.trace_sample_every = static_cast<uint64_t>(v);
    }
  }
  if (const char* env = std::getenv("TELEIOS_QUERY_LOG_CAPACITY");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) config.query_log_capacity = static_cast<size_t>(v);
  }
  return config;
}

QueryGuard::~QueryGuard() {
  if (registry_ != nullptr) registry_->Abandon(id_);
}

QueryGuard& QueryGuard::operator=(QueryGuard&& other) noexcept {
  if (this != &other) {
    if (registry_ != nullptr) registry_->Abandon(id_);
    registry_ = other.registry_;
    id_ = other.id_;
    token_ = std::move(other.token_);
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

ActiveQueryRegistry::ActiveQueryRegistry(IntrospectionConfig config) {
  MutexLock lock(mu_);
  config_ = config;
}

QueryGuard ActiveQueryRegistry::Start(std::string tier, std::string statement,
                                      const CancellationToken* parent) {
  auto token = std::make_shared<CancellationToken>();
  // Linked before the token is visible to anyone else.
  token->LinkParent(parent);

  QueryGuard guard;
  guard.registry_ = this;
  guard.token_ = token;

  Entry entry;
  entry.start = std::chrono::steady_clock::now();
  entry.token = std::move(token);
  entry.info.tier = std::move(tier);
  entry.info.statement = std::move(statement);
  entry.info.state = QueryState::kQueued;
  entry.info.start_unix_millis = UnixMillisNow();

  Count("teleios_obs_queries_started_total");
  MutexLock lock(mu_);
  guard.id_ = next_id_++;
  entry.info.id = guard.id_;
  active_.emplace(guard.id_, std::move(entry));
  SetGauge("teleios_obs_queries_active", static_cast<double>(active_.size()));
  return guard;
}

void ActiveQueryRegistry::MarkRunning(const QueryGuard& guard,
                                      double queued_millis) {
  MutexLock lock(mu_);
  auto it = active_.find(guard.id_);
  if (it == active_.end()) return;
  it->second.info.state = QueryState::kRunning;
  it->second.info.queued_millis = queued_millis;
}

Status ActiveQueryRegistry::Kill(uint64_t id) {
  std::shared_ptr<CancellationToken> token;
  std::string tier;
  {
    MutexLock lock(mu_);
    auto it = active_.find(id);
    if (it == active_.end()) {
      return Status::NotFound("no active query with id " + std::to_string(id));
    }
    token = it->second.token;
    tier = it->second.info.tier;
  }
  // Cancel outside the lock: the token is shared, and the query's own
  // Finish may race in — both orders are fine, the token is sticky.
  token->Cancel();
  Count("teleios_obs_queries_killed_total");
  PostEvent("query.killed",
            {{"id", std::to_string(id)}, {"tier", std::move(tier)}});
  return Status::OK();
}

bool ActiveQueryRegistry::ShouldSample(uint64_t id) const {
  MutexLock lock(mu_);
  return config_.trace_sample_every > 0 &&
         id % config_.trace_sample_every == 0;
}

void ActiveQueryRegistry::FinishLocked(uint64_t id, StatusCode code,
                                       int64_t rows,
                                       uint64_t peak_budget_bytes,
                                       std::string trace_json) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  Entry entry = std::move(it->second);
  active_.erase(it);
  SetGauge("teleios_obs_queries_active", static_cast<double>(active_.size()));

  QueryCompletion record;
  record.id = entry.info.id;
  record.tier = std::move(entry.info.tier);
  record.statement = std::move(entry.info.statement);
  record.status = StatusCodeName(code);
  record.rows = rows;
  record.latency_millis = MillisSince(entry.start);
  record.queued_millis = entry.info.queued_millis;
  record.peak_budget_bytes = peak_budget_bytes;
  record.end_unix_millis = UnixMillisNow();
  record.trace_json = std::move(trace_json);

  ++finished_;
  Count("teleios_obs_queries_finished_total");
  Count(WithLabel("teleios_obs_query_status_total", "code", record.status));
  Observe("teleios_obs_query_latency_millis", record.latency_millis);

  PostEvent("query.finish",
            {{"id", std::to_string(record.id)},
             {"tier", record.tier},
             {"status", record.status},
             {"rows", std::to_string(record.rows)},
             {"latency_millis", std::to_string(record.latency_millis)},
             {"peak_budget_bytes", std::to_string(record.peak_budget_bytes)}});
  if (config_.slow_query_millis >= 0 &&
      record.latency_millis >= config_.slow_query_millis) {
    Count("teleios_obs_slow_queries_total");
    PostEvent("query.slow",
              {{"id", std::to_string(record.id)},
               {"tier", record.tier},
               {"statement", record.statement},
               {"latency_millis", std::to_string(record.latency_millis)},
               {"threshold_millis",
                std::to_string(config_.slow_query_millis)}});
  }

  log_.push_back(std::move(record));
  while (log_.size() > config_.query_log_capacity) {
    log_.pop_front();
    ++log_dropped_;
  }
}

void ActiveQueryRegistry::Finish(QueryGuard guard, StatusCode code,
                                 int64_t rows, uint64_t peak_budget_bytes,
                                 std::string trace_json) {
  if (guard.registry_ != this) return;
  guard.registry_ = nullptr;  // disarm the Abandon path
  MutexLock lock(mu_);
  FinishLocked(guard.id_, code, rows, peak_budget_bytes,
               std::move(trace_json));
}

void ActiveQueryRegistry::Abandon(uint64_t id) {
  MutexLock lock(mu_);
  FinishLocked(id, StatusCode::kInternal, -1, 0, "");
}

std::vector<ActiveQuery> ActiveQueryRegistry::Active() const {
  MutexLock lock(mu_);
  std::vector<ActiveQuery> out;
  out.reserve(active_.size());
  for (const auto& [id, entry] : active_) {
    ActiveQuery info = entry.info;
    info.elapsed_millis = MillisSince(entry.start);
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<QueryCompletion> ActiveQueryRegistry::Log() const {
  MutexLock lock(mu_);
  return std::vector<QueryCompletion>(log_.begin(), log_.end());
}

uint64_t ActiveQueryRegistry::started_total() const {
  MutexLock lock(mu_);
  return next_id_ - 1;
}

uint64_t ActiveQueryRegistry::finished_total() const {
  MutexLock lock(mu_);
  return finished_;
}

uint64_t ActiveQueryRegistry::log_dropped_total() const {
  MutexLock lock(mu_);
  return log_dropped_;
}

IntrospectionConfig ActiveQueryRegistry::config() const {
  MutexLock lock(mu_);
  return config_;
}

void ActiveQueryRegistry::Reconfigure(const IntrospectionConfig& config) {
  MutexLock lock(mu_);
  config_ = config;
  while (log_.size() > config_.query_log_capacity) {
    log_.pop_front();
    ++log_dropped_;
  }
}

}  // namespace teleios::obs
