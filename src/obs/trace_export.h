#ifndef TELEIOS_OBS_TRACE_EXPORT_H_
#define TELEIOS_OBS_TRACE_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/trace.h"

namespace teleios::obs {

/// Serializes a finished span tree as Chrome trace-event JSON (the
/// `chrome://tracing` / Perfetto "JSON Array Format"): one complete
/// event (`"ph": "X"`) per span, pre-order, with microsecond `ts`
/// derived from SpanNode::start_millis and `dur` from millis. Span
/// attributes ride in `args`, alongside a `depth` arg that makes the
/// serialization exactly invertible (FromChromeTraceJson) without
/// relying on float timestamp containment.
///
/// This is the PROFILE/export interchange format: sampled traces in
/// `sys.query_log` store it, and a saved file loads directly into
/// about://tracing or `perfetto.dev`.
std::string ToChromeTraceJson(const SpanNode& root);

/// Parses ToChromeTraceJson output back into a span tree. Only the
/// exporter's own shape is understood — this is a round-trip codec for
/// tooling and tests, not a general trace-event reader. Errors with
/// kParseError on malformed input, kInvalidArgument when the events do
/// not form a single rooted pre-order tree.
Result<SpanNode> FromChromeTraceJson(const std::string& json);

}  // namespace teleios::obs

#endif  // TELEIOS_OBS_TRACE_EXPORT_H_
