#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace teleios::obs {

namespace {

/// Renders a double without trailing-zero noise ("12", "0.125").
std::string NumberToString(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Escapes a metric name for use as a JSON object key.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Metric name without the trailing {label=...} part.
std::string BaseName(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Labels part of a series name including braces, or "".
std::string Labels(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? std::string() : name.substr(brace);
}

/// Prometheus text-format escaping for label values: backslash, double
/// quote, and newline must be backslash-escaped.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Prometheus text-format escaping for `# HELP` text: backslash and
/// newline only (quotes are legal there).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// `series("x{a="b"}", "_sum", "")` -> `x_sum{a="b"}`;
/// `series("x", "", "quantile=\"0.5\"")` -> `x{quantile="0.5"}`.
std::string Series(const std::string& name, const std::string& suffix,
                   const std::string& extra_label) {
  std::string labels = Labels(name);
  if (!extra_label.empty()) {
    labels = labels.empty()
                 ? "{" + extra_label + "}"
                 : labels.substr(0, labels.size() - 1) + "," + extra_label +
                       "}";
  }
  return BaseName(name) + suffix + labels;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

std::vector<double> Histogram::DefaultLatencyBounds() {
  // 1-2-5 per decade, 0.001ms (1us) .. 10000ms (10s).
  std::vector<double> bounds;
  for (double decade = 0.001; decade < 10000.5; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  return bounds;
}

void Histogram::Observe(double v) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(n);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i >= bounds_.size()) return bounds_.back();  // overflow bucket
      double lo = i == 0 ? 0 : bounds_[i - 1];
      double hi = bounds_[i];
      double into = (rank - static_cast<double>(cumulative)) /
                    static_cast<double>(in_bucket);
      return lo + (hi - lo) * into;
    }
    cumulative += in_bucket;
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    ProcessUptimeSeconds();  // anchor the uptime epoch
    r->GetGauge("teleios_process_uptime_seconds");
    r->SetHelp("teleios_process_uptime_seconds",
               "Seconds since process metrics initialization.");
    // Build-info idiom: a constant-1 gauge whose labels carry the facts.
#if defined(__VERSION__)
    const char* compiler = __VERSION__;
#else
    const char* compiler = "unknown";
#endif
    std::string info = WithLabel(
        WithLabel("teleios_build_info", "compiler", compiler), "std",
        std::to_string(__cplusplus));
    r->GetGauge(info)->Set(1);
    r->SetHelp("teleios_build_info",
               "Constant 1; labels identify the build toolchain.");
    return r;
  }();
  return *registry;
}

void MetricsRegistry::SetHelp(const std::string& base_name, std::string help) {
  MutexLock lock(mu_);
  help_[base_name] = std::move(help);
}

void MetricsRegistry::RefreshComputedLocked() const {
  // Computed metrics only exist in the global registry; instance
  // registries (tests) skip this by not having the series.
  auto it = gauges_.find("teleios_process_uptime_seconds");
  if (it != gauges_.end()) it->second->Set(ProcessUptimeSeconds());
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::TextExposition() const {
  MutexLock lock(mu_);
  RefreshComputedLocked();
  std::ostringstream os;
  // One HELP (when registered) + one TYPE line per family. Maps are
  // name-sorted, so a family's series are adjacent and last_base
  // suffices for the dedupe.
  auto family_header = [&](const std::string& base, const char* type) {
    auto help = help_.find(base);
    if (help != help_.end()) {
      os << "# HELP " << base << " " << EscapeHelp(help->second) << "\n";
    }
    os << "# TYPE " << base << " " << type << "\n";
  };
  std::string last_base;
  for (const auto& [name, counter] : counters_) {
    std::string base = BaseName(name);
    if (base != last_base) {
      family_header(base, "counter");
      last_base = base;
    }
    os << name << " " << counter->value() << "\n";
  }
  last_base.clear();
  for (const auto& [name, gauge] : gauges_) {
    std::string base = BaseName(name);
    if (base != last_base) {
      family_header(base, "gauge");
      last_base = base;
    }
    os << name << " " << NumberToString(gauge->value()) << "\n";
  }
  last_base.clear();
  for (const auto& [name, hist] : histograms_) {
    std::string base = BaseName(name);
    if (base != last_base) {
      family_header(base, "summary");
      last_base = base;
    }
    for (double q : {0.5, 0.95, 0.99}) {
      os << Series(name, "", "quantile=\"" + NumberToString(q) + "\"") << " "
         << NumberToString(hist->Quantile(q)) << "\n";
    }
    os << Series(name, "_sum", "") << " " << NumberToString(hist->sum())
       << "\n";
    os << Series(name, "_count", "") << " " << hist->count() << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::JsonExposition() const {
  MutexLock lock(mu_);
  RefreshComputedLocked();
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "" : ", ") << "\"" << JsonEscape(name)
       << "\": " << counter->value();
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "" : ", ") << "\"" << JsonEscape(name)
       << "\": " << NumberToString(gauge->value());
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    os << (first ? "" : ", ") << "\"" << JsonEscape(name) << "\": {\"count\": "
       << hist->count() << ", \"sum\": " << NumberToString(hist->sum())
       << ", \"p50\": " << NumberToString(hist->Quantile(0.5))
       << ", \"p95\": " << NumberToString(hist->Quantile(0.95))
       << ", \"p99\": " << NumberToString(hist->Quantile(0.99)) << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

std::vector<MetricSample> MetricsRegistry::Samples() const {
  MutexLock lock(mu_);
  RefreshComputedLocked();
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() * 5);
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, "counter", static_cast<double>(counter->value())});
  }
  for (const auto& [name, gauge] : gauges_) {
    out.push_back({name, "gauge", gauge->value()});
  }
  for (const auto& [name, hist] : histograms_) {
    out.push_back({Series(name, "_count", ""), "histogram",
                   static_cast<double>(hist->count())});
    out.push_back({Series(name, "_sum", ""), "histogram", hist->sum()});
    out.push_back({Series(name, "_p50", ""), "histogram", hist->Quantile(0.5)});
    out.push_back(
        {Series(name, "_p95", ""), "histogram", hist->Quantile(0.95)});
    out.push_back(
        {Series(name, "_p99", ""), "histogram", hist->Quantile(0.99)});
  }
  return out;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

std::string WithLabel(const std::string& name, const std::string& key,
                      const std::string& value) {
  std::string pair = key + "=\"" + EscapeLabelValue(value) + "\"";
  if (!name.empty() && name.back() == '}') {
    return name.substr(0, name.size() - 1) + "," + pair + "}";
  }
  return name + "{" + pair + "}";
}

double ProcessUptimeSeconds() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void Count(const std::string& name, uint64_t n) {
  MetricsRegistry::Global().GetCounter(name)->Inc(n);
}

void SetGauge(const std::string& name, double v) {
  MetricsRegistry::Global().GetGauge(name)->Set(v);
}

void Observe(const std::string& name, double v) {
  MetricsRegistry::Global().GetHistogram(name)->Observe(v);
}

}  // namespace teleios::obs
