#include "obs/trace_export.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <variant>
#include <vector>

#include "obs/event_log.h"

namespace teleios::obs {

namespace {

/// Full-precision double rendering so ts/dur survive the round trip.
std::string DoubleToJson(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendEvent(const SpanNode& node, int depth, bool* first,
                 std::string* out) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += R"({"name": ")" + JsonEscapeString(node.name) +
          R"(", "ph": "X", "ts": )" + DoubleToJson(node.start_millis * 1000.0) +
          ", \"dur\": " + DoubleToJson(node.millis * 1000.0) +
          R"(, "pid": 1, "tid": 1, "args": {"depth": )" +
          std::to_string(depth);
  for (const auto& [k, v] : node.attrs) {
    if (k == "depth") continue;  // reserved for the codec
    *out += ", \"" + JsonEscapeString(k) + "\": \"" + JsonEscapeString(v) +
            "\"";
  }
  *out += "}}";
  for (const SpanNode& child : node.children) {
    AppendEvent(child, depth + 1, first, out);
  }
}

// --- a minimal JSON reader for the exporter's own output ---------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      value = nullptr;

  const JsonValue* Find(const std::string& key) const {
    const auto* obj = std::get_if<std::shared_ptr<JsonObject>>(&value);
    if (obj == nullptr) return nullptr;
    for (const auto& [k, v] : **obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    TELEIOS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing bytes after JSON value");
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::ParseError("unexpected end");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      TELEIOS_ASSIGN_OR_RETURN(std::string s, ParseString());
      JsonValue v;
      v.value = std::move(s);
      return v;
    }
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    auto obj = std::make_shared<JsonObject>();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
    } else {
      for (;;) {
        SkipSpace();
        TELEIOS_ASSIGN_OR_RETURN(std::string key, ParseString());
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Status::ParseError("expected ':' in object");
        }
        ++pos_;
        TELEIOS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
        obj->emplace_back(std::move(key), std::move(v));
        SkipSpace();
        if (pos_ >= text_.size()) return Status::ParseError("unterminated {}");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          break;
        }
        return Status::ParseError("expected ',' or '}' in object");
      }
    }
    JsonValue v;
    v.value = std::move(obj);
    return v;
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    auto arr = std::make_shared<JsonArray>();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
    } else {
      for (;;) {
        TELEIOS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
        arr->push_back(std::move(v));
        SkipSpace();
        if (pos_ >= text_.size()) return Status::ParseError("unterminated []");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          break;
        }
        return Status::ParseError("expected ',' or ']' in array");
      }
    }
    JsonValue v;
    v.value = std::move(arr);
    return v;
  }

  Result<std::string> ParseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Status::ParseError("expected string");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Status::ParseError("bad escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::ParseError("bad \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::ParseError("bad \\u escape digit");
            }
          }
          // The exporter only emits \u00xx control escapes.
          out.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          return Status::ParseError("unknown escape");
      }
    }
    if (pos_ >= text_.size()) return Status::ParseError("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Status::ParseError("expected number");
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::ParseError("bad number '" + token + "'");
    }
    JsonValue out;
    out.value = v;
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string ToChromeTraceJson(const SpanNode& root) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  AppendEvent(root, 0, &first, &out);
  out += "\n]}";
  return out;
}

Result<SpanNode> FromChromeTraceJson(const std::string& json) {
  JsonReader reader(json);
  TELEIOS_ASSIGN_OR_RETURN(JsonValue top, reader.Parse());
  const JsonValue* events = top.Find("traceEvents");
  if (events == nullptr) {
    return Status::InvalidArgument("no traceEvents array");
  }
  const auto* arr = std::get_if<std::shared_ptr<JsonArray>>(&events->value);
  if (arr == nullptr || (*arr)->empty()) {
    return Status::InvalidArgument("traceEvents is not a non-empty array");
  }

  SpanNode root;
  std::vector<SpanNode*> stack;  // open chain, root first
  for (const JsonValue& event : **arr) {
    const JsonValue* name = event.Find("name");
    const JsonValue* ts = event.Find("ts");
    const JsonValue* dur = event.Find("dur");
    const JsonValue* args = event.Find("args");
    const JsonValue* depth_v = args != nullptr ? args->Find("depth") : nullptr;
    if (name == nullptr || ts == nullptr || dur == nullptr ||
        depth_v == nullptr) {
      return Status::InvalidArgument("event missing name/ts/dur/args.depth");
    }
    const auto* name_s = std::get_if<std::string>(&name->value);
    const auto* ts_n = std::get_if<double>(&ts->value);
    const auto* dur_n = std::get_if<double>(&dur->value);
    const auto* depth_n = std::get_if<double>(&depth_v->value);
    if (name_s == nullptr || ts_n == nullptr || dur_n == nullptr ||
        depth_n == nullptr) {
      return Status::InvalidArgument("event field has the wrong type");
    }
    SpanNode node;
    node.name = *name_s;
    node.start_millis = *ts_n / 1000.0;
    node.millis = *dur_n / 1000.0;
    const auto* args_obj =
        std::get_if<std::shared_ptr<JsonObject>>(&args->value);
    if (args_obj != nullptr) {
      for (const auto& [k, v] : **args_obj) {
        if (k == "depth") continue;
        if (const auto* s = std::get_if<std::string>(&v.value)) {
          node.attrs.emplace_back(k, *s);
        }
      }
    }

    size_t depth = static_cast<size_t>(*depth_n);
    if (depth == 0) {
      if (!stack.empty()) {
        return Status::InvalidArgument("multiple roots in traceEvents");
      }
      root = std::move(node);
      stack.push_back(&root);
      continue;
    }
    if (stack.empty() || depth > stack.size()) {
      return Status::InvalidArgument("event depth skips a level");
    }
    stack.resize(depth);  // pop back to the parent
    SpanNode* parent = stack.back();
    parent->children.push_back(std::move(node));
    stack.push_back(&parent->children.back());
  }
  if (stack.empty()) return Status::InvalidArgument("no root event");
  return root;
}

}  // namespace teleios::obs
