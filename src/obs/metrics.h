#ifndef TELEIOS_OBS_METRICS_H_
#define TELEIOS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace teleios::obs {

/// Monotonically increasing event count (thread-safe).
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A settable instantaneous value (thread-safe).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Bucketed distribution (latencies in milliseconds by default) with
/// quantile estimation by linear interpolation inside the hit bucket.
/// Observations above the last bound land in an overflow bucket whose
/// quantiles clamp to the last bound.
class Histogram {
 public:
  /// `bounds` are ascending inclusive upper bucket bounds.
  explicit Histogram(std::vector<double> bounds = DefaultLatencyBounds());

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Estimated value at quantile `q` in [0, 1]; 0 when empty.
  double Quantile(double q) const;

  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

  /// Exponential millisecond bounds from 1us to 10s.
  static std::vector<double> DefaultLatencyBounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// One flattened metric reading, for programmatic consumers (the
/// `sys.metrics` virtual table). Histograms flatten into derived series
/// (`<name>_count`, `<name>_sum`, `<name>_p50/p95/p99`).
struct MetricSample {
  std::string name;  ///< full series name, labels included
  std::string kind;  ///< "counter" | "gauge" | "histogram"
  double value = 0;
};

/// Process-wide registry of named metrics. Metric pointers are stable for
/// the registry's lifetime (callers may cache them in function-local
/// statics on hot paths); Reset() zeroes values without invalidating
/// pointers.
///
/// Naming convention: `teleios_<tier>_<name>`, with counters suffixed
/// `_total` and latency histograms suffixed `_millis`. Labeled series
/// embed Prometheus-style labels in the name, e.g.
/// `teleios_sql_errors_total{code="ParseError"}` (see WithLabel()).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the named metric, creating it on first use.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Attaches Prometheus `# HELP` text to a metric family. `base_name`
  /// is the series name without labels; newlines and backslashes are
  /// escaped at exposition time.
  void SetHelp(const std::string& base_name, std::string help);

  /// Prometheus text exposition format: every family gets exactly one
  /// `# TYPE` line (and a `# HELP` line when SetHelp was called), then
  /// one `name value` line per series; histograms expose
  /// `{quantile=...}`, `_sum`, `_count` as a summary.
  std::string TextExposition() const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, p50, p95, p99}}}.
  std::string JsonExposition() const;

  /// Every series as a flat name/kind/value list, sorted by kind then
  /// name (the order of the text exposition). Backs `sys.metrics`.
  std::vector<MetricSample> Samples() const;

  /// Zeroes every metric (tests); registered pointers stay valid.
  void Reset();

 private:
  /// Refreshes computed metrics (process uptime) before a read-out.
  void RefreshComputedLocked() const TELEIOS_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      TELEIOS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      TELEIOS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      TELEIOS_GUARDED_BY(mu_);
  std::map<std::string, std::string> help_ TELEIOS_GUARDED_BY(mu_);
};

/// `WithLabel("x_total", "code", "ParseError")` -> `x_total{code="ParseError"}`.
/// Applied to a name that already carries labels, appends to them:
/// `WithLabel("x{a="1"}", "b", "2")` -> `x{a="1",b="2"}`. Label values are
/// escaped per the Prometheus text format (backslash, quote, newline).
std::string WithLabel(const std::string& name, const std::string& key,
                      const std::string& value);

/// Seconds since the process (first Global() touch) started.
double ProcessUptimeSeconds();

// --- call-site helpers (all route to MetricsRegistry::Global()) -----------

void Count(const std::string& name, uint64_t n = 1);
void SetGauge(const std::string& name, double v);
void Observe(const std::string& name, double v);

}  // namespace teleios::obs

#endif  // TELEIOS_OBS_METRICS_H_
