#include "obs/trace.h"

#include <sstream>

namespace teleios::obs {

struct ScopedTrace::Context {
  SpanNode root;
  /// Stack of open spans, root first. Invariant: spans only ever get
  /// appended to the children of the innermost open span, so the parent
  /// vectors the outer pointers live in never reallocate while they are
  /// on the stack.
  std::vector<SpanNode*> open;
  /// Trace start; spans record their start offset against it.
  std::chrono::steady_clock::time_point start;
  /// Start offset of this trace within the enclosing trace active at
  /// construction (0 at top level); applied to the whole tree when the
  /// finished root is attached as a span of the outer trace.
  double offset_in_parent = 0;
};

namespace {

thread_local std::vector<ScopedTrace::Context*> t_active;

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

const std::string& SpanNode::Attr(const std::string& key) const {
  static const std::string kEmpty;
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return kEmpty;
}

const SpanNode* SpanNode::Find(const std::string& target) const {
  if (name == target) return this;
  for (const SpanNode& child : children) {
    if (const SpanNode* hit = child.Find(target)) return hit;
  }
  return nullptr;
}

namespace {

void RenderInto(const SpanNode& node, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  *os << node.name << " " << node.millis << "ms";
  for (const auto& [k, v] : node.attrs) *os << " " << k << "=" << v;
  *os << "\n";
  for (const SpanNode& child : node.children) {
    RenderInto(child, depth + 1, os);
  }
}

}  // namespace

std::string SpanNode::Render() const {
  std::ostringstream os;
  RenderInto(*this, 0, &os);
  return os.str();
}

namespace {

/// Shifts a finished subtree's start offsets into an enclosing trace's
/// timebase.
void ShiftStartOffsets(SpanNode* node, double offset) {
  node->start_millis += offset;
  for (SpanNode& child : node->children) ShiftStartOffsets(&child, offset);
}

}  // namespace

ScopedTrace::ScopedTrace(std::string name)
    : ctx_(new Context()), start_(std::chrono::steady_clock::now()) {
  ctx_->root.name = std::move(name);
  ctx_->open.push_back(&ctx_->root);
  ctx_->start = start_;
  if (!t_active.empty()) {
    ctx_->offset_in_parent = std::chrono::duration<double, std::milli>(
                                 start_ - t_active.back()->start)
                                 .count();
  }
  t_active.push_back(ctx_);
}

SpanNode ScopedTrace::Finish() {
  if (ctx_ == nullptr) return finished_;
  ctx_->root.millis = MillisSince(start_);
  double offset_in_parent = ctx_->offset_in_parent;
  finished_ = std::move(ctx_->root);
  // Pop this trace (it is the innermost by scoping discipline).
  if (!t_active.empty() && t_active.back() == ctx_) t_active.pop_back();
  delete ctx_;
  ctx_ = nullptr;
  // A finished inner trace becomes a span of the enclosing trace; its
  // offsets move from "since inner start" to "since outer start".
  if (!t_active.empty()) {
    SpanNode attached = finished_;
    ShiftStartOffsets(&attached, offset_in_parent);
    t_active.back()->open.back()->children.push_back(std::move(attached));
  }
  return finished_;
}

ScopedTrace::~ScopedTrace() { Finish(); }

TraceSpan::TraceSpan(std::string name, Histogram* histogram)
    : node_(nullptr),
      histogram_(histogram),
      start_(std::chrono::steady_clock::now()) {
  if (t_active.empty()) return;
  ScopedTrace::Context* ctx = t_active.back();
  SpanNode* parent = ctx->open.back();
  SpanNode node;
  node.name = std::move(name);
  node.start_millis =
      std::chrono::duration<double, std::milli>(start_ - ctx->start).count();
  parent->children.push_back(std::move(node));
  node_ = &parent->children.back();
  ctx->open.push_back(node_);
}

TraceSpan::~TraceSpan() {
  double elapsed = MillisSince(start_);
  if (histogram_ != nullptr) histogram_->Observe(elapsed);
  if (node_ == nullptr) return;
  // Close the span only if its trace is still active: when a trace is
  // finished with open spans (a lifetime bug in the caller), node_ points
  // into a tree that has already been moved out, and touching it would be
  // a use-after-free.
  for (auto it = t_active.rbegin(); it != t_active.rend(); ++it) {
    if ((*it)->open.back() == node_) {
      node_->millis = elapsed;
      (*it)->open.pop_back();
      return;
    }
  }
}

void TraceSpan::SetAttr(const std::string& key, std::string value) {
  if (node_ == nullptr) return;
  // Same lifetime guard as the destructor.
  for (ScopedTrace::Context* ctx : t_active) {
    if (ctx->open.back() == node_) {
      node_->attrs.emplace_back(key, std::move(value));
      return;
    }
  }
}

double TraceSpan::ElapsedMillis() const { return MillisSince(start_); }

bool TraceActive() { return !t_active.empty(); }

}  // namespace teleios::obs
