#include "obs/event_log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"

namespace teleios::obs {

namespace {

size_t CapacityFromEnv() {
  const char* env = std::getenv("TELEIOS_EVENT_LOG_CAPACITY");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<size_t>(v);
  }
  return EventLog::kDefaultCapacity;
}

}  // namespace

int64_t UnixMillisNow() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string Event::ToJson() const {
  std::string out = "{\"ts_millis\": " + std::to_string(unix_millis) +
                    ", \"type\": \"" + JsonEscapeString(type) + "\"";
  for (const auto& [k, v] : fields) {
    out += ", \"" + JsonEscapeString(k) + "\": \"" + JsonEscapeString(v) +
           "\"";
  }
  out += "}";
  return out;
}

const std::string& Event::Field(const std::string& key) const {
  static const std::string kEmpty;
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return kEmpty;
}

EventLog::EventLog(size_t capacity) : capacity_(capacity) {}

EventLog::~EventLog() = default;

EventLog& EventLog::Global() {
  static EventLog* log = [] {
    auto* l = new EventLog(CapacityFromEnv());
    const char* path = std::getenv("TELEIOS_EVENT_LOG_PATH");
    if (path != nullptr && *path != '\0') {
      // Sink failure must not fail startup; the drop is visible as a
      // zero-event sink plus the error counter.
      Status opened = l->SetSinkPath(path);
      if (!opened.ok()) {
        Count("teleios_obs_event_sink_errors_total");
      }
    }
    return l;
  }();
  return *log;
}

void EventLog::Post(std::string type,
                    std::vector<std::pair<std::string, std::string>> fields) {
  Event event;
  event.unix_millis = UnixMillisNow();
  event.type = std::move(type);
  event.fields = std::move(fields);
  Count("teleios_obs_events_total");
  MutexLock lock(mu_);
  if (sink_ != nullptr) {
    std::string line = event.ToJson() + "\n";
    Status appended = sink_->Append(line);
    if (appended.ok()) appended = sink_->Flush();
    if (!appended.ok()) {
      Count("teleios_obs_event_sink_errors_total");
    }
  }
  ++posted_;
  ring_.push_back(std::move(event));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

std::vector<Event> EventLog::Snapshot() const {
  MutexLock lock(mu_);
  return std::vector<Event>(ring_.begin(), ring_.end());
}

uint64_t EventLog::posted_total() const {
  MutexLock lock(mu_);
  return posted_;
}

uint64_t EventLog::dropped_total() const {
  MutexLock lock(mu_);
  return dropped_;
}

Status EventLog::SetSinkPath(const std::string& path) {
  std::unique_ptr<EventSink> file;
  if (!path.empty()) {
    // The io layer opens (and rotates aside) the actual file; see
    // OpenJsonlEventSink in event_log.h for why the implementation
    // lives in src/io/event_sink.cc.
    TELEIOS_ASSIGN_OR_RETURN(file, OpenJsonlEventSink(path));
  }
  MutexLock lock(mu_);
  if (sink_ != nullptr) {
    // Best effort: a failed sync/close loses buffered diagnostics,
    // nothing more; the new sink (or no sink) takes over regardless.
    // The drop is visible on the error counter rather than silent.
    Status closed = sink_->Sync();
    if (closed.ok()) closed = sink_->Close();
    if (!closed.ok()) {
      Count("teleios_obs_event_sink_errors_total");
    }
  }
  sink_ = std::move(file);
  return Status::OK();
}

Status EventLog::SyncSink() {
  MutexLock lock(mu_);
  if (sink_ == nullptr) return Status::OK();
  Status synced = sink_->Flush();
  if (synced.ok()) synced = sink_->Sync();
  if (!synced.ok()) {
    Count("teleios_obs_event_sink_errors_total");
  }
  return synced;
}

void EventLog::Reset() {
  MutexLock lock(mu_);
  ring_.clear();
  posted_ = 0;
  dropped_ = 0;
}

void EventLog::SetCapacity(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

void PostEvent(std::string type,
               std::vector<std::pair<std::string, std::string>> fields) {
  EventLog::Global().Post(std::move(type), std::move(fields));
}

}  // namespace teleios::obs
