#ifndef TELEIOS_OBS_QUERY_REGISTRY_H_
#define TELEIOS_OBS_QUERY_REGISTRY_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/cancellation.h"

namespace teleios::obs {

enum class QueryState { kQueued, kRunning };

const char* QueryStateName(QueryState state);

/// Snapshot row of one in-flight statement (`sys.queries`).
struct ActiveQuery {
  uint64_t id = 0;
  std::string tier;       // sql / sciql / stsparql / fire-chain / ...
  std::string statement;  // verbatim text (PROFILE prefix stripped)
  QueryState state = QueryState::kQueued;
  int64_t start_unix_millis = 0;  // wall clock at registration
  double queued_millis = 0;       // admission wait (0 while still queued)
  double elapsed_millis = 0;      // registration -> snapshot time
};

/// Completion record of one finished statement (`sys.query_log`).
struct QueryCompletion {
  uint64_t id = 0;
  std::string tier;
  std::string statement;
  std::string status;  // StatusCodeName of the final status
  int64_t rows = -1;   // result cardinality; -1 when not a table result
  double latency_millis = 0;  // registration -> finish, queue wait included
  double queued_millis = 0;
  uint64_t peak_budget_bytes = 0;
  int64_t end_unix_millis = 0;
  /// Chrome trace-event JSON of the statement's span tree when the query
  /// was traced (PROFILE or TELEIOS_TRACE_SAMPLE hit); "" otherwise.
  std::string trace_json;
};

/// Lifecycle knobs, read from the environment once per registry.
struct IntrospectionConfig {
  /// Completions at or above this latency post a query.slow event;
  /// negative disables. TELEIOS_SLOW_QUERY_MS (note: 0 flags everything).
  double slow_query_millis = -1;
  /// Trace every Nth query (ids divisible by N) even without PROFILE and
  /// store the tree in the query log; 0 disables. TELEIOS_TRACE_SAMPLE.
  uint64_t trace_sample_every = 0;
  /// Completion records retained (ring). TELEIOS_QUERY_LOG_CAPACITY,
  /// default 256.
  size_t query_log_capacity = 256;

  static IntrospectionConfig FromEnv();
};

class ActiveQueryRegistry;

/// RAII registration of one statement: created by
/// ActiveQueryRegistry::Start, consumed by Finish. If a guard dies
/// without Finish (an exception crossed the facade), the registry
/// records the query as Internal so `sys.queries` can never leak a
/// phantom row.
class QueryGuard {
 public:
  QueryGuard() = default;
  ~QueryGuard();

  QueryGuard(QueryGuard&& other) noexcept { *this = std::move(other); }
  QueryGuard& operator=(QueryGuard&& other) noexcept;
  QueryGuard(const QueryGuard&) = delete;
  QueryGuard& operator=(const QueryGuard&) = delete;

  uint64_t id() const { return id_; }
  /// The per-query token: cancelled by KillQuery, chained to the
  /// caller's own token. Valid for the guard's lifetime.
  const CancellationToken* token() const { return token_.get(); }
  bool valid() const { return registry_ != nullptr; }

 private:
  friend class ActiveQueryRegistry;
  ActiveQueryRegistry* registry_ = nullptr;
  uint64_t id_ = 0;
  std::shared_ptr<CancellationToken> token_;
};

/// The observatory's query lifecycle ledger: every admitted statement is
/// registered here with a monotonically-assigned id, observable while it
/// runs (`sys.queries`), killable by id, and archived into a bounded
/// completion ring (`sys.query_log`) when it finishes on ANY path —
/// success, error, shed, killed.
///
/// Thread-safe throughout; snapshots are cheap copies so readers never
/// hold the lock while rendering tables.
class ActiveQueryRegistry {
 public:
  explicit ActiveQueryRegistry(
      IntrospectionConfig config = IntrospectionConfig::FromEnv());

  ActiveQueryRegistry(const ActiveQueryRegistry&) = delete;
  ActiveQueryRegistry& operator=(const ActiveQueryRegistry&) = delete;

  /// Registers a statement (state kQueued) and hands back its guard.
  /// `parent` (may be nullptr) is the caller's token; the registry token
  /// chains to it, so engines polling the registry token honor both.
  QueryGuard Start(std::string tier, std::string statement,
                   const CancellationToken* parent);

  /// Moves the query to kRunning and records its admission wait.
  void MarkRunning(const QueryGuard& guard, double queued_millis);

  /// Cancels the query's token; running morsels stop at their next poll
  /// and a queued statement abandons the admission queue. NotFound when
  /// no such query is active (already finished ids are not killable).
  Status Kill(uint64_t id);

  /// True when `id` should run under an always-on sampled trace.
  bool ShouldSample(uint64_t id) const;

  /// Closes the guard: removes the active entry, derives latency, posts
  /// query.finish (and query.slow when over threshold) events, and
  /// appends the completion record to the ring.
  void Finish(QueryGuard guard, StatusCode code, int64_t rows,
              uint64_t peak_budget_bytes, std::string trace_json);

  /// In-flight statements, id-ascending; elapsed_millis is as of now.
  std::vector<ActiveQuery> Active() const;

  /// Retained completion records, oldest first.
  std::vector<QueryCompletion> Log() const;

  uint64_t started_total() const;
  uint64_t finished_total() const;
  /// Completion records pushed out of the ring.
  uint64_t log_dropped_total() const;

  IntrospectionConfig config() const;
  /// Tests: swap thresholds/sampling/capacity (trims the ring at once).
  void Reconfigure(const IntrospectionConfig& config);

 private:
  friend class QueryGuard;

  struct Entry {
    ActiveQuery info;
    std::chrono::steady_clock::time_point start;
    std::shared_ptr<CancellationToken> token;
  };

  /// Guard died without Finish: close the entry as Internal.
  void Abandon(uint64_t id);
  void FinishLocked(uint64_t id, StatusCode code, int64_t rows,
                    uint64_t peak_budget_bytes, std::string trace_json)
      TELEIOS_REQUIRES(mu_);

  mutable Mutex mu_;
  IntrospectionConfig config_ TELEIOS_GUARDED_BY(mu_);
  uint64_t next_id_ TELEIOS_GUARDED_BY(mu_) = 1;
  uint64_t finished_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t log_dropped_ TELEIOS_GUARDED_BY(mu_) = 0;
  std::map<uint64_t, Entry> active_ TELEIOS_GUARDED_BY(mu_);
  std::deque<QueryCompletion> log_ TELEIOS_GUARDED_BY(mu_);
};

}  // namespace teleios::obs

#endif  // TELEIOS_OBS_QUERY_REGISTRY_H_
