#ifndef TELEIOS_OBS_TRACE_H_
#define TELEIOS_OBS_TRACE_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace teleios::obs {

/// One timed span in a per-request trace tree (value semantics so trees
/// can be stored in results and copied across trace boundaries).
struct SpanNode {
  std::string name;
  double millis = 0;
  /// Offset of this span's start from its trace's root start, in
  /// milliseconds (the root itself is 0). Gives exporters real
  /// timestamps instead of reconstructed ones.
  double start_millis = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<SpanNode> children;

  /// First attribute value under `key`, or "".
  const std::string& Attr(const std::string& key) const;
  /// Depth-first search for a descendant (or this node) named `name`;
  /// nullptr when absent.
  const SpanNode* Find(const std::string& name) const;
  /// Indented one-line-per-span rendering ("name 1.234ms k=v").
  std::string Render() const;
};

/// Activates trace collection on the current thread for its scope. While
/// active, TraceSpan objects append to this trace's span tree. Traces
/// nest: finishing an inner trace attaches its root as a span of the
/// enclosing trace.
class ScopedTrace {
 public:
  explicit ScopedTrace(std::string name);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  /// Stops collection and returns the finished tree; idempotent (the
  /// destructor finishes implicitly if Finish was never called).
  SpanNode Finish();

  /// Opaque collection state; public so TraceSpan can reach it.
  struct Context;

 private:
  Context* ctx_;  // null once finished
  std::chrono::steady_clock::time_point start_;
  SpanNode finished_;
};

/// RAII span: appends itself under the innermost open span of the
/// thread's active trace; a no-op (besides the optional histogram) when
/// no trace is active. Destruction records the elapsed milliseconds and,
/// when `histogram` is given, feeds it the same duration — so one object
/// serves both tracing and latency metrics.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, Histogram* histogram = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a key=value annotation (no-op without an active trace).
  void SetAttr(const std::string& key, std::string value);

  /// Milliseconds since construction.
  double ElapsedMillis() const;

 private:
  SpanNode* node_;  // null when no trace was active at construction
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// True while a ScopedTrace is active on this thread.
bool TraceActive();

}  // namespace teleios::obs

#endif  // TELEIOS_OBS_TRACE_H_
