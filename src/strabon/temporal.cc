#include "strabon/temporal.h"

#include <cstdio>

#include "common/strings.h"

namespace teleios::strabon {

using rdf::Term;

namespace {

constexpr const char* kStrdfNs = "http://strdf.di.uoa.gr/ontology#";

std::string TemporalLocal(const std::string& iri) {
  if (!StrStartsWith(iri, kStrdfNs)) return "";
  return StrLower(iri.substr(std::string(kStrdfNs).size()));
}

bool IsLeap(int64_t y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

const int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

/// Days since 1970-01-01 (proleptic Gregorian; valid for project-era
/// dates).
int64_t DaysFromCivil(int64_t y, int m, int d) {
  int64_t days = 0;
  if (y >= 1970) {
    for (int64_t yy = 1970; yy < y; ++yy) days += IsLeap(yy) ? 366 : 365;
  } else {
    for (int64_t yy = y; yy < 1970; ++yy) days -= IsLeap(yy) ? 366 : 365;
  }
  for (int mm = 1; mm < m; ++mm) {
    days += kDaysInMonth[mm - 1];
    if (mm == 2 && IsLeap(y)) days += 1;
  }
  return days + d - 1;
}

}  // namespace

Result<int64_t> ParseDateTime(const std::string& raw) {
  std::string text(StrTrim(raw));
  // Accept "YYYY-MM-DD" and "YYYY-MM-DDTHH:MM:SS[Z]".
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0;
  int n = std::sscanf(text.c_str(), "%d-%d-%dT%d:%d:%d", &y, &mo, &d, &h,
                      &mi, &s);
  if (n < 3) {
    return Status::ParseError("invalid dateTime '" + text + "'");
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h < 0 || h > 23 || mi < 0 ||
      mi > 59 || s < 0 || s > 60) {
    return Status::ParseError("out-of-range dateTime '" + text + "'");
  }
  return DaysFromCivil(y, mo, d) * 86400 + h * 3600 + mi * 60 + s;
}

std::string FormatDateTime(int64_t seconds) {
  int64_t days = seconds / 86400;
  int64_t rem = seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  int64_t y = 1970;
  while (true) {
    int64_t in_year = IsLeap(y) ? 366 : 365;
    if (days >= in_year) {
      days -= in_year;
      ++y;
    } else if (days < 0) {
      --y;
      days += IsLeap(y) ? 366 : 365;
    } else {
      break;
    }
  }
  int mo = 1;
  while (true) {
    int dim = kDaysInMonth[mo - 1] + ((mo == 2 && IsLeap(y)) ? 1 : 0);
    if (days >= dim) {
      days -= dim;
      ++mo;
    } else {
      break;
    }
  }
  return StrFormat("%04lld-%02d-%02lldT%02lld:%02lld:%02lld",
                   static_cast<long long>(y), mo,
                   static_cast<long long>(days + 1),
                   static_cast<long long>(rem / 3600),
                   static_cast<long long>((rem % 3600) / 60),
                   static_cast<long long>(rem % 60));
}

Result<Period> ParsePeriod(const std::string& raw) {
  std::string text(StrTrim(raw));
  if (text.size() < 2 || text.front() != '[' ||
      (text.back() != ']' && text.back() != ')')) {
    return Status::ParseError("invalid period literal '" + text + "'");
  }
  std::string body = text.substr(1, text.size() - 2);
  std::vector<std::string> parts = StrSplit(body, ',');
  if (parts.size() != 2) {
    return Status::ParseError("period needs two endpoints: '" + text + "'");
  }
  Period p;
  TELEIOS_ASSIGN_OR_RETURN(p.start, ParseDateTime(parts[0]));
  TELEIOS_ASSIGN_OR_RETURN(p.end, ParseDateTime(parts[1]));
  if (p.end < p.start) {
    return Status::InvalidArgument("period ends before it starts: '" + text +
                                   "'");
  }
  return p;
}

rdf::Term PeriodLiteral(int64_t start, int64_t end) {
  return Term::Literal(
      "[" + FormatDateTime(start) + ", " + FormatDateTime(end) + "]",
      rdf::kStrdfPeriod);
}

bool IsTemporalFunction(const std::string& iri) {
  std::string local = TemporalLocal(iri);
  return local == "during" || local == "periodcontains" ||
         local == "before" || local == "after" || local == "overlaps" ||
         local == "meets" || local == "starts" || local == "finishes" ||
         local == "periodequals" || local == "periodintersects";
}

namespace {

Result<Period> ToPeriod(const Term& t) {
  if (!t.IsLiteral()) {
    return Status::TypeError("expected temporal literal, got " +
                             t.ToNTriples());
  }
  if (t.datatype == rdf::kStrdfPeriod) return ParsePeriod(t.lexical);
  // dateTime (or plain) as an instantaneous period.
  TELEIOS_ASSIGN_OR_RETURN(int64_t at, ParseDateTime(t.lexical));
  return Period{at, at};
}

}  // namespace

Result<Term> EvalTemporalFunction(const std::string& iri,
                                  const std::vector<Term>& args) {
  std::string local = TemporalLocal(iri);
  if (args.size() != 2) {
    return Status::InvalidArgument("strdf:" + local + " expects 2 arguments");
  }
  TELEIOS_ASSIGN_OR_RETURN(Period a, ToPeriod(args[0]));
  TELEIOS_ASSIGN_OR_RETURN(Period b, ToPeriod(args[1]));
  bool result;
  if (local == "during") {
    result = a.start >= b.start && a.end <= b.end;
  } else if (local == "periodcontains") {
    result = b.start >= a.start && b.end <= a.end;
  } else if (local == "before") {
    result = a.end < b.start;
  } else if (local == "after") {
    result = a.start > b.end;
  } else if (local == "overlaps") {
    result = a.start <= b.end && b.start <= a.end;
  } else if (local == "meets") {
    result = a.end == b.start;
  } else if (local == "starts") {
    result = a.start == b.start && a.end <= b.end;
  } else if (local == "finishes") {
    result = a.end == b.end && a.start >= b.start;
  } else if (local == "periodequals") {
    result = a.start == b.start && a.end == b.end;
  } else if (local == "periodintersects") {
    result = a.start <= b.end && b.start <= a.end;
  } else {
    return Status::NotFound("unknown temporal function strdf:" + local);
  }
  return Term::BooleanLiteral(result);
}

}  // namespace teleios::strabon
