#include "strabon/sparql_lexer.h"

#include <cctype>

#include "common/strings.h"

namespace teleios::strabon {

Result<std::vector<SparqlToken>> LexSparql(const std::string& input) {
  std::vector<SparqlToken> tokens;
  size_t i = 0;
  size_t n = input.size();
  auto is_pn_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.';
  };
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    SparqlToken tok;
    tok.position = i;
    if (c == '?' || c == '$') {
      ++i;
      std::string name;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        name += input[i++];
      }
      if (name.empty()) {
        return Status::ParseError("empty variable name at offset " +
                                  std::to_string(tok.position));
      }
      tok.type = SparqlTokenType::kVariable;
      tok.text = std::move(name);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '<') {
      // IRIREF only if no spaces before '>' — '<' alone is an operator.
      size_t j = i + 1;
      std::string iri;
      bool ok = false;
      while (j < n) {
        if (input[j] == '>') {
          ok = true;
          break;
        }
        if (std::isspace(static_cast<unsigned char>(input[j]))) break;
        iri += input[j++];
      }
      if (ok) {
        tok.type = SparqlTokenType::kIriRef;
        tok.text = std::move(iri);
        i = j + 1;
        tokens.push_back(std::move(tok));
        continue;
      }
      // fall through as symbol '<' / '<='
    }
    if (c == '_' && i + 1 < n && input[i + 1] == ':') {
      i += 2;
      std::string label;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        label += input[i++];
      }
      tok.type = SparqlTokenType::kBlank;
      tok.text = std::move(label);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\\' && i + 1 < n) {
          char e = input[i + 1];
          i += 2;
          switch (e) {
            case 'n':
              text += '\n';
              break;
            case 't':
              text += '\t';
              break;
            case 'r':
              text += '\r';
              break;
            default:
              text += e;
          }
          continue;
        }
        if (input[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        text += input[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(tok.position));
      }
      tok.type = SparqlTokenType::kString;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      std::string text = input.substr(start, i - start);
      if (is_double) {
        TELEIOS_ASSIGN_OR_RETURN(tok.double_value, ParseDouble(text));
        tok.type = SparqlTokenType::kDouble;
      } else {
        TELEIOS_ASSIGN_OR_RETURN(tok.int_value, ParseInt64(text));
        tok.type = SparqlTokenType::kInteger;
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      // Bare word: keyword, or PNAME if a ':' follows the word.
      size_t j = i;
      std::string word;
      while (j < n && is_pn_char(input[j])) word += input[j++];
      if (j < n && input[j] == ':') {
        // prefixed name prefix:local
        std::string pname = word + ":";
        ++j;
        while (j < n && is_pn_char(input[j])) pname += input[j++];
        // PN_LOCAL may not end with '.'
        while (!pname.empty() && pname.back() == '.') {
          pname.pop_back();
          --j;
        }
        tok.type = SparqlTokenType::kPname;
        tok.text = std::move(pname);
        i = j;
        tokens.push_back(std::move(tok));
        continue;
      }
      // keyword (strip trailing dots that belong to punctuation)
      while (!word.empty() && word.back() == '.') {
        word.pop_back();
        --j;
      }
      tok.type = SparqlTokenType::kKeyword;
      tok.text = std::move(word);
      i = j;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == ':') {
      // :local (empty prefix)
      size_t j = i + 1;
      std::string pname = ":";
      while (j < n && is_pn_char(input[j])) pname += input[j++];
      while (pname.size() > 1 && pname.back() == '.') {
        pname.pop_back();
        --j;
      }
      tok.type = SparqlTokenType::kPname;
      tok.text = std::move(pname);
      i = j;
      tokens.push_back(std::move(tok));
      continue;
    }
    static const char* kTwoChar[] = {"^^", "!=", "<=", ">=", "&&", "||"};
    bool matched = false;
    for (const char* sym : kTwoChar) {
      if (i + 1 < n && input[i] == sym[0] && input[i + 1] == sym[1]) {
        tok.type = SparqlTokenType::kSymbol;
        tok.text = sym;
        i += 2;
        tokens.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingles = "{}().;,=<>!+-*/@";
    if (kSingles.find(c) != std::string::npos) {
      tok.type = SparqlTokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError(StrFormat(
        "unexpected character '%c' at offset %zu in SPARQL", c, i));
  }
  SparqlToken end;
  end.type = SparqlTokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

const SparqlToken& SparqlCursor::Peek(size_t ahead) const {
  size_t idx = pos_ + ahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;
  return tokens_[idx];
}

SparqlToken SparqlCursor::Next() {
  SparqlToken t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool SparqlCursor::PeekKeyword(const std::string& kw) const {
  const SparqlToken& t = Peek();
  return t.type == SparqlTokenType::kKeyword &&
         StrEqualsIgnoreCase(t.text, kw);
}

bool SparqlCursor::AcceptKeyword(const std::string& kw) {
  if (PeekKeyword(kw)) {
    Next();
    return true;
  }
  return false;
}

Status SparqlCursor::ExpectKeyword(const std::string& kw) {
  if (!AcceptKeyword(kw)) return MakeError("expected '" + kw + "'");
  return Status::OK();
}

bool SparqlCursor::PeekSymbol(const std::string& sym) const {
  const SparqlToken& t = Peek();
  return t.type == SparqlTokenType::kSymbol && t.text == sym;
}

bool SparqlCursor::AcceptSymbol(const std::string& sym) {
  if (PeekSymbol(sym)) {
    Next();
    return true;
  }
  return false;
}

Status SparqlCursor::ExpectSymbol(const std::string& sym) {
  if (!AcceptSymbol(sym)) return MakeError("expected '" + sym + "'");
  return Status::OK();
}

Status SparqlCursor::MakeError(const std::string& message) const {
  const SparqlToken& t = Peek();
  std::string got = t.type == SparqlTokenType::kEnd ? "<end>" : t.text;
  return Status::ParseError(message + " but got '" + got +
                            "' at offset " + std::to_string(t.position));
}

}  // namespace teleios::strabon
