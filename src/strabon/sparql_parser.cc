#include "strabon/sparql_parser.h"

#include "common/strings.h"
#include "strabon/sparql_lexer.h"

namespace teleios::strabon {

using rdf::Term;

const std::map<std::string, std::string>& DefaultPrefixes() {
  static const std::map<std::string, std::string>* kPrefixes =
      new std::map<std::string, std::string>{
          {"rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#"},
          {"rdfs", "http://www.w3.org/2000/01/rdf-schema#"},
          {"xsd", "http://www.w3.org/2001/XMLSchema#"},
          {"owl", "http://www.w3.org/2002/07/owl#"},
          {"strdf", "http://strdf.di.uoa.gr/ontology#"},
          {"teleios", "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#"},
          {"noa", "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#"},
          {"geonames", "http://www.geonames.org/ontology#"},
          {"dbpedia", "http://dbpedia.org/resource/"},
          {"lgd", "http://linkedgeodata.org/ontology/"},
      };
  return *kPrefixes;
}

namespace {

class Parser {
 public:
  explicit Parser(SparqlCursor cursor)
      : cur_(std::move(cursor)), prefixes_(DefaultPrefixes()) {}

  Result<SparqlStatement> Parse() {
    TELEIOS_RETURN_IF_ERROR(ParsePrologue());
    if (cur_.PeekKeyword("select") || cur_.PeekKeyword("ask")) {
      TELEIOS_ASSIGN_OR_RETURN(SparqlQuery q, ParseQuery());
      if (!cur_.AtEnd()) return cur_.MakeError("trailing input");
      return SparqlStatement(std::move(q));
    }
    TELEIOS_ASSIGN_OR_RETURN(SparqlUpdate u, ParseUpdate());
    cur_.AcceptSymbol(";");
    if (!cur_.AtEnd()) return cur_.MakeError("trailing input");
    return SparqlStatement(std::move(u));
  }

 private:
  Status ParsePrologue() {
    while (cur_.AcceptKeyword("prefix")) {
      const SparqlToken& t = cur_.Peek();
      if (t.type != SparqlTokenType::kPname) {
        return cur_.MakeError("expected prefix name");
      }
      std::string pname = cur_.Next().text;  // "pfx:" or "pfx:junk"
      size_t colon = pname.find(':');
      std::string name = pname.substr(0, colon);
      if (cur_.Peek().type != SparqlTokenType::kIriRef) {
        return cur_.MakeError("expected IRI after PREFIX");
      }
      prefixes_[name] = cur_.Next().text;
    }
    return Status::OK();
  }

  Result<Term> ResolvePname(const std::string& pname, size_t position) {
    size_t colon = pname.find(':');
    std::string prefix = pname.substr(0, colon);
    std::string local = pname.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Status::ParseError("unknown prefix '" + prefix +
                                ":' at offset " + std::to_string(position));
    }
    return Term::Iri(it->second + local);
  }

  /// Parses a graph term or variable in a triple pattern position.
  Result<PatternNode> ParsePatternNode() {
    const SparqlToken& t = cur_.Peek();
    switch (t.type) {
      case SparqlTokenType::kVariable:
        return PatternNode::Var(cur_.Next().text);
      case SparqlTokenType::kIriRef:
        return PatternNode::Ground(Term::Iri(cur_.Next().text));
      case SparqlTokenType::kPname: {
        SparqlToken tok = cur_.Next();
        TELEIOS_ASSIGN_OR_RETURN(Term term,
                                 ResolvePname(tok.text, tok.position));
        return PatternNode::Ground(std::move(term));
      }
      case SparqlTokenType::kBlank:
        return PatternNode::Ground(Term::Blank(cur_.Next().text));
      case SparqlTokenType::kString: {
        TELEIOS_ASSIGN_OR_RETURN(Term term, ParseLiteralTerm());
        return PatternNode::Ground(std::move(term));
      }
      case SparqlTokenType::kInteger: {
        SparqlToken tok = cur_.Next();
        return PatternNode::Ground(Term::IntegerLiteral(tok.int_value));
      }
      case SparqlTokenType::kDouble: {
        SparqlToken tok = cur_.Next();
        return PatternNode::Ground(Term::DoubleLiteral(tok.double_value));
      }
      case SparqlTokenType::kKeyword: {
        if (cur_.AcceptKeyword("a")) {
          return PatternNode::Ground(Term::Iri(rdf::kRdfType));
        }
        if (cur_.AcceptKeyword("true")) {
          return PatternNode::Ground(Term::BooleanLiteral(true));
        }
        if (cur_.AcceptKeyword("false")) {
          return PatternNode::Ground(Term::BooleanLiteral(false));
        }
        return cur_.MakeError("unexpected keyword in triple pattern");
      }
      case SparqlTokenType::kSymbol:
        if (t.text == "-" || t.text == "+") {
          bool neg = t.text == "-";
          cur_.Next();
          const SparqlToken& num = cur_.Peek();
          if (num.type == SparqlTokenType::kInteger) {
            int64_t value = cur_.Next().int_value;
            return PatternNode::Ground(
                Term::IntegerLiteral(neg ? -value : value));
          }
          if (num.type == SparqlTokenType::kDouble) {
            double value = cur_.Next().double_value;
            return PatternNode::Ground(
                Term::DoubleLiteral(neg ? -value : value));
          }
        }
        return cur_.MakeError("expected term or variable");
      case SparqlTokenType::kEnd:
        return cur_.MakeError("unexpected end of query");
    }
    return cur_.MakeError("expected term or variable");
  }

  /// String literal with optional @lang / ^^datatype.
  Result<Term> ParseLiteralTerm() {
    std::string value = cur_.Next().text;
    if (cur_.AcceptSymbol("@")) {
      if (cur_.Peek().type != SparqlTokenType::kKeyword) {
        return cur_.MakeError("expected language tag");
      }
      return Term::Literal(std::move(value), "", cur_.Next().text);
    }
    if (cur_.AcceptSymbol("^^")) {
      const SparqlToken& dt = cur_.Peek();
      if (dt.type == SparqlTokenType::kIriRef) {
        return Term::Literal(std::move(value), cur_.Next().text);
      }
      if (dt.type == SparqlTokenType::kPname) {
        SparqlToken tok = cur_.Next();
        TELEIOS_ASSIGN_OR_RETURN(Term type,
                                 ResolvePname(tok.text, tok.position));
        return Term::Literal(std::move(value), type.lexical);
      }
      return cur_.MakeError("expected datatype IRI");
    }
    return Term::Literal(std::move(value));
  }

  /// subject predicate-object list '.'
  Status ParseTriplesBlock(std::vector<TriplePatternAst>* out) {
    TELEIOS_ASSIGN_OR_RETURN(PatternNode subject, ParsePatternNode());
    do {
      TELEIOS_ASSIGN_OR_RETURN(PatternNode predicate, ParsePatternNode());
      do {
        TELEIOS_ASSIGN_OR_RETURN(PatternNode object, ParsePatternNode());
        out->push_back({subject, predicate, object});
      } while (cur_.AcceptSymbol(","));
    } while (cur_.AcceptSymbol(";") && !cur_.PeekSymbol(".") &&
             !cur_.PeekSymbol("}"));
    cur_.AcceptSymbol(".");
    return Status::OK();
  }

  // --- expressions ---------------------------------------------------------

  Result<SparqlExprPtr> ParseExpr() { return ParseOr(); }

  Result<SparqlExprPtr> ParseOr() {
    TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr lhs, ParseAnd());
    while (cur_.AcceptSymbol("||")) {
      TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr rhs, ParseAnd());
      lhs = SparqlExpr::Binary(SparqlBinaryOp::kOr, lhs, rhs);
    }
    return lhs;
  }

  Result<SparqlExprPtr> ParseAnd() {
    TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr lhs, ParseCmp());
    while (cur_.AcceptSymbol("&&")) {
      TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr rhs, ParseCmp());
      lhs = SparqlExpr::Binary(SparqlBinaryOp::kAnd, lhs, rhs);
    }
    return lhs;
  }

  Result<SparqlExprPtr> ParseCmp() {
    TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr lhs, ParseAdd());
    SparqlBinaryOp op;
    if (cur_.PeekSymbol("=")) op = SparqlBinaryOp::kEq;
    else if (cur_.PeekSymbol("!=")) op = SparqlBinaryOp::kNe;
    else if (cur_.PeekSymbol("<=")) op = SparqlBinaryOp::kLe;
    else if (cur_.PeekSymbol(">=")) op = SparqlBinaryOp::kGe;
    else if (cur_.PeekSymbol("<")) op = SparqlBinaryOp::kLt;
    else if (cur_.PeekSymbol(">")) op = SparqlBinaryOp::kGt;
    else return lhs;
    cur_.Next();
    TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr rhs, ParseAdd());
    return SparqlExpr::Binary(op, lhs, rhs);
  }

  Result<SparqlExprPtr> ParseAdd() {
    TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr lhs, ParseMul());
    while (true) {
      SparqlBinaryOp op;
      if (cur_.PeekSymbol("+")) op = SparqlBinaryOp::kAdd;
      else if (cur_.PeekSymbol("-")) op = SparqlBinaryOp::kSub;
      else break;
      cur_.Next();
      TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr rhs, ParseMul());
      lhs = SparqlExpr::Binary(op, lhs, rhs);
    }
    return lhs;
  }

  Result<SparqlExprPtr> ParseMul() {
    TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr lhs, ParseUnary());
    while (true) {
      SparqlBinaryOp op;
      if (cur_.PeekSymbol("*")) op = SparqlBinaryOp::kMul;
      else if (cur_.PeekSymbol("/")) op = SparqlBinaryOp::kDiv;
      else break;
      cur_.Next();
      TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr rhs, ParseUnary());
      lhs = SparqlExpr::Binary(op, lhs, rhs);
    }
    return lhs;
  }

  Result<SparqlExprPtr> ParseUnary() {
    if (cur_.AcceptSymbol("!")) {
      TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr inner, ParseUnary());
      return SparqlExpr::Not(inner);
    }
    if (cur_.AcceptSymbol("-")) {
      TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr inner, ParseUnary());
      return SparqlExpr::Neg(inner);
    }
    cur_.AcceptSymbol("+");
    return ParsePrimary();
  }

  Result<SparqlExprPtr> ParsePrimary() {
    const SparqlToken& t = cur_.Peek();
    switch (t.type) {
      case SparqlTokenType::kSymbol:
        if (cur_.AcceptSymbol("(")) {
          TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr e, ParseExpr());
          TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol(")"));
          return e;
        }
        return cur_.MakeError("expected expression");
      case SparqlTokenType::kVariable:
        return SparqlExpr::Var(cur_.Next().text);
      case SparqlTokenType::kString: {
        TELEIOS_ASSIGN_OR_RETURN(Term term, ParseLiteralTerm());
        return SparqlExpr::Constant(std::move(term));
      }
      case SparqlTokenType::kInteger: {
        SparqlToken tok = cur_.Next();
        return SparqlExpr::Constant(Term::IntegerLiteral(tok.int_value));
      }
      case SparqlTokenType::kDouble: {
        SparqlToken tok = cur_.Next();
        return SparqlExpr::Constant(Term::DoubleLiteral(tok.double_value));
      }
      case SparqlTokenType::kIriRef: {
        std::string iri = cur_.Next().text;
        if (cur_.PeekSymbol("(")) return ParseCallArgs(iri);
        return SparqlExpr::Constant(Term::Iri(std::move(iri)));
      }
      case SparqlTokenType::kPname: {
        SparqlToken tok = cur_.Next();
        TELEIOS_ASSIGN_OR_RETURN(Term term,
                                 ResolvePname(tok.text, tok.position));
        if (cur_.PeekSymbol("(")) return ParseCallArgs(term.lexical);
        return SparqlExpr::Constant(std::move(term));
      }
      case SparqlTokenType::kKeyword: {
        SparqlToken tok = cur_.Next();
        std::string name = StrLower(tok.text);
        if (name == "true") return SparqlExpr::Constant(Term::BooleanLiteral(true));
        if (name == "false") {
          return SparqlExpr::Constant(Term::BooleanLiteral(false));
        }
        if (cur_.PeekSymbol("(")) return ParseCallArgs(name);
        return cur_.MakeError("unexpected keyword '" + tok.text +
                              "' in expression");
      }
      case SparqlTokenType::kBlank:
        return SparqlExpr::Constant(Term::Blank(cur_.Next().text));
      case SparqlTokenType::kEnd:
        return cur_.MakeError("unexpected end of expression");
    }
    return cur_.MakeError("expected expression");
  }

  Result<SparqlExprPtr> ParseCallArgs(const std::string& function) {
    TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol("("));
    std::vector<SparqlExprPtr> args;
    if (cur_.AcceptSymbol("*")) {
      // COUNT(*) — zero-argument aggregate.
      TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol(")"));
      return SparqlExpr::Call(function, {});
    }
    if (!cur_.PeekSymbol(")")) {
      do {
        TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr a, ParseExpr());
        args.push_back(std::move(a));
      } while (cur_.AcceptSymbol(","));
    }
    TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol(")"));
    return SparqlExpr::Call(function, std::move(args));
  }

  // --- group graph pattern -------------------------------------------------

  Result<GroupPattern> ParseGroup() {
    TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol("{"));
    GroupPattern group;
    while (!cur_.PeekSymbol("}")) {
      if (cur_.AcceptKeyword("filter")) {
        TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr e, ParsePrimaryOrParen());
        group.filters.push_back(std::move(e));
        continue;
      }
      if (cur_.AcceptKeyword("optional")) {
        TELEIOS_ASSIGN_OR_RETURN(GroupPattern opt, ParseGroup());
        group.optionals.push_back(std::move(opt));
        cur_.AcceptSymbol(".");
        continue;
      }
      if (cur_.AcceptKeyword("bind")) {
        TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol("("));
        TELEIOS_ASSIGN_OR_RETURN(SparqlExprPtr e, ParseExpr());
        TELEIOS_RETURN_IF_ERROR(cur_.ExpectKeyword("as"));
        if (cur_.Peek().type != SparqlTokenType::kVariable) {
          return cur_.MakeError("expected variable after AS");
        }
        std::string var = cur_.Next().text;
        TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol(")"));
        group.binds.push_back({std::move(e), std::move(var)});
        cur_.AcceptSymbol(".");
        continue;
      }
      if (cur_.PeekSymbol("{")) {
        // Nested group, possibly a UNION chain.
        TELEIOS_ASSIGN_OR_RETURN(GroupPattern first, ParseGroup());
        if (cur_.PeekKeyword("union")) {
          auto left = std::make_shared<GroupPattern>(std::move(first));
          while (cur_.AcceptKeyword("union")) {
            TELEIOS_ASSIGN_OR_RETURN(GroupPattern rhs, ParseGroup());
            UnionPattern u;
            u.left = left;
            u.right = std::make_shared<GroupPattern>(std::move(rhs));
            // Chain: (A U B) U C — wrap the existing union into a group.
            if (cur_.PeekKeyword("union")) {
              auto wrapper = std::make_shared<GroupPattern>();
              wrapper->unions.push_back(u);
              left = wrapper;
            } else {
              group.unions.push_back(std::move(u));
            }
          }
        } else {
          // Merge plain nested group.
          for (auto& t : first.triples) group.triples.push_back(std::move(t));
          for (auto& f : first.filters) group.filters.push_back(std::move(f));
          for (auto& o : first.optionals) {
            group.optionals.push_back(std::move(o));
          }
          for (auto& u : first.unions) group.unions.push_back(std::move(u));
          for (auto& b : first.binds) group.binds.push_back(std::move(b));
        }
        cur_.AcceptSymbol(".");
        continue;
      }
      TELEIOS_RETURN_IF_ERROR(ParseTriplesBlock(&group.triples));
    }
    TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol("}"));
    return group;
  }

  /// FILTER argument: either a parenthesized expression or a bare
  /// function call.
  Result<SparqlExprPtr> ParsePrimaryOrParen() { return ParsePrimary(); }

  Result<SparqlQuery> ParseQuery() {
    SparqlQuery q;
    if (cur_.AcceptKeyword("ask")) {
      q.is_ask = true;
      TELEIOS_ASSIGN_OR_RETURN(q.where, ParseGroup());
      return q;
    }
    TELEIOS_RETURN_IF_ERROR(cur_.ExpectKeyword("select"));
    q.distinct = cur_.AcceptKeyword("distinct");
    if (cur_.AcceptSymbol("*")) {
      // all variables
    } else {
      while (true) {
        if (cur_.Peek().type == SparqlTokenType::kVariable) {
          q.variables.push_back(cur_.Next().text);
          continue;
        }
        if (cur_.PeekSymbol("(")) {
          // (expr AS ?name) — aggregates and computed projections.
          cur_.Next();
          SparqlProjection projection;
          TELEIOS_ASSIGN_OR_RETURN(projection.expr, ParseExpr());
          TELEIOS_RETURN_IF_ERROR(cur_.ExpectKeyword("as"));
          if (cur_.Peek().type != SparqlTokenType::kVariable) {
            return cur_.MakeError("expected variable after AS");
          }
          projection.name = cur_.Next().text;
          TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol(")"));
          q.computed.push_back(std::move(projection));
          continue;
        }
        break;
      }
      if (q.variables.empty() && q.computed.empty()) {
        return cur_.MakeError("expected projection variables or *");
      }
    }
    cur_.AcceptKeyword("where");
    TELEIOS_ASSIGN_OR_RETURN(q.where, ParseGroup());
    if (cur_.AcceptKeyword("group")) {
      TELEIOS_RETURN_IF_ERROR(cur_.ExpectKeyword("by"));
      while (cur_.Peek().type == SparqlTokenType::kVariable) {
        q.group_by.push_back(cur_.Next().text);
      }
      if (q.group_by.empty()) {
        return cur_.MakeError("expected variables after GROUP BY");
      }
    }
    if (cur_.AcceptKeyword("order")) {
      TELEIOS_RETURN_IF_ERROR(cur_.ExpectKeyword("by"));
      while (true) {
        SparqlOrderKey key;
        if (cur_.AcceptKeyword("desc")) {
          key.descending = true;
          TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol("("));
          TELEIOS_ASSIGN_OR_RETURN(key.expr, ParseExpr());
          TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol(")"));
        } else if (cur_.AcceptKeyword("asc")) {
          TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol("("));
          TELEIOS_ASSIGN_OR_RETURN(key.expr, ParseExpr());
          TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol(")"));
        } else if (cur_.Peek().type == SparqlTokenType::kVariable) {
          key.expr = SparqlExpr::Var(cur_.Next().text);
        } else {
          break;
        }
        q.order_by.push_back(std::move(key));
        if (cur_.Peek().type != SparqlTokenType::kVariable &&
            !cur_.PeekKeyword("asc") && !cur_.PeekKeyword("desc")) {
          break;
        }
      }
    }
    if (cur_.AcceptKeyword("limit")) {
      if (cur_.Peek().type != SparqlTokenType::kInteger) {
        return cur_.MakeError("expected integer after LIMIT");
      }
      q.limit = cur_.Next().int_value;
    }
    if (cur_.AcceptKeyword("offset")) {
      if (cur_.Peek().type != SparqlTokenType::kInteger) {
        return cur_.MakeError("expected integer after OFFSET");
      }
      q.offset = cur_.Next().int_value;
    }
    return q;
  }

  Result<std::vector<TriplePatternAst>> ParseTemplate() {
    TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol("{"));
    std::vector<TriplePatternAst> triples;
    while (!cur_.PeekSymbol("}")) {
      TELEIOS_RETURN_IF_ERROR(ParseTriplesBlock(&triples));
    }
    TELEIOS_RETURN_IF_ERROR(cur_.ExpectSymbol("}"));
    return triples;
  }

  Result<SparqlUpdate> ParseUpdate() {
    SparqlUpdate u;
    if (cur_.AcceptKeyword("insert")) {
      if (cur_.AcceptKeyword("data")) {
        u.kind = SparqlUpdate::Kind::kInsertData;
        TELEIOS_ASSIGN_OR_RETURN(u.insert_templates, ParseTemplate());
        return u;
      }
      u.kind = SparqlUpdate::Kind::kModify;
      TELEIOS_ASSIGN_OR_RETURN(u.insert_templates, ParseTemplate());
      TELEIOS_RETURN_IF_ERROR(cur_.ExpectKeyword("where"));
      TELEIOS_ASSIGN_OR_RETURN(u.where, ParseGroup());
      return u;
    }
    if (cur_.AcceptKeyword("delete")) {
      if (cur_.AcceptKeyword("data")) {
        u.kind = SparqlUpdate::Kind::kDeleteData;
        TELEIOS_ASSIGN_OR_RETURN(u.delete_templates, ParseTemplate());
        return u;
      }
      if (cur_.AcceptKeyword("where")) {
        u.kind = SparqlUpdate::Kind::kDeleteWhere;
        TELEIOS_ASSIGN_OR_RETURN(u.where, ParseGroup());
        u.delete_templates = u.where.triples;
        return u;
      }
      u.kind = SparqlUpdate::Kind::kModify;
      TELEIOS_ASSIGN_OR_RETURN(u.delete_templates, ParseTemplate());
      if (cur_.AcceptKeyword("insert")) {
        TELEIOS_ASSIGN_OR_RETURN(u.insert_templates, ParseTemplate());
      }
      TELEIOS_RETURN_IF_ERROR(cur_.ExpectKeyword("where"));
      TELEIOS_ASSIGN_OR_RETURN(u.where, ParseGroup());
      return u;
    }
    return cur_.MakeError("expected SELECT, ASK, INSERT or DELETE");
  }

  SparqlCursor cur_;
  std::map<std::string, std::string> prefixes_;
};

}  // namespace

Result<SparqlStatement> ParseSparql(const std::string& query) {
  TELEIOS_ASSIGN_OR_RETURN(std::vector<SparqlToken> tokens, LexSparql(query));
  Parser parser{SparqlCursor(std::move(tokens))};
  return parser.Parse();
}

}  // namespace teleios::strabon
