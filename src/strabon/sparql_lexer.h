#ifndef TELEIOS_STRABON_SPARQL_LEXER_H_
#define TELEIOS_STRABON_SPARQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace teleios::strabon {

enum class SparqlTokenType {
  kKeyword,    // bare word (SELECT, WHERE, FILTER, OPTIONAL, a, true...)
  kVariable,   // ?x or $x (text excludes the sigil)
  kIriRef,     // <...> (text is the IRI)
  kPname,      // prefix:local or prefix: or :local (text as written)
  kString,     // quoted literal body (unescaped)
  kInteger,
  kDouble,
  kSymbol,     // punctuation: { } ( ) . ; , ^^ @ = != < <= > >= && || ! + - * /
  kBlank,      // _:label
  kEnd,
};

struct SparqlToken {
  SparqlTokenType type;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0;
  size_t position = 0;
};

/// Tokenizes a SPARQL / stSPARQL query string. Comments: `# to eol`.
Result<std::vector<SparqlToken>> LexSparql(const std::string& input);

/// Cursor with SPARQL-keyword helpers (case-insensitive keywords).
class SparqlCursor {
 public:
  explicit SparqlCursor(std::vector<SparqlToken> tokens)
      : tokens_(std::move(tokens)) {}

  const SparqlToken& Peek(size_t ahead = 0) const;
  SparqlToken Next();
  bool AtEnd() const { return Peek().type == SparqlTokenType::kEnd; }

  bool PeekKeyword(const std::string& kw) const;
  bool AcceptKeyword(const std::string& kw);
  Status ExpectKeyword(const std::string& kw);
  bool PeekSymbol(const std::string& sym) const;
  bool AcceptSymbol(const std::string& sym);
  Status ExpectSymbol(const std::string& sym);

  Status MakeError(const std::string& message) const;

 private:
  std::vector<SparqlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace teleios::strabon

#endif  // TELEIOS_STRABON_SPARQL_LEXER_H_
