#include "strabon/spatial_functions.h"

#include "common/strings.h"
#include "geo/clip.h"
#include "obs/metrics.h"
#include "geo/crs.h"
#include "geo/predicates.h"
#include "geo/wkt.h"

namespace teleios::strabon {

using geo::Geometry;
using rdf::Term;

namespace {

constexpr const char* kStrdfNs = "http://strdf.di.uoa.gr/ontology#";
/// The forthcoming OGC standard the paper anticipates (§1): GeoSPARQL
/// function namespace, accepted as an alias of the strdf: functions.
constexpr const char* kGeofNs = "http://www.opengis.net/def/function/geosparql/";

/// Local name of a spatial-function IRI, lower-cased and normalized to
/// the strdf vocabulary ("" if the IRI is in neither namespace).
/// GeoSPARQL simple-feature names (sfIntersects, sfWithin, ...) map to
/// their strdf equivalents.
std::string StrdfLocal(const std::string& iri) {
  std::string local;
  if (StrStartsWith(iri, kStrdfNs)) {
    local = StrLower(iri.substr(std::string(kStrdfNs).size()));
  } else if (StrStartsWith(iri, kGeofNs)) {
    local = StrLower(iri.substr(std::string(kGeofNs).size()));
    if (StrStartsWith(local, "sf")) local = local.substr(2);
    if (local == "equals") local = "equals";
  } else {
    return "";
  }
  return local;
}

}  // namespace

Result<const Geometry*> GeometryCache::Get(const Term& term) {
  if (!term.IsLiteral() || (term.datatype != rdf::kStrdfWkt &&
                            !term.datatype.empty())) {
    // Accept plain literals that look like WKT for robustness.
  }
  if (!term.IsLiteral()) {
    return Status::TypeError("expected a WKT literal, got " +
                             term.ToNTriples());
  }
  // FILTER evaluation hits this per candidate binding; cache the counters.
  static auto* hits = obs::MetricsRegistry::Global().GetCounter(
      "teleios_strabon_wkt_cache_hits_total");
  static auto* parses = obs::MetricsRegistry::Global().GetCounter(
      "teleios_strabon_wkt_parses_total");
  auto it = cache_.find(term.lexical);
  if (it != cache_.end()) {
    hits->Inc();
    return &it->second;
  }
  parses->Inc();
  TELEIOS_ASSIGN_OR_RETURN(Geometry g, geo::ParseWkt(term.lexical));
  auto [pos, _] = cache_.emplace(term.lexical, std::move(g));
  return &pos->second;
}

bool IsSpatialFunction(const std::string& iri) {
  return !StrdfLocal(iri).empty();
}

SpatialRelation RelationOf(const std::string& iri) {
  std::string local = StrdfLocal(iri);
  if (local == "intersects" || local == "anyinteract") {
    return SpatialRelation::kIntersects;
  }
  if (local == "contains") return SpatialRelation::kContains;
  if (local == "within" || local == "inside") return SpatialRelation::kWithin;
  if (local == "disjoint") return SpatialRelation::kDisjoint;
  return SpatialRelation::kNone;
}

Result<Term> EvalSpatialFunction(const std::string& iri,
                                 const std::vector<Term>& args,
                                 GeometryCache* cache) {
  std::string local = StrdfLocal(iri);
  if (local.empty()) {
    return Status::NotFound("not an strdf function: " + iri);
  }
  GeometryCache fallback;
  if (cache == nullptr) cache = &fallback;
  auto need = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument("strdf:" + local + " expects " +
                                     std::to_string(n) + " argument(s)");
    }
    return Status::OK();
  };

  // Binary boolean relations.
  SpatialRelation rel = RelationOf(iri);
  if (rel != SpatialRelation::kNone) {
    TELEIOS_RETURN_IF_ERROR(need(2));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* a, cache->Get(args[0]));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* b, cache->Get(args[1]));
    bool result = false;
    switch (rel) {
      case SpatialRelation::kIntersects:
        result = geo::Intersects(*a, *b);
        break;
      case SpatialRelation::kContains:
        result = geo::Contains(*a, *b);
        break;
      case SpatialRelation::kWithin:
        result = geo::Within(*a, *b);
        break;
      case SpatialRelation::kDisjoint:
        result = geo::Disjoint(*a, *b);
        break;
      case SpatialRelation::kNone:
        break;
    }
    return Term::BooleanLiteral(result);
  }
  if (local == "equals") {
    TELEIOS_RETURN_IF_ERROR(need(2));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* a, cache->Get(args[0]));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* b, cache->Get(args[1]));
    return Term::BooleanLiteral(geo::Contains(*a, *b) &&
                                geo::Contains(*b, *a));
  }
  if (local == "distance") {
    TELEIOS_RETURN_IF_ERROR(need(2));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* a, cache->Get(args[0]));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* b, cache->Get(args[1]));
    return Term::DoubleLiteral(geo::Distance(*a, *b));
  }
  if (local == "geodesicdistance") {
    TELEIOS_RETURN_IF_ERROR(need(2));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* a, cache->Get(args[0]));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* b, cache->Get(args[1]));
    return Term::DoubleLiteral(geo::GeodesicDistanceMeters(*a, *b));
  }
  if (local == "area") {
    TELEIOS_RETURN_IF_ERROR(need(1));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* a, cache->Get(args[0]));
    return Term::DoubleLiteral(a->Area());
  }
  if (local == "buffer") {
    TELEIOS_RETURN_IF_ERROR(need(2));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* a, cache->Get(args[0]));
    TELEIOS_ASSIGN_OR_RETURN(double d, ParseDouble(args[1].lexical));
    return Term::WktLiteral(geo::WriteWkt(geo::Buffer(*a, d)));
  }
  if (local == "envelope") {
    TELEIOS_RETURN_IF_ERROR(need(1));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* a, cache->Get(args[0]));
    geo::Envelope e = a->GetEnvelope();
    return Term::WktLiteral(geo::WriteWkt(
        Geometry::MakeBox(e.min_x, e.min_y, e.max_x, e.max_y)));
  }
  if (local == "centroid") {
    TELEIOS_RETURN_IF_ERROR(need(1));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* a, cache->Get(args[0]));
    geo::Point c = a->Centroid();
    return Term::WktLiteral(geo::WriteWkt(Geometry::MakePoint(c.x, c.y)));
  }
  if (local == "union" || local == "intersection" || local == "difference") {
    TELEIOS_RETURN_IF_ERROR(need(2));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* a, cache->Get(args[0]));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* b, cache->Get(args[1]));
    geo::BooleanOp op = local == "union"
                            ? geo::BooleanOp::kUnion
                            : (local == "intersection"
                                   ? geo::BooleanOp::kIntersection
                                   : geo::BooleanOp::kDifference);
    TELEIOS_ASSIGN_OR_RETURN(Geometry result, geo::PolygonBoolean(*a, *b, op));
    return Term::WktLiteral(geo::WriteWkt(result));
  }
  if (local == "convexhull") {
    TELEIOS_RETURN_IF_ERROR(need(1));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* a, cache->Get(args[0]));
    return Term::WktLiteral(geo::WriteWkt(geo::ConvexHull(*a)));
  }
  if (local == "isempty") {
    TELEIOS_RETURN_IF_ERROR(need(1));
    TELEIOS_ASSIGN_OR_RETURN(const Geometry* a, cache->Get(args[0]));
    return Term::BooleanLiteral(a->IsEmpty());
  }
  return Status::NotFound("unknown strdf function strdf:" + local);
}

}  // namespace teleios::strabon
