#ifndef TELEIOS_STRABON_SPARQL_EVAL_H_
#define TELEIOS_STRABON_SPARQL_EVAL_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "rdf/triple_store.h"
#include "storage/table.h"
#include "strabon/spatial_functions.h"
#include "strabon/sparql_algebra.h"

namespace teleios::strabon {

/// A set of SPARQL solutions: named variables, rows of term ids
/// (rdf::kNoTerm = unbound).
struct SolutionSet {
  std::vector<std::string> vars;
  std::vector<std::vector<rdf::TermId>> rows;

  int VarIndex(const std::string& name) const;
  /// Adds a variable column (unbound in existing rows); returns its index.
  int AddVar(const std::string& name);

  /// Pretty table: one VARCHAR column per variable, IRIs/literals printed
  /// without angle brackets or quotes.
  storage::Table ToTable(const rdf::TermDictionary& dict) const;
};

/// Per-variable candidate restriction (from the spatial index): a pattern
/// binding a restricted variable only keeps rows whose binding is in the
/// set.
using CandidateSets =
    std::unordered_map<std::string, std::unordered_set<rdf::TermId>>;

/// Evaluates group graph patterns against a triple store.
class SparqlEvaluator {
 public:
  /// `store` and `geometry_cache` must outlive the evaluator;
  /// `candidates` may be null.
  SparqlEvaluator(const rdf::TripleStore* store, GeometryCache* geometry_cache,
                  const CandidateSets* candidates = nullptr)
      : store_(store), cache_(geometry_cache), candidates_(candidates) {}

  Result<SolutionSet> EvalGroup(const GroupPattern& group);

  /// Evaluates an expression for row `row` of `solutions`. Unbound
  /// variables and type mismatches produce an error Status (which FILTER
  /// treats as false, per SPARQL semantics).
  Result<rdf::Term> EvalExpr(const SparqlExprPtr& expr,
                             const SolutionSet& solutions, size_t row);

  /// SPARQL effective boolean value of a term.
  static Result<bool> EffectiveBooleanValue(const rdf::Term& term);

  /// Total order over terms for ORDER BY / comparisons: numeric literals
  /// by value, dateTimes chronologically, strings lexically, IRIs/blanks
  /// by lexical form. Returns <0, 0, >0.
  static int CompareTerms(const rdf::Term& a, const rdf::Term& b);

 private:
  Result<SolutionSet> EvalBasicGraphPattern(
      const std::vector<TriplePatternAst>& triples);
  Result<SolutionSet> Join(const SolutionSet& left, const SolutionSet& right,
                           bool left_outer);
  Status ApplyFilter(const SparqlExprPtr& filter, SolutionSet* solutions);

  const rdf::TripleStore* store_;
  GeometryCache* cache_;
  const CandidateSets* candidates_;
};

}  // namespace teleios::strabon

#endif  // TELEIOS_STRABON_SPARQL_EVAL_H_
