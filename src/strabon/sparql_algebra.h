#ifndef TELEIOS_STRABON_SPARQL_ALGEBRA_H_
#define TELEIOS_STRABON_SPARQL_ALGEBRA_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"
#include "storage/table.h"

namespace teleios::strabon {

/// A position in a triple pattern: variable or ground term.
struct PatternNode {
  bool is_var = false;
  std::string var;  // without '?'
  rdf::Term term;

  static PatternNode Var(std::string name);
  static PatternNode Ground(rdf::Term term);
};

struct TriplePatternAst {
  PatternNode s, p, o;
};

// ---------------------------------------------------------------------------
// Expressions (FILTER / BIND / SELECT expressions)

enum class SparqlExprKind { kVar, kTerm, kUnary, kBinary, kCall };

enum class SparqlBinaryOp {
  kOr,
  kAnd,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

struct SparqlExpr;
using SparqlExprPtr = std::shared_ptr<const SparqlExpr>;

struct SparqlExpr {
  SparqlExprKind kind;
  std::string var;                     // kVar
  rdf::Term term;                      // kTerm
  bool negate = false;                 // kUnary: '!'; else unary minus
  SparqlBinaryOp op = SparqlBinaryOp::kAnd;  // kBinary
  std::string function;                // kCall: full IRI or builtin name
  std::vector<SparqlExprPtr> args;

  static SparqlExprPtr Var(std::string name);
  static SparqlExprPtr Constant(rdf::Term term);
  static SparqlExprPtr Not(SparqlExprPtr inner);
  static SparqlExprPtr Neg(SparqlExprPtr inner);
  static SparqlExprPtr Binary(SparqlBinaryOp op, SparqlExprPtr lhs,
                              SparqlExprPtr rhs);
  static SparqlExprPtr Call(std::string function,
                            std::vector<SparqlExprPtr> args);
};

// ---------------------------------------------------------------------------
// Group graph patterns

struct GroupPattern;

struct UnionPattern {
  std::shared_ptr<GroupPattern> left;
  std::shared_ptr<GroupPattern> right;
};

struct BindClause {
  SparqlExprPtr expr;
  std::string var;
};

/// A { ... } group: basic graph pattern + filters + optionals + unions +
/// binds, evaluated in order (triples, unions, optionals, binds, filters).
struct GroupPattern {
  std::vector<TriplePatternAst> triples;
  std::vector<SparqlExprPtr> filters;
  std::vector<GroupPattern> optionals;
  std::vector<UnionPattern> unions;
  std::vector<BindClause> binds;
};

struct SparqlOrderKey {
  SparqlExprPtr expr;
  bool descending = false;
};

/// A computed projection `(expr AS ?name)`; aggregates (count/sum/avg/
/// min/max) are kCall nodes with those bare function names.
struct SparqlProjection {
  SparqlExprPtr expr;
  std::string name;
};

/// SELECT or ASK query.
struct SparqlQuery {
  bool is_ask = false;
  bool distinct = false;
  std::vector<std::string> variables;  // plain ?var projections; empty + no
                                       // computed = *
  std::vector<SparqlProjection> computed;  // (expr AS ?v) projections
  std::vector<std::string> group_by;       // GROUP BY variables
  GroupPattern where;
  std::vector<SparqlOrderKey> order_by;
  int64_t limit = -1;
  int64_t offset = 0;
};

/// True when `expr` is an aggregate function call (count/sum/avg/min/max
/// by bare name).
bool IsAggregateCall(const SparqlExprPtr& expr);

/// stSPARQL update forms.
struct SparqlUpdate {
  enum class Kind { kInsertData, kDeleteData, kModify, kDeleteWhere };
  Kind kind = Kind::kInsertData;
  std::vector<TriplePatternAst> delete_templates;
  std::vector<TriplePatternAst> insert_templates;
  GroupPattern where;  // kModify / kDeleteWhere
};

using SparqlStatement = std::variant<SparqlQuery, SparqlUpdate>;

}  // namespace teleios::strabon

#endif  // TELEIOS_STRABON_SPARQL_ALGEBRA_H_
