#ifndef TELEIOS_STRABON_STRABON_H_
#define TELEIOS_STRABON_STRABON_H_

#include <map>
#include <string>

#include "common/status.h"
#include "geo/rtree.h"
#include "rdf/triple_store.h"
#include "rdf/turtle.h"
#include "storage/table.h"
#include "strabon/sparql_eval.h"
#include "strabon/sparql_parser.h"

namespace teleios::strabon {

/// The semantic geospatial database system of the TELEIOS database tier:
/// an stRDF store queryable and updatable with stSPARQL, with an R-tree
/// over all strdf:WKT literals accelerating spatial FILTER selections.
class Strabon {
 public:
  Strabon() = default;

  rdf::TripleStore& store() { return store_; }
  const rdf::TripleStore& store() const { return store_; }

  /// Loads Turtle text; returns triples added.
  Result<size_t> LoadTurtle(const std::string& text);
  Result<size_t> LoadTurtleFile(const std::string& path);

  /// Adds one triple directly.
  void Add(const rdf::Term& s, const rdf::Term& p, const rdf::Term& o);

  /// Executes a SELECT/ASK, returning the solutions.
  Result<SolutionSet> Select(const std::string& sparql);

  /// Executes a SELECT/ASK, returning a printable table (ASK yields a
  /// single boolean-ish row).
  Result<storage::Table> Query(const std::string& sparql);

  /// Executes ASK.
  Result<bool> Ask(const std::string& sparql);

  /// Executes an update (INSERT DATA / DELETE DATA / DELETE-INSERT-WHERE
  /// / DELETE WHERE); returns triples added + removed.
  Result<size_t> Update(const std::string& sparql);

  /// Spatial index control (on by default). Disabling it forces full-scan
  /// spatial filters — the baseline in the E9 benchmark.
  void set_spatial_index_enabled(bool enabled) {
    spatial_index_enabled_ = enabled;
  }
  bool spatial_index_enabled() const { return spatial_index_enabled_; }

  /// Number of geometry literals currently indexed.
  size_t indexed_geometries() const { return indexed_count_; }

  size_t size() const { return store_.size(); }

  /// Serializes the store as Turtle with the default prefixes.
  std::string ToTurtle() const;

  /// Writes ToTurtle() to a file.
  Status SaveTurtleFile(const std::string& path) const;

 private:
  Result<SolutionSet> RunQuery(const SparqlQuery& query);
  Result<size_t> RunUpdate(const SparqlUpdate& update);

  /// Builds per-variable candidate sets from spatial filters, using the
  /// R-tree (conservative: candidate sets over-approximate, never prune a
  /// true answer).
  Result<CandidateSets> SpatialCandidates(const GroupPattern& where);

  void EnsureSpatialIndex();

  rdf::TripleStore store_;
  GeometryCache cache_;
  bool spatial_index_enabled_ = true;

  geo::RTree rtree_;
  bool rtree_valid_ = false;
  size_t rtree_built_at_size_ = 0;
  size_t indexed_count_ = 0;
};

}  // namespace teleios::strabon

#endif  // TELEIOS_STRABON_STRABON_H_
