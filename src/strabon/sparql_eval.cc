#include "strabon/sparql_eval.h"

#include <algorithm>
#include <cmath>
#include <regex>

#include "common/strings.h"
#include "strabon/temporal.h"

namespace teleios::strabon {

using rdf::kNoTerm;
using rdf::Term;
using rdf::TermId;
using rdf::TriplePattern;

int SolutionSet::VarIndex(const std::string& name) const {
  for (size_t i = 0; i < vars.size(); ++i) {
    if (vars[i] == name) return static_cast<int>(i);
  }
  return -1;
}

int SolutionSet::AddVar(const std::string& name) {
  int idx = VarIndex(name);
  if (idx >= 0) return idx;
  vars.push_back(name);
  for (auto& row : rows) row.push_back(kNoTerm);
  return static_cast<int>(vars.size() - 1);
}

storage::Table SolutionSet::ToTable(const rdf::TermDictionary& dict) const {
  std::vector<storage::Field> fields;
  for (const std::string& v : vars) {
    fields.push_back({v, storage::ColumnType::kString});
  }
  storage::Table out{storage::Schema(std::move(fields))};
  for (const auto& row : rows) {
    for (size_t c = 0; c < vars.size(); ++c) {
      if (row[c] == kNoTerm) {
        out.column(c).AppendNull();
      } else {
        out.column(c).AppendString(dict.At(row[c]).lexical);
      }
    }
  }
  return out;
}

namespace {

bool IsNumericLiteral(const Term& t) {
  return t.IsLiteral() &&
         (t.datatype == rdf::kXsdInteger || t.datatype == rdf::kXsdDouble);
}

Result<double> NumericValue(const Term& t) {
  if (!t.IsLiteral()) {
    return Status::TypeError("not a literal: " + t.ToNTriples());
  }
  return ParseDouble(t.lexical);
}

bool IsDateTime(const Term& t) {
  return t.IsLiteral() && t.datatype == rdf::kXsdDateTime;
}

}  // namespace

Result<bool> SparqlEvaluator::EffectiveBooleanValue(const Term& term) {
  if (!term.IsLiteral()) {
    return Status::TypeError("EBV of non-literal");
  }
  if (term.datatype == rdf::kXsdBoolean) return term.lexical == "true";
  if (IsNumericLiteral(term)) {
    TELEIOS_ASSIGN_OR_RETURN(double v, NumericValue(term));
    return v != 0.0;
  }
  if (term.datatype.empty()) return !term.lexical.empty();
  return Status::TypeError("EBV of typed literal " + term.ToNTriples());
}

int SparqlEvaluator::CompareTerms(const Term& a, const Term& b) {
  if (IsNumericLiteral(a) && IsNumericLiteral(b)) {
    double x = NumericValue(a).value_or(0);
    double y = NumericValue(b).value_or(0);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (IsDateTime(a) && IsDateTime(b)) {
    auto x = ParseDateTime(a.lexical);
    auto y = ParseDateTime(b.lexical);
    if (x.ok() && y.ok()) {
      return *x < *y ? -1 : (*x > *y ? 1 : 0);
    }
  }
  // Kind order: blanks < IRIs < literals (SPARQL's ordering), then
  // lexical.
  auto rank = [](const Term& t) {
    switch (t.kind) {
      case rdf::TermKind::kBlank:
        return 0;
      case rdf::TermKind::kIri:
        return 1;
      case rdf::TermKind::kLiteral:
        return 2;
    }
    return 3;
  };
  if (rank(a) != rank(b)) return rank(a) < rank(b) ? -1 : 1;
  int c = a.lexical.compare(b.lexical);
  if (c != 0) return c < 0 ? -1 : 1;
  c = a.datatype.compare(b.datatype);
  if (c != 0) return c < 0 ? -1 : 1;
  c = a.lang.compare(b.lang);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

Result<SolutionSet> SparqlEvaluator::EvalBasicGraphPattern(
    const std::vector<TriplePatternAst>& triples) {
  SolutionSet solutions;
  solutions.rows.push_back({});  // the empty solution

  // Greedy pattern order: most ground positions first, then patterns
  // sharing variables with what is already bound.
  std::vector<const TriplePatternAst*> remaining;
  for (const auto& t : triples) remaining.push_back(&t);
  std::unordered_set<std::string> bound_vars;

  auto ground_count = [](const TriplePatternAst& t) {
    return (t.s.is_var ? 0 : 1) + (t.p.is_var ? 0 : 1) +
           (t.o.is_var ? 0 : 1);
  };
  auto shares_var = [&](const TriplePatternAst& t) {
    return (t.s.is_var && bound_vars.count(t.s.var)) ||
           (t.p.is_var && bound_vars.count(t.p.var)) ||
           (t.o.is_var && bound_vars.count(t.o.var));
  };

  while (!remaining.empty()) {
    // Pick the best pattern.
    size_t best = 0;
    int best_score = -1;
    for (size_t i = 0; i < remaining.size(); ++i) {
      int score = ground_count(*remaining[i]) * 2 +
                  (shares_var(*remaining[i]) ? 3 : 0);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    const TriplePatternAst& pat = *remaining[best];
    remaining.erase(remaining.begin() + static_cast<long>(best));

    // Resolve ground terms once; unknown ground term -> no matches.
    auto resolve = [&](const PatternNode& n) -> std::optional<TermId> {
      if (n.is_var) return std::nullopt;
      TermId id = store_->dict().Lookup(n.term);
      return id;  // kNoTerm if unknown
    };
    std::optional<TermId> gs = resolve(pat.s);
    std::optional<TermId> gp = resolve(pat.p);
    std::optional<TermId> go = resolve(pat.o);
    bool impossible = (gs && *gs == kNoTerm) || (gp && *gp == kNoTerm) ||
                      (go && *go == kNoTerm);

    // Ensure variable columns exist.
    int si = pat.s.is_var ? solutions.AddVar(pat.s.var) : -1;
    int pi = pat.p.is_var ? solutions.AddVar(pat.p.var) : -1;
    int oi = pat.o.is_var ? solutions.AddVar(pat.o.var) : -1;
    if (pat.s.is_var) bound_vars.insert(pat.s.var);
    if (pat.p.is_var) bound_vars.insert(pat.p.var);
    if (pat.o.is_var) bound_vars.insert(pat.o.var);

    const std::unordered_set<TermId>* s_cands = nullptr;
    const std::unordered_set<TermId>* p_cands = nullptr;
    const std::unordered_set<TermId>* o_cands = nullptr;
    if (candidates_) {
      auto find = [&](const PatternNode& n)
          -> const std::unordered_set<TermId>* {
        if (!n.is_var) return nullptr;
        auto it = candidates_->find(n.var);
        return it == candidates_->end() ? nullptr : &it->second;
      };
      s_cands = find(pat.s);
      p_cands = find(pat.p);
      o_cands = find(pat.o);
    }

    std::vector<std::vector<TermId>> next_rows;
    if (!impossible) {
      for (const auto& row : solutions.rows) {
        TriplePattern query;
        if (gs) query.s = *gs;
        else if (row[si] != kNoTerm) query.s = row[si];
        if (gp) query.p = *gp;
        else if (row[pi] != kNoTerm) query.p = row[pi];
        if (go) query.o = *go;
        else if (row[oi] != kNoTerm) query.o = row[oi];

        for (const rdf::Triple& t : store_->Match(query)) {
          // Repeated-variable consistency (e.g. ?x ?p ?x).
          if (si >= 0 && pi >= 0 && pat.s.var == pat.p.var && t.s != t.p) {
            continue;
          }
          if (si >= 0 && oi >= 0 && pat.s.var == pat.o.var && t.s != t.o) {
            continue;
          }
          if (pi >= 0 && oi >= 0 && pat.p.var == pat.o.var && t.p != t.o) {
            continue;
          }
          if (s_cands && !s_cands->count(t.s)) continue;
          if (p_cands && !p_cands->count(t.p)) continue;
          if (o_cands && !o_cands->count(t.o)) continue;
          std::vector<TermId> extended = row;
          if (si >= 0) extended[si] = t.s;
          if (pi >= 0) extended[pi] = t.p;
          if (oi >= 0) extended[oi] = t.o;
          next_rows.push_back(std::move(extended));
        }
      }
    }
    solutions.rows = std::move(next_rows);
    if (solutions.rows.empty()) break;
  }
  return solutions;
}

Result<SolutionSet> SparqlEvaluator::Join(const SolutionSet& left,
                                          const SolutionSet& right,
                                          bool left_outer) {
  // Shared variables.
  std::vector<std::pair<int, int>> shared;
  for (size_t i = 0; i < left.vars.size(); ++i) {
    int j = right.VarIndex(left.vars[i]);
    if (j >= 0) shared.emplace_back(static_cast<int>(i), j);
  }
  SolutionSet out;
  out.vars = left.vars;
  std::vector<int> right_extra;  // right columns not in left
  for (size_t j = 0; j < right.vars.size(); ++j) {
    if (left.VarIndex(right.vars[j]) < 0) {
      right_extra.push_back(static_cast<int>(j));
      out.vars.push_back(right.vars[j]);
    }
  }
  // Hash the right side on shared vars.
  std::unordered_map<std::string, std::vector<size_t>> index;
  auto key_of_right = [&](size_t r) {
    std::string key;
    for (const auto& [li, rj] : shared) {
      key += std::to_string(right.rows[r][rj]) + "|";
    }
    return key;
  };
  for (size_t r = 0; r < right.rows.size(); ++r) {
    index[key_of_right(r)].push_back(r);
  }
  auto key_of_left = [&](size_t r) {
    std::string key;
    for (const auto& [li, rj] : shared) {
      key += std::to_string(left.rows[r][li]) + "|";
    }
    return key;
  };
  for (size_t r = 0; r < left.rows.size(); ++r) {
    const std::vector<size_t>* matches = nullptr;
    auto it = index.find(key_of_left(r));
    if (it != index.end()) matches = &it->second;
    bool any = false;
    if (matches) {
      for (size_t rr : *matches) {
        // Compatibility also requires unbound-side handling; with
        // kNoTerm encoded in the key this is exact-match semantics,
        // which suffices for our pattern shapes.
        std::vector<TermId> row = left.rows[r];
        for (int j : right_extra) row.push_back(right.rows[rr][j]);
        out.rows.push_back(std::move(row));
        any = true;
      }
    }
    if (!any && left_outer) {
      std::vector<TermId> row = left.rows[r];
      row.resize(out.vars.size(), kNoTerm);
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

Status SparqlEvaluator::ApplyFilter(const SparqlExprPtr& filter,
                                    SolutionSet* solutions) {
  std::vector<std::vector<TermId>> kept;
  for (size_t r = 0; r < solutions->rows.size(); ++r) {
    auto value = EvalExpr(filter, *solutions, r);
    if (!value.ok()) continue;  // evaluation error -> row dropped
    auto ebv = EffectiveBooleanValue(*value);
    if (ebv.ok() && *ebv) kept.push_back(solutions->rows[r]);
  }
  solutions->rows = std::move(kept);
  return Status::OK();
}

Result<SolutionSet> SparqlEvaluator::EvalGroup(const GroupPattern& group) {
  TELEIOS_ASSIGN_OR_RETURN(SolutionSet solutions,
                           EvalBasicGraphPattern(group.triples));
  for (const UnionPattern& u : group.unions) {
    TELEIOS_ASSIGN_OR_RETURN(SolutionSet lhs, EvalGroup(*u.left));
    TELEIOS_ASSIGN_OR_RETURN(SolutionSet rhs, EvalGroup(*u.right));
    // Union: same solution space; concatenate aligning variables.
    SolutionSet merged;
    merged.vars = lhs.vars;
    for (const std::string& v : rhs.vars) merged.AddVar(v);
    for (const auto& row : lhs.rows) {
      std::vector<TermId> r = row;
      r.resize(merged.vars.size(), kNoTerm);
      merged.rows.push_back(std::move(r));
    }
    for (const auto& row : rhs.rows) {
      std::vector<TermId> r(merged.vars.size(), kNoTerm);
      for (size_t j = 0; j < rhs.vars.size(); ++j) {
        r[static_cast<size_t>(merged.VarIndex(rhs.vars[j]))] = row[j];
      }
      merged.rows.push_back(std::move(r));
    }
    TELEIOS_ASSIGN_OR_RETURN(solutions, Join(solutions, merged, false));
  }
  for (const GroupPattern& opt : group.optionals) {
    TELEIOS_ASSIGN_OR_RETURN(SolutionSet rhs, EvalGroup(opt));
    TELEIOS_ASSIGN_OR_RETURN(solutions, Join(solutions, rhs, true));
  }
  for (const BindClause& bind : group.binds) {
    int col = solutions.AddVar(bind.var);
    for (size_t r = 0; r < solutions.rows.size(); ++r) {
      auto value = EvalExpr(bind.expr, solutions, r);
      if (value.ok()) {
        TermId id = const_cast<rdf::TripleStore*>(store_)->dict().Intern(
            *value);
        solutions.rows[r][col] = id;
      }
    }
  }
  for (const SparqlExprPtr& filter : group.filters) {
    TELEIOS_RETURN_IF_ERROR(ApplyFilter(filter, &solutions));
  }
  return solutions;
}

Result<Term> SparqlEvaluator::EvalExpr(const SparqlExprPtr& expr,
                                       const SolutionSet& solutions,
                                       size_t row) {
  switch (expr->kind) {
    case SparqlExprKind::kTerm:
      return expr->term;
    case SparqlExprKind::kVar: {
      int idx = solutions.VarIndex(expr->var);
      if (idx < 0 || solutions.rows[row][idx] == kNoTerm) {
        return Status::NotFound("unbound variable ?" + expr->var);
      }
      return store_->dict().At(solutions.rows[row][idx]);
    }
    case SparqlExprKind::kUnary: {
      if (expr->negate) {
        auto v = EvalExpr(expr->args[0], solutions, row);
        if (!v.ok()) return v.status();
        TELEIOS_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(*v));
        return Term::BooleanLiteral(!b);
      }
      TELEIOS_ASSIGN_OR_RETURN(Term v, EvalExpr(expr->args[0], solutions, row));
      TELEIOS_ASSIGN_OR_RETURN(double x, NumericValue(v));
      return Term::DoubleLiteral(-x);
    }
    case SparqlExprKind::kBinary: {
      if (expr->op == SparqlBinaryOp::kAnd || expr->op == SparqlBinaryOp::kOr) {
        auto lhs = EvalExpr(expr->args[0], solutions, row);
        bool lv = false;
        bool l_ok = lhs.ok();
        if (l_ok) {
          auto b = EffectiveBooleanValue(*lhs);
          l_ok = b.ok();
          if (b.ok()) lv = *b;
        }
        if (expr->op == SparqlBinaryOp::kAnd && l_ok && !lv) {
          return Term::BooleanLiteral(false);
        }
        if (expr->op == SparqlBinaryOp::kOr && l_ok && lv) {
          return Term::BooleanLiteral(true);
        }
        auto rhs = EvalExpr(expr->args[1], solutions, row);
        bool rv = false;
        bool r_ok = rhs.ok();
        if (r_ok) {
          auto b = EffectiveBooleanValue(*rhs);
          r_ok = b.ok();
          if (b.ok()) rv = *b;
        }
        if (!l_ok && !r_ok) return Status::TypeError("boolean error");
        if (expr->op == SparqlBinaryOp::kAnd) {
          if (!l_ok || !r_ok) {
            // error && true -> error; error && false -> false
            if ((l_ok && !lv) || (r_ok && !rv)) {
              return Term::BooleanLiteral(false);
            }
            return Status::TypeError("boolean error");
          }
          return Term::BooleanLiteral(lv && rv);
        }
        if (!l_ok || !r_ok) {
          if ((l_ok && lv) || (r_ok && rv)) return Term::BooleanLiteral(true);
          return Status::TypeError("boolean error");
        }
        return Term::BooleanLiteral(lv || rv);
      }
      TELEIOS_ASSIGN_OR_RETURN(Term lhs,
                               EvalExpr(expr->args[0], solutions, row));
      TELEIOS_ASSIGN_OR_RETURN(Term rhs,
                               EvalExpr(expr->args[1], solutions, row));
      switch (expr->op) {
        case SparqlBinaryOp::kEq:
          return Term::BooleanLiteral(CompareTerms(lhs, rhs) == 0);
        case SparqlBinaryOp::kNe:
          return Term::BooleanLiteral(CompareTerms(lhs, rhs) != 0);
        case SparqlBinaryOp::kLt:
          return Term::BooleanLiteral(CompareTerms(lhs, rhs) < 0);
        case SparqlBinaryOp::kLe:
          return Term::BooleanLiteral(CompareTerms(lhs, rhs) <= 0);
        case SparqlBinaryOp::kGt:
          return Term::BooleanLiteral(CompareTerms(lhs, rhs) > 0);
        case SparqlBinaryOp::kGe:
          return Term::BooleanLiteral(CompareTerms(lhs, rhs) >= 0);
        default: {
          TELEIOS_ASSIGN_OR_RETURN(double x, NumericValue(lhs));
          TELEIOS_ASSIGN_OR_RETURN(double y, NumericValue(rhs));
          bool both_int = lhs.datatype == rdf::kXsdInteger &&
                          rhs.datatype == rdf::kXsdInteger;
          double r = 0;
          switch (expr->op) {
            case SparqlBinaryOp::kAdd:
              r = x + y;
              break;
            case SparqlBinaryOp::kSub:
              r = x - y;
              break;
            case SparqlBinaryOp::kMul:
              r = x * y;
              break;
            case SparqlBinaryOp::kDiv:
              if (y == 0) return Status::InvalidArgument("division by zero");
              r = x / y;
              both_int = false;
              break;
            default:
              return Status::Internal("bad binary op");
          }
          if (both_int) {
            return Term::IntegerLiteral(static_cast<int64_t>(r));
          }
          return Term::DoubleLiteral(r);
        }
      }
    }
    case SparqlExprKind::kCall: {
      const std::string& fn = expr->function;
      // BOUND takes a variable, not a value.
      if (StrEqualsIgnoreCase(fn, "bound")) {
        if (expr->args.size() != 1 ||
            expr->args[0]->kind != SparqlExprKind::kVar) {
          return Status::InvalidArgument("BOUND expects a variable");
        }
        int idx = solutions.VarIndex(expr->args[0]->var);
        bool bound = idx >= 0 && solutions.rows[row][idx] != kNoTerm;
        return Term::BooleanLiteral(bound);
      }
      std::vector<Term> args;
      args.reserve(expr->args.size());
      for (const SparqlExprPtr& a : expr->args) {
        TELEIOS_ASSIGN_OR_RETURN(Term v, EvalExpr(a, solutions, row));
        args.push_back(std::move(v));
      }
      if (IsTemporalFunction(fn)) return EvalTemporalFunction(fn, args);
      if (IsSpatialFunction(fn)) return EvalSpatialFunction(fn, args, cache_);
      // Builtins by lower-cased bare name.
      std::string name = StrLower(fn);
      auto need = [&](size_t n) -> Status {
        if (args.size() != n) {
          return Status::InvalidArgument(name + " expects " +
                                         std::to_string(n) + " argument(s)");
        }
        return Status::OK();
      };
      if (name == "str") {
        TELEIOS_RETURN_IF_ERROR(need(1));
        return Term::Literal(args[0].lexical);
      }
      if (name == "lang") {
        TELEIOS_RETURN_IF_ERROR(need(1));
        return Term::Literal(args[0].lang);
      }
      if (name == "datatype") {
        TELEIOS_RETURN_IF_ERROR(need(1));
        return Term::Iri(args[0].datatype.empty()
                             ? "http://www.w3.org/2001/XMLSchema#string"
                             : args[0].datatype);
      }
      if (name == "isiri" || name == "isuri") {
        TELEIOS_RETURN_IF_ERROR(need(1));
        return Term::BooleanLiteral(args[0].IsIri());
      }
      if (name == "isliteral") {
        TELEIOS_RETURN_IF_ERROR(need(1));
        return Term::BooleanLiteral(args[0].IsLiteral());
      }
      if (name == "isblank") {
        TELEIOS_RETURN_IF_ERROR(need(1));
        return Term::BooleanLiteral(args[0].IsBlank());
      }
      if (name == "regex") {
        if (args.size() < 2) {
          return Status::InvalidArgument("REGEX expects 2-3 arguments");
        }
        auto flags = std::regex::ECMAScript;
        if (args.size() == 3 &&
            args[2].lexical.find('i') != std::string::npos) {
          flags |= std::regex::icase;
        }
        std::regex re(args[1].lexical, flags);
        return Term::BooleanLiteral(std::regex_search(args[0].lexical, re));
      }
      if (name == "contains") {
        TELEIOS_RETURN_IF_ERROR(need(2));
        return Term::BooleanLiteral(args[0].lexical.find(args[1].lexical) !=
                                    std::string::npos);
      }
      if (name == "strstarts") {
        TELEIOS_RETURN_IF_ERROR(need(2));
        return Term::BooleanLiteral(
            StrStartsWith(args[0].lexical, args[1].lexical));
      }
      if (name == "strends") {
        TELEIOS_RETURN_IF_ERROR(need(2));
        return Term::BooleanLiteral(
            StrEndsWith(args[0].lexical, args[1].lexical));
      }
      if (name == "strlen") {
        TELEIOS_RETURN_IF_ERROR(need(1));
        return Term::IntegerLiteral(
            static_cast<int64_t>(args[0].lexical.size()));
      }
      if (name == "concat") {
        std::string out;
        for (const Term& a : args) out += a.lexical;
        return Term::Literal(std::move(out));
      }
      if (name == "abs") {
        TELEIOS_RETURN_IF_ERROR(need(1));
        TELEIOS_ASSIGN_OR_RETURN(double x, NumericValue(args[0]));
        return Term::DoubleLiteral(std::fabs(x));
      }
      if (name == "floor" || name == "ceil" || name == "round") {
        TELEIOS_RETURN_IF_ERROR(need(1));
        TELEIOS_ASSIGN_OR_RETURN(double x, NumericValue(args[0]));
        double r = name == "floor" ? std::floor(x)
                                   : (name == "ceil" ? std::ceil(x)
                                                     : std::round(x));
        return Term::IntegerLiteral(static_cast<int64_t>(r));
      }
      return Status::NotFound("unknown function '" + fn + "'");
    }
  }
  return Status::Internal("bad SPARQL expression kind");
}

}  // namespace teleios::strabon
