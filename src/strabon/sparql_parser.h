#ifndef TELEIOS_STRABON_SPARQL_PARSER_H_
#define TELEIOS_STRABON_SPARQL_PARSER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "strabon/sparql_algebra.h"

namespace teleios::strabon {

/// Prefixes preloaded into every query (rdf, rdfs, xsd, strdf, plus the
/// TELEIOS application vocabularies); PREFIX declarations override them.
const std::map<std::string, std::string>& DefaultPrefixes();

/// Parses a SPARQL 1.1 subset with the stSPARQL extensions:
/// SELECT/ASK with BGPs, FILTER (incl. strdf: spatial/temporal function
/// calls), OPTIONAL, UNION, BIND, ORDER BY, LIMIT/OFFSET, DISTINCT;
/// updates INSERT DATA / DELETE DATA / DELETE-INSERT-WHERE / DELETE WHERE.
Result<SparqlStatement> ParseSparql(const std::string& query);

}  // namespace teleios::strabon

#endif  // TELEIOS_STRABON_SPARQL_PARSER_H_
