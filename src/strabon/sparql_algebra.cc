#include "strabon/sparql_algebra.h"

#include "common/strings.h"

namespace teleios::strabon {

bool IsAggregateCall(const SparqlExprPtr& expr) {
  if (!expr || expr->kind != SparqlExprKind::kCall) return false;
  std::string name = StrLower(expr->function);
  return name == "count" || name == "sum" || name == "avg" ||
         name == "min" || name == "max";
}

PatternNode PatternNode::Var(std::string name) {
  PatternNode n;
  n.is_var = true;
  n.var = std::move(name);
  return n;
}

PatternNode PatternNode::Ground(rdf::Term term) {
  PatternNode n;
  n.is_var = false;
  n.term = std::move(term);
  return n;
}

SparqlExprPtr SparqlExpr::Var(std::string name) {
  auto e = std::make_shared<SparqlExpr>();
  e->kind = SparqlExprKind::kVar;
  e->var = std::move(name);
  return e;
}

SparqlExprPtr SparqlExpr::Constant(rdf::Term term) {
  auto e = std::make_shared<SparqlExpr>();
  e->kind = SparqlExprKind::kTerm;
  e->term = std::move(term);
  return e;
}

SparqlExprPtr SparqlExpr::Not(SparqlExprPtr inner) {
  auto e = std::make_shared<SparqlExpr>();
  e->kind = SparqlExprKind::kUnary;
  e->negate = true;
  e->args.push_back(std::move(inner));
  return e;
}

SparqlExprPtr SparqlExpr::Neg(SparqlExprPtr inner) {
  auto e = std::make_shared<SparqlExpr>();
  e->kind = SparqlExprKind::kUnary;
  e->negate = false;
  e->args.push_back(std::move(inner));
  return e;
}

SparqlExprPtr SparqlExpr::Binary(SparqlBinaryOp op, SparqlExprPtr lhs,
                                 SparqlExprPtr rhs) {
  auto e = std::make_shared<SparqlExpr>();
  e->kind = SparqlExprKind::kBinary;
  e->op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

SparqlExprPtr SparqlExpr::Call(std::string function,
                               std::vector<SparqlExprPtr> args) {
  auto e = std::make_shared<SparqlExpr>();
  e->kind = SparqlExprKind::kCall;
  e->function = std::move(function);
  e->args = std::move(args);
  return e;
}

}  // namespace teleios::strabon
