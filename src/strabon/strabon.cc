#include "strabon/strabon.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/strings.h"
#include "geo/wkt.h"
#include "io/filesystem.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace teleios::strabon {

using rdf::kNoTerm;
using rdf::Term;
using rdf::TermId;
using rdf::Triple;

Result<size_t> Strabon::LoadTurtle(const std::string& text) {
  rtree_valid_ = false;
  return rdf::ParseTurtle(text, &store_);
}

Result<size_t> Strabon::LoadTurtleFile(const std::string& path) {
  TELEIOS_ASSIGN_OR_RETURN(std::string text,
                           io::GetFileSystem()->ReadFile(path));
  return LoadTurtle(text);
}

void Strabon::Add(const Term& s, const Term& p, const Term& o) {
  store_.Add(s, p, o);
  rtree_valid_ = false;
  static auto* added = obs::MetricsRegistry::Global().GetCounter(
      "teleios_strabon_triples_added_total");
  added->Inc();
}

void Strabon::EnsureSpatialIndex() {
  if (rtree_valid_ &&
      rtree_built_at_size_ == static_cast<size_t>(store_.dict().size())) {
    return;
  }
  obs::TraceSpan span("rtree.build",
                      obs::MetricsRegistry::Global().GetHistogram(
                          "teleios_strabon_index_build_millis"));
  obs::Count("teleios_strabon_index_builds_total");
  std::vector<geo::RTree::Entry> entries;
  int32_t n = store_.dict().size();
  for (int32_t id = 0; id < n; ++id) {
    const Term& t = store_.dict().At(id);
    if (!t.IsWkt()) continue;
    auto g = cache_.Get(t);
    if (!g.ok()) continue;  // malformed WKT literals are simply not indexed
    entries.push_back({(*g)->GetEnvelope(), id});
  }
  indexed_count_ = entries.size();
  obs::SetGauge("teleios_strabon_indexed_geometries",
                static_cast<double>(indexed_count_));
  rtree_ = geo::RTree();
  rtree_.BulkLoad(std::move(entries));
  rtree_valid_ = true;
  rtree_built_at_size_ = static_cast<size_t>(n);
}

namespace {

/// Recognizes `strdf:rel(?v, CONST-WKT)` / `strdf:rel(CONST-WKT, ?v)`;
/// fills var + envelope on success.
bool MatchSpatialRelFilter(const SparqlExprPtr& e, GeometryCache* cache,
                           std::string* var, geo::Envelope* box) {
  if (e->kind != SparqlExprKind::kCall || RelationOf(e->function) ==
                                              SpatialRelation::kNone) {
    return false;
  }
  if (RelationOf(e->function) == SpatialRelation::kDisjoint) return false;
  if (e->args.size() != 2) return false;
  const SparqlExprPtr* var_arg = nullptr;
  const SparqlExprPtr* const_arg = nullptr;
  if (e->args[0]->kind == SparqlExprKind::kVar &&
      e->args[1]->kind == SparqlExprKind::kTerm) {
    var_arg = &e->args[0];
    const_arg = &e->args[1];
  } else if (e->args[1]->kind == SparqlExprKind::kVar &&
             e->args[0]->kind == SparqlExprKind::kTerm) {
    var_arg = &e->args[1];
    const_arg = &e->args[0];
  } else {
    return false;
  }
  auto g = cache->Get((*const_arg)->term);
  if (!g.ok()) return false;
  *var = (*var_arg)->var;
  *box = (*g)->GetEnvelope();
  return true;
}

/// Recognizes `strdf:distance(?v, CONST) <= d` (and geodesicDistance /
/// strict <). Returns the search envelope grown appropriately.
bool MatchDistanceFilter(const SparqlExprPtr& e, GeometryCache* cache,
                         std::string* var, geo::Envelope* box) {
  if (e->kind != SparqlExprKind::kBinary ||
      (e->op != SparqlBinaryOp::kLe && e->op != SparqlBinaryOp::kLt)) {
    return false;
  }
  const SparqlExprPtr& call = e->args[0];
  const SparqlExprPtr& bound = e->args[1];
  if (call->kind != SparqlExprKind::kCall || bound->kind !=
                                                 SparqlExprKind::kTerm) {
    return false;
  }
  bool geodesic = call->function ==
                  "http://strdf.di.uoa.gr/ontology#geodesicDistance";
  bool planar = call->function == "http://strdf.di.uoa.gr/ontology#distance";
  if (!geodesic && !planar) return false;
  if (call->args.size() != 2) return false;
  const SparqlExprPtr* var_arg = nullptr;
  const SparqlExprPtr* const_arg = nullptr;
  if (call->args[0]->kind == SparqlExprKind::kVar &&
      call->args[1]->kind == SparqlExprKind::kTerm) {
    var_arg = &call->args[0];
    const_arg = &call->args[1];
  } else if (call->args[1]->kind == SparqlExprKind::kVar &&
             call->args[0]->kind == SparqlExprKind::kTerm) {
    var_arg = &call->args[1];
    const_arg = &call->args[0];
  } else {
    return false;
  }
  auto g = cache->Get((*const_arg)->term);
  if (!g.ok()) return false;
  auto d = ParseDouble(bound->term.lexical);
  if (!d.ok()) return false;
  double margin = *d;
  if (geodesic) {
    // Convert meters to a conservative degree margin. The smallest
    // meters-per-degree at the envelope's max |latitude| bounds the
    // needed margin; clamp cos to keep the margin finite near the poles.
    geo::Envelope env = (*g)->GetEnvelope();
    double max_abs_lat =
        std::min(89.0, std::max(std::fabs(env.min_y), std::fabs(env.max_y)) +
                           *d / 111320.0);
    double cos_lat = std::max(0.05, std::cos(max_abs_lat * M_PI / 180.0));
    margin = *d / (111320.0 * cos_lat);
  }
  geo::Envelope env = (*g)->GetEnvelope();
  env.min_x -= margin;
  env.min_y -= margin;
  env.max_x += margin;
  env.max_y += margin;
  *var = (*var_arg)->var;
  *box = env;
  return true;
}

}  // namespace

Result<CandidateSets> Strabon::SpatialCandidates(const GroupPattern& where) {
  CandidateSets sets;
  if (!spatial_index_enabled_) return sets;
  for (const SparqlExprPtr& f : where.filters) {
    std::string var;
    geo::Envelope box;
    bool matched = MatchSpatialRelFilter(f, &cache_, &var, &box) ||
                   MatchDistanceFilter(f, &cache_, &var, &box);
    if (!matched) continue;
    EnsureSpatialIndex();
    obs::Count("teleios_strabon_rtree_probes_total");
    std::unordered_set<TermId> ids;
    for (int64_t id : rtree_.Query(box)) {
      ids.insert(static_cast<TermId>(id));
    }
    auto it = sets.find(var);
    if (it == sets.end()) {
      sets.emplace(var, std::move(ids));
    } else {
      // Intersect with the existing restriction.
      std::unordered_set<TermId> merged;
      for (TermId id : ids) {
        if (it->second.count(id)) merged.insert(id);
      }
      it->second = std::move(merged);
    }
  }
  return sets;
}

namespace {

bool ContainsAggregateExpr(const SparqlExprPtr& e) {
  if (!e) return false;
  if (IsAggregateCall(e)) return true;
  for (const SparqlExprPtr& a : e->args) {
    if (ContainsAggregateExpr(a)) return true;
  }
  return false;
}

}  // namespace

/// GROUP BY + aggregate projection over a solution set.
static Result<SolutionSet> AggregateSolutions(
    const SparqlQuery& query, const SolutionSet& solutions,
    SparqlEvaluator* eval, rdf::TermDictionary* dict) {
  // Plain projected variables must be grouping variables.
  for (const std::string& v : query.variables) {
    if (std::find(query.group_by.begin(), query.group_by.end(), v) ==
        query.group_by.end()) {
      return Status::InvalidArgument("variable ?" + v +
                                     " must appear in GROUP BY");
    }
  }
  std::vector<int> group_cols;
  for (const std::string& g : query.group_by) {
    group_cols.push_back(solutions.VarIndex(g));
  }
  // Group rows (a single global group when GROUP BY is absent).
  std::unordered_map<std::string, std::vector<size_t>> groups;
  std::vector<std::string> order;
  for (size_t r = 0; r < solutions.rows.size(); ++r) {
    std::string key;
    for (int c : group_cols) {
      key += std::to_string(c < 0 ? kNoTerm : solutions.rows[r][c]) + "|";
    }
    auto it = groups.find(key);
    if (it == groups.end()) {
      groups.emplace(key, std::vector<size_t>{r});
      order.push_back(key);
    } else {
      it->second.push_back(r);
    }
  }
  if (groups.empty() && query.group_by.empty()) {
    groups.emplace("", std::vector<size_t>{});
    order.push_back("");
  }

  SolutionSet out;
  out.vars = query.variables;
  for (const SparqlProjection& p : query.computed) out.vars.push_back(p.name);

  for (const std::string& key : order) {
    const std::vector<size_t>& members = groups.at(key);
    std::vector<TermId> row;
    for (const std::string& v : query.variables) {
      int idx = solutions.VarIndex(v);
      row.push_back(idx < 0 || members.empty() ? kNoTerm
                                               : solutions.rows[members[0]][idx]);
    }
    for (const SparqlProjection& p : query.computed) {
      Term value;
      if (IsAggregateCall(p.expr)) {
        std::string fn = p.expr->function;
        for (char& ch : fn) ch = static_cast<char>(std::tolower(ch));
        if (fn == "count") {
          int64_t n = 0;
          if (p.expr->args.empty()) {
            n = static_cast<int64_t>(members.size());
          } else {
            for (size_t r : members) {
              if (eval->EvalExpr(p.expr->args[0], solutions, r).ok()) ++n;
            }
          }
          value = Term::IntegerLiteral(n);
        } else if (fn == "sum" || fn == "avg") {
          if (p.expr->args.size() != 1) {
            return Status::InvalidArgument(fn + " expects one argument");
          }
          double sum = 0;
          int64_t n = 0;
          for (size_t r : members) {
            auto v = eval->EvalExpr(p.expr->args[0], solutions, r);
            if (!v.ok()) continue;
            auto d = ParseDouble(v->lexical);
            if (!d.ok()) continue;
            sum += *d;
            ++n;
          }
          if (fn == "avg" && n > 0) sum /= static_cast<double>(n);
          value = Term::DoubleLiteral(sum);
        } else {  // min / max
          if (p.expr->args.size() != 1) {
            return Status::InvalidArgument(fn + " expects one argument");
          }
          bool seen = false;
          Term best;
          for (size_t r : members) {
            auto v = eval->EvalExpr(p.expr->args[0], solutions, r);
            if (!v.ok()) continue;
            if (!seen) {
              best = *v;
              seen = true;
              continue;
            }
            int c = SparqlEvaluator::CompareTerms(*v, best);
            if ((fn == "min" && c < 0) || (fn == "max" && c > 0)) best = *v;
          }
          if (!seen) {
            row.push_back(kNoTerm);
            continue;
          }
          value = best;
        }
      } else {
        // Non-aggregate computed projection: evaluate on the group's
        // first member (its value is constant over the group when it
        // only uses grouping variables).
        if (members.empty()) {
          row.push_back(kNoTerm);
          continue;
        }
        auto v = eval->EvalExpr(p.expr, solutions, members[0]);
        if (!v.ok()) {
          row.push_back(kNoTerm);
          continue;
        }
        value = *v;
      }
      row.push_back(dict->Intern(value));
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<SolutionSet> Strabon::RunQuery(const SparqlQuery& query) {
  CandidateSets candidates;
  {
    obs::TraceSpan plan_span("plan");
    TELEIOS_ASSIGN_OR_RETURN(candidates, SpatialCandidates(query.where));
    plan_span.SetAttr("spatially_restricted_vars",
                      std::to_string(candidates.size()));
  }
  obs::TraceSpan exec_span("execute");
  SparqlEvaluator eval(&store_, &cache_,
                       candidates.empty() ? nullptr : &candidates);
  SolutionSet solutions;
  {
    obs::TraceSpan match_span("match");
    TELEIOS_ASSIGN_OR_RETURN(solutions, eval.EvalGroup(query.where));
    match_span.SetAttr("solutions", std::to_string(solutions.rows.size()));
  }

  if (query.is_ask) return solutions;

  // Aggregation / computed projections.
  bool has_aggregate = !query.group_by.empty();
  for (const SparqlProjection& p : query.computed) {
    if (ContainsAggregateExpr(p.expr)) has_aggregate = true;
  }
  bool already_projected = false;
  if (has_aggregate) {
    obs::TraceSpan agg_span("aggregate");
    TELEIOS_ASSIGN_OR_RETURN(
        solutions,
        AggregateSolutions(query, solutions, &eval, &store_.dict()));
    agg_span.SetAttr("groups", std::to_string(solutions.rows.size()));
    already_projected = true;
  } else if (!query.computed.empty()) {
    // Row-wise computed projections (BIND-like).
    for (const SparqlProjection& p : query.computed) {
      int col = solutions.AddVar(p.name);
      for (size_t r = 0; r < solutions.rows.size(); ++r) {
        auto v = eval.EvalExpr(p.expr, solutions, r);
        if (v.ok()) solutions.rows[r][col] = store_.dict().Intern(*v);
      }
    }
  }

  // ORDER BY.
  if (!query.order_by.empty()) {
    obs::TraceSpan sort_span("sort");
    std::vector<size_t> order(solutions.rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    // Pre-evaluate keys.
    std::vector<std::vector<Term>> keys(solutions.rows.size());
    for (size_t r = 0; r < solutions.rows.size(); ++r) {
      for (const SparqlOrderKey& k : query.order_by) {
        auto v = eval.EvalExpr(k.expr, solutions, r);
        keys[r].push_back(v.ok() ? *v : Term());
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < query.order_by.size(); ++k) {
        int c = SparqlEvaluator::CompareTerms(keys[a][k], keys[b][k]);
        if (c != 0) return query.order_by[k].descending ? c > 0 : c < 0;
      }
      return false;
    });
    std::vector<std::vector<TermId>> sorted;
    sorted.reserve(order.size());
    for (size_t i : order) sorted.push_back(std::move(solutions.rows[i]));
    solutions.rows = std::move(sorted);
  }

  // Projection (aggregation above already projects).
  if (!already_projected &&
      (!query.variables.empty() || !query.computed.empty())) {
    SolutionSet projected;
    projected.vars = query.variables;
    for (const SparqlProjection& p : query.computed) {
      projected.vars.push_back(p.name);
    }
    std::vector<int> idx;
    for (const std::string& v : projected.vars) {
      idx.push_back(solutions.VarIndex(v));
    }
    for (const auto& row : solutions.rows) {
      std::vector<TermId> r;
      r.reserve(idx.size());
      for (int i : idx) r.push_back(i < 0 ? kNoTerm : row[i]);
      projected.rows.push_back(std::move(r));
    }
    solutions = std::move(projected);
  }

  if (query.distinct) {
    std::unordered_set<std::string> seen;
    std::vector<std::vector<TermId>> unique;
    for (auto& row : solutions.rows) {
      std::string key;
      for (TermId id : row) key += std::to_string(id) + "|";
      if (seen.insert(key).second) unique.push_back(std::move(row));
    }
    solutions.rows = std::move(unique);
  }

  // OFFSET / LIMIT.
  if (query.offset > 0 || query.limit >= 0) {
    size_t begin = std::min(static_cast<size_t>(query.offset),
                            solutions.rows.size());
    size_t end = solutions.rows.size();
    if (query.limit >= 0) {
      end = std::min(end, begin + static_cast<size_t>(query.limit));
    }
    std::vector<std::vector<TermId>> window(
        solutions.rows.begin() + static_cast<long>(begin),
        solutions.rows.begin() + static_cast<long>(end));
    solutions.rows = std::move(window);
  }
  return solutions;
}

Result<SolutionSet> Strabon::Select(const std::string& sparql) {
  SparqlStatement stmt;
  {
    obs::TraceSpan parse_span("parse");
    TELEIOS_ASSIGN_OR_RETURN(stmt, ParseSparql(sparql));
  }
  const auto* query = std::get_if<SparqlQuery>(&stmt);
  if (query == nullptr) {
    return Status::InvalidArgument("expected a SELECT/ASK query");
  }
  return RunQuery(*query);
}

Result<storage::Table> Strabon::Query(const std::string& sparql) {
  obs::Count("teleios_strabon_queries_total");
  obs::TraceSpan query_span("sparql.query",
                            obs::MetricsRegistry::Global().GetHistogram(
                                "teleios_strabon_query_millis"));
  Result<SolutionSet> solutions = Select(sparql);
  if (!solutions.ok()) {
    obs::Count(obs::WithLabel("teleios_strabon_errors_total", "code",
                              StatusCodeName(solutions.status().code())));
    return solutions.status();
  }
  obs::Count("teleios_strabon_result_rows_total", solutions->rows.size());
  return solutions->ToTable(store_.dict());
}

Result<bool> Strabon::Ask(const std::string& sparql) {
  TELEIOS_ASSIGN_OR_RETURN(SolutionSet solutions, Select(sparql));
  return !solutions.rows.empty();
}

namespace {

/// Instantiates a template triple for one solution; false when a variable
/// is unbound (the instantiation is skipped, per SPARQL Update).
bool Instantiate(const TriplePatternAst& tmpl, const SolutionSet& solutions,
                 size_t row, rdf::TripleStore* store, Triple* out) {
  auto resolve = [&](const PatternNode& n, TermId* id) {
    if (!n.is_var) {
      *id = store->dict().Intern(n.term);
      return true;
    }
    int idx = solutions.VarIndex(n.var);
    if (idx < 0 || solutions.rows[row][idx] == kNoTerm) return false;
    *id = solutions.rows[row][idx];
    return true;
  };
  return resolve(tmpl.s, &out->s) && resolve(tmpl.p, &out->p) &&
         resolve(tmpl.o, &out->o);
}

}  // namespace

Result<size_t> Strabon::RunUpdate(const SparqlUpdate& update) {
  rtree_valid_ = false;
  size_t affected = 0;
  switch (update.kind) {
    case SparqlUpdate::Kind::kInsertData: {
      for (const TriplePatternAst& t : update.insert_templates) {
        if (t.s.is_var || t.p.is_var || t.o.is_var) {
          return Status::InvalidArgument(
              "INSERT DATA requires ground triples");
        }
        store_.Add(t.s.term, t.p.term, t.o.term);
        ++affected;
      }
      return affected;
    }
    case SparqlUpdate::Kind::kDeleteData: {
      for (const TriplePatternAst& t : update.delete_templates) {
        if (t.s.is_var || t.p.is_var || t.o.is_var) {
          return Status::InvalidArgument(
              "DELETE DATA requires ground triples");
        }
        rdf::TriplePattern pat;
        TermId s = store_.dict().Lookup(t.s.term);
        TermId p = store_.dict().Lookup(t.p.term);
        TermId o = store_.dict().Lookup(t.o.term);
        if (s == kNoTerm || p == kNoTerm || o == kNoTerm) continue;
        pat.s = s;
        pat.p = p;
        pat.o = o;
        affected += store_.Remove(pat);
      }
      return affected;
    }
    case SparqlUpdate::Kind::kModify:
    case SparqlUpdate::Kind::kDeleteWhere: {
      TELEIOS_ASSIGN_OR_RETURN(CandidateSets candidates,
                               SpatialCandidates(update.where));
      SparqlEvaluator eval(&store_, &cache_,
                           candidates.empty() ? nullptr : &candidates);
      TELEIOS_ASSIGN_OR_RETURN(SolutionSet solutions,
                               eval.EvalGroup(update.where));
      std::vector<Triple> to_delete;
      std::vector<Triple> to_insert;
      for (size_t r = 0; r < solutions.rows.size(); ++r) {
        for (const TriplePatternAst& t : update.delete_templates) {
          Triple triple;
          if (Instantiate(t, solutions, r, &store_, &triple)) {
            to_delete.push_back(triple);
          }
        }
        for (const TriplePatternAst& t : update.insert_templates) {
          Triple triple;
          if (Instantiate(t, solutions, r, &store_, &triple)) {
            to_insert.push_back(triple);
          }
        }
      }
      for (const Triple& t : to_delete) {
        rdf::TriplePattern pat;
        pat.s = t.s;
        pat.p = t.p;
        pat.o = t.o;
        affected += store_.Remove(pat);
      }
      for (const Triple& t : to_insert) {
        store_.AddEncoded(t);
        ++affected;
      }
      return affected;
    }
  }
  return Status::Internal("unhandled update kind");
}

Result<size_t> Strabon::Update(const std::string& sparql) {
  obs::Count("teleios_strabon_updates_total");
  SparqlStatement stmt;
  {
    obs::TraceSpan parse_span("parse");
    TELEIOS_ASSIGN_OR_RETURN(stmt, ParseSparql(sparql));
  }
  const auto* update = std::get_if<SparqlUpdate>(&stmt);
  if (update == nullptr) {
    return Status::InvalidArgument("expected an update statement");
  }
  obs::TraceSpan exec_span("execute");
  Result<size_t> affected = RunUpdate(*update);
  if (!affected.ok()) {
    obs::Count(obs::WithLabel("teleios_strabon_errors_total", "code",
                              StatusCodeName(affected.status().code())));
  }
  return affected;
}

std::string Strabon::ToTurtle() const {
  return rdf::WriteTurtle(store_, DefaultPrefixes());
}

Status Strabon::SaveTurtleFile(const std::string& path) const {
  return io::GetFileSystem()->WriteFileAtomic(path, ToTurtle());
}

}  // namespace teleios::strabon
