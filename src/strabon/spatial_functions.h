#ifndef TELEIOS_STRABON_SPATIAL_FUNCTIONS_H_
#define TELEIOS_STRABON_SPATIAL_FUNCTIONS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "geo/geometry.h"
#include "rdf/term.h"

namespace teleios::strabon {

/// Parsed-WKT cache: stSPARQL FILTERs evaluate the same geometry literals
/// for every candidate binding; parsing each WKT once is the difference
/// between O(n) and O(n * |wkt|) filter evaluation.
class GeometryCache {
 public:
  /// Parses (or fetches) the geometry of a strdf:WKT literal.
  Result<const geo::Geometry*> Get(const rdf::Term& term);

  size_t size() const { return cache_.size(); }

 private:
  std::unordered_map<std::string, geo::Geometry> cache_;
};

/// True if `iri` is an stSPARQL spatial function (strdf: namespace).
bool IsSpatialFunction(const std::string& iri);

/// Kind of spatial relation a function tests, for index acceleration.
enum class SpatialRelation {
  kNone,        // not a boolean relation (distance, area, constructors)
  kIntersects,  // intersects / anyInteract
  kContains,
  kWithin,
  kDisjoint,
};

SpatialRelation RelationOf(const std::string& iri);

/// Evaluates an strdf: function over ground terms. Boolean relations
/// return xsd:boolean literals; constructive ops (buffer, union,
/// intersection, difference, envelope, centroid) return strdf:WKT
/// literals; metrics (distance, geodesicDistance, area) return
/// xsd:double.
Result<rdf::Term> EvalSpatialFunction(const std::string& iri,
                                      const std::vector<rdf::Term>& args,
                                      GeometryCache* cache);

}  // namespace teleios::strabon

#endif  // TELEIOS_STRABON_SPATIAL_FUNCTIONS_H_
