#ifndef TELEIOS_STRABON_TEMPORAL_H_
#define TELEIOS_STRABON_TEMPORAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace teleios::strabon {

/// A closed time interval [start, end] in seconds since epoch — the value
/// space of strdf:period literals ("[2007-08-25T00:00:00,
/// 2007-08-26T00:00:00]").
struct Period {
  int64_t start = 0;
  int64_t end = 0;
};

/// Parses an ISO-8601 datetime ("2007-08-25T14:30:00", date-only allowed)
/// to seconds since the Unix epoch (UTC, proleptic Gregorian).
Result<int64_t> ParseDateTime(const std::string& text);

/// Renders seconds since epoch as ISO-8601.
std::string FormatDateTime(int64_t seconds);

/// Parses a strdf:period literal body "[start, end]".
Result<Period> ParsePeriod(const std::string& text);

/// Builds a strdf:period literal term.
rdf::Term PeriodLiteral(int64_t start, int64_t end);

/// True if `iri` is an stSPARQL temporal (Allen) function.
bool IsTemporalFunction(const std::string& iri);

/// Evaluates strdf temporal functions: during, contains (period),
/// before, after, overlaps, meets, starts, finishes, equals,
/// periodIntersects. Arguments are strdf:period literals (or
/// xsd:dateTime, treated as instantaneous periods).
Result<rdf::Term> EvalTemporalFunction(const std::string& iri,
                                       const std::vector<rdf::Term>& args);

}  // namespace teleios::strabon

#endif  // TELEIOS_STRABON_TEMPORAL_H_
