#include "geo/clip.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "geo/predicates.h"

namespace teleios::geo {

namespace {

constexpr double kAlphaEps = 1e-9;

/// Greiner–Hormann vertex node; lists are circular and doubly linked.
struct Node {
  Point p;
  Node* next = nullptr;
  Node* prev = nullptr;
  bool intersect = false;
  bool entry = false;
  Node* neighbour = nullptr;
  double alpha = 0.0;
  bool processed = false;
};

/// Owns all nodes; pointers stay valid (deque storage).
class NodePool {
 public:
  Node* New(const Point& p) {
    nodes_.push_back(Node{});
    nodes_.back().p = p;
    return &nodes_.back();
  }

 private:
  std::deque<Node> nodes_;
};

Node* BuildList(const Ring& ring, NodePool* pool) {
  Node* first = nullptr;
  Node* prev = nullptr;
  for (const Point& p : ring) {
    Node* n = pool->New(p);
    if (!first) {
      first = n;
    } else {
      prev->next = n;
      n->prev = prev;
    }
    prev = n;
  }
  prev->next = first;
  first->prev = prev;
  return first;
}

/// Parametric segment intersection; true for a proper interior-interior
/// crossing, setting alphas in (0,1). Sets `degenerate` when an endpoint
/// lies (nearly) on the other segment or the segments are collinear.
bool EdgeIntersection(const Point& p1, const Point& p2, const Point& q1,
                      const Point& q2, double* alpha_p, double* alpha_q,
                      bool* degenerate) {
  double rx = p2.x - p1.x;
  double ry = p2.y - p1.y;
  double sx = q2.x - q1.x;
  double sy = q2.y - q1.y;
  double denom = rx * sy - ry * sx;
  double qpx = q1.x - p1.x;
  double qpy = q1.y - p1.y;
  if (std::fabs(denom) < 1e-18) {
    // Parallel; collinear overlap is degenerate.
    if (std::fabs(qpx * ry - qpy * rx) < 1e-12) {
      // Check any actual overlap via projections.
      double len2 = rx * rx + ry * ry;
      if (len2 > 0) {
        double t0 = (qpx * rx + qpy * ry) / len2;
        double t1 = ((q2.x - p1.x) * rx + (q2.y - p1.y) * ry) / len2;
        if (std::max(std::min(t0, t1), 0.0) <=
            std::min(std::max(t0, t1), 1.0) + kAlphaEps) {
          *degenerate = true;
        }
      }
    }
    return false;
  }
  double t = (qpx * sy - qpy * sx) / denom;
  double u = (qpx * ry - qpy * rx) / denom;
  if (t < -kAlphaEps || t > 1 + kAlphaEps || u < -kAlphaEps ||
      u > 1 + kAlphaEps) {
    return false;  // outside both segments
  }
  if (t < kAlphaEps || t > 1 - kAlphaEps || u < kAlphaEps ||
      u > 1 - kAlphaEps) {
    *degenerate = true;  // endpoint touch
    return false;
  }
  *alpha_p = t;
  *alpha_q = u;
  return true;
}

/// Inserts intersection node `n` between `from` and the next original
/// vertex, ordered by alpha.
void InsertSorted(Node* from, Node* n) {
  Node* a = from;
  Node* b = from->next;
  while (b->intersect && b->alpha < n->alpha) {
    a = b;
    b = b->next;
  }
  n->next = b;
  n->prev = a;
  a->next = n;
  b->prev = n;
}

/// Strict point-in-ring (boundary is avoided by perturbation).
bool InsideRing(const Point& p, const Ring& ring) {
  bool inside = false;
  size_t n = ring.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = ring[i];
    const Point& b = ring[j];
    if ((a.y > p.y) != (b.y > p.y)) {
      double x = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < x) inside = !inside;
    }
  }
  return inside;
}

struct ClipOutcome {
  bool degenerate = false;
  bool no_intersections = false;
  std::vector<Ring> rings;
};

/// One Greiner–Hormann pass over two simple CCW rings.
ClipOutcome ClipRings(const Ring& subject, const Ring& clip,
                      bool invert_subject_entries, bool invert_clip_entries) {
  ClipOutcome out;
  NodePool pool;
  Node* s_first = BuildList(subject, &pool);
  Node* c_first = BuildList(clip, &pool);

  // Phase 1: find and insert intersections.
  size_t count = 0;
  for (Node* s = s_first;;) {
    Node* s_end = s->next;
    while (s_end->intersect) s_end = s_end->next;
    for (Node* c = c_first;;) {
      Node* c_end = c->next;
      while (c_end->intersect) c_end = c_end->next;
      double ta, tb;
      bool degenerate = false;
      if (EdgeIntersection(s->p, s_end->p, c->p, c_end->p, &ta, &tb,
                           &degenerate)) {
        Point ip{s->p.x + ta * (s_end->p.x - s->p.x),
                 s->p.y + ta * (s_end->p.y - s->p.y)};
        Node* ns = pool.New(ip);
        Node* nc = pool.New(ip);
        ns->intersect = nc->intersect = true;
        ns->alpha = ta;
        nc->alpha = tb;
        ns->neighbour = nc;
        nc->neighbour = ns;
        InsertSorted(s, ns);
        InsertSorted(c, nc);
        ++count;
      } else if (degenerate) {
        out.degenerate = true;
        return out;
      }
      c = c_end;
      if (c == c_first) break;
    }
    s = s_end;
    if (s == s_first) break;
  }
  if (count == 0) {
    out.no_intersections = true;
    return out;
  }

  // Phase 2: entry/exit flags.
  bool entry = !InsideRing(s_first->p, clip);
  if (invert_subject_entries) entry = !entry;
  for (Node* s = s_first;;) {
    if (s->intersect) {
      s->entry = entry;
      entry = !entry;
    }
    s = s->next;
    if (s == s_first) break;
  }
  entry = !InsideRing(c_first->p, subject);
  if (invert_clip_entries) entry = !entry;
  for (Node* c = c_first;;) {
    if (c->intersect) {
      c->entry = entry;
      entry = !entry;
    }
    c = c->next;
    if (c == c_first) break;
  }

  // Phase 3: trace result rings.
  while (true) {
    Node* start = nullptr;
    for (Node* s = s_first;;) {
      if (s->intersect && !s->processed) {
        start = s;
        break;
      }
      s = s->next;
      if (s == s_first) break;
    }
    if (!start) break;
    Ring ring;
    Node* current = start;
    ring.push_back(current->p);
    size_t guard = 0;
    const size_t kGuardMax = 4 * (subject.size() + clip.size() + count + 4);
    do {
      current->processed = true;
      if (current->neighbour) current->neighbour->processed = true;
      if (current->entry) {
        do {
          current = current->next;
          ring.push_back(current->p);
        } while (!current->intersect);
      } else {
        do {
          current = current->prev;
          ring.push_back(current->p);
        } while (!current->intersect);
      }
      current = current->neighbour;
      if (++guard > kGuardMax) {
        out.degenerate = true;  // tracing failed; force a perturbed retry
        return out;
      }
    } while (current != start && !current->processed);
    // Drop the duplicated closing vertex.
    if (ring.size() > 1 && std::fabs(ring.front().x - ring.back().x) < 1e-12 &&
        std::fabs(ring.front().y - ring.back().y) < 1e-12) {
      ring.pop_back();
    }
    if (ring.size() >= 3) out.rings.push_back(std::move(ring));
  }
  return out;
}

Ring PerturbRing(const Ring& ring, double magnitude, unsigned seed) {
  Ring out = ring;
  // Deterministic pseudo-random jitter (xorshift).
  uint32_t state = 0x9e3779b9u + seed;
  auto next = [&]() {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return static_cast<double>(state) / 4294967296.0 - 0.5;
  };
  for (Point& p : out) {
    p.x += magnitude * next();
    p.y += magnitude * next();
  }
  return out;
}

Ring MakeCcw(Ring ring) {
  if (SignedRingArea(ring) < 0) std::reverse(ring.begin(), ring.end());
  return ring;
}

/// Boolean op on two simple rings; handles the no-intersection cases.
Result<std::vector<Polygon>> RingBoolean(const Ring& subject_in,
                                         const Ring& clip_in, BooleanOp op) {
  Ring subject = MakeCcw(subject_in);
  Ring clip = MakeCcw(clip_in);

  bool invert_subject = false;
  bool invert_clip = false;
  switch (op) {
    case BooleanOp::kIntersection:
      break;
    case BooleanOp::kUnion:
      invert_subject = invert_clip = true;
      break;
    case BooleanOp::kDifference:
      invert_subject = true;  // A - B
      break;
  }

  double scale = 0.0;
  for (const Point& p : subject) {
    scale = std::max({scale, std::fabs(p.x), std::fabs(p.y)});
  }
  for (const Point& p : clip) {
    scale = std::max({scale, std::fabs(p.x), std::fabs(p.y)});
  }
  if (scale == 0) scale = 1.0;

  ClipOutcome outcome;
  Ring used_clip = clip;
  for (unsigned attempt = 0; attempt < 6; ++attempt) {
    outcome = ClipRings(subject, used_clip, invert_subject, invert_clip);
    if (!outcome.degenerate) break;
    double mag = scale * 1e-9 * std::pow(10.0, attempt);
    used_clip = PerturbRing(clip, mag, attempt + 1);
  }
  if (outcome.degenerate) {
    return Status::Internal("polygon clipping failed to resolve degeneracy");
  }

  std::vector<Polygon> result;
  if (outcome.no_intersections) {
    bool s_in_c = InsideRing(subject[0], clip);
    bool c_in_s = InsideRing(clip[0], subject);
    switch (op) {
      case BooleanOp::kIntersection:
        if (s_in_c) result.push_back({subject, {}});
        else if (c_in_s) result.push_back({clip, {}});
        break;
      case BooleanOp::kUnion:
        if (s_in_c) {
          result.push_back({clip, {}});
        } else if (c_in_s) {
          result.push_back({subject, {}});
        } else {
          result.push_back({subject, {}});
          result.push_back({clip, {}});
        }
        break;
      case BooleanOp::kDifference:
        if (s_in_c) {
          // A entirely inside B: empty.
        } else if (c_in_s) {
          Ring hole = clip;
          std::reverse(hole.begin(), hole.end());  // holes are CW
          result.push_back({subject, {hole}});
        } else {
          result.push_back({subject, {}});
        }
        break;
    }
    return result;
  }

  // Classify traced rings. For simple-polygon inputs: intersection and
  // difference results are disjoint simple pieces (all shells — the hole
  // case arises only on the no-intersection path above); a union is one
  // connected region, so its largest ring is the shell and the rest are
  // enclosed holes. GH traces union/difference clockwise, so orientation
  // is normalized here rather than used for classification.
  std::vector<Polygon> shells;
  if (op == BooleanOp::kUnion) {
    size_t shell_idx = 0;
    double best = -1;
    for (size_t i = 0; i < outcome.rings.size(); ++i) {
      double a = std::fabs(SignedRingArea(outcome.rings[i]));
      if (a > best) {
        best = a;
        shell_idx = i;
      }
    }
    Polygon poly;
    poly.outer = MakeCcw(std::move(outcome.rings[shell_idx]));
    for (size_t i = 0; i < outcome.rings.size(); ++i) {
      if (i == shell_idx) continue;
      Ring h = MakeCcw(std::move(outcome.rings[i]));
      std::reverse(h.begin(), h.end());  // holes are CW
      poly.holes.push_back(std::move(h));
    }
    shells.push_back(std::move(poly));
  } else {
    for (Ring& r : outcome.rings) {
      shells.push_back({MakeCcw(std::move(r)), {}});
    }
  }
  return shells;
}

/// Collects outer rings of a polygonal geometry.
Result<std::vector<Polygon>> PolysOf(const Geometry& g) {
  if (g.polygons().empty()) {
    return Status::InvalidArgument(
        "polygon boolean op requires polygonal inputs");
  }
  return g.polygons();
}

/// Re-attaches subject holes to the result parts that contain them, by
/// differencing each result part with each hole ring.
Result<std::vector<Polygon>> SubtractHoles(std::vector<Polygon> parts,
                                           const std::vector<Ring>& holes) {
  for (const Ring& hole : holes) {
    std::vector<Polygon> next;
    for (Polygon& part : parts) {
      Ring hole_ccw = hole;
      if (SignedRingArea(hole_ccw) < 0) {
        std::reverse(hole_ccw.begin(), hole_ccw.end());
      }
      TELEIOS_ASSIGN_OR_RETURN(
          std::vector<Polygon> pieces,
          RingBoolean(part.outer, hole_ccw, BooleanOp::kDifference));
      // Preserve the part's existing holes.
      for (Polygon& piece : pieces) {
        for (const Ring& h : part.holes) {
          piece.holes.push_back(h);
        }
        next.push_back(std::move(piece));
      }
    }
    parts = std::move(next);
  }
  return parts;
}

}  // namespace

Result<Geometry> PolygonBoolean(const Geometry& subject, const Geometry& clip,
                                BooleanOp op) {
  TELEIOS_ASSIGN_OR_RETURN(std::vector<Polygon> subs, PolysOf(subject));
  TELEIOS_ASSIGN_OR_RETURN(std::vector<Polygon> clips, PolysOf(clip));

  std::vector<Polygon> result;
  switch (op) {
    case BooleanOp::kIntersection: {
      for (const Polygon& a : subs) {
        for (const Polygon& b : clips) {
          TELEIOS_ASSIGN_OR_RETURN(
              std::vector<Polygon> parts,
              RingBoolean(a.outer, b.outer, BooleanOp::kIntersection));
          TELEIOS_ASSIGN_OR_RETURN(parts, SubtractHoles(std::move(parts),
                                                        a.holes));
          TELEIOS_ASSIGN_OR_RETURN(parts, SubtractHoles(std::move(parts),
                                                        b.holes));
          for (Polygon& p : parts) result.push_back(std::move(p));
        }
      }
      break;
    }
    case BooleanOp::kUnion: {
      // Iteratively union all outer rings; disjoint parts accumulate.
      std::vector<Polygon> acc;
      for (const Polygon& a : subs) acc.push_back(a);
      for (const Polygon& b : clips) acc.push_back(b);
      // Pairwise merge until stable.
      bool merged = true;
      while (merged && acc.size() > 1) {
        merged = false;
        for (size_t i = 0; i < acc.size() && !merged; ++i) {
          for (size_t j = i + 1; j < acc.size() && !merged; ++j) {
            Geometry gi = Geometry::MakePolygon(acc[i]);
            Geometry gj = Geometry::MakePolygon(acc[j]);
            if (!Intersects(gi, gj)) continue;
            TELEIOS_ASSIGN_OR_RETURN(
                std::vector<Polygon> parts,
                RingBoolean(acc[i].outer, acc[j].outer, BooleanOp::kUnion));
            if (parts.size() == 1) {
              std::vector<Ring> holes = acc[i].holes;
              for (const Ring& h : acc[j].holes) holes.push_back(h);
              parts[0].holes.insert(parts[0].holes.end(), holes.begin(),
                                    holes.end());
              acc.erase(acc.begin() + static_cast<long>(j));
              acc[i] = std::move(parts[0]);
              merged = true;
            }
          }
        }
      }
      result = std::move(acc);
      break;
    }
    case BooleanOp::kDifference: {
      result = subs;
      for (const Polygon& b : clips) {
        std::vector<Polygon> next;
        for (Polygon& a : result) {
          TELEIOS_ASSIGN_OR_RETURN(
              std::vector<Polygon> parts,
              RingBoolean(a.outer, b.outer, BooleanOp::kDifference));
          TELEIOS_ASSIGN_OR_RETURN(parts,
                                   SubtractHoles(std::move(parts), a.holes));
          for (Polygon& p : parts) next.push_back(std::move(p));
          // A minus a holed B keeps what lies inside B's holes:
          // A - B = (A - outer(B)) u (A n hole_i(B)).
          for (const Ring& hole : b.holes) {
            Ring hole_ccw = hole;
            if (SignedRingArea(hole_ccw) < 0) {
              std::reverse(hole_ccw.begin(), hole_ccw.end());
            }
            TELEIOS_ASSIGN_OR_RETURN(
                std::vector<Polygon> kept,
                RingBoolean(a.outer, hole_ccw, BooleanOp::kIntersection));
            TELEIOS_ASSIGN_OR_RETURN(
                kept, SubtractHoles(std::move(kept), a.holes));
            for (Polygon& p : kept) next.push_back(std::move(p));
          }
        }
        result = std::move(next);
      }
      break;
    }
  }
  // Drop slivers produced by perturbation.
  std::vector<Polygon> cleaned;
  for (Polygon& p : result) {
    if (std::fabs(SignedRingArea(p.outer)) > 1e-12) {
      cleaned.push_back(std::move(p));
    }
  }
  return Geometry::MakeMultiPolygon(std::move(cleaned));
}

Result<Geometry> Intersection(const Geometry& a, const Geometry& b) {
  return PolygonBoolean(a, b, BooleanOp::kIntersection);
}

Result<Geometry> Union(const Geometry& a, const Geometry& b) {
  return PolygonBoolean(a, b, BooleanOp::kUnion);
}

Result<Geometry> Difference(const Geometry& a, const Geometry& b) {
  return PolygonBoolean(a, b, BooleanOp::kDifference);
}

}  // namespace teleios::geo
