#include "geo/polygonize.h"

#include <cstdint>
#include <map>
#include <utility>

#include "geo/predicates.h"

namespace teleios::geo {

namespace {

/// Integer grid vertex.
struct V {
  int x;
  int y;
  bool operator<(const V& o) const {
    return x < o.x || (x == o.x && y < o.y);
  }
  bool operator==(const V& o) const { return x == o.x && y == o.y; }
};

struct Edge {
  V from;
  V to;
  bool used = false;
};

/// Direction index: 0=+x, 1=+y, 2=-x, 3=-y.
int DirOf(const V& from, const V& to) {
  if (to.x > from.x) return 0;
  if (to.y > from.y) return 1;
  if (to.x < from.x) return 2;
  return 3;
}

void CollapseCollinear(Ring* ring) {
  if (ring->size() < 4) return;
  Ring out;
  size_t n = ring->size();
  for (size_t i = 0; i < n; ++i) {
    const Point& prev = (*ring)[(i + n - 1) % n];
    const Point& cur = (*ring)[i];
    const Point& next = (*ring)[(i + 1) % n];
    double cross = (cur.x - prev.x) * (next.y - cur.y) -
                   (cur.y - prev.y) * (next.x - cur.x);
    if (cross != 0) out.push_back(cur);
  }
  if (out.size() >= 3) *ring = std::move(out);
}

}  // namespace

std::vector<Polygon> PolygonizeMask(const std::vector<uint8_t>& mask,
                                    int width, int height) {
  auto at = [&](int c, int r) -> bool {
    if (c < 0 || r < 0 || c >= width || r >= height) return false;
    return mask[static_cast<size_t>(r) * width + c] != 0;
  };

  // Collect directed boundary edges with the interior on the left (in
  // pixel space with y growing down).
  std::vector<Edge> edges;
  for (int r = 0; r < height; ++r) {
    for (int c = 0; c < width; ++c) {
      if (!at(c, r)) continue;
      if (!at(c, r - 1)) edges.push_back({{c, r}, {c + 1, r}});
      if (!at(c + 1, r)) edges.push_back({{c + 1, r}, {c + 1, r + 1}});
      if (!at(c, r + 1)) edges.push_back({{c + 1, r + 1}, {c, r + 1}});
      if (!at(c - 1, r)) edges.push_back({{c, r + 1}, {c, r}});
    }
  }
  // Index edges by start vertex.
  std::multimap<V, size_t> by_start;
  for (size_t i = 0; i < edges.size(); ++i) {
    by_start.emplace(edges[i].from, i);
  }

  std::vector<Ring> rings;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].used) continue;
    Ring ring;
    size_t cur = i;
    while (!edges[cur].used) {
      edges[cur].used = true;
      ring.push_back({static_cast<double>(edges[cur].from.x),
                      static_cast<double>(edges[cur].from.y)});
      V next_v = edges[cur].to;
      int in_dir = DirOf(edges[cur].from, edges[cur].to);
      // Candidates out of next_v; prefer right turn, then straight, then
      // left (keeps diagonally-touching regions separate).
      auto [lo, hi] = by_start.equal_range(next_v);
      size_t best = SIZE_MAX;
      int best_pref = 4;
      for (auto it = lo; it != hi; ++it) {
        if (edges[it->second].used) continue;
        int out_dir = DirOf(edges[it->second].from, edges[it->second].to);
        // Prefer the turn that follows the same cell's boundary
        // ((in+1) mod 4 with these edge orientations), which keeps
        // diagonally-touching regions as separate rings.
        int pref;
        if (out_dir == (in_dir + 1) % 4) pref = 0;
        else if (out_dir == in_dir) pref = 1;            // straight
        else if (out_dir == (in_dir + 3) % 4) pref = 2;  // other turn
        else pref = 3;                                   // u-turn
        if (pref < best_pref) {
          best_pref = pref;
          best = it->second;
        }
      }
      if (best == SIZE_MAX) break;  // ring closed
      cur = best;
    }
    CollapseCollinear(&ring);
    if (ring.size() >= 3) rings.push_back(std::move(ring));
  }

  // Outer rings (positive shoelace) vs holes; attach each hole to the
  // smallest containing outer ring.
  std::vector<Polygon> polys;
  std::vector<Ring> holes;
  for (Ring& r : rings) {
    if (SignedRingArea(r) > 0) {
      polys.push_back({std::move(r), {}});
    } else {
      holes.push_back(std::move(r));
    }
  }
  for (Ring& h : holes) {
    Point probe = h[0];
    // A hole vertex lies on its own boundary; probe just inside using the
    // ring centroid of the hole's bounding box midpoint fallback.
    double cx = 0, cy = 0;
    for (const Point& p : h) {
      cx += p.x;
      cy += p.y;
    }
    probe = {cx / static_cast<double>(h.size()),
             cy / static_cast<double>(h.size())};
    Polygon* best = nullptr;
    double best_area = 0;
    for (Polygon& poly : polys) {
      if (PointInRing(probe, poly.outer)) {
        double area = SignedRingArea(poly.outer);
        if (best == nullptr || area < best_area) {
          best = &poly;
          best_area = area;
        }
      }
    }
    if (best != nullptr) best->holes.push_back(std::move(h));
  }
  return polys;
}

}  // namespace teleios::geo
