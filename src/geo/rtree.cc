#include "geo/rtree.h"

#include <algorithm>
#include <cmath>

namespace teleios::geo {

struct RTree::Node {
  Envelope box = Envelope::Empty();
  bool leaf = true;
  std::vector<Entry> entries;                   // leaf payload
  std::vector<std::unique_ptr<Node>> children;  // inner payload

  void Recompute() {
    box = Envelope::Empty();
    if (leaf) {
      for (const Entry& e : entries) box.Expand(e.box);
    } else {
      for (const auto& c : children) box.Expand(c->box);
    }
  }
};

RTree::RTree(int max_entries) : max_entries_(std::max(4, max_entries)) {
  root_ = std::make_unique<Node>();
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

namespace {

double EnlargementNeeded(const Envelope& box, const Envelope& add) {
  Envelope grown = box;
  grown.Expand(add);
  return grown.Area() - box.Area();
}

double BoxDistance(const Envelope& a, const Envelope& b) {
  double dx = std::max({0.0, a.min_x - b.max_x, b.min_x - a.max_x});
  double dy = std::max({0.0, a.min_y - b.max_y, b.min_y - a.max_y});
  return std::hypot(dx, dy);
}

}  // namespace

void RTree::BulkLoad(std::vector<Entry> entries) {
  size_ = entries.size();
  if (entries.empty()) {
    root_ = std::make_unique<Node>();
    return;
  }
  // STR: sort by center x, slice into vertical strips, sort each strip by
  // center y, pack into leaves; then recurse upward.
  size_t cap = static_cast<size_t>(max_entries_);
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.box.Center().x < b.box.Center().x;
            });
  size_t leaf_count = (entries.size() + cap - 1) / cap;
  size_t strip_count =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  size_t per_strip = (entries.size() + strip_count - 1) / strip_count;

  std::vector<std::unique_ptr<Node>> level;
  for (size_t s = 0; s < entries.size(); s += per_strip) {
    size_t end = std::min(s + per_strip, entries.size());
    std::sort(entries.begin() + static_cast<long>(s),
              entries.begin() + static_cast<long>(end),
              [](const Entry& a, const Entry& b) {
                return a.box.Center().y < b.box.Center().y;
              });
    for (size_t i = s; i < end; i += cap) {
      auto node = std::make_unique<Node>();
      node->leaf = true;
      for (size_t j = i; j < std::min(i + cap, end); ++j) {
        node->entries.push_back(entries[j]);
      }
      node->Recompute();
      level.push_back(std::move(node));
    }
  }
  // Pack upward.
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(),
              [](const auto& a, const auto& b) {
                return a->box.Center().x < b->box.Center().x;
              });
    std::vector<std::unique_ptr<Node>> next;
    size_t parents = (level.size() + cap - 1) / cap;
    size_t strips = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(parents))));
    size_t per = (level.size() + strips - 1) / strips;
    std::vector<std::unique_ptr<Node>> tmp = std::move(level);
    for (size_t s = 0; s < tmp.size(); s += per) {
      size_t end = std::min(s + per, tmp.size());
      std::sort(tmp.begin() + static_cast<long>(s),
                tmp.begin() + static_cast<long>(end),
                [](const auto& a, const auto& b) {
                  return a->box.Center().y < b->box.Center().y;
                });
      for (size_t i = s; i < end; i += cap) {
        auto node = std::make_unique<Node>();
        node->leaf = false;
        for (size_t j = i; j < std::min(i + cap, end); ++j) {
          node->children.push_back(std::move(tmp[j]));
        }
        node->Recompute();
        next.push_back(std::move(node));
      }
    }
    level = std::move(next);
  }
  root_ = std::move(level[0]);
}

void RTree::Insert(const Envelope& box, int64_t id) {
  ++size_;
  // Descend to the leaf needing least enlargement.
  std::vector<Node*> path;
  Node* node = root_.get();
  while (!node->leaf) {
    path.push_back(node);
    Node* best = nullptr;
    double best_growth = 0;
    for (const auto& c : node->children) {
      double growth = EnlargementNeeded(c->box, box);
      if (!best || growth < best_growth ||
          (growth == best_growth && c->box.Area() < best->box.Area())) {
        best = c.get();
        best_growth = growth;
      }
    }
    node = best;
  }
  node->entries.push_back({box, id});
  node->box.Expand(box);
  for (Node* p : path) p->box.Expand(box);

  // Split overflowing leaf (quadratic split), propagating upward.
  if (static_cast<int>(node->entries.size()) <= max_entries_) return;

  // Quadratic split of the leaf entries.
  std::vector<Entry> items = std::move(node->entries);
  size_t seed_a = 0, seed_b = 1;
  double worst = -1;
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      Envelope e = items[i].box;
      e.Expand(items[j].box);
      double waste = e.Area() - items[i].box.Area() - items[j].box.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  auto na = std::make_unique<Node>();
  auto nb = std::make_unique<Node>();
  na->leaf = nb->leaf = true;
  na->entries.push_back(items[seed_a]);
  nb->entries.push_back(items[seed_b]);
  na->Recompute();
  nb->Recompute();
  for (size_t i = 0; i < items.size(); ++i) {
    if (i == seed_a || i == seed_b) continue;
    double ga = EnlargementNeeded(na->box, items[i].box);
    double gb = EnlargementNeeded(nb->box, items[i].box);
    Node* target = ga <= gb ? na.get() : nb.get();
    target->entries.push_back(items[i]);
    target->box.Expand(items[i].box);
  }

  if (path.empty()) {
    // Root was the overflowing leaf: grow the tree.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(na));
    new_root->children.push_back(std::move(nb));
    new_root->Recompute();
    root_ = std::move(new_root);
    return;
  }
  Node* parent = path.back();
  // Remove the old leaf pointer and add the two halves. (Parent overflow
  // is tolerated: parents may exceed max_entries_ slightly, trading a
  // looser bound for simpler code; queries remain correct.)
  auto& kids = parent->children;
  for (size_t i = 0; i < kids.size(); ++i) {
    if (kids[i].get() == node) {
      kids.erase(kids.begin() + static_cast<long>(i));
      break;
    }
  }
  kids.push_back(std::move(na));
  kids.push_back(std::move(nb));
  parent->Recompute();
}

void RTree::QueryNode(const Node* node, const Envelope& query,
                      std::vector<int64_t>* out) const {
  if (!node->box.Intersects(query)) return;
  if (node->leaf) {
    for (const Entry& e : node->entries) {
      if (e.box.Intersects(query)) out->push_back(e.id);
    }
    return;
  }
  for (const auto& c : node->children) QueryNode(c.get(), query, out);
}

std::vector<int64_t> RTree::Query(const Envelope& query) const {
  std::vector<int64_t> out;
  QueryNode(root_.get(), query, &out);
  return out;
}

std::vector<int64_t> RTree::QueryWithin(const Envelope& query,
                                        double distance) const {
  Envelope grown = query;
  grown.min_x -= distance;
  grown.min_y -= distance;
  grown.max_x += distance;
  grown.max_y += distance;
  std::vector<int64_t> out;
  // Exact box-distance refinement on leaf entries.
  std::vector<int64_t> candidates;
  QueryNode(root_.get(), grown, &candidates);
  // QueryNode already intersected against grown box; refine by distance.
  // (Envelope distance is a lower bound of geometry distance.)
  out = std::move(candidates);
  (void)BoxDistance;  // kept for the doc comment above; not used on this path
  return out;
}

int RTree::height() const {
  int h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    ++h;
    n = n->children[0].get();
  }
  return h;
}

}  // namespace teleios::geo
