#include "geo/geometry.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/wkt.h"

namespace teleios::geo {

Envelope Envelope::Empty() {
  Envelope e;
  e.min_x = e.min_y = std::numeric_limits<double>::infinity();
  e.max_x = e.max_y = -std::numeric_limits<double>::infinity();
  return e;
}

void Envelope::Expand(const Point& p) {
  min_x = std::min(min_x, p.x);
  min_y = std::min(min_y, p.y);
  max_x = std::max(max_x, p.x);
  max_y = std::max(max_y, p.y);
}

void Envelope::Expand(const Envelope& e) {
  if (e.IsEmpty()) return;
  min_x = std::min(min_x, e.min_x);
  min_y = std::min(min_y, e.min_y);
  max_x = std::max(max_x, e.max_x);
  max_y = std::max(max_y, e.max_y);
}

bool Envelope::Intersects(const Envelope& other) const {
  return !(other.min_x > max_x || other.max_x < min_x ||
           other.min_y > max_y || other.max_y < min_y);
}

bool Envelope::Contains(const Point& p) const {
  return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
}

bool Envelope::Contains(const Envelope& other) const {
  return other.min_x >= min_x && other.max_x <= max_x &&
         other.min_y >= min_y && other.max_y <= max_y;
}

const char* GeometryKindName(GeometryKind k) {
  switch (k) {
    case GeometryKind::kEmpty:
      return "EMPTY";
    case GeometryKind::kPoint:
      return "POINT";
    case GeometryKind::kLineString:
      return "LINESTRING";
    case GeometryKind::kPolygon:
      return "POLYGON";
    case GeometryKind::kMultiPoint:
      return "MULTIPOINT";
    case GeometryKind::kMultiLineString:
      return "MULTILINESTRING";
    case GeometryKind::kMultiPolygon:
      return "MULTIPOLYGON";
  }
  return "?";
}

Geometry Geometry::MakePoint(double x, double y) {
  Geometry g;
  g.kind_ = GeometryKind::kPoint;
  g.points_.push_back({x, y});
  return g;
}

Geometry Geometry::MakeMultiPoint(std::vector<Point> pts) {
  Geometry g;
  g.kind_ = pts.empty() ? GeometryKind::kEmpty : GeometryKind::kMultiPoint;
  g.points_ = std::move(pts);
  return g;
}

Geometry Geometry::MakeLineString(std::vector<Point> pts) {
  Geometry g;
  g.kind_ = GeometryKind::kLineString;
  g.lines_.push_back({std::move(pts)});
  return g;
}

Geometry Geometry::MakeMultiLineString(std::vector<LineString> lines) {
  Geometry g;
  g.kind_ =
      lines.empty() ? GeometryKind::kEmpty : GeometryKind::kMultiLineString;
  g.lines_ = std::move(lines);
  return g;
}

Geometry Geometry::MakePolygon(Polygon poly) {
  Geometry g;
  g.kind_ = GeometryKind::kPolygon;
  NormalizeOrientation(&poly);
  g.polygons_.push_back(std::move(poly));
  return g;
}

Geometry Geometry::MakeMultiPolygon(std::vector<Polygon> polys) {
  Geometry g;
  if (polys.empty()) return g;
  if (polys.size() == 1) return MakePolygon(std::move(polys[0]));
  g.kind_ = GeometryKind::kMultiPolygon;
  for (Polygon& p : polys) {
    NormalizeOrientation(&p);
    g.polygons_.push_back(std::move(p));
  }
  return g;
}

Geometry Geometry::MakeBox(double min_x, double min_y, double max_x,
                           double max_y) {
  Polygon p;
  p.outer = {{min_x, min_y}, {max_x, min_y}, {max_x, max_y}, {min_x, max_y}};
  return MakePolygon(std::move(p));
}

bool Geometry::IsEmpty() const {
  return kind_ == GeometryKind::kEmpty ||
         (points_.empty() && lines_.empty() && polygons_.empty());
}

Envelope Geometry::GetEnvelope() const {
  Envelope e = Envelope::Empty();
  for (const Point& p : points_) e.Expand(p);
  for (const LineString& l : lines_) {
    for (const Point& p : l.points) e.Expand(p);
  }
  for (const Polygon& poly : polygons_) {
    for (const Point& p : poly.outer) e.Expand(p);
  }
  return e;
}

double SignedRingArea(const Ring& ring) {
  double area = 0;
  size_t n = ring.size();
  if (n < 3) return 0;
  for (size_t i = 0; i < n; ++i) {
    const Point& a = ring[i];
    const Point& b = ring[(i + 1) % n];
    area += a.x * b.y - b.x * a.y;
  }
  return area / 2.0;
}

void NormalizeOrientation(Polygon* poly) {
  if (SignedRingArea(poly->outer) < 0) {
    std::reverse(poly->outer.begin(), poly->outer.end());
  }
  for (Ring& hole : poly->holes) {
    if (SignedRingArea(hole) > 0) {
      std::reverse(hole.begin(), hole.end());
    }
  }
}

double Geometry::Area() const {
  double area = 0;
  for (const Polygon& poly : polygons_) {
    area += std::fabs(SignedRingArea(poly.outer));
    for (const Ring& hole : poly.holes) {
      area -= std::fabs(SignedRingArea(hole));
    }
  }
  return area;
}

namespace {
double RingLength(const Ring& ring, bool closed) {
  double len = 0;
  size_t n = ring.size();
  if (n < 2) return 0;
  size_t last = closed ? n : n - 1;
  for (size_t i = 0; i < last; ++i) {
    const Point& a = ring[i];
    const Point& b = ring[(i + 1) % n];
    len += std::hypot(b.x - a.x, b.y - a.y);
  }
  return len;
}
}  // namespace

double Geometry::Length() const {
  double len = 0;
  for (const LineString& l : lines_) len += RingLength(l.points, false);
  for (const Polygon& poly : polygons_) {
    len += RingLength(poly.outer, true);
    for (const Ring& hole : poly.holes) len += RingLength(hole, true);
  }
  return len;
}

Point Geometry::Centroid() const {
  if (!polygons_.empty()) {
    // Area-weighted centroid over outer rings.
    double cx = 0, cy = 0, total = 0;
    for (const Polygon& poly : polygons_) {
      const Ring& r = poly.outer;
      size_t n = r.size();
      double a = 0, x = 0, y = 0;
      for (size_t i = 0; i < n; ++i) {
        const Point& p = r[i];
        const Point& q = r[(i + 1) % n];
        double cross = p.x * q.y - q.x * p.y;
        a += cross;
        x += (p.x + q.x) * cross;
        y += (p.y + q.y) * cross;
      }
      if (a != 0) {
        cx += x / 6.0;
        cy += y / 6.0;
        total += a / 2.0;
      }
    }
    if (total != 0) return {cx / total, cy / total};
  }
  // Vertex average fallback.
  double sx = 0, sy = 0;
  size_t count = 0;
  auto add = [&](const Point& p) {
    sx += p.x;
    sy += p.y;
    ++count;
  };
  for (const Point& p : points_) add(p);
  for (const LineString& l : lines_) {
    for (const Point& p : l.points) add(p);
  }
  for (const Polygon& poly : polygons_) {
    for (const Point& p : poly.outer) add(p);
  }
  if (count == 0) return {0, 0};
  return {sx / static_cast<double>(count), sy / static_cast<double>(count)};
}

size_t Geometry::NumGeometries() const {
  switch (kind_) {
    case GeometryKind::kEmpty:
      return 0;
    case GeometryKind::kPoint:
    case GeometryKind::kMultiPoint:
      return points_.size();
    case GeometryKind::kLineString:
    case GeometryKind::kMultiLineString:
      return lines_.size();
    case GeometryKind::kPolygon:
    case GeometryKind::kMultiPolygon:
      return polygons_.size();
  }
  return 0;
}

std::string Geometry::ToString() const { return WriteWkt(*this); }

}  // namespace teleios::geo
