#ifndef TELEIOS_GEO_POLYGONIZE_H_
#define TELEIOS_GEO_POLYGONIZE_H_

#include <cstdint>
#include <vector>

#include "geo/geometry.h"

namespace teleios::geo {

/// Traces the region boundaries of a binary mask (row-major, width x
/// height, nonzero = inside) into rectilinear polygons in pixel space
/// (cell (c, r) spans [c, c+1] x [r, r+1]).
///
/// Regions are 4-connected; diagonally touching cells become separate
/// polygons. Outer rings come out CCW (positive shoelace), holes CW, and
/// collinear vertices are collapsed. This is the polygonization step of
/// the NOA hotspot chain and the coastline extractor.
std::vector<Polygon> PolygonizeMask(const std::vector<uint8_t>& mask,
                                    int width, int height);

}  // namespace teleios::geo

#endif  // TELEIOS_GEO_POLYGONIZE_H_
