#include "geo/crs.h"

#include <cmath>

#include "geo/predicates.h"

namespace teleios::geo {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
constexpr double kWebMercatorMax = 20037508.342789244;
}  // namespace

Point Wgs84ToWebMercator(const Point& lonlat) {
  double x = lonlat.x * kWebMercatorMax / 180.0;
  double lat = std::fmax(-85.05112878, std::fmin(85.05112878, lonlat.y));
  double y = std::log(std::tan((90.0 + lat) * kDegToRad / 2.0)) / kDegToRad;
  y = y * kWebMercatorMax / 180.0;
  return {x, y};
}

Point WebMercatorToWgs84(const Point& xy) {
  double lon = xy.x / kWebMercatorMax * 180.0;
  double lat = xy.y / kWebMercatorMax * 180.0;
  lat = 2.0 * std::atan(std::exp(lat * kDegToRad)) / kDegToRad - 90.0;
  return {lon, lat};
}

double HaversineMeters(const Point& a, const Point& b) {
  double phi1 = a.y * kDegToRad;
  double phi2 = b.y * kDegToRad;
  double dphi = (b.y - a.y) * kDegToRad;
  double dlam = (b.x - a.x) * kDegToRad;
  double h = std::sin(dphi / 2) * std::sin(dphi / 2) +
             std::cos(phi1) * std::cos(phi2) * std::sin(dlam / 2) *
                 std::sin(dlam / 2);
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(std::fmin(1.0, h)));
}

double GeodesicDistanceMeters(const Geometry& a, const Geometry& b) {
  // Planar distance in degrees, scaled by the metric at the mean latitude.
  double deg = Distance(a, b);
  if (deg == 0.0) return 0.0;
  double lat = (a.GetEnvelope().Center().y + b.GetEnvelope().Center().y) / 2;
  double meters_per_deg_lat = kEarthRadiusMeters * kDegToRad;
  double meters_per_deg_lon = meters_per_deg_lat * std::cos(lat * kDegToRad);
  // Use the geometric mean of the two scales as an isotropic approximation.
  double scale = std::sqrt(meters_per_deg_lat * meters_per_deg_lon);
  return deg * scale;
}

Point GeoTransform::PixelToWorld(double col, double row) const {
  return {origin_x + col * pixel_w + row * rot_x,
          origin_y + col * rot_y + row * pixel_h};
}

Result<Point> GeoTransform::WorldToPixel(const Point& world) const {
  double det = pixel_w * pixel_h - rot_x * rot_y;
  if (std::fabs(det) < 1e-30) {
    return Status::InvalidArgument("singular geotransform");
  }
  double dx = world.x - origin_x;
  double dy = world.y - origin_y;
  return Point{(dx * pixel_h - dy * rot_x) / det,
               (dy * pixel_w - dx * rot_y) / det};
}

namespace {
Ring TransformRing(const Ring& ring, const GeoTransform& t) {
  Ring out;
  out.reserve(ring.size());
  for (const Point& p : ring) out.push_back(t.PixelToWorld(p.x, p.y));
  return out;
}
}  // namespace

Geometry TransformGeometry(const Geometry& g, const GeoTransform& t) {
  switch (g.kind()) {
    case GeometryKind::kEmpty:
      return g;
    case GeometryKind::kPoint: {
      Point p = t.PixelToWorld(g.AsPoint().x, g.AsPoint().y);
      return Geometry::MakePoint(p.x, p.y);
    }
    case GeometryKind::kMultiPoint: {
      std::vector<Point> pts;
      for (const Point& p : g.points()) pts.push_back(t.PixelToWorld(p.x, p.y));
      return Geometry::MakeMultiPoint(std::move(pts));
    }
    case GeometryKind::kLineString:
    case GeometryKind::kMultiLineString: {
      std::vector<LineString> lines;
      for (const LineString& l : g.lines()) {
        lines.push_back({TransformRing(l.points, t)});
      }
      if (g.kind() == GeometryKind::kLineString) {
        return Geometry::MakeLineString(std::move(lines[0].points));
      }
      return Geometry::MakeMultiLineString(std::move(lines));
    }
    case GeometryKind::kPolygon:
    case GeometryKind::kMultiPolygon: {
      std::vector<Polygon> polys;
      for (const Polygon& poly : g.polygons()) {
        Polygon out;
        out.outer = TransformRing(poly.outer, t);
        for (const Ring& h : poly.holes) out.holes.push_back(TransformRing(h, t));
        polys.push_back(std::move(out));
      }
      if (g.kind() == GeometryKind::kPolygon) {
        return Geometry::MakePolygon(std::move(polys[0]));
      }
      return Geometry::MakeMultiPolygon(std::move(polys));
    }
  }
  return g;
}

}  // namespace teleios::geo
