#ifndef TELEIOS_GEO_RTREE_H_
#define TELEIOS_GEO_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geo/geometry.h"

namespace teleios::geo {

/// R-tree over (envelope, id) entries: the spatial index behind Strabon's
/// spatial selections and joins. Supports STR (sort-tile-recursive) bulk
/// loading and incremental insertion with quadratic split.
class RTree {
 public:
  struct Entry {
    Envelope box;
    int64_t id;
  };

  explicit RTree(int max_entries = 16);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  /// Builds a packed tree from all entries at once (STR); replaces any
  /// existing content.
  void BulkLoad(std::vector<Entry> entries);

  /// Inserts one entry.
  void Insert(const Envelope& box, int64_t id);

  /// Ids of entries whose boxes intersect `query`.
  std::vector<int64_t> Query(const Envelope& query) const;

  /// Ids of entries whose boxes are within `distance` of `query` (box
  /// distance; candidates for exact geometry tests).
  std::vector<int64_t> QueryWithin(const Envelope& query,
                                   double distance) const;

  size_t size() const { return size_; }
  int height() const;

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  int max_entries_;
  size_t size_ = 0;

  void QueryNode(const Node* node, const Envelope& query,
                 std::vector<int64_t>* out) const;
};

}  // namespace teleios::geo

#endif  // TELEIOS_GEO_RTREE_H_
