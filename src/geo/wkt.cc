#include "geo/wkt.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/strings.h"

namespace teleios::geo {

namespace {

/// Minimal recursive-descent WKT reader.
class WktReader {
 public:
  explicit WktReader(const std::string& text) : text_(text) {}

  Result<Geometry> Read() {
    TELEIOS_ASSIGN_OR_RETURN(std::string tag, ReadWord());
    std::string kind = StrLower(tag);
    SkipSpace();
    bool empty = TryWord("EMPTY");
    if (kind == "geometrycollection") {
      if (empty) return Geometry();
      return Status::ParseError(
          "non-empty GEOMETRYCOLLECTION is not supported");
    }
    if (kind == "point") {
      if (empty) return Geometry();
      TELEIOS_ASSIGN_OR_RETURN(Point p, ReadPointParens());
      return Geometry::MakePoint(p.x, p.y);
    }
    if (kind == "linestring") {
      if (empty) return Geometry();
      TELEIOS_ASSIGN_OR_RETURN(std::vector<Point> pts, ReadPointList());
      return Geometry::MakeLineString(std::move(pts));
    }
    if (kind == "polygon") {
      if (empty) return Geometry();
      TELEIOS_ASSIGN_OR_RETURN(Polygon poly, ReadPolygonBody());
      return Geometry::MakePolygon(std::move(poly));
    }
    if (kind == "multipoint") {
      if (empty) return Geometry();
      TELEIOS_RETURN_IF_ERROR(Expect('('));
      std::vector<Point> pts;
      do {
        SkipSpace();
        if (Peek() == '(') {
          TELEIOS_ASSIGN_OR_RETURN(Point p, ReadPointParens());
          pts.push_back(p);
        } else {
          TELEIOS_ASSIGN_OR_RETURN(Point p, ReadCoord());
          pts.push_back(p);
        }
      } while (TryChar(','));
      TELEIOS_RETURN_IF_ERROR(Expect(')'));
      return Geometry::MakeMultiPoint(std::move(pts));
    }
    if (kind == "multilinestring") {
      if (empty) return Geometry();
      TELEIOS_RETURN_IF_ERROR(Expect('('));
      std::vector<LineString> lines;
      do {
        TELEIOS_ASSIGN_OR_RETURN(std::vector<Point> pts, ReadPointList());
        lines.push_back({std::move(pts)});
      } while (TryChar(','));
      TELEIOS_RETURN_IF_ERROR(Expect(')'));
      return Geometry::MakeMultiLineString(std::move(lines));
    }
    if (kind == "multipolygon") {
      if (empty) return Geometry();
      TELEIOS_RETURN_IF_ERROR(Expect('('));
      std::vector<Polygon> polys;
      do {
        TELEIOS_ASSIGN_OR_RETURN(Polygon poly, ReadPolygonBody());
        polys.push_back(std::move(poly));
      } while (TryChar(','));
      TELEIOS_RETURN_IF_ERROR(Expect(')'));
      return Geometry::MakeMultiPolygon(std::move(polys));
    }
    return Status::ParseError("unknown WKT tag '" + tag + "'");
  }

  Status CheckDone() {
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing WKT input at offset " +
                                std::to_string(pos_));
    }
    return Status::OK();
  }

 private:
  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool TryChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!TryChar(c)) {
      return Status::ParseError(std::string("expected '") + c +
                                "' in WKT at offset " + std::to_string(pos_));
    }
    return Status::OK();
  }

  Result<std::string> ReadWord() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("expected WKT keyword at offset " +
                                std::to_string(pos_));
    }
    return text_.substr(start, pos_ - start);
  }

  bool TryWord(const std::string& word) {
    SkipSpace();
    size_t save = pos_;
    auto w = ReadWord();
    if (w.ok() && StrEqualsIgnoreCase(*w, word)) return true;
    pos_ = save;
    return false;
  }

  Result<Point> ReadCoord() {
    SkipSpace();
    Point p;
    TELEIOS_ASSIGN_OR_RETURN(p.x, ReadNumber());
    TELEIOS_ASSIGN_OR_RETURN(p.y, ReadNumber());
    return p;
  }

  Result<double> ReadNumber() {
    SkipSpace();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin) {
      return Status::ParseError("expected number in WKT at offset " +
                                std::to_string(pos_));
    }
    pos_ += static_cast<size_t>(end - begin);
    return v;
  }

  Result<Point> ReadPointParens() {
    TELEIOS_RETURN_IF_ERROR(Expect('('));
    TELEIOS_ASSIGN_OR_RETURN(Point p, ReadCoord());
    TELEIOS_RETURN_IF_ERROR(Expect(')'));
    return p;
  }

  Result<std::vector<Point>> ReadPointList() {
    TELEIOS_RETURN_IF_ERROR(Expect('('));
    std::vector<Point> pts;
    do {
      TELEIOS_ASSIGN_OR_RETURN(Point p, ReadCoord());
      pts.push_back(p);
    } while (TryChar(','));
    TELEIOS_RETURN_IF_ERROR(Expect(')'));
    return pts;
  }

  /// Ring list: drops the duplicated closing vertex.
  Result<Ring> ReadRing() {
    TELEIOS_ASSIGN_OR_RETURN(Ring ring, ReadPointList());
    if (ring.size() >= 2 && ring.front() == ring.back()) {
      ring.pop_back();
    }
    if (ring.size() < 3) {
      return Status::ParseError("polygon ring needs >= 3 distinct points");
    }
    return ring;
  }

  Result<Polygon> ReadPolygonBody() {
    TELEIOS_RETURN_IF_ERROR(Expect('('));
    Polygon poly;
    TELEIOS_ASSIGN_OR_RETURN(poly.outer, ReadRing());
    while (TryChar(',')) {
      TELEIOS_ASSIGN_OR_RETURN(Ring hole, ReadRing());
      poly.holes.push_back(std::move(hole));
    }
    TELEIOS_RETURN_IF_ERROR(Expect(')'));
    return poly;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void WriteCoord(std::ostringstream& os, const Point& p) {
  os << StrFormat("%.9g %.9g", p.x, p.y);
}

void WriteRing(std::ostringstream& os, const Ring& ring) {
  os << "(";
  for (size_t i = 0; i < ring.size(); ++i) {
    if (i) os << ", ";
    WriteCoord(os, ring[i]);
  }
  if (!ring.empty()) {
    os << ", ";
    WriteCoord(os, ring[0]);  // close the ring
  }
  os << ")";
}

void WritePolygonBody(std::ostringstream& os, const Polygon& poly) {
  os << "(";
  WriteRing(os, poly.outer);
  for (const Ring& hole : poly.holes) {
    os << ", ";
    WriteRing(os, hole);
  }
  os << ")";
}

}  // namespace

Result<Geometry> ParseWkt(const std::string& wkt) {
  WktReader reader(wkt);
  TELEIOS_ASSIGN_OR_RETURN(Geometry g, reader.Read());
  TELEIOS_RETURN_IF_ERROR(reader.CheckDone());
  return g;
}

std::string WriteWkt(const Geometry& geometry) {
  std::ostringstream os;
  switch (geometry.kind()) {
    case GeometryKind::kEmpty:
      return "GEOMETRYCOLLECTION EMPTY";
    case GeometryKind::kPoint:
      os << "POINT (";
      WriteCoord(os, geometry.points()[0]);
      os << ")";
      return os.str();
    case GeometryKind::kMultiPoint: {
      os << "MULTIPOINT (";
      for (size_t i = 0; i < geometry.points().size(); ++i) {
        if (i) os << ", ";
        os << "(";
        WriteCoord(os, geometry.points()[i]);
        os << ")";
      }
      os << ")";
      return os.str();
    }
    case GeometryKind::kLineString: {
      os << "LINESTRING (";
      const auto& pts = geometry.lines()[0].points;
      for (size_t i = 0; i < pts.size(); ++i) {
        if (i) os << ", ";
        WriteCoord(os, pts[i]);
      }
      os << ")";
      return os.str();
    }
    case GeometryKind::kMultiLineString: {
      os << "MULTILINESTRING (";
      for (size_t l = 0; l < geometry.lines().size(); ++l) {
        if (l) os << ", ";
        os << "(";
        const auto& pts = geometry.lines()[l].points;
        for (size_t i = 0; i < pts.size(); ++i) {
          if (i) os << ", ";
          WriteCoord(os, pts[i]);
        }
        os << ")";
      }
      os << ")";
      return os.str();
    }
    case GeometryKind::kPolygon:
      os << "POLYGON ";
      WritePolygonBody(os, geometry.polygons()[0]);
      return os.str();
    case GeometryKind::kMultiPolygon: {
      os << "MULTIPOLYGON (";
      for (size_t i = 0; i < geometry.polygons().size(); ++i) {
        if (i) os << ", ";
        WritePolygonBody(os, geometry.polygons()[i]);
      }
      os << ")";
      return os.str();
    }
  }
  return "GEOMETRYCOLLECTION EMPTY";
}

}  // namespace teleios::geo
