#ifndef TELEIOS_GEO_CRS_H_
#define TELEIOS_GEO_CRS_H_

#include "common/status.h"
#include "geo/geometry.h"

namespace teleios::geo {

/// Mean Earth radius in meters (spherical model).
constexpr double kEarthRadiusMeters = 6371008.8;

/// WGS84 lon/lat (degrees) -> Web Mercator (EPSG:3857) meters.
Point Wgs84ToWebMercator(const Point& lonlat);
/// Web Mercator meters -> WGS84 lon/lat degrees.
Point WebMercatorToWgs84(const Point& xy);

/// Great-circle (haversine) distance in meters between two lon/lat
/// points in degrees.
double HaversineMeters(const Point& a, const Point& b);

/// Approximate geodesic distance in meters between two lon/lat
/// geometries: Euclidean distance in degrees scaled by the local metric
/// (cos-latitude corrected). Adequate for the regional extents of the
/// fire-monitoring application.
double GeodesicDistanceMeters(const Geometry& a, const Geometry& b);

/// Affine geo-referencing transform mapping pixel (col, row) to world
/// coordinates — the standard 6-parameter GDAL-style geotransform:
///   x = origin_x + col * pixel_w + row * rot_x
///   y = origin_y + col * rot_y   + row * pixel_h   (pixel_h < 0 for
///                                                   north-up images)
struct GeoTransform {
  double origin_x = 0;
  double origin_y = 0;
  double pixel_w = 1;
  double pixel_h = -1;
  double rot_x = 0;
  double rot_y = 0;

  Point PixelToWorld(double col, double row) const;
  /// Inverse mapping; InvalidArgument if the transform is singular.
  Result<Point> WorldToPixel(const Point& world) const;
};

/// Applies `transform` to every vertex of `g`.
Geometry TransformGeometry(const Geometry& g, const GeoTransform& transform);

}  // namespace teleios::geo

#endif  // TELEIOS_GEO_CRS_H_
