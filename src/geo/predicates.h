#ifndef TELEIOS_GEO_PREDICATES_H_
#define TELEIOS_GEO_PREDICATES_H_

#include <vector>

#include "geo/geometry.h"

namespace teleios::geo {

/// 2x the signed area of triangle (a, b, c); > 0 when c is left of a->b.
double Cross(const Point& a, const Point& b, const Point& c);

/// True if segments [a1,a2] and [b1,b2] intersect (touching counts).
bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2);

/// Euclidean distance from `p` to segment [a,b].
double PointSegmentDistance(const Point& p, const Point& a, const Point& b);

/// Minimum distance between two segments (0 when they intersect).
double SegmentSegmentDistance(const Point& a1, const Point& a2,
                              const Point& b1, const Point& b2);

/// True if `p` lies inside or on `ring` (even-odd rule; boundary counts
/// as inside).
bool PointInRing(const Point& p, const Ring& ring);

/// True if `p` is inside `poly` (outer minus holes; boundary inclusive).
bool PointInPolygon(const Point& p, const Polygon& poly);

/// OGC-style topological predicates (boundary contact counts as
/// intersecting).
bool Intersects(const Geometry& a, const Geometry& b);
bool Disjoint(const Geometry& a, const Geometry& b);
/// True when every point of `b` is inside `a` (polygon containers only;
/// boundary inclusive).
bool Contains(const Geometry& a, const Geometry& b);
bool Within(const Geometry& a, const Geometry& b);

/// Minimum Euclidean distance between the two geometries (0 if they
/// intersect).
double Distance(const Geometry& a, const Geometry& b);

/// Convex hull (Andrew monotone chain) of all vertices.
Geometry ConvexHull(const Geometry& g);

/// Positive-distance buffer approximated with `segments`-gon circles
/// swept along the geometry and hulled per component. Exact for points;
/// a convex outer approximation for lines/polygons.
Geometry Buffer(const Geometry& g, double distance, int segments = 32);

}  // namespace teleios::geo

#endif  // TELEIOS_GEO_PREDICATES_H_
