#ifndef TELEIOS_GEO_WKT_H_
#define TELEIOS_GEO_WKT_H_

#include <string>

#include "common/status.h"
#include "geo/geometry.h"

namespace teleios::geo {

/// Parses an OGC Well-Known Text geometry. Supported: POINT, LINESTRING,
/// POLYGON (with holes), MULTIPOINT, MULTILINESTRING, MULTIPOLYGON, and
/// the EMPTY variants. Closing vertices of rings are dropped on input.
Result<Geometry> ParseWkt(const std::string& wkt);

/// Serializes a geometry to WKT (rings re-closed on output).
std::string WriteWkt(const Geometry& geometry);

}  // namespace teleios::geo

#endif  // TELEIOS_GEO_WKT_H_
