#ifndef TELEIOS_GEO_CLIP_H_
#define TELEIOS_GEO_CLIP_H_

#include "common/status.h"
#include "geo/geometry.h"

namespace teleios::geo {

enum class BooleanOp { kIntersection, kUnion, kDifference };

/// Polygon boolean operations via Greiner–Hormann clipping.
///
/// Operates on the outer rings of (multi)polygon inputs; degenerate
/// configurations (shared vertices, edge overlap) are handled by
/// deterministic micro-perturbation of the clip polygon. Holes of the
/// subject are re-attached to result parts that fully contain them; holes
/// of the clip participate only in kDifference via the containment fast
/// path (A fully inside B). Result may be empty, a polygon or a
/// multipolygon.
Result<Geometry> PolygonBoolean(const Geometry& subject, const Geometry& clip,
                                BooleanOp op);

/// Convenience wrappers.
Result<Geometry> Intersection(const Geometry& a, const Geometry& b);
Result<Geometry> Union(const Geometry& a, const Geometry& b);
/// a minus b.
Result<Geometry> Difference(const Geometry& a, const Geometry& b);

}  // namespace teleios::geo

#endif  // TELEIOS_GEO_CLIP_H_
