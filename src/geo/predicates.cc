#include "geo/predicates.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace teleios::geo {

namespace {
constexpr double kEps = 1e-12;

/// All boundary segments of a geometry as point pairs.
void CollectSegments(const Geometry& g,
                     std::vector<std::pair<Point, Point>>* segs) {
  for (const LineString& l : g.lines()) {
    for (size_t i = 0; i + 1 < l.points.size(); ++i) {
      segs->emplace_back(l.points[i], l.points[i + 1]);
    }
  }
  auto add_ring = [&](const Ring& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      segs->emplace_back(r[i], r[(i + 1) % r.size()]);
    }
  };
  for (const Polygon& p : g.polygons()) {
    add_ring(p.outer);
    for (const Ring& h : p.holes) add_ring(h);
  }
}

void CollectVertices(const Geometry& g, std::vector<Point>* pts) {
  for (const Point& p : g.points()) pts->push_back(p);
  for (const LineString& l : g.lines()) {
    for (const Point& p : l.points) pts->push_back(p);
  }
  for (const Polygon& poly : g.polygons()) {
    for (const Point& p : poly.outer) pts->push_back(p);
    for (const Ring& h : poly.holes) {
      for (const Point& p : h) pts->push_back(p);
    }
  }
}

bool AnyPointInPolygons(const Geometry& pts_geom, const Geometry& poly_geom) {
  std::vector<Point> pts;
  CollectVertices(pts_geom, &pts);
  for (const Point& p : pts) {
    for (const Polygon& poly : poly_geom.polygons()) {
      if (PointInPolygon(p, poly)) return true;
    }
  }
  return false;
}

}  // namespace

double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2) {
  double d1 = Cross(b1, b2, a1);
  double d2 = Cross(b1, b2, a2);
  double d3 = Cross(a1, a2, b1);
  double d4 = Cross(a1, a2, b2);
  if (((d1 > kEps && d2 < -kEps) || (d1 < -kEps && d2 > kEps)) &&
      ((d3 > kEps && d4 < -kEps) || (d3 < -kEps && d4 > kEps))) {
    return true;
  }
  auto on_segment = [](const Point& p, const Point& q, const Point& r) {
    return std::fabs(Cross(p, q, r)) <= kEps &&
           r.x >= std::min(p.x, q.x) - kEps &&
           r.x <= std::max(p.x, q.x) + kEps &&
           r.y >= std::min(p.y, q.y) - kEps &&
           r.y <= std::max(p.y, q.y) + kEps;
  };
  return on_segment(b1, b2, a1) || on_segment(b1, b2, a2) ||
         on_segment(a1, a2, b1) || on_segment(a1, a2, b2);
}

double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  double dx = b.x - a.x;
  double dy = b.y - a.y;
  double len2 = dx * dx + dy * dy;
  if (len2 <= kEps) return std::hypot(p.x - a.x, p.y - a.y);
  double t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return std::hypot(p.x - (a.x + t * dx), p.y - (a.y + t * dy));
}

double SegmentSegmentDistance(const Point& a1, const Point& a2,
                              const Point& b1, const Point& b2) {
  if (SegmentsIntersect(a1, a2, b1, b2)) return 0.0;
  return std::min(std::min(PointSegmentDistance(a1, b1, b2),
                           PointSegmentDistance(a2, b1, b2)),
                  std::min(PointSegmentDistance(b1, a1, a2),
                           PointSegmentDistance(b2, a1, a2)));
}

bool PointInRing(const Point& p, const Ring& ring) {
  size_t n = ring.size();
  if (n < 3) return false;
  // Boundary counts as inside.
  for (size_t i = 0; i < n; ++i) {
    if (PointSegmentDistance(p, ring[i], ring[(i + 1) % n]) <= 1e-9) {
      return true;
    }
  }
  bool inside = false;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = ring[i];
    const Point& b = ring[j];
    if ((a.y > p.y) != (b.y > p.y)) {
      double x = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < x) inside = !inside;
    }
  }
  return inside;
}

bool PointInPolygon(const Point& p, const Polygon& poly) {
  if (!PointInRing(p, poly.outer)) return false;
  for (const Ring& hole : poly.holes) {
    // Strictly inside a hole => outside; points on the hole boundary are
    // on the polygon boundary and count as inside.
    bool in_hole = PointInRing(p, hole);
    if (in_hole) {
      bool on_edge = false;
      size_t n = hole.size();
      for (size_t i = 0; i < n; ++i) {
        if (PointSegmentDistance(p, hole[i], hole[(i + 1) % n]) <= 1e-9) {
          on_edge = true;
          break;
        }
      }
      if (!on_edge) return false;
    }
  }
  return true;
}

bool Intersects(const Geometry& a, const Geometry& b) {
  if (a.IsEmpty() || b.IsEmpty()) return false;
  if (!a.GetEnvelope().Intersects(b.GetEnvelope())) return false;

  // Point vs anything.
  for (const Point& p : a.points()) {
    for (const Point& q : b.points()) {
      if (std::fabs(p.x - q.x) <= 1e-9 && std::fabs(p.y - q.y) <= 1e-9) {
        return true;
      }
    }
    std::vector<std::pair<Point, Point>> segs;
    CollectSegments(b, &segs);
    for (const auto& [s1, s2] : segs) {
      if (PointSegmentDistance(p, s1, s2) <= 1e-9) return true;
    }
    for (const Polygon& poly : b.polygons()) {
      if (PointInPolygon(p, poly)) return true;
    }
  }
  for (const Point& q : b.points()) {
    std::vector<std::pair<Point, Point>> segs;
    CollectSegments(a, &segs);
    for (const auto& [s1, s2] : segs) {
      if (PointSegmentDistance(q, s1, s2) <= 1e-9) return true;
    }
    for (const Polygon& poly : a.polygons()) {
      if (PointInPolygon(q, poly)) return true;
    }
  }

  // Boundary/boundary.
  std::vector<std::pair<Point, Point>> sa, sb;
  CollectSegments(a, &sa);
  CollectSegments(b, &sb);
  for (const auto& [p1, p2] : sa) {
    for (const auto& [q1, q2] : sb) {
      if (SegmentsIntersect(p1, p2, q1, q2)) return true;
    }
  }

  // Containment without boundary contact.
  if (!a.polygons().empty() && AnyPointInPolygons(b, a)) return true;
  if (!b.polygons().empty() && AnyPointInPolygons(a, b)) return true;
  return false;
}

bool Disjoint(const Geometry& a, const Geometry& b) {
  return !Intersects(a, b);
}

bool Contains(const Geometry& a, const Geometry& b) {
  if (a.polygons().empty() || b.IsEmpty()) return false;
  // Every vertex of b inside a.
  std::vector<Point> pts;
  CollectVertices(b, &pts);
  for (const Point& p : pts) {
    bool inside = false;
    for (const Polygon& poly : a.polygons()) {
      if (PointInPolygon(p, poly)) {
        inside = true;
        break;
      }
    }
    if (!inside) return false;
  }
  // No boundary of b may properly cross a's boundary. Touching is fine;
  // we test crossing by checking segment midpoints stay inside.
  std::vector<std::pair<Point, Point>> sa, sb;
  CollectSegments(a, &sa);
  CollectSegments(b, &sb);
  for (const auto& [q1, q2] : sb) {
    for (const auto& [p1, p2] : sa) {
      if (SegmentsIntersect(p1, p2, q1, q2)) {
        Point mid{(q1.x + q2.x) / 2, (q1.y + q2.y) / 2};
        bool mid_in = false;
        for (const Polygon& poly : a.polygons()) {
          if (PointInPolygon(mid, poly)) {
            mid_in = true;
            break;
          }
        }
        if (!mid_in) return false;
      }
    }
  }
  return true;
}

bool Within(const Geometry& a, const Geometry& b) { return Contains(b, a); }

double Distance(const Geometry& a, const Geometry& b) {
  if (a.IsEmpty() || b.IsEmpty()) {
    return std::numeric_limits<double>::infinity();
  }
  if (Intersects(a, b)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  std::vector<Point> pa, pb;
  CollectVertices(a, &pa);
  CollectVertices(b, &pb);
  std::vector<std::pair<Point, Point>> sa, sb;
  CollectSegments(a, &sa);
  CollectSegments(b, &sb);
  for (const Point& p : pa) {
    for (const Point& q : pb) {
      best = std::min(best, std::hypot(p.x - q.x, p.y - q.y));
    }
    for (const auto& [q1, q2] : sb) {
      best = std::min(best, PointSegmentDistance(p, q1, q2));
    }
  }
  for (const Point& q : pb) {
    for (const auto& [p1, p2] : sa) {
      best = std::min(best, PointSegmentDistance(q, p1, p2));
    }
  }
  for (const auto& [p1, p2] : sa) {
    for (const auto& [q1, q2] : sb) {
      best = std::min(best, SegmentSegmentDistance(p1, p2, q1, q2));
    }
  }
  return best;
}

Geometry ConvexHull(const Geometry& g) {
  std::vector<Point> pts;
  CollectVertices(g, &pts);
  if (pts.size() < 3) return Geometry::MakeMultiPoint(std::move(pts));
  std::sort(pts.begin(), pts.end(), [](const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  if (pts.size() < 3) return Geometry::MakeMultiPoint(std::move(pts));
  std::vector<Point> hull(2 * pts.size());
  size_t k = 0;
  for (const Point& p : pts) {  // lower hull
    while (k >= 2 && Cross(hull[k - 2], hull[k - 1], p) <= 0) --k;
    hull[k++] = p;
  }
  size_t lower = k + 1;
  for (size_t i = pts.size() - 1; i-- > 0;) {  // upper hull
    const Point& p = pts[i];
    while (k >= lower && Cross(hull[k - 2], hull[k - 1], p) <= 0) --k;
    hull[k++] = p;
  }
  hull.resize(k - 1);  // last point == first point
  Polygon poly;
  poly.outer = std::move(hull);
  return Geometry::MakePolygon(std::move(poly));
}

Geometry Buffer(const Geometry& g, double distance, int segments) {
  if (g.IsEmpty() || distance <= 0) return g;
  auto circle_points = [&](const Point& c, std::vector<Point>* out) {
    for (int i = 0; i < segments; ++i) {
      double t = 2.0 * M_PI * static_cast<double>(i) /
                 static_cast<double>(segments);
      out->push_back({c.x + distance * std::cos(t),
                      c.y + distance * std::sin(t)});
    }
  };
  // Exact circle for a single point.
  if (g.kind() == GeometryKind::kPoint) {
    std::vector<Point> ring;
    circle_points(g.AsPoint(), &ring);
    Polygon poly;
    poly.outer = std::move(ring);
    return Geometry::MakePolygon(std::move(poly));
  }
  // Otherwise: hull of circles around vertices and sampled edge points —
  // a convex outer approximation (documented in the header).
  std::vector<Point> cloud;
  std::vector<Point> vertices;
  CollectVertices(g, &vertices);
  for (const Point& v : vertices) circle_points(v, &cloud);
  std::vector<std::pair<Point, Point>> segs;
  CollectSegments(g, &segs);
  for (const auto& [a, b] : segs) {
    Point mid{(a.x + b.x) / 2, (a.y + b.y) / 2};
    circle_points(mid, &cloud);
  }
  return ConvexHull(Geometry::MakeMultiPoint(std::move(cloud)));
}

}  // namespace teleios::geo
