#ifndef TELEIOS_GEO_GEOMETRY_H_
#define TELEIOS_GEO_GEOMETRY_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace teleios::geo {

struct Point {
  double x = 0;
  double y = 0;
};

inline bool operator==(const Point& a, const Point& b) {
  return a.x == b.x && a.y == b.y;
}

/// Axis-aligned bounding box.
struct Envelope {
  double min_x = 0, min_y = 0, max_x = 0, max_y = 0;

  static Envelope Of(const Point& p) { return {p.x, p.y, p.x, p.y}; }
  static Envelope Empty();

  bool IsEmpty() const { return min_x > max_x; }
  void Expand(const Point& p);
  void Expand(const Envelope& e);
  bool Intersects(const Envelope& other) const;
  bool Contains(const Point& p) const;
  bool Contains(const Envelope& other) const;
  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
  double Area() const { return IsEmpty() ? 0 : Width() * Height(); }
  Point Center() const { return {(min_x + max_x) / 2, (min_y + max_y) / 2}; }
};

/// A ring is a closed sequence of vertices; the closing vertex is NOT
/// duplicated in storage.
using Ring = std::vector<Point>;

struct LineString {
  std::vector<Point> points;
};

struct Polygon {
  Ring outer;
  std::vector<Ring> holes;
};

enum class GeometryKind {
  kEmpty,
  kPoint,
  kLineString,
  kPolygon,
  kMultiPoint,
  kMultiLineString,
  kMultiPolygon,
};

const char* GeometryKindName(GeometryKind k);

/// An OGC simple-features geometry (the value space of stRDF WKT
/// literals). Multi variants reuse the same payload vectors.
class Geometry {
 public:
  Geometry() : kind_(GeometryKind::kEmpty) {}

  static Geometry MakePoint(double x, double y);
  static Geometry MakeMultiPoint(std::vector<Point> pts);
  static Geometry MakeLineString(std::vector<Point> pts);
  static Geometry MakeMultiLineString(std::vector<LineString> lines);
  static Geometry MakePolygon(Polygon poly);
  static Geometry MakeMultiPolygon(std::vector<Polygon> polys);
  /// Convenience: axis-aligned rectangle polygon.
  static Geometry MakeBox(double min_x, double min_y, double max_x,
                          double max_y);

  GeometryKind kind() const { return kind_; }
  bool IsEmpty() const;

  const std::vector<Point>& points() const { return points_; }
  const std::vector<LineString>& lines() const { return lines_; }
  const std::vector<Polygon>& polygons() const { return polygons_; }

  /// The single point of a kPoint geometry.
  const Point& AsPoint() const { return points_[0]; }

  Envelope GetEnvelope() const;

  /// Total area (polygons only; holes subtracted).
  double Area() const;
  /// Total length of linework (perimeter for polygons).
  double Length() const;
  /// Area-weighted centroid (vertex average for points/lines).
  Point Centroid() const;

  /// Number of component geometries (1 for simple kinds).
  size_t NumGeometries() const;

  std::string ToString() const;  // WKT (same as wkt.h WriteWkt)

 private:
  friend class GeometryBuilder;
  GeometryKind kind_;
  std::vector<Point> points_;
  std::vector<LineString> lines_;
  std::vector<Polygon> polygons_;
};

/// Signed area of a ring (positive = counter-clockwise).
double SignedRingArea(const Ring& ring);

/// Ensures outer rings are CCW and holes CW (OGC orientation).
void NormalizeOrientation(Polygon* poly);

}  // namespace teleios::geo

#endif  // TELEIOS_GEO_GEOMETRY_H_
