#ifndef TELEIOS_EO_PRODUCT_H_
#define TELEIOS_EO_PRODUCT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"
#include "strabon/strabon.h"
#include "vault/formats.h"

namespace teleios::eo {

/// EO processing levels (EO jargon, per the paper: raw data is Level 0;
/// processing derives Level 1, 2, ... standard products).
enum class ProductLevel { kL0 = 0, kL1 = 1, kL2 = 2 };

const char* ProductLevelName(ProductLevel level);

/// Catalog metadata of one standard product.
struct ProductMetadata {
  std::string id;         // catalog identifier, e.g. "MSG2-20070825-1000-L1"
  std::string satellite;
  std::string sensor;
  ProductLevel level = ProductLevel::kL0;
  int64_t acquisition_time = 0;
  std::string footprint_wkt;  // geographic coverage
  std::string file_path;      // payload location (vault)
  std::string derived_from;   // parent product id ("" for L0)
};

/// Vocabulary IRIs of the TELEIOS/NOA product ontology.
inline constexpr const char* kNoaNs =
    "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#";

/// Builds metadata from a raster header.
ProductMetadata MetadataFromHeader(const vault::TerHeader& header,
                                   ProductLevel level);

/// The relational side of the catalog: creates (if missing) and appends
/// to table "products"(id, satellite, sensor, level, acq_time, footprint,
/// path, derived_from).
Status RegisterProductRow(const ProductMetadata& meta,
                          storage::Catalog* catalog);

/// The semantic side: asserts the product's stRDF description into
/// Strabon (type, satellite, sensor, level, acquisition time as
/// xsd:dateTime, footprint as strdf:WKT, wasDerivedFrom).
Status RegisterProductTriples(const ProductMetadata& meta,
                              strabon::Strabon* strabon);

}  // namespace teleios::eo

#endif  // TELEIOS_EO_PRODUCT_H_
