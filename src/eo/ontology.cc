#include "eo/ontology.h"

#include <map>
#include <set>

#include "rdf/term.h"

namespace teleios::eo {

using rdf::Term;
using rdf::TermId;
using rdf::Triple;
using rdf::TriplePattern;

std::string OntologyTurtle() {
  return R"(@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .

# --- landcover class hierarchy -------------------------------------------
noa:Region a owl:Class .
noa:WaterBody a owl:Class ; rdfs:subClassOf noa:Region .
noa:Sea a owl:Class ; rdfs:subClassOf noa:WaterBody .
noa:Lake a owl:Class ; rdfs:subClassOf noa:WaterBody .
noa:LandArea a owl:Class ; rdfs:subClassOf noa:Region .
noa:Forest a owl:Class ; rdfs:subClassOf noa:LandArea .
noa:Agricultural a owl:Class ; rdfs:subClassOf noa:LandArea .
noa:Urban a owl:Class ; rdfs:subClassOf noa:LandArea .
noa:BareSoil a owl:Class ; rdfs:subClassOf noa:LandArea .
noa:Coast a owl:Class ; rdfs:subClassOf noa:Region .
noa:Cloud a owl:Class ; rdfs:subClassOf noa:Region .

# --- environmental monitoring events -------------------------------------
noa:Event a owl:Class .
noa:Fire a owl:Class ; rdfs:subClassOf noa:Event .
noa:Hotspot a owl:Class ; rdfs:subClassOf noa:Fire .
noa:Flood a owl:Class ; rdfs:subClassOf noa:Event .
noa:BurnedArea a owl:Class ; rdfs:subClassOf noa:Region .

# --- products and annotations ---------------------------------------------
noa:Product a owl:Class .
noa:Patch a owl:Class .
noa:hasGeometry a rdf:Property .
noa:hasConcept a rdf:Property .
noa:detectedAt a rdf:Property .
noa:hasConfidence a rdf:Property .
noa:derivedFromProduct a rdf:Property .
noa:hasAcquisitionTime a rdf:Property .
noa:producedBySatellite a rdf:Property .
noa:producedBySensor a rdf:Property .
noa:hasProcessingLevel a rdf:Property .
noa:wasDerivedFrom a rdf:Property .
noa:refinedGeometry a rdf:Property ; rdfs:subPropertyOf noa:hasGeometry .
)";
}

size_t MaterializeRdfsClosure(rdf::TripleStore* store) {
  const std::string kSubClass =
      "http://www.w3.org/2000/01/rdf-schema#subClassOf";
  const std::string kSubProp =
      "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
  TermId sub_class = store->dict().Intern(Term::Iri(kSubClass));
  TermId sub_prop = store->dict().Intern(Term::Iri(kSubProp));
  TermId rdf_type = store->dict().Intern(Term::Iri(rdf::kRdfType));

  size_t added = 0;
  // Fixpoint iteration: the ontology is tiny, so a simple loop is fine.
  bool changed = true;
  while (changed) {
    changed = false;
    std::set<std::pair<TermId, TermId>> sub_class_pairs;
    TriplePattern sc_pat;
    sc_pat.p = sub_class;
    for (const Triple& t : store->Match(sc_pat)) {
      sub_class_pairs.insert({t.s, t.o});
    }
    std::set<std::pair<TermId, TermId>> sub_prop_pairs;
    TriplePattern sp_pat;
    sp_pat.p = sub_prop;
    for (const Triple& t : store->Match(sp_pat)) {
      sub_prop_pairs.insert({t.s, t.o});
    }
    auto have = [&](TermId s, TermId p, TermId o) {
      TriplePattern pat;
      pat.s = s;
      pat.p = p;
      pat.o = o;
      return !store->Match(pat).empty();
    };
    // subClassOf transitivity.
    for (const auto& [a, b] : sub_class_pairs) {
      for (const auto& [c, d] : sub_class_pairs) {
        if (b == c && a != d && !have(a, sub_class, d)) {
          store->AddEncoded({a, sub_class, d});
          ++added;
          changed = true;
        }
      }
    }
    // subPropertyOf transitivity.
    for (const auto& [a, b] : sub_prop_pairs) {
      for (const auto& [c, d] : sub_prop_pairs) {
        if (b == c && a != d && !have(a, sub_prop, d)) {
          store->AddEncoded({a, sub_prop, d});
          ++added;
          changed = true;
        }
      }
    }
    // Type inheritance.
    for (const auto& [sub, super] : sub_class_pairs) {
      TriplePattern pat;
      pat.p = rdf_type;
      pat.o = sub;
      for (const Triple& t : store->Match(pat)) {
        if (!have(t.s, rdf_type, super)) {
          store->AddEncoded({t.s, rdf_type, super});
          ++added;
          changed = true;
        }
      }
    }
    // Property inheritance: x p y, p subPropertyOf q => x q y.
    for (const auto& [p, q] : sub_prop_pairs) {
      TriplePattern pat;
      pat.p = p;
      for (const Triple& t : store->Match(pat)) {
        if (!have(t.s, q, t.o)) {
          store->AddEncoded({t.s, q, t.o});
          ++added;
          changed = true;
        }
      }
    }
  }
  return added;
}

std::vector<std::string> SuperClassesOf(const rdf::TripleStore& store,
                                        const std::string& class_iri) {
  std::vector<std::string> out;
  TermId id = store.dict().Lookup(Term::Iri(class_iri));
  if (id == rdf::kNoTerm) return out;
  TermId sub_class = store.dict().Lookup(
      Term::Iri("http://www.w3.org/2000/01/rdf-schema#subClassOf"));
  if (sub_class == rdf::kNoTerm) return out;
  // BFS over subClassOf.
  std::set<TermId> seen;
  std::vector<TermId> frontier = {id};
  while (!frontier.empty()) {
    TermId cur = frontier.back();
    frontier.pop_back();
    TriplePattern pat;
    pat.s = cur;
    pat.p = sub_class;
    for (const Triple& t : store.Match(pat)) {
      if (seen.insert(t.o).second) {
        out.push_back(store.dict().At(t.o).lexical);
        frontier.push_back(t.o);
      }
    }
  }
  return out;
}

}  // namespace teleios::eo
