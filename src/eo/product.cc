#include "eo/product.h"

#include "strabon/temporal.h"

namespace teleios::eo {

using rdf::Term;
using storage::ColumnType;
using storage::Schema;
using storage::Table;

const char* ProductLevelName(ProductLevel level) {
  switch (level) {
    case ProductLevel::kL0:
      return "L0";
    case ProductLevel::kL1:
      return "L1";
    case ProductLevel::kL2:
      return "L2";
  }
  return "?";
}

ProductMetadata MetadataFromHeader(const vault::TerHeader& header,
                                   ProductLevel level) {
  ProductMetadata meta;
  meta.id = header.name;
  meta.satellite = header.satellite;
  meta.sensor = header.sensor;
  meta.level = level;
  meta.acquisition_time = header.acquisition_time;
  meta.footprint_wkt = header.FootprintWkt();
  meta.file_path = header.path;
  return meta;
}

Status RegisterProductRow(const ProductMetadata& meta,
                          storage::Catalog* catalog) {
  if (!catalog->HasTable("products")) {
    auto table = std::make_shared<Table>(Schema({
        {"id", ColumnType::kString},
        {"satellite", ColumnType::kString},
        {"sensor", ColumnType::kString},
        {"level", ColumnType::kString},
        {"acq_time", ColumnType::kInt64},
        {"footprint", ColumnType::kString},
        {"path", ColumnType::kString},
        {"derived_from", ColumnType::kString},
    }));
    TELEIOS_RETURN_IF_ERROR(catalog->CreateTable("products", table));
  }
  TELEIOS_ASSIGN_OR_RETURN(storage::TablePtr table,
                           catalog->GetTable("products"));
  return table->AppendRow({
      Value(meta.id),
      Value(meta.satellite),
      Value(meta.sensor),
      Value(std::string(ProductLevelName(meta.level))),
      Value(meta.acquisition_time),
      Value(meta.footprint_wkt),
      Value(meta.file_path),
      Value(meta.derived_from),
  });
}

Status RegisterProductTriples(const ProductMetadata& meta,
                              strabon::Strabon* strabon) {
  std::string ns(kNoaNs);
  Term product = Term::Iri(ns + "product/" + meta.id);
  strabon->Add(product, Term::Iri(rdf::kRdfType), Term::Iri(ns + "Product"));
  strabon->Add(product, Term::Iri(ns + "hasProductId"),
               Term::Literal(meta.id));
  strabon->Add(product, Term::Iri(ns + "producedBySatellite"),
               Term::Literal(meta.satellite));
  strabon->Add(product, Term::Iri(ns + "producedBySensor"),
               Term::Literal(meta.sensor));
  strabon->Add(product, Term::Iri(ns + "hasProcessingLevel"),
               Term::Literal(ProductLevelName(meta.level)));
  strabon->Add(
      product, Term::Iri(ns + "hasAcquisitionTime"),
      Term::Literal(strabon::FormatDateTime(meta.acquisition_time),
                    rdf::kXsdDateTime));
  strabon->Add(product, Term::Iri(ns + "hasGeometry"),
               Term::WktLiteral(meta.footprint_wkt));
  strabon->Add(product, Term::Iri(ns + "hasFilePath"),
               Term::Literal(meta.file_path));
  if (!meta.derived_from.empty()) {
    strabon->Add(product, Term::Iri(ns + "wasDerivedFrom"),
                 Term::Iri(ns + "product/" + meta.derived_from));
  }
  return Status::OK();
}

}  // namespace teleios::eo
