#ifndef TELEIOS_EO_ONTOLOGY_H_
#define TELEIOS_EO_ONTOLOGY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/triple_store.h"

namespace teleios::eo {

/// Returns the TELEIOS landcover / fire-monitoring domain ontology as
/// Turtle: a class hierarchy (Region > {WaterBody > {Sea, Lake},
/// LandArea > {Forest, Agricultural, Urban, BareSoil}}, Event > {Fire >
/// Hotspot, Flood}, BurnedArea) plus the properties the NOA application
/// uses (hasGeometry, hasConcept, detectedAt, hasConfidence, ...). These
/// are the concepts that annotate standard products to close the
/// "semantic gap" (paper §1).
std::string OntologyTurtle();

/// Materializes the RDFS closure the TELEIOS knowledge layer relies on:
/// transitive rdfs:subClassOf / rdfs:subPropertyOf, type inheritance
/// (x rdf:type C, C sub D => x rdf:type D), and property inheritance.
/// Returns the number of inferred triples added.
size_t MaterializeRdfsClosure(rdf::TripleStore* store);

/// All (direct and inferred) superclasses of a class IRI.
std::vector<std::string> SuperClassesOf(const rdf::TripleStore& store,
                                        const std::string& class_iri);

}  // namespace teleios::eo

#endif  // TELEIOS_EO_ONTOLOGY_H_
