#ifndef TELEIOS_EO_SCENE_H_
#define TELEIOS_EO_SCENE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/crs.h"
#include "geo/geometry.h"
#include "vault/formats.h"

namespace teleios::eo {

/// Ground-truth fire event seeded into a synthetic scene.
struct FireEvent {
  double center_col = 0;  // pixel coordinates
  double center_row = 0;
  double radius = 2.0;    // pixels
  double intensity = 60;  // Kelvin above background at the center (3.9um)
};

/// Parameters of the synthetic MSG/SEVIRI-like scene generator. The
/// default footprint covers the Peloponnese (the paper's demo region) at
/// SEVIRI-like low spatial resolution — the resolution is what produces
/// the mixed coastline pixels that the refinement scenario must clean up.
struct SceneSpec {
  int width = 128;
  int height = 128;
  uint64_t seed = 42;
  int num_fires = 4;
  /// Sun-glint events over the sea: bright 3.9um spots with no 10.8um
  /// echo — the classic false-alarm source for naive threshold fire
  /// detection, and exactly what the stSPARQL refinement step removes.
  int num_glints = 3;
  double cloud_cover = 0.08;   // fraction of sky
  double sea_level = 0.48;     // landmask threshold on the noise field
  // Footprint (lon/lat degrees), default Peloponnese.
  double lon_min = 21.0;
  double lon_max = 23.5;
  double lat_min = 36.2;
  double lat_max = 38.5;
  int64_t acquisition_time = 1188036000;  // 2007-08-25T10:00:00 UTC
  std::string name = "MSG2-SEVIRI-scene";
};

/// A synthetic Level-1-style multiband scene plus ground truth.
struct Scene {
  SceneSpec spec;
  geo::GeoTransform transform;
  // Bands, row-major (row*width + col):
  std::vector<double> vis006;  // visible reflectance [0,1]
  std::vector<double> nir016;  // near-IR reflectance [0,1]
  std::vector<double> tir039;  // 3.9um brightness temperature (K)
  std::vector<double> tir108;  // 10.8um brightness temperature (K)
  std::vector<uint8_t> landmask;  // 1 = land
  std::vector<uint8_t> cloudmask; // 1 = cloud
  std::vector<FireEvent> fires;   // ground truth

  size_t PixelCount() const {
    return static_cast<size_t>(spec.width) * spec.height;
  }

  /// World coordinates of a pixel center.
  geo::Point PixelCenter(double col, double row) const {
    return transform.PixelToWorld(col + 0.5, row + 0.5);
  }

  /// Packs the scene as a .ter raster (bands VIS006, NIR016, IR039,
  /// IR108, plus LANDMASK/CLOUDMASK as 0/1 bands).
  vault::TerRaster ToTerRaster() const;

  /// Ground-truth fire footprint (union of per-event circles) in world
  /// coordinates — the reference for thematic-accuracy scoring.
  geo::Geometry GroundTruthFires() const;
};

/// Deterministic synthetic scene generator (value-noise terrain, diurnal
/// thermal field, gaussian fire plumes, noise-blob clouds).
Result<Scene> GenerateScene(const SceneSpec& spec);

/// Rebuilds a Scene from a .ter raster previously written with
/// Scene::ToTerRaster (bands VIS006/NIR016/IR039/IR108 required; masks
/// default to all-land / no-cloud when absent). Ground-truth fires are
/// not recoverable from the raster and stay empty.
Result<Scene> SceneFromRaster(const vault::TerRaster& raster);

/// Coarse land polygon(s) extracted from the landmask (marching squares
/// on the mask at `step`-pixel resolution), in world coordinates. Used to
/// derive the synthetic coastline linked-data layer.
geo::Geometry LandPolygons(const Scene& scene, int step = 4);

}  // namespace teleios::eo

#endif  // TELEIOS_EO_SCENE_H_
