#include "eo/scene.h"

#include <algorithm>
#include <cmath>

#include "geo/polygonize.h"

namespace teleios::eo {

namespace {

/// Small deterministic PRNG (xorshift64*).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;
  }

 private:
  uint64_t state_;
};

/// Hash-based lattice value in [0,1) for octaved value noise.
double LatticeValue(uint64_t seed, int64_t x, int64_t y) {
  uint64_t h = seed;
  h ^= static_cast<uint64_t>(x) * 0x9e3779b97f4a7c15ull;
  h ^= static_cast<uint64_t>(y) * 0xc2b2ae3d27d4eb4full;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 32;
  return static_cast<double>(h >> 11) / 9007199254740992.0;
}

double SmoothStep(double t) { return t * t * (3 - 2 * t); }

/// One octave of value noise at frequency `freq` cells across the image.
double ValueNoise(uint64_t seed, double u, double v, double freq) {
  double x = u * freq;
  double y = v * freq;
  int64_t x0 = static_cast<int64_t>(std::floor(x));
  int64_t y0 = static_cast<int64_t>(std::floor(y));
  double fx = SmoothStep(x - static_cast<double>(x0));
  double fy = SmoothStep(y - static_cast<double>(y0));
  double v00 = LatticeValue(seed, x0, y0);
  double v10 = LatticeValue(seed, x0 + 1, y0);
  double v01 = LatticeValue(seed, x0, y0 + 1);
  double v11 = LatticeValue(seed, x0 + 1, y0 + 1);
  return (v00 * (1 - fx) + v10 * fx) * (1 - fy) +
         (v01 * (1 - fx) + v11 * fx) * fy;
}

/// Fractal (octaved) value noise in [0,1].
double Fractal(uint64_t seed, double u, double v, int octaves) {
  double sum = 0;
  double amp = 0.5;
  double freq = 4.0;
  double norm = 0;
  for (int o = 0; o < octaves; ++o) {
    sum += amp * ValueNoise(seed + static_cast<uint64_t>(o) * 1013u, u, v,
                            freq);
    norm += amp;
    amp *= 0.5;
    freq *= 2.0;
  }
  return sum / norm;
}

}  // namespace

Result<Scene> GenerateScene(const SceneSpec& spec) {
  if (spec.width <= 0 || spec.height <= 0) {
    return Status::InvalidArgument("non-positive scene size");
  }
  Scene scene;
  scene.spec = spec;
  scene.transform.origin_x = spec.lon_min;
  scene.transform.origin_y = spec.lat_max;
  scene.transform.pixel_w = (spec.lon_max - spec.lon_min) / spec.width;
  scene.transform.pixel_h = -(spec.lat_max - spec.lat_min) / spec.height;

  size_t n = scene.PixelCount();
  scene.vis006.resize(n);
  scene.nir016.resize(n);
  scene.tir039.resize(n);
  scene.tir108.resize(n);
  scene.landmask.resize(n);
  scene.cloudmask.resize(n);

  Rng rng(spec.seed);
  uint64_t terrain_seed = rng.Next();
  uint64_t veg_seed = rng.Next();
  uint64_t cloud_seed = rng.Next();
  uint64_t temp_seed = rng.Next();

  // Elevation field with a westward land bias (Peloponnese-like: land
  // mass with ragged coastline, sea to the east/south).
  std::vector<double> elevation(n);
  for (int r = 0; r < spec.height; ++r) {
    for (int c = 0; c < spec.width; ++c) {
      double u = static_cast<double>(c) / spec.width;
      double v = static_cast<double>(r) / spec.height;
      double noise = Fractal(terrain_seed, u, v, 5);
      double cx = u - 0.42;
      double cy = v - 0.45;
      double radial = 1.0 - 1.4 * std::sqrt(cx * cx + cy * cy);
      elevation[static_cast<size_t>(r) * spec.width + c] =
          0.55 * noise + 0.45 * std::max(0.0, radial);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    scene.landmask[i] = elevation[i] > spec.sea_level ? 1 : 0;
  }

  // Clouds: threshold a smoother noise field at the requested coverage.
  {
    std::vector<double> cloud_field(n);
    for (int r = 0; r < spec.height; ++r) {
      for (int c = 0; c < spec.width; ++c) {
        double u = static_cast<double>(c) / spec.width;
        double v = static_cast<double>(r) / spec.height;
        cloud_field[static_cast<size_t>(r) * spec.width + c] =
            Fractal(cloud_seed, u, v, 3);
      }
    }
    std::vector<double> sorted = cloud_field;
    std::sort(sorted.begin(), sorted.end());
    double cover = std::clamp(spec.cloud_cover, 0.0, 0.95);
    double threshold =
        sorted[static_cast<size_t>((1.0 - cover) * (n - 1))];
    for (size_t i = 0; i < n; ++i) {
      scene.cloudmask[i] = cloud_field[i] > threshold ? 1 : 0;
    }
  }

  // Radiometry.
  for (int r = 0; r < spec.height; ++r) {
    for (int c = 0; c < spec.width; ++c) {
      size_t i = static_cast<size_t>(r) * spec.width + c;
      double u = static_cast<double>(c) / spec.width;
      double v = static_cast<double>(r) / spec.height;
      bool land = scene.landmask[i] != 0;
      double tnoise = Fractal(temp_seed, u, v, 4) - 0.5;
      double veg = Fractal(veg_seed, u, v, 4);
      if (land) {
        // Summer daytime land: warm, variable.
        scene.tir108[i] = 302.0 + 8.0 * tnoise - 12.0 * elevation[i];
        scene.vis006[i] = 0.12 + 0.18 * veg;
        scene.nir016[i] = 0.20 + 0.35 * veg;
      } else {
        scene.tir108[i] = 293.0 + 2.0 * tnoise;
        scene.vis006[i] = 0.04 + 0.02 * veg;
        scene.nir016[i] = 0.02 + 0.01 * veg;
      }
      // 3.9um tracks 10.8um closely in the absence of fire (small solar
      // component on land).
      scene.tir039[i] = scene.tir108[i] + (land ? 2.5 : 0.5) + 1.0 * tnoise;
      if (scene.cloudmask[i]) {
        scene.vis006[i] = 0.65 + 0.2 * veg;
        scene.nir016[i] = 0.55 + 0.2 * veg;
        scene.tir108[i] = 262.0 + 6.0 * tnoise;
        scene.tir039[i] = 264.0 + 6.0 * tnoise;
      }
    }
  }

  // Fires: on cloud-free land, away from the border. The gaussian plume
  // on the 3.9um band (weak echo at 10.8um) reproduces the SEVIRI fire
  // signature, and plume tails crossing the coastline produce the false
  // positives the refinement step removes.
  int placed = 0;
  int attempts = 0;
  while (placed < spec.num_fires && attempts < 10000) {
    ++attempts;
    int c = 4 + static_cast<int>(rng.Uniform() * (spec.width - 8));
    int r = 4 + static_cast<int>(rng.Uniform() * (spec.height - 8));
    size_t i = static_cast<size_t>(r) * spec.width + c;
    if (!scene.landmask[i] || scene.cloudmask[i]) continue;
    FireEvent fire;
    fire.center_col = c + rng.Uniform();
    fire.center_row = r + rng.Uniform();
    fire.radius = 1.5 + rng.Uniform() * 2.5;
    fire.intensity = 40.0 + rng.Uniform() * 40.0;
    scene.fires.push_back(fire);
    ++placed;
  }
  // Sun glint: hot-looking 3.9um spots over cloud-free sea. These fool
  // the absolute-threshold classifier (they exceed typical fire
  // thresholds) but not the contextual one (landmask rejection), and the
  // hotspots they produce are the ones semantic refinement removes.
  {
    int glints = 0;
    int glint_attempts = 0;
    while (glints < spec.num_glints && glint_attempts < 10000) {
      ++glint_attempts;
      int c = 4 + static_cast<int>(rng.Uniform() * (spec.width - 8));
      int r = 4 + static_cast<int>(rng.Uniform() * (spec.height - 8));
      size_t i = static_cast<size_t>(r) * spec.width + c;
      if (scene.landmask[i] || scene.cloudmask[i]) continue;
      double radius = 1.2 + rng.Uniform() * 1.8;
      double intensity = 30.0 + rng.Uniform() * 25.0;
      int r0 = std::max(0, r - static_cast<int>(4 * radius));
      int r1 = std::min(spec.height - 1, r + static_cast<int>(4 * radius));
      int c0 = std::max(0, c - static_cast<int>(4 * radius));
      int c1 = std::min(spec.width - 1, c + static_cast<int>(4 * radius));
      for (int rr = r0; rr <= r1; ++rr) {
        for (int cc = c0; cc <= c1; ++cc) {
          double dx = cc - c;
          double dy = rr - r;
          double g = std::exp(-(dx * dx + dy * dy) / (2.0 * radius * radius));
          size_t j = static_cast<size_t>(rr) * spec.width + cc;
          scene.tir039[j] += intensity * g;  // no 10.8um echo
          scene.vis006[j] += 0.2 * g;
        }
      }
      ++glints;
    }
  }

  for (const FireEvent& fire : scene.fires) {
    int r0 = std::max(0, static_cast<int>(fire.center_row - 4 * fire.radius));
    int r1 = std::min(spec.height - 1,
                      static_cast<int>(fire.center_row + 4 * fire.radius));
    int c0 = std::max(0, static_cast<int>(fire.center_col - 4 * fire.radius));
    int c1 = std::min(spec.width - 1,
                      static_cast<int>(fire.center_col + 4 * fire.radius));
    for (int r = r0; r <= r1; ++r) {
      for (int c = c0; c <= c1; ++c) {
        double dx = (c + 0.5) - fire.center_col;
        double dy = (r + 0.5) - fire.center_row;
        double g = std::exp(-(dx * dx + dy * dy) /
                            (2.0 * fire.radius * fire.radius));
        size_t i = static_cast<size_t>(r) * spec.width + c;
        scene.tir039[i] += fire.intensity * g;
        scene.tir108[i] += 0.18 * fire.intensity * g;
      }
    }
  }
  return scene;
}

Result<Scene> SceneFromRaster(const vault::TerRaster& raster) {
  Scene scene;
  scene.spec.width = raster.width;
  scene.spec.height = raster.height;
  scene.spec.acquisition_time = raster.acquisition_time;
  scene.spec.name = raster.name;
  scene.transform = raster.transform;
  geo::Point tl = raster.transform.PixelToWorld(0, 0);
  geo::Point br = raster.transform.PixelToWorld(raster.width, raster.height);
  scene.spec.lon_min = std::min(tl.x, br.x);
  scene.spec.lon_max = std::max(tl.x, br.x);
  scene.spec.lat_min = std::min(tl.y, br.y);
  scene.spec.lat_max = std::max(tl.y, br.y);

  auto band = [&](const char* name) -> Result<const std::vector<double>*> {
    int i = raster.BandIndex(name);
    if (i < 0) {
      return Status::NotFound(std::string("raster lacks band ") + name);
    }
    return &raster.bands[static_cast<size_t>(i)];
  };
  TELEIOS_ASSIGN_OR_RETURN(const std::vector<double>* vis, band("VIS006"));
  TELEIOS_ASSIGN_OR_RETURN(const std::vector<double>* nir, band("NIR016"));
  TELEIOS_ASSIGN_OR_RETURN(const std::vector<double>* t39, band("IR039"));
  TELEIOS_ASSIGN_OR_RETURN(const std::vector<double>* t108, band("IR108"));
  scene.vis006 = *vis;
  scene.nir016 = *nir;
  scene.tir039 = *t39;
  scene.tir108 = *t108;
  size_t n = scene.PixelCount();
  scene.landmask.assign(n, 1);
  scene.cloudmask.assign(n, 0);
  int lm = raster.BandIndex("LANDMASK");
  if (lm >= 0) {
    for (size_t i = 0; i < n; ++i) {
      scene.landmask[i] =
          raster.bands[static_cast<size_t>(lm)][i] > 0.5 ? 1 : 0;
    }
  }
  int cm = raster.BandIndex("CLOUDMASK");
  if (cm >= 0) {
    for (size_t i = 0; i < n; ++i) {
      scene.cloudmask[i] =
          raster.bands[static_cast<size_t>(cm)][i] > 0.5 ? 1 : 0;
    }
  }
  return scene;
}

vault::TerRaster Scene::ToTerRaster() const {
  vault::TerRaster raster;
  raster.name = spec.name;
  raster.satellite = "Meteosat-9";
  raster.sensor = "SEVIRI";
  raster.width = spec.width;
  raster.height = spec.height;
  raster.acquisition_time = spec.acquisition_time;
  raster.transform = transform;
  raster.band_names = {"VIS006", "NIR016", "IR039", "IR108", "LANDMASK",
                       "CLOUDMASK"};
  raster.bands.resize(6);
  raster.bands[0] = vis006;
  raster.bands[1] = nir016;
  raster.bands[2] = tir039;
  raster.bands[3] = tir108;
  raster.bands[4].assign(landmask.begin(), landmask.end());
  raster.bands[5].assign(cloudmask.begin(), cloudmask.end());
  return raster;
}

geo::Geometry Scene::GroundTruthFires() const {
  std::vector<geo::Polygon> polys;
  for (const FireEvent& fire : fires) {
    geo::Ring ring;
    for (int k = 0; k < 16; ++k) {
      double t = 2.0 * M_PI * k / 16.0;
      double col = fire.center_col + fire.radius * std::cos(t);
      double row = fire.center_row + fire.radius * std::sin(t);
      ring.push_back(transform.PixelToWorld(col, row));
    }
    polys.push_back({std::move(ring), {}});
  }
  return geo::Geometry::MakeMultiPolygon(std::move(polys));
}

geo::Geometry LandPolygons(const Scene& scene, int step) {
  int w = (scene.spec.width + step - 1) / step;
  int h = (scene.spec.height + step - 1) / step;
  std::vector<uint8_t> coarse(static_cast<size_t>(w) * h, 0);
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      int land = 0;
      int total = 0;
      for (int rr = r * step; rr < std::min((r + 1) * step, scene.spec.height);
           ++rr) {
        for (int cc = c * step;
             cc < std::min((c + 1) * step, scene.spec.width); ++cc) {
          land += scene.landmask[static_cast<size_t>(rr) * scene.spec.width +
                                 cc];
          ++total;
        }
      }
      coarse[static_cast<size_t>(r) * w + c] =
          (total > 0 && land * 2 >= total) ? 1 : 0;
    }
  }
  std::vector<geo::Polygon> pixel_polys = geo::PolygonizeMask(coarse, w, h);
  // Scale back to full-resolution pixels, then to world coordinates.
  std::vector<geo::Polygon> world;
  for (geo::Polygon& poly : pixel_polys) {
    geo::Polygon out;
    auto map_ring = [&](const geo::Ring& ring) {
      geo::Ring r;
      for (const geo::Point& p : ring) {
        r.push_back(scene.transform.PixelToWorld(p.x * step, p.y * step));
      }
      return r;
    };
    out.outer = map_ring(poly.outer);
    for (const geo::Ring& hole : poly.holes) {
      out.holes.push_back(map_ring(hole));
    }
    world.push_back(std::move(out));
  }
  return geo::Geometry::MakeMultiPolygon(std::move(world));
}

}  // namespace teleios::eo
