// The io-layer implementation of the obs::EventSink seam: the event
// log (which sits *below* io in the layer DAG — io itself posts events
// and records metrics) declares the interface and this factory; the
// definition lives here so every sink byte crosses the fault-injectable
// io::FileSystem boundary, rotate-aside and parent-directory fsync
// included.

#include <memory>
#include <string>
#include <utility>

#include "io/filesystem.h"
#include "obs/event_log.h"

namespace teleios::obs {

namespace {

class JsonlEventSink : public EventSink {
 public:
  explicit JsonlEventSink(std::unique_ptr<io::WritableFile> file)
      : file_(std::move(file)) {}

  Status Append(const std::string& line) override {
    return file_->Append(line);
  }
  Status Flush() override { return file_->Flush(); }
  Status Sync() override { return file_->Sync(); }
  Status Close() override { return file_->Close(); }

 private:
  std::unique_ptr<io::WritableFile> file_;
};

}  // namespace

Result<std::unique_ptr<EventSink>> OpenJsonlEventSink(
    const std::string& path) {
  io::FileSystem* fs = io::GetFileSystem();
  // Keep one restart of history: NewWritableFile truncates, so an
  // existing sink file is rotated aside first, and the rename is made
  // durable the same way WriteFileAtomic does it — by fsyncing the
  // parent directory.
  TELEIOS_ASSIGN_OR_RETURN(bool exists, fs->FileExists(path));
  if (exists) {
    TELEIOS_RETURN_IF_ERROR(fs->Rename(path, path + ".prev"));
    size_t slash = path.find_last_of('/');
    std::string parent =
        slash == std::string::npos ? "." : path.substr(0, slash);
    TELEIOS_RETURN_IF_ERROR(fs->SyncDir(parent));
  }
  TELEIOS_ASSIGN_OR_RETURN(std::unique_ptr<io::WritableFile> file,
                           fs->NewWritableFile(path));
  return Result<std::unique_ptr<EventSink>>(
      std::make_unique<JsonlEventSink>(std::move(file)));
}

}  // namespace teleios::obs
