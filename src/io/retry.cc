#include "io/retry.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"

namespace teleios::io {

double RetryPolicy::BackoffMillis(int attempt) const {
  if (base_backoff_ms <= 0 || attempt < 2) return 0;
  return base_backoff_ms * std::pow(multiplier, attempt - 2);
}

namespace internal {

void OnRetry(const std::string& what, double backoff_ms) {
  obs::Count("teleios_io_retries_total");
  TELEIOS_LOG(Warning) << "retrying " << what << " after " << backoff_ms
                       << "ms backoff";
  if (backoff_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
  }
}

Status BeforeRetry(const RetryPolicy& policy, const std::string& what,
                   double backoff_ms) {
  if (policy.cancel != nullptr) {
    Status live = policy.cancel->Check();
    if (!live.ok()) {
      obs::Count("teleios_io_retries_abandoned_total");
      return Status(live.code(),
                    "not retrying " + what + ": " + live.message());
    }
    if (backoff_ms > 0 && policy.cancel->has_deadline()) {
      auto wake = std::chrono::steady_clock::now() +
                  std::chrono::duration<double, std::milli>(backoff_ms);
      if (wake >= policy.cancel->deadline()) {
        obs::Count("teleios_io_retries_abandoned_total");
        return Status::DeadlineExceeded(
            "not retrying " + what + ": backoff of " +
            std::to_string(backoff_ms) +
            "ms would overshoot the caller's deadline");
      }
    }
  }
  OnRetry(what, backoff_ms);
  return Status::OK();
}

}  // namespace internal

}  // namespace teleios::io
