#include "io/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"

namespace teleios::io {

double RetryPolicy::BackoffMillis(int attempt) const {
  if (base_backoff_ms <= 0 || attempt < 2) return 0;
  return base_backoff_ms * std::pow(multiplier, attempt - 2);
}

namespace {

/// splitmix64: tiny, stateless-per-step, well-mixed — exactly enough
/// PRNG for jitter, with no <random> engine state to drag around.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits.
double UniformUnit(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

double RetryPolicy::NextBackoffMillis(int attempt, double prev_ms,
                                      uint64_t* rng_state) const {
  if (base_backoff_ms <= 0 || attempt < 2) return 0;
  double cap = max_backoff_ms > 0
                   ? static_cast<double>(max_backoff_ms)
                   : std::numeric_limits<double>::infinity();
  if (!decorrelated_jitter) {
    return std::min(cap, BackoffMillis(attempt));
  }
  // Decorrelated jitter: uniform over [base, min(cap, 3 * prev)), where
  // the first retry's prev is the base itself.
  double base = static_cast<double>(base_backoff_ms);
  double upper = std::min(cap, 3.0 * std::max(prev_ms, base));
  if (upper <= base) return std::min(cap, base);
  return base + UniformUnit(rng_state) * (upper - base);
}

namespace internal {

void OnRetry(const std::string& what, double backoff_ms) {
  obs::Count("teleios_io_retries_total");
  TELEIOS_LOG(Warning) << "retrying " << what << " after " << backoff_ms
                       << "ms backoff";
  if (backoff_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
  }
}

Status BeforeRetry(const RetryPolicy& policy, const std::string& what,
                   double backoff_ms) {
  if (policy.cancel != nullptr) {
    Status live = policy.cancel->Check();
    if (!live.ok()) {
      obs::Count("teleios_io_retries_abandoned_total");
      return Status(live.code(),
                    "not retrying " + what + ": " + live.message());
    }
    if (backoff_ms > 0 && policy.cancel->has_deadline()) {
      auto wake = std::chrono::steady_clock::now() +
                  std::chrono::duration<double, std::milli>(backoff_ms);
      if (wake >= policy.cancel->deadline()) {
        obs::Count("teleios_io_retries_abandoned_total");
        return Status::DeadlineExceeded(
            "not retrying " + what + ": backoff of " +
            std::to_string(backoff_ms) +
            "ms would overshoot the caller's deadline");
      }
    }
  }
  OnRetry(what, backoff_ms);
  return Status::OK();
}

}  // namespace internal

}  // namespace teleios::io
