#include "io/wal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/crc32c.h"
#include "io/codec.h"
#include "obs/metrics.h"

namespace teleios::io {

namespace {

constexpr size_t kWalHeaderBytes = 8;   // magic + format version
constexpr size_t kFrameHeaderBytes = 8; // payload length + CRC32C

std::string WalHeader() {
  std::string header(kWalMagic, sizeof(kWalMagic));
  PutU32(&header, kWalFormatVersion);
  return header;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

std::string BaseName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

std::string EncodeWalFrame(uint64_t lsn, uint32_t type,
                           std::string_view body) {
  std::string payload;
  payload.reserve(12 + body.size());
  PutU64(&payload, lsn);
  PutU32(&payload, type);
  payload.append(body.data(), body.size());

  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32c(payload));
  frame += payload;
  return frame;
}

std::string WalSegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal_%010llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool ParseWalSegmentSeq(const std::string& name, uint64_t* seq) {
  constexpr std::string_view kPrefix = "wal_";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() != kPrefix.size() + 10 + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefix.size(); i < kPrefix.size() + 10; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

Result<std::vector<std::string>> ListWalSegments(const std::string& dir) {
  auto listed = GetFileSystem()->ListDirectory(dir);
  if (!listed.ok()) {
    // A WAL directory that was never written is an empty log, not an
    // error: the first checkpoint or append creates it.
    if (listed.status().code() == StatusCode::kNotFound) {
      return std::vector<std::string>{};
    }
    return listed.status();
  }
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& path : *listed) {
    uint64_t seq = 0;
    if (ParseWalSegmentSeq(BaseName(path), &seq)) {
      segments.emplace_back(seq, path);
    }
  }
  std::sort(segments.begin(), segments.end());
  std::vector<std::string> paths;
  paths.reserve(segments.size());
  for (auto& [seq, path] : segments) paths.push_back(std::move(path));
  return paths;
}

namespace {

/// Decodes one segment image, invoking `apply` per intact record.
/// `is_crash_tail` marks frames that stop exactly at end-of-file as torn
/// (interrupted append) rather than corrupt; this applies to EVERY
/// segment, not just the newest one, because a failed sync poisons a
/// segment mid-run and the writer rotates past it — the torn record was
/// never acknowledged, so dropping it preserves the durability contract.
Status ReplaySegment(const std::string& path, const std::string& image,
                     const std::function<Status(const WalRecord&)>& apply,
                     WalReplayStats* stats) {
  if (image.size() < kWalHeaderBytes) {
    // The crash interrupted segment creation before the header landed.
    ++stats->tail_dropped;
    return Status::OK();
  }
  if (image.compare(0, sizeof(kWalMagic), kWalMagic, sizeof(kWalMagic)) !=
      0) {
    return Status::DataLoss("WAL segment '" + path +
                            "': bad magic (not a TELEIOS WAL segment)");
  }
  uint32_t version = 0;
  std::memcpy(&version, image.data() + sizeof(kWalMagic), sizeof(version));
  if (version > kWalFormatVersion) {
    return Status::DataLoss(
        "WAL segment '" + path + "': format version " +
        std::to_string(version) + " is newer than this binary (understands <= " +
        std::to_string(kWalFormatVersion) + "); refusing to guess the layout");
  }
  if (version == 0) {
    return Status::DataLoss("WAL segment '" + path +
                            "': corrupt format version 0");
  }

  size_t pos = kWalHeaderBytes;
  while (pos < image.size()) {
    size_t remaining = image.size() - pos;
    if (remaining < kFrameHeaderBytes) {
      ++stats->tail_dropped;  // torn mid-frame-header
      return Status::OK();
    }
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, image.data() + pos, sizeof(len));
    std::memcpy(&crc, image.data() + pos + 4, sizeof(crc));
    if (len > kMaxWalRecordLen) {
      return Status::DataLoss("WAL segment '" + path + "': record length " +
                              std::to_string(len) +
                              " exceeds the 1 GiB frame bound (corrupt "
                              "length field)");
    }
    if (len > remaining - kFrameHeaderBytes) {
      ++stats->tail_dropped;  // torn mid-payload
      return Status::OK();
    }
    std::string_view payload(image.data() + pos + kFrameHeaderBytes, len);
    if (Crc32c(payload) != crc) {
      if (pos + kFrameHeaderBytes + len == image.size()) {
        // The final frame of the segment: a crash can tear exactly this
        // record, so drop it instead of failing recovery.
        ++stats->tail_dropped;
        return Status::OK();
      }
      return Status::DataLoss(
          "WAL segment '" + path + "': checksum mismatch at offset " +
          std::to_string(pos) +
          " with records after it (mid-log corruption, not a torn tail)");
    }
    WalRecord record;
    ByteReader reader(payload);
    if (!reader.ReadU64(&record.lsn) || !reader.ReadU32(&record.type)) {
      // The checksum verified, so these bytes are what the writer wrote
      // — a sub-12-byte payload is a writer bug or hand-crafted damage.
      return Status::DataLoss("WAL segment '" + path +
                              "': record payload at offset " +
                              std::to_string(pos) + " too short for header");
    }
    record.payload.assign(payload.data() + 12, payload.size() - 12);
    TELEIOS_RETURN_IF_ERROR(apply(record));
    ++stats->records;
    stats->last_lsn = std::max(stats->last_lsn, record.lsn);
    pos += kFrameHeaderBytes + len;
  }
  return Status::OK();
}

}  // namespace

Result<WalReplayStats> ReplayWal(
    const std::string& dir,
    const std::function<Status(const WalRecord&)>& apply) {
  TELEIOS_ASSIGN_OR_RETURN(std::vector<std::string> segments,
                           ListWalSegments(dir));
  WalReplayStats stats;
  for (const std::string& path : segments) {
    TELEIOS_ASSIGN_OR_RETURN(std::string image,
                             GetFileSystem()->ReadFile(path));
    ++stats.segments;
    stats.bytes += image.size();
    TELEIOS_RETURN_IF_ERROR(ReplaySegment(path, image, apply, &stats));
  }
  obs::Count("teleios_wal_replay_records_total", stats.records);
  obs::Count("teleios_wal_replay_tail_dropped_total", stats.tail_dropped);
  return stats;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                   uint64_t next_lsn,
                                                   uint64_t initial_bytes,
                                                   const Options& options) {
  TELEIOS_RETURN_IF_ERROR(GetFileSystem()->CreateDir(dir));
  TELEIOS_ASSIGN_OR_RETURN(std::vector<std::string> segments,
                           ListWalSegments(dir));
  uint64_t next_seq = 1;
  if (!segments.empty()) {
    uint64_t max_seq = 0;
    (void)ParseWalSegmentSeq(BaseName(segments.back()), &max_seq);
    next_seq = max_seq + 1;
  }
  if (next_lsn == 0) next_lsn = 1;
  return std::unique_ptr<WalWriter>(
      new WalWriter(dir, next_seq, next_lsn, initial_bytes, options));
}

WalWriter::WalWriter(std::string dir, uint64_t next_seq, uint64_t next_lsn,
                     uint64_t initial_bytes, const Options& options)
    : dir_(std::move(dir)),
      options_(options),
      seq_(next_seq),
      next_lsn_(next_lsn),
      synced_lsn_(next_lsn - 1),
      total_bytes_(initial_bytes) {}

WalWriter::~WalWriter() {
  MutexLock lock(mu_);
  DropPendingLocked();
  if (file_ != nullptr) {
    // Unsynced bytes were never acknowledged; a failed close loses
    // nothing the durability contract promised.
    (void)file_->Close();
  }
}

Result<uint64_t> WalWriter::Append(uint32_t type, std::string_view body) {
  MutexLock lock(mu_);
  if (poisoned_) {
    // The previous segment's tail may be torn; seal it and move on so
    // new records always land after a clean header.
    if (file_ != nullptr) {
      (void)file_->Close();
      file_ = nullptr;
    }
    poisoned_ = false;
    dir_synced_ = false;
    seq_ += 1;
    segment_bytes_ = 0;
    unsynced_bytes_ = 0;
    ++rotations_total_;
    obs::Count("teleios_wal_rotations_total");
  }
  uint64_t lsn = next_lsn_;
  std::string frame = EncodeWalFrame(lsn, type, body);
  if (options_.budget != nullptr) {
    Status reserved = options_.budget->Reserve(frame.size());
    if (!reserved.ok()) return reserved;
    charged_bytes_ += frame.size();
  }
  pending_ += frame;
  next_lsn_ = lsn + 1;
  ++appends_total_;
  obs::Count("teleios_wal_appends_total");
  return lsn;
}

Status WalWriter::Sync() {
  MutexLock lock(mu_);
  return SyncLocked();
}

Status WalWriter::OpenSegmentLocked() {
  std::string path = JoinPath(dir_, WalSegmentFileName(seq_));
  auto file = GetFileSystem()->NewWritableFile(path);
  if (!file.ok()) {
    poisoned_ = true;
    return file.status();
  }
  file_ = std::move(*file);
  dir_synced_ = false;
  segment_bytes_ = 0;
  unsynced_bytes_ = 0;
  Status header = file_->Append(WalHeader());
  if (!header.ok()) {
    poisoned_ = true;
    return header;
  }
  unsynced_bytes_ = kWalHeaderBytes;
  return Status::OK();
}

Status WalWriter::SyncLocked() {
  if (pending_.empty()) return Status::OK();
  if (file_ == nullptr) {
    Status opened = OpenSegmentLocked();
    if (!opened.ok()) {
      DropPendingLocked();
      obs::Count("teleios_wal_sync_failures_total");
      return opened;
    }
  }
  Status st = file_->Append(pending_);
  if (st.ok()) {
    unsynced_bytes_ += pending_.size();
    st = file_->Sync();
  }
  if (st.ok() && !dir_synced_) {
    // First fsync of a fresh segment: make the file's directory entry
    // itself durable, or a power failure could drop the whole segment.
    st = GetFileSystem()->SyncDir(dir_);
    if (st.ok()) dir_synced_ = true;
  }
  if (!st.ok()) {
    poisoned_ = true;
    DropPendingLocked();
    obs::Count("teleios_wal_sync_failures_total");
    return st;
  }
  uint64_t synced = unsynced_bytes_;
  total_bytes_ += synced;
  segment_bytes_ += synced;
  unsynced_bytes_ = 0;
  synced_lsn_ = next_lsn_ - 1;
  DropPendingLocked();
  ++syncs_total_;
  obs::Count("teleios_wal_syncs_total");
  obs::Count("teleios_wal_bytes_synced_total", synced);
  obs::SetGauge("teleios_wal_size_bytes", static_cast<double>(total_bytes_));
  return Status::OK();
}

void WalWriter::DropPendingLocked() {
  if (options_.budget != nullptr && charged_bytes_ > 0) {
    options_.budget->Release(charged_bytes_);
  }
  charged_bytes_ = 0;
  pending_.clear();
}

Status WalWriter::Rotate() {
  MutexLock lock(mu_);
  return RotateLocked();
}

Status WalWriter::RotateLocked() {
  TELEIOS_RETURN_IF_ERROR(SyncLocked());
  Status closed = Status::OK();
  if (file_ != nullptr) {
    closed = file_->Close();
    file_ = nullptr;
  }
  poisoned_ = false;
  dir_synced_ = false;
  seq_ += 1;
  segment_bytes_ = 0;
  unsynced_bytes_ = 0;
  ++rotations_total_;
  obs::Count("teleios_wal_rotations_total");
  return closed;
}

Status WalWriter::TruncateBefore(uint64_t seq) {
  MutexLock lock(mu_);
  auto segments = ListWalSegments(dir_);
  if (!segments.ok()) return segments.status();
  Status first_error = Status::OK();
  uint64_t removed = 0;
  for (const std::string& path : *segments) {
    uint64_t file_seq = 0;
    if (!ParseWalSegmentSeq(BaseName(path), &file_seq)) continue;
    if (file_seq >= seq) continue;
    Status st = GetFileSystem()->RemoveFile(path);
    if (!st.ok() && first_error.ok()) {
      first_error = st;
      continue;
    }
    if (st.ok()) ++removed;
  }
  if (removed > 0) {
    Status synced = GetFileSystem()->SyncDir(dir_);
    if (!synced.ok() && first_error.ok()) first_error = synced;
    obs::Count("teleios_wal_truncated_segments_total", removed);
  }
  if (first_error.ok()) {
    // All older segments are gone: durable bytes are exactly what the
    // current segment holds.
    total_bytes_ = segment_bytes_;
    obs::SetGauge("teleios_wal_size_bytes",
                  static_cast<double>(total_bytes_));
  }
  return first_error;
}

WalWriter::Stats WalWriter::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.segment_seq = seq_;
  s.last_lsn = next_lsn_ - 1;
  s.synced_lsn = synced_lsn_;
  s.pending_bytes = pending_.size();
  s.total_bytes = total_bytes_;
  s.appends_total = appends_total_;
  s.syncs_total = syncs_total_;
  s.rotations_total = rotations_total_;
  return s;
}

uint64_t WalWriter::last_lsn() const {
  MutexLock lock(mu_);
  return next_lsn_ - 1;
}

uint64_t WalWriter::size_bytes() const {
  MutexLock lock(mu_);
  return total_bytes_;
}

uint64_t WalWriter::segment_seq() const {
  MutexLock lock(mu_);
  return seq_;
}

}  // namespace teleios::io
