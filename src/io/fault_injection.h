#ifndef TELEIOS_IO_FAULT_INJECTION_H_
#define TELEIOS_IO_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "io/filesystem.h"

namespace teleios::io {

/// What goes wrong when the armed fault fires.
enum class FaultKind {
  /// The op fails with a generic IoError (EIO-style).
  kIoError,
  /// An Append writes only the first half of its bytes, then errors — a
  /// torn write. Non-append ops fail with IoError.
  kShortWrite,
  /// An Append fails with "no space left on device" writing nothing.
  kEnospc,
  /// A Sync fails (battery-backed cache gone bad); other ops IoError.
  kSyncFail,
  /// A Sync silently does nothing and reports success (lying drive).
  /// Only meaningful combined with a real crash; included so harnesses
  /// can at least exercise the code path.
  kSyncDrop,
  /// A Read succeeds but one bit of the returned buffer is flipped —
  /// silent media corruption the checksum layer must catch. Non-read ops
  /// are passed through untouched.
  kBitFlip,
};

const char* FaultKindName(FaultKind kind);

/// A deterministic, seedable fault program: the `inject_at`-th counted
/// I/O operation after Arm() misbehaves per `kind`; with `every_n` > 0
/// the fault also repeats every `every_n` ops after that (fault-rate
/// benchmarks); with `crash` every operation after the first fault fails
/// too, simulating a process crash / yanked disk at that exact point.
struct FaultSpec {
  FaultKind kind = FaultKind::kIoError;
  uint64_t inject_at = 1;  // 1-based op index; 0 disables
  uint64_t every_n = 0;
  bool crash = false;
  /// When true only Read operations are counted (for read-side sweeps
  /// such as bit-flip coverage, where metadata ops are irrelevant).
  bool reads_only = false;
  uint64_t seed = 1;  // bit-flip placement
};

/// Wraps any FileSystem and injects deterministic faults per an armed
/// FaultSpec; disarmed it is a transparent pass-through that still counts
/// operations. Every injected fault increments
/// `teleios_io_faults_injected_total`.
///
/// Counted operations: NewWritableFile, NewReadableFile, Append, Flush,
/// Sync, Close, Rename, RemoveFile, FileExists, CreateDir, SyncDir,
/// ListDirectory and each ReadableFile::Read call. SyncDir counts as a
/// sync op, so kSyncFail/kSyncDrop cover dropped directory fsyncs too.
class FaultInjectingFileSystem : public FileSystem {
 public:
  /// `base` must outlive this wrapper (and any files it opened).
  explicit FaultInjectingFileSystem(FileSystem* base) : base_(base) {}

  /// Installs `spec` and resets the operation counter.
  void Arm(const FaultSpec& spec);
  /// Back to pass-through (op counter keeps its value).
  void Disarm();

  /// Operations counted since the last Arm() (or construction).
  uint64_t ops() const {
    MutexLock lock(mu_);
    return ops_;
  }
  /// Faults injected since the last Arm().
  uint64_t faults_injected() const {
    MutexLock lock(mu_);
    return faults_;
  }
  /// Bits actually corrupted by kBitFlip faults since the last Arm().
  /// A flip scheduled onto a zero-byte read (an EOF probe) has nothing
  /// to corrupt, so this can lag behind faults_injected().
  uint64_t bits_flipped() const {
    MutexLock lock(mu_);
    return bits_flipped_;
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Result<bool> FileExists(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDirectory(
      const std::string& dir) override;

 private:
  friend class FaultyWritableFile;
  friend class FaultyReadableFile;

  enum class OpClass { kRead, kAppend, kSync, kOther };

  /// What a particular counted operation actually does.
  enum class FaultAction {
    kNone,        // behave normally
    kFail,        // return an IoError
    kShortWrite,  // write half the bytes, then IoError
    kEnospc,      // write nothing, ENOSPC-style IoError
    kSyncDrop,    // report success without syncing
    kBitFlip,     // read normally, flip one bit of the result
  };

  /// Counts one operation and decides its fate. Thread-safe: the op
  /// counter advances under mu_, so "fail the k-th op" stays exact and
  /// deterministic even when parallel batch products share the
  /// filesystem (which op lands on k then depends on scheduling, but
  /// exactly one does).
  FaultAction NextOp(OpClass op) TELEIOS_EXCLUDES(mu_);
  static Status InjectedError(const char* what);
  /// Corrupts one bit of `bytes[0..len)` (bit-flip bookkeeping + RNG
  /// under mu_).
  void ApplyBitFlip(uint8_t* bytes, size_t len) TELEIOS_EXCLUDES(mu_);
  uint64_t NextRand() TELEIOS_REQUIRES(mu_);

  /// Guards all fault-program state below.
  mutable Mutex mu_;
  FileSystem* base_;
  FaultSpec spec_ TELEIOS_GUARDED_BY(mu_);
  bool armed_ TELEIOS_GUARDED_BY(mu_) = false;
  bool crashed_ TELEIOS_GUARDED_BY(mu_) = false;
  uint64_t ops_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t faults_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t bits_flipped_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t rng_ TELEIOS_GUARDED_BY(mu_) = 1;
};

}  // namespace teleios::io

#endif  // TELEIOS_IO_FAULT_INJECTION_H_
