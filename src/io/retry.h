#ifndef TELEIOS_IO_RETRY_H_
#define TELEIOS_IO_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/status.h"
#include "common/cancellation.h"

namespace teleios::io {

/// Bounded retry with deterministic exponential backoff for transient
/// I/O failures. Retries IoError and DataLoss (a re-read after a
/// transient media flip or a contended write can legitimately succeed);
/// every other code is a logic or format error that retrying cannot fix.
struct RetryPolicy {
  int max_attempts = 3;
  /// Backoff before attempt k (2-based) is
  /// `base_backoff_ms * multiplier^(k-2)` milliseconds; 0 disables
  /// sleeping entirely (the default — tests and benchmarks stay fast and
  /// deterministic in wall-clock terms).
  int base_backoff_ms = 0;
  double multiplier = 2.0;
  /// Decorrelated jitter (the AWS architecture-blog variant): backoff
  /// before each retry is drawn uniformly from
  /// `[base_backoff_ms, min(max_backoff_ms, 3 * previous_backoff))`, so
  /// a fleet of callers that failed together (one storage node blip, a
  /// replication-link partner restarting) spreads its retries out
  /// instead of hammering the target in lockstep. Deterministic: the
  /// draw comes from a small inline PRNG seeded with `jitter_seed`, so
  /// tests replay the exact schedule.
  bool decorrelated_jitter = false;
  /// Upper bound on any single backoff in milliseconds; 0 = uncapped.
  /// Applies to both the exponential and the jittered schedule.
  int max_backoff_ms = 0;
  /// Seed for the jitter PRNG (only used with decorrelated_jitter).
  uint64_t jitter_seed = 1;
  /// Optional caller cancellation/deadline (not owned; may be nullptr).
  /// WithRetry stops retrying once the token cancels or its deadline
  /// passes, and never starts a backoff sleep that would overshoot the
  /// deadline — a retried operation fails *within* its budget instead of
  /// sleeping past it.
  const CancellationToken* cancel = nullptr;

  bool ShouldRetry(const Status& status) const {
    return status.code() == StatusCode::kIoError ||
           status.code() == StatusCode::kDataLoss;
  }
  /// Milliseconds to back off before attempt `attempt` (1-based):
  /// the plain exponential schedule, ignoring jitter.
  double BackoffMillis(int attempt) const;
  /// Milliseconds to back off before attempt `attempt`, honoring
  /// decorrelated_jitter and max_backoff_ms. `prev_ms` is the previous
  /// backoff this retry loop slept (0 before the first retry) and
  /// `rng_state` the loop's PRNG state, seeded from jitter_seed; both
  /// are threaded through by WithRetry.
  double NextBackoffMillis(int attempt, double prev_ms,
                           uint64_t* rng_state) const;
};

namespace internal {
/// Sleeps (if ms > 0) and counts `teleios_io_retries_total`.
void OnRetry(const std::string& what, double backoff_ms);

/// Gate before a retry sleep: OK to proceed (after sleeping), or the
/// token's kCancelled / kDeadlineExceeded when the caller's budget is
/// spent — including when the backoff itself would overshoot the
/// deadline, in which case sleeping would be pure waste.
Status BeforeRetry(const RetryPolicy& policy, const std::string& what,
                   double backoff_ms);

inline const Status& AsStatus(const Status& s) { return s; }
template <typename T>
const Status& AsStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

/// Runs `fn` up to `policy.max_attempts` times; returns the first OK (or
/// non-retryable) outcome, else the last error. `what` labels the retry
/// metric and log line. Works for both Status and Result<T> returns.
/// With `policy.cancel` set, a cancelled/expired token ends the loop
/// with the token's status carrying the last underlying error in its
/// message, so the cause of the final failed attempt is not lost.
template <typename Fn>
auto WithRetry(const RetryPolicy& policy, const std::string& what, Fn&& fn)
    -> decltype(fn()) {
  decltype(fn()) outcome = fn();
  uint64_t rng_state = policy.jitter_seed;
  double prev_backoff_ms = 0;
  for (int attempt = 2;
       attempt <= policy.max_attempts && !outcome.ok() &&
       policy.ShouldRetry(internal::AsStatus(outcome));
       ++attempt) {
    double backoff_ms =
        policy.NextBackoffMillis(attempt, prev_backoff_ms, &rng_state);
    prev_backoff_ms = backoff_ms;
    Status proceed = internal::BeforeRetry(policy, what, backoff_ms);
    if (!proceed.ok()) {
      return Status(proceed.code(),
                    proceed.message() + " (last error: " +
                        internal::AsStatus(outcome).message() + ")");
    }
    outcome = fn();
  }
  return outcome;
}

}  // namespace teleios::io

#endif  // TELEIOS_IO_RETRY_H_
