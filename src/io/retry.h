#ifndef TELEIOS_IO_RETRY_H_
#define TELEIOS_IO_RETRY_H_

#include <functional>
#include <string>
#include <utility>

#include "common/status.h"

namespace teleios::io {

/// Bounded retry with deterministic exponential backoff for transient
/// I/O failures. Retries IoError and DataLoss (a re-read after a
/// transient media flip or a contended write can legitimately succeed);
/// every other code is a logic or format error that retrying cannot fix.
struct RetryPolicy {
  int max_attempts = 3;
  /// Backoff before attempt k (2-based) is
  /// `base_backoff_ms * multiplier^(k-2)` milliseconds; 0 disables
  /// sleeping entirely (the default — tests and benchmarks stay fast and
  /// deterministic in wall-clock terms).
  int base_backoff_ms = 0;
  double multiplier = 2.0;

  bool ShouldRetry(const Status& status) const {
    return status.code() == StatusCode::kIoError ||
           status.code() == StatusCode::kDataLoss;
  }
  /// Milliseconds to back off before attempt `attempt` (1-based).
  double BackoffMillis(int attempt) const;
};

namespace internal {
/// Sleeps (if ms > 0) and counts `teleios_io_retries_total`.
void OnRetry(const std::string& what, double backoff_ms);

inline const Status& AsStatus(const Status& s) { return s; }
template <typename T>
const Status& AsStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

/// Runs `fn` up to `policy.max_attempts` times; returns the first OK (or
/// non-retryable) outcome, else the last error. `what` labels the retry
/// metric and log line. Works for both Status and Result<T> returns.
template <typename Fn>
auto WithRetry(const RetryPolicy& policy, const std::string& what, Fn&& fn)
    -> decltype(fn()) {
  decltype(fn()) outcome = fn();
  for (int attempt = 2;
       attempt <= policy.max_attempts && !outcome.ok() &&
       policy.ShouldRetry(internal::AsStatus(outcome));
       ++attempt) {
    internal::OnRetry(what, policy.BackoffMillis(attempt));
    outcome = fn();
  }
  return outcome;
}

}  // namespace teleios::io

#endif  // TELEIOS_IO_RETRY_H_
