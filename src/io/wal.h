#ifndef TELEIOS_IO_WAL_H_
#define TELEIOS_IO_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "governor/memory_budget.h"
#include "io/filesystem.h"

namespace teleios::io {

// The TELEIOS write-ahead log: an append-only sequence of CRC32C-framed,
// length-prefixed records spread over numbered segment files
// (`wal_<seq>.log`). Every byte goes through the FileSystem seam, so the
// fault injector covers the log exactly like every other format driver:
// torn writes, ENOSPC, dropped fsyncs and crash-at-k-th-op all apply.
//
// Segment layout:
//   "TWAL" | u32 format version | records...
// Record framing:
//   u32 payload length | u32 CRC32C(payload) | payload
// Record payload:
//   u64 LSN | u32 record type | body bytes
//
// Durability contract: a record is durable once the Sync() that covers
// it returns OK — Append() alone only buffers. Replay tolerance: a
// truncated or bit-flipped record whose frame reaches the end of its
// segment is a torn tail (the crash interrupted the append) — it is
// dropped and counted, never an error. A checksum mismatch strictly
// inside a segment is real corruption and surfaces kDataLoss.

/// One decoded log record.
struct WalRecord {
  uint64_t lsn = 0;
  uint32_t type = 0;
  std::string payload;
};

/// Bytes a segment spends before the first record.
inline constexpr char kWalMagic[4] = {'T', 'W', 'A', 'L'};
inline constexpr uint32_t kWalFormatVersion = 1;
/// Hard cap on one record's payload; larger lengths are treated as
/// corruption without attempting the allocation.
inline constexpr uint64_t kMaxWalRecordLen = 1ull << 30;

/// Encodes the full on-disk frame (length, checksum, LSN, type, body) —
/// shared by the writer, the replayer's tests, and bench harnesses.
std::string EncodeWalFrame(uint64_t lsn, uint32_t type,
                           std::string_view body);

/// `wal_<seq>.log` for a 10-digit zero-padded sequence number.
std::string WalSegmentFileName(uint64_t seq);
/// Parses a segment file name (base name, not a path); false if `name`
/// is not a WAL segment.
bool ParseWalSegmentSeq(const std::string& name, uint64_t* seq);

/// Full paths of the WAL segments under `dir`, sorted by sequence
/// number.
Result<std::vector<std::string>> ListWalSegments(const std::string& dir);

/// Outcome of a replay pass over every segment in a WAL directory.
struct WalReplayStats {
  uint64_t records = 0;       ///< records decoded and handed to the callback
  uint64_t tail_dropped = 0;  ///< torn-tail records dropped (never an error)
  uint64_t last_lsn = 0;      ///< highest LSN seen (0 when empty)
  uint64_t segments = 0;      ///< segment files visited
  uint64_t bytes = 0;         ///< total segment bytes scanned
};

/// Replays every record of every segment under `dir`, oldest segment
/// first, invoking `apply` per record. A non-OK status from `apply`
/// aborts the replay and is returned as-is. Torn tails (see above) are
/// dropped and counted in the stats; mid-segment corruption returns
/// kDataLoss. A directory with no segments replays zero records.
Result<WalReplayStats> ReplayWal(
    const std::string& dir,
    const std::function<Status(const WalRecord&)>& apply);

/// Append side of the log. Not internally thread-safe beyond its own
/// invariants being lock-protected: callers that need ordered append +
/// sync + apply atomicity (the durability manager) serialize externally.
///
/// Failure discipline: a failed buffer flush or fsync poisons the
/// current segment — its tail may be torn — so the next Append() seals
/// it and rotates to a fresh segment. Records that were buffered when a
/// Sync() failed are dropped (the caller never acknowledged them).
class WalWriter {
 public:
  struct Options {
    /// Pending (appended-but-unsynced) bytes are reserved against this
    /// budget, so group-commit batching is visible to — and bounded by —
    /// the resource governor. nullptr disables charging.
    governor::MemoryBudget* budget = nullptr;
  };

  /// Point-in-time counters for `sys.wal` and the metrics layer.
  struct Stats {
    uint64_t segment_seq = 0;     ///< current segment sequence number
    uint64_t last_lsn = 0;        ///< LSN of the last appended record
    uint64_t synced_lsn = 0;      ///< LSN of the last durable record
    uint64_t pending_bytes = 0;   ///< buffered, not yet synced
    uint64_t total_bytes = 0;     ///< durable log bytes across segments
    uint64_t appends_total = 0;
    uint64_t syncs_total = 0;
    uint64_t rotations_total = 0;
  };

  /// Opens a writer over `dir` (created if needed). Never appends into
  /// an existing segment: a fresh segment with the next free sequence
  /// number starts at the first append, so a torn tail left by a crash
  /// stays inert until checkpointing garbage-collects it. `next_lsn` is
  /// the first LSN to assign (recovery passes last replayed + 1);
  /// `initial_bytes` seeds the size accounting with the bytes already
  /// on disk (the replayer's `WalReplayStats::bytes`).
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                 uint64_t next_lsn,
                                                 uint64_t initial_bytes,
                                                 const Options& options);

  ~WalWriter();

  /// Buffers one record and returns its LSN. The record is NOT durable
  /// until the next OK Sync(). Fails with kResourceExhausted when the
  /// budget refuses the buffer growth.
  Result<uint64_t> Append(uint32_t type, std::string_view body);

  /// Group commit: flushes every buffered record to the current segment
  /// and fsyncs it (plus the directory the first time a segment syncs,
  /// so the segment file itself survives a power failure). On failure
  /// the buffered records are dropped and the segment is poisoned — see
  /// the class comment.
  Status Sync();

  /// Seals the current segment and starts the next one. Pending bytes
  /// are synced first; the checkpoint protocol rotates so the carried-
  /// forward state lands in a fresh segment and older ones become
  /// garbage.
  Status Rotate();

  /// Deletes every segment with a sequence number below `seq`
  /// (checkpoint garbage collection). Best-effort per file; the first
  /// error is returned but remaining files are still attempted.
  Status TruncateBefore(uint64_t seq);

  Stats stats() const;
  uint64_t last_lsn() const;
  /// Durable log bytes (total_bytes of stats()).
  uint64_t size_bytes() const;
  uint64_t segment_seq() const;

 private:
  WalWriter(std::string dir, uint64_t next_seq, uint64_t next_lsn,
            uint64_t initial_bytes, const Options& options);

  Status OpenSegmentLocked() TELEIOS_REQUIRES(mu_);
  Status SyncLocked() TELEIOS_REQUIRES(mu_);
  Status RotateLocked() TELEIOS_REQUIRES(mu_);
  void DropPendingLocked() TELEIOS_REQUIRES(mu_);

  const std::string dir_;
  const Options options_;

  mutable Mutex mu_;
  std::unique_ptr<WritableFile> file_ TELEIOS_GUARDED_BY(mu_);
  bool poisoned_ TELEIOS_GUARDED_BY(mu_) = false;
  bool dir_synced_ TELEIOS_GUARDED_BY(mu_) = false;
  uint64_t seq_ TELEIOS_GUARDED_BY(mu_);
  uint64_t next_lsn_ TELEIOS_GUARDED_BY(mu_);
  uint64_t synced_lsn_ TELEIOS_GUARDED_BY(mu_) = 0;
  std::string pending_ TELEIOS_GUARDED_BY(mu_);
  uint64_t charged_bytes_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t total_bytes_ TELEIOS_GUARDED_BY(mu_);
  uint64_t segment_bytes_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t unsynced_bytes_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t appends_total_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t syncs_total_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t rotations_total_ TELEIOS_GUARDED_BY(mu_) = 0;
};

}  // namespace teleios::io

#endif  // TELEIOS_IO_WAL_H_
