#include "io/filesystem.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

#include "common/crc32c.h"
#include "obs/metrics.h"

namespace teleios::io {

namespace stdfs = std::filesystem;

namespace {

constexpr size_t kIoChunk = 64 * 1024;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (file_) std::fclose(file_);
  }

  Status Append(const void* data, size_t n) override {
    if (!file_) return Status::IoError("append to closed file '" + path_ + "'");
    if (std::fwrite(data, 1, n, file_) != n) {
      return Status::IoError(ErrnoMessage("write failure on", path_));
    }
    return Status::OK();
  }

  Status Flush() override {
    if (!file_) return Status::IoError("flush of closed file '" + path_ + "'");
    if (std::fflush(file_) != 0) {
      return Status::IoError(ErrnoMessage("flush failure on", path_));
    }
    return Status::OK();
  }

  Status Sync() override {
    TELEIOS_RETURN_IF_ERROR(Flush());
    if (::fsync(::fileno(file_)) != 0) {
      return Status::IoError(ErrnoMessage("fsync failure on", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (!file_) return Status::OK();
    std::FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) {
      return Status::IoError(ErrnoMessage("close failure on", path_));
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixReadableFile : public ReadableFile {
 public:
  PosixReadableFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}
  ~PosixReadableFile() override {
    if (file_) std::fclose(file_);
  }

  Result<size_t> Read(void* buf, size_t n) override {
    size_t got = std::fread(buf, 1, n, file_);
    if (got < n && std::ferror(file_)) {
      return Status::IoError(ErrnoMessage("read failure on", path_));
    }
    return got;
  }

 private:
  std::FILE* file_;
  std::string path_;
};

}  // namespace

Result<std::unique_ptr<WritableFile>> PosixFileSystem::NewWritableFile(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::IoError(ErrnoMessage("cannot open", path));
  return std::unique_ptr<WritableFile>(new PosixWritableFile(f, path));
}

Result<std::unique_ptr<ReadableFile>> PosixFileSystem::NewReadableFile(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::IoError(ErrnoMessage("cannot open", path));
  return std::unique_ptr<ReadableFile>(new PosixReadableFile(f, path));
}

Status PosixFileSystem::Rename(const std::string& from,
                               const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IoError(ErrnoMessage("cannot rename", from));
  }
  return Status::OK();
}

Status PosixFileSystem::RemoveFile(const std::string& path) {
  if (std::remove(path.c_str()) != 0) {
    return Status::IoError(ErrnoMessage("cannot remove", path));
  }
  return Status::OK();
}

Result<bool> PosixFileSystem::FileExists(const std::string& path) {
  std::error_code ec;
  bool exists = stdfs::exists(path, ec);
  if (ec) return Status::IoError("cannot stat '" + path + "': " + ec.message());
  return exists;
}

Status PosixFileSystem::CreateDir(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) {
    return Status::IoError("cannot create directory '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

Status PosixFileSystem::SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IoError(ErrnoMessage("cannot open", dir));
  int rc = ::fsync(fd);
  int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return Status::IoError(ErrnoMessage("fsync failure on", dir));
  }
  return Status::OK();
}

Result<std::vector<std::string>> PosixFileSystem::ListDirectory(
    const std::string& dir) {
  std::error_code ec;
  if (!stdfs::is_directory(dir, ec)) {
    return Status::NotFound("'" + dir + "' is not a directory");
  }
  std::vector<std::string> paths;
  // Explicit iterator with the error_code overloads throughout: the
  // range-for increment and is_regular_file() would otherwise throw on a
  // mid-iteration error (e.g. the directory vanishing under us).
  stdfs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot list '" + dir + "': " + ec.message());
  }
  for (const stdfs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) {
      return Status::IoError("cannot list '" + dir + "': " + ec.message());
    }
    if (it->is_regular_file(ec) && !ec) paths.push_back(it->path().string());
    if (ec) {
      return Status::IoError("cannot stat '" + it->path().string() +
                             "': " + ec.message());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Result<std::string> FileSystem::ReadFile(const std::string& path) {
  TELEIOS_ASSIGN_OR_RETURN(std::unique_ptr<ReadableFile> file,
                           NewReadableFile(path));
  std::string out;
  char buf[kIoChunk];
  for (;;) {
    TELEIOS_ASSIGN_OR_RETURN(size_t got, file->Read(buf, sizeof(buf)));
    if (got == 0) break;
    out.append(buf, got);
  }
  return out;
}

namespace {

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status FileSystem::WriteFileAtomic(const std::string& path,
                                   std::string_view data) {
  obs::Count("teleios_io_atomic_writes_total");
  const std::string tmp = path + ".tmp";
  Status st;
  {
    auto file = NewWritableFile(tmp);
    if (!file.ok()) return file.status();
    for (size_t off = 0; st.ok() && off < data.size(); off += kIoChunk) {
      st = (*file)->Append(data.data() + off,
                           std::min(kIoChunk, data.size() - off));
    }
    if (st.ok()) st = (*file)->Sync();
    Status close = (*file)->Close();
    if (st.ok()) st = close;
  }
  if (st.ok()) st = Rename(tmp, path);
  if (!st.ok()) {
    (void)RemoveFile(tmp);  // best effort; tmp is inert anyway
    return st;
  }
  // The rename only becomes durable once the directory metadata is on
  // disk; without this a power failure can revert `path` to the old file
  // even though the data itself was fsynced. A failure here means "new
  // file visible but durability unknown" — surfaced, not rolled back.
  return SyncDir(ParentDir(path));
}

namespace {

PosixFileSystem* PosixSingleton() {
  static PosixFileSystem posix;
  return &posix;
}

FileSystem* g_default_fs = nullptr;

}  // namespace

std::string PathStem(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

FileSystem* GetFileSystem() {
  return g_default_fs ? g_default_fs : PosixSingleton();
}

FileSystem* SetFileSystem(FileSystem* fs) {
  FileSystem* prev = g_default_fs;
  g_default_fs = fs;
  return prev;
}

bool FileReader::ReadExact(void* buf, size_t n) {
  if (!status_.ok()) return false;
  uint8_t* dst = static_cast<uint8_t*>(buf);
  while (n > 0) {
    Result<size_t> got = file_->Read(dst, n);
    if (!got.ok()) {
      status_ = got.status();
      return false;
    }
    if (*got == 0) return false;  // clean EOF: truncated input
    dst += *got;
    n -= *got;
  }
  return true;
}

Status TruncatedOr(const FileReader& reader, const std::string& what) {
  if (!reader.status().ok()) return reader.status();
  return Status::ParseError(what);
}

void AppendBlockTo(std::string* out, std::string_view payload) {
  uint64_t len = payload.size();
  uint32_t crc = Crc32c(payload);
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out->append(payload.data(), payload.size());
}

namespace {

struct BlockHeader {
  uint64_t len = 0;
  uint32_t crc = 0;
};

Result<BlockHeader> ReadBlockHeader(FileReader* reader, uint64_t max_len) {
  BlockHeader h;
  if (!reader->ReadExact(&h.len, sizeof(h.len)) ||
      !reader->ReadExact(&h.crc, sizeof(h.crc))) {
    return TruncatedOr(*reader, "truncated block header");
  }
  if (h.len > max_len) {
    obs::Count("teleios_io_checksum_failures_total");
    return Status::DataLoss("implausible block length " +
                            std::to_string(h.len));
  }
  return h;
}

Status ChecksumMismatch() {
  obs::Count("teleios_io_checksum_failures_total");
  return Status::DataLoss("block checksum mismatch");
}

}  // namespace

Result<std::string> ReadBlock(FileReader* reader, uint64_t max_len) {
  TELEIOS_ASSIGN_OR_RETURN(BlockHeader h, ReadBlockHeader(reader, max_len));
  std::string payload;
  char buf[kIoChunk];
  // Chunked append: a corrupt length field hits end-of-file quickly
  // instead of reserving the full bogus size up front.
  for (uint64_t left = h.len; left > 0;) {
    size_t take = static_cast<size_t>(std::min<uint64_t>(left, sizeof(buf)));
    if (!reader->ReadExact(buf, take)) {
      return TruncatedOr(*reader, "truncated block payload");
    }
    payload.append(buf, take);
    left -= take;
  }
  if (Crc32c(payload) != h.crc) return ChecksumMismatch();
  return payload;
}

Status ReadBlockInto(FileReader* reader, void* dst, uint64_t expected_len) {
  TELEIOS_ASSIGN_OR_RETURN(BlockHeader h, ReadBlockHeader(reader, kMaxBlockLen));
  if (h.len != expected_len) {
    return Status::ParseError("block length " + std::to_string(h.len) +
                              " != expected " + std::to_string(expected_len));
  }
  uint8_t* out = static_cast<uint8_t*>(dst);
  uint32_t crc = 0;
  for (uint64_t left = h.len; left > 0;) {
    size_t take = static_cast<size_t>(std::min<uint64_t>(left, kIoChunk));
    if (!reader->ReadExact(out, take)) {
      return TruncatedOr(*reader, "truncated block payload");
    }
    crc = Crc32cExtend(crc, out, take);
    out += take;
    left -= take;
  }
  if (crc != h.crc) return ChecksumMismatch();
  return Status::OK();
}

namespace {

constexpr std::string_view kCrcTrailerTag = "#CRC32C ";

}  // namespace

void AppendCrcTrailer(std::string* content) {
  uint32_t crc = Crc32c(*content);
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  content->append(kCrcTrailerTag);
  content->append(buf);
  content->push_back('\n');
}

Result<std::string> VerifyCrcTrailer(std::string_view content) {
  // The trailer is the final line: "#CRC32C " + 8 hex digits + '\n'
  // (a missing final newline is tolerated).
  std::string_view body = content;
  if (!body.empty() && body.back() == '\n') body.remove_suffix(1);
  size_t line_start = body.rfind('\n');
  line_start = line_start == std::string_view::npos ? 0 : line_start + 1;
  std::string_view line = body.substr(line_start);
  if (line.size() != kCrcTrailerTag.size() + 8 ||
      line.substr(0, kCrcTrailerTag.size()) != kCrcTrailerTag) {
    return Status::ParseError("missing checksum trailer");
  }
  uint32_t stored = 0;
  for (char c : line.substr(kCrcTrailerTag.size())) {
    uint32_t digit;
    // The trailer is machine-written, lowercase only; accepting 'A'-'F'
    // as aliases would let a case-flipping bit error pass unnoticed.
    if (c >= '0' && c <= '9') digit = static_cast<uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint32_t>(c - 'a') + 10;
    else return Status::ParseError("malformed checksum trailer");
    stored = stored << 4 | digit;
  }
  std::string_view payload = content.substr(0, line_start);
  if (Crc32c(payload) != stored) {
    obs::Count("teleios_io_checksum_failures_total");
    return Status::DataLoss("checksum trailer mismatch");
  }
  return std::string(payload);
}

}  // namespace teleios::io
