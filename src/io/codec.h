#ifndef TELEIOS_IO_CODEC_H_
#define TELEIOS_IO_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace teleios::io {

// Little-endian fixed-width serialization into an in-memory file image,
// and a bounds-checked reader over one checksummed block's payload. The
// format drivers (TELT, .ter) serialize sections with Put*, frame them
// with AppendBlockTo, and parse them back with ByteReader — every read
// is bounds-checked against the block, so corrupt counts and lengths can
// never index past the verified payload.

inline void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutI32(std::string* out, int32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Sequential bounds-checked reads over a byte buffer; every getter
/// returns false once the buffer is exhausted (and stays false).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ReadBytes(void* dst, size_t n) {
    if (n > remaining()) {
      pos_ = data_.size();
      ok_ = false;
      return false;
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool ReadU32(uint32_t* v) { return ReadBytes(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadBytes(v, sizeof(*v)); }
  bool ReadI32(int32_t* v) { return ReadBytes(v, sizeof(*v)); }
  bool ReadI64(int64_t* v) { return ReadBytes(v, sizeof(*v)); }
  bool ReadF64(double* v) { return ReadBytes(v, sizeof(*v)); }

  /// Length-prefixed string; rejects lengths past the end of the buffer
  /// or above `max_len` (default 16 MiB, far beyond any sane name).
  bool ReadStr(std::string* s, size_t max_len = 16u << 20) {
    uint32_t n = 0;
    if (!ReadU32(&n)) return false;
    if (n > max_len || n > remaining()) {
      ok_ = false;
      return false;
    }
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }
  /// False once any read ran out of bounds.
  bool ok() const { return ok_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace teleios::io

#endif  // TELEIOS_IO_CODEC_H_
