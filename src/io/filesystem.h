#ifndef TELEIOS_IO_FILESYSTEM_H_
#define TELEIOS_IO_FILESYSTEM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace teleios::io {

/// A sequential sink for one file's bytes. Obtained from
/// FileSystem::NewWritableFile; Close() is idempotent and is also run by
/// the destructor (destructor swallows the status — call Close()
/// explicitly on paths that care about durability).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const void* data, size_t n) = 0;
  /// Pushes buffered bytes to the OS (no durability guarantee).
  virtual Status Flush() = 0;
  /// Flush + fsync: bytes survive a power failure once this returns OK.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;

  Status Append(std::string_view s) { return Append(s.data(), s.size()); }
};

/// A sequential source of one file's bytes.
class ReadableFile {
 public:
  virtual ~ReadableFile() = default;

  /// Reads up to `n` bytes into `buf`; returns the number read (0 at
  /// end-of-file) or an error Status.
  virtual Result<size_t> Read(void* buf, size_t n) = 0;
};

/// RocksDB/Arrow-style filesystem abstraction. ALL TELEIOS file I/O —
/// TELT tables, `.ter`/`.vec` vault drivers, CSV, catalog snapshots,
/// Turtle dumps, NOA product export — goes through a FileSystem, so a
/// FaultInjectingFileSystem wrapper can exercise every failure path
/// deterministically (see io/fault_injection.h).
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) = 0;
  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Result<bool> FileExists(const std::string& path) = 0;
  virtual Status CreateDir(const std::string& path) = 0;
  /// Fsyncs the directory itself, making previously renamed/created
  /// entries durable (a rename is not power-failure-safe until the
  /// parent directory's metadata has been flushed).
  virtual Status SyncDir(const std::string& dir) = 0;
  /// Full paths of the regular files in `dir`, sorted by name so that
  /// directory scans (vault attach) are reproducible across filesystems.
  virtual Result<std::vector<std::string>> ListDirectory(
      const std::string& dir) = 0;

  // --- conveniences built on the primitives (fault-injectable too) ------

  /// Slurps a whole file, reading in bounded chunks.
  Result<std::string> ReadFile(const std::string& path);

  /// Crash-safe durable write: writes `path + ".tmp"`, flushes, fsyncs,
  /// closes, renames over `path`, then fsyncs the parent directory so
  /// the rename itself survives a power failure. A crash (or injected
  /// fault) at any point leaves either the old file or the new file,
  /// never a hybrid — note that a failure at or after the rename can
  /// leave the NEW file in place, so a non-OK status means "not durable",
  /// not "nothing happened". The tmp file is removed on failure (best
  /// effort).
  Status WriteFileAtomic(const std::string& path, std::string_view data);
};

/// The filename of `path` without its final extension ("a/b/c.ter" ->
/// "c"). Pure string manipulation, but it lives here so std::filesystem
/// stays confined to src/io/ (teleios_lint rule TL001: every path and
/// file primitive that the fault layer should know about goes through
/// the io seam).
std::string PathStem(const std::string& path);

/// The process-default FileSystem (a PosixFileSystem singleton) unless
/// overridden with SetFileSystem. Never nullptr.
FileSystem* GetFileSystem();

/// Installs `fs` as the process-default (nullptr restores the Posix
/// singleton); returns the previous default. Not thread-safe — intended
/// for test harnesses and tools, installed before I/O starts.
FileSystem* SetFileSystem(FileSystem* fs);

/// RAII override of the process-default FileSystem.
class ScopedFileSystem {
 public:
  explicit ScopedFileSystem(FileSystem* fs) : prev_(SetFileSystem(fs)) {}
  ~ScopedFileSystem() { SetFileSystem(prev_); }
  ScopedFileSystem(const ScopedFileSystem&) = delete;
  ScopedFileSystem& operator=(const ScopedFileSystem&) = delete;

 private:
  FileSystem* prev_;
};

/// The real thing: C stdio + fsync.
class PosixFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Result<bool> FileExists(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDirectory(
      const std::string& dir) override;
};

/// Exact-read helper over a ReadableFile with a sticky error status, the
/// reader-side counterpart of WritableFile for the binary format
/// drivers. ReadExact returns false on error OR short read; status()
/// distinguishes them (OK after a short read = clean end-of-file, i.e. a
/// truncated file).
class FileReader {
 public:
  explicit FileReader(std::unique_ptr<ReadableFile> file)
      : file_(std::move(file)) {}

  bool ReadExact(void* buf, size_t n);

  /// The underlying filesystem error, or OK (truncation is not an
  /// error here; format parsers turn it into ParseError).
  const Status& status() const { return status_; }

 private:
  std::unique_ptr<ReadableFile> file_;
  Status status_;
};

/// Propagates a FileReader's I/O error if it has one, else returns a
/// ParseError for a truncated file — the standard "ReadExact failed"
/// disposition for format drivers.
Status TruncatedOr(const FileReader& reader, const std::string& what);

// --- checksummed block framing --------------------------------------------
//
// The unit of corruption detection in TELT/`.ter` files: a block is
//   u64 payload length | u32 CRC32C of payload | payload bytes
// Readers verify the checksum and surface mismatches as kDataLoss, so a
// read-side bit flip anywhere in the block (length, checksum or payload)
// is caught, never silently parsed.

/// Hard upper bound on a single block (1 GiB); longer lengths are treated
/// as corruption without attempting the allocation.
inline constexpr uint64_t kMaxBlockLen = 1ull << 30;

/// Appends the framed block to an in-memory file image.
void AppendBlockTo(std::string* out, std::string_view payload);

/// Reads and verifies one block (chunked, so a corrupt huge length field
/// fails fast at end-of-file instead of allocating).
Result<std::string> ReadBlock(FileReader* reader,
                              uint64_t max_len = kMaxBlockLen);

/// Reads a block whose payload must be exactly `expected_len` bytes,
/// directly into `dst` (no intermediate buffer; used for raster band
/// payloads). Length mismatch is ParseError, checksum mismatch kDataLoss.
Status ReadBlockInto(FileReader* reader, void* dst, uint64_t expected_len);

// --- checksum trailers for line-oriented text formats ---------------------
//
// Text formats (`.vec`, catalog manifests) end with a final
// `#CRC32C xxxxxxxx` line covering every byte before it, so read-side
// corruption anywhere in the file is caught as kDataLoss and a missing
// trailer (truncation) as ParseError.

/// Appends the `#CRC32C xxxxxxxx\n` trailer line to `content`.
void AppendCrcTrailer(std::string* content);

/// Verifies and strips the trailer; returns the payload before it.
/// Missing/malformed trailer is ParseError, mismatch kDataLoss.
Result<std::string> VerifyCrcTrailer(std::string_view content);

}  // namespace teleios::io

#endif  // TELEIOS_IO_FILESYSTEM_H_
