#include "io/fault_injection.h"

#include "obs/metrics.h"

namespace teleios::io {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIoError:
      return "io_error";
    case FaultKind::kShortWrite:
      return "short_write";
    case FaultKind::kEnospc:
      return "enospc";
    case FaultKind::kSyncFail:
      return "sync_fail";
    case FaultKind::kSyncDrop:
      return "sync_drop";
    case FaultKind::kBitFlip:
      return "bit_flip";
  }
  return "unknown";
}

void FaultInjectingFileSystem::Arm(const FaultSpec& spec) {
  MutexLock lock(mu_);
  spec_ = spec;
  armed_ = spec.inject_at > 0;
  crashed_ = false;
  ops_ = 0;
  faults_ = 0;
  bits_flipped_ = 0;
  rng_ = spec.seed ? spec.seed : 1;
}

void FaultInjectingFileSystem::Disarm() {
  MutexLock lock(mu_);
  armed_ = false;
  crashed_ = false;
}

uint64_t FaultInjectingFileSystem::NextRand() {
  rng_ ^= rng_ >> 12;
  rng_ ^= rng_ << 25;
  rng_ ^= rng_ >> 27;
  return rng_ * 0x2545f4914f6cdd1dull;
}

Status FaultInjectingFileSystem::InjectedError(const char* what) {
  return Status::IoError(std::string("injected fault: ") + what);
}

void FaultInjectingFileSystem::ApplyBitFlip(uint8_t* bytes, size_t len) {
  MutexLock lock(mu_);
  bytes[NextRand() % len] ^= static_cast<uint8_t>(1u << (NextRand() % 8));
  ++bits_flipped_;
}

FaultInjectingFileSystem::FaultAction FaultInjectingFileSystem::NextOp(
    OpClass op) {
  MutexLock lock(mu_);
  if (crashed_) return FaultAction::kFail;  // everything after the crash
  // The counting mode applies to disabled (inject_at = 0) probe runs
  // too, so a probed op count matches the armed sweep that follows.
  if (spec_.reads_only && op != OpClass::kRead) {
    return FaultAction::kNone;  // not counted in a reads-only sweep
  }
  ++ops_;
  if (!armed_) return FaultAction::kNone;
  bool hit = ops_ == spec_.inject_at ||
             (spec_.every_n > 0 && ops_ > spec_.inject_at &&
              (ops_ - spec_.inject_at) % spec_.every_n == 0);
  if (!hit) return FaultAction::kNone;
  FaultAction action = FaultAction::kFail;
  switch (spec_.kind) {
    case FaultKind::kIoError:
      action = FaultAction::kFail;
      break;
    case FaultKind::kShortWrite:
      action = op == OpClass::kAppend ? FaultAction::kShortWrite
                                      : FaultAction::kFail;
      break;
    case FaultKind::kEnospc:
      action =
          op == OpClass::kAppend ? FaultAction::kEnospc : FaultAction::kFail;
      break;
    case FaultKind::kSyncFail:
      action = FaultAction::kFail;
      break;
    case FaultKind::kSyncDrop:
      // Only a Sync can be silently dropped; elsewhere nothing happens.
      action = op == OpClass::kSync ? FaultAction::kSyncDrop
                                    : FaultAction::kNone;
      break;
    case FaultKind::kBitFlip:
      // Flips only corrupt read payloads; other ops pass through.
      action =
          op == OpClass::kRead ? FaultAction::kBitFlip : FaultAction::kNone;
      break;
  }
  if (action == FaultAction::kNone) return action;
  ++faults_;
  obs::Count("teleios_io_faults_injected_total");
  if (spec_.crash) crashed_ = true;
  return action;
}

class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(FaultInjectingFileSystem* fs,
                     std::unique_ptr<WritableFile> base)
      : fs_(fs), base_(std::move(base)) {}

  Status Append(const void* data, size_t n) override;
  Status Flush() override;
  Status Sync() override;
  Status Close() override;

 private:
  FaultInjectingFileSystem* fs_;
  std::unique_ptr<WritableFile> base_;
};

class FaultyReadableFile : public ReadableFile {
 public:
  FaultyReadableFile(FaultInjectingFileSystem* fs,
                     std::unique_ptr<ReadableFile> base)
      : fs_(fs), base_(std::move(base)) {}

  Result<size_t> Read(void* buf, size_t n) override;

 private:
  FaultInjectingFileSystem* fs_;
  std::unique_ptr<ReadableFile> base_;
};

Status FaultyWritableFile::Append(const void* data, size_t n) {
  switch (fs_->NextOp(FaultInjectingFileSystem::OpClass::kAppend)) {
    case FaultInjectingFileSystem::FaultAction::kNone:
      return base_->Append(data, n);
    case FaultInjectingFileSystem::FaultAction::kShortWrite:
      // Torn write: half the bytes land before the error.
      (void)base_->Append(data, n / 2);
      return FaultInjectingFileSystem::InjectedError("torn write");
    case FaultInjectingFileSystem::FaultAction::kEnospc:
      return FaultInjectingFileSystem::InjectedError(
          "no space left on device");
    default:
      return FaultInjectingFileSystem::InjectedError("write failed");
  }
}

Status FaultyWritableFile::Flush() {
  if (fs_->NextOp(FaultInjectingFileSystem::OpClass::kOther) !=
      FaultInjectingFileSystem::FaultAction::kNone) {
    return FaultInjectingFileSystem::InjectedError("flush failed");
  }
  return base_->Flush();
}

Status FaultyWritableFile::Sync() {
  switch (fs_->NextOp(FaultInjectingFileSystem::OpClass::kSync)) {
    case FaultInjectingFileSystem::FaultAction::kNone:
      return base_->Sync();
    case FaultInjectingFileSystem::FaultAction::kSyncDrop:
      return base_->Flush();  // pretends to be durable; never fsyncs
    default:
      return FaultInjectingFileSystem::InjectedError("fsync failed");
  }
}

Status FaultyWritableFile::Close() {
  if (fs_->NextOp(FaultInjectingFileSystem::OpClass::kOther) !=
      FaultInjectingFileSystem::FaultAction::kNone) {
    return FaultInjectingFileSystem::InjectedError("close failed");
  }
  return base_->Close();
}

Result<size_t> FaultyReadableFile::Read(void* buf, size_t n) {
  switch (fs_->NextOp(FaultInjectingFileSystem::OpClass::kRead)) {
    case FaultInjectingFileSystem::FaultAction::kNone:
      return base_->Read(buf, n);
    case FaultInjectingFileSystem::FaultAction::kBitFlip: {
      Result<size_t> got = base_->Read(buf, n);
      if (got.ok() && *got > 0) {
        fs_->ApplyBitFlip(static_cast<uint8_t*>(buf), *got);
      }
      return got;
    }
    default:
      return FaultInjectingFileSystem::InjectedError("read failed");
  }
}

Result<std::unique_ptr<WritableFile>> FaultInjectingFileSystem::NewWritableFile(
    const std::string& path) {
  if (NextOp(OpClass::kOther) != FaultAction::kNone) {
    return InjectedError("cannot open for writing");
  }
  TELEIOS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                           base_->NewWritableFile(path));
  return std::unique_ptr<WritableFile>(
      new FaultyWritableFile(this, std::move(base)));
}

Result<std::unique_ptr<ReadableFile>> FaultInjectingFileSystem::NewReadableFile(
    const std::string& path) {
  if (NextOp(OpClass::kOther) != FaultAction::kNone) {
    return InjectedError("cannot open for reading");
  }
  TELEIOS_ASSIGN_OR_RETURN(std::unique_ptr<ReadableFile> base,
                           base_->NewReadableFile(path));
  return std::unique_ptr<ReadableFile>(
      new FaultyReadableFile(this, std::move(base)));
}

Status FaultInjectingFileSystem::Rename(const std::string& from,
                                        const std::string& to) {
  if (NextOp(OpClass::kOther) != FaultAction::kNone) {
    return InjectedError("rename failed");
  }
  return base_->Rename(from, to);
}

Status FaultInjectingFileSystem::RemoveFile(const std::string& path) {
  if (NextOp(OpClass::kOther) != FaultAction::kNone) {
    return InjectedError("remove failed");
  }
  return base_->RemoveFile(path);
}

Result<bool> FaultInjectingFileSystem::FileExists(const std::string& path) {
  if (NextOp(OpClass::kOther) != FaultAction::kNone) {
    return InjectedError("stat failed");
  }
  return base_->FileExists(path);
}

Status FaultInjectingFileSystem::CreateDir(const std::string& path) {
  if (NextOp(OpClass::kOther) != FaultAction::kNone) {
    return InjectedError("mkdir failed");
  }
  return base_->CreateDir(path);
}

Status FaultInjectingFileSystem::SyncDir(const std::string& dir) {
  switch (NextOp(OpClass::kSync)) {
    case FaultAction::kNone:
      return base_->SyncDir(dir);
    case FaultAction::kSyncDrop:
      return Status::OK();  // pretends the rename is durable; it isn't
    default:
      return InjectedError("directory fsync failed");
  }
}

Result<std::vector<std::string>> FaultInjectingFileSystem::ListDirectory(
    const std::string& dir) {
  if (NextOp(OpClass::kOther) != FaultAction::kNone) {
    return InjectedError("list failed");
  }
  return base_->ListDirectory(dir);
}

}  // namespace teleios::io
