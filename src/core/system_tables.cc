#include "core/system_tables.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "exec/thread_pool.h"
#include "governor/circuit_breaker.h"
#include "governor/memory_budget.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace teleios::core {

using storage::ColumnType;
using storage::Schema;
using storage::Table;
using storage::TablePtr;

namespace {

const char* const kTableNames[] = {
    "sys.breakers", "sys.budgets", "sys.events",  "sys.metrics",
    "sys.pools",    "sys.queries", "sys.query_log", "sys.wal",
};

/// size_t byte counts surface as int64; kUnlimited becomes -1 so WHERE
/// clauses can tell "uncapped" from "huge".
int64_t BytesColumn(size_t bytes) {
  return bytes == governor::MemoryBudget::kUnlimited
             ? -1
             : static_cast<int64_t>(bytes);
}

TablePtr QueriesTable(const obs::ActiveQueryRegistry& registry) {
  auto table = std::make_shared<Table>(
      Schema({{"id", ColumnType::kInt64},
              {"tier", ColumnType::kString},
              {"statement", ColumnType::kString},
              {"state", ColumnType::kString},
              {"start_unix_millis", ColumnType::kInt64},
              {"queued_millis", ColumnType::kFloat64},
              {"elapsed_millis", ColumnType::kFloat64}}));
  for (const obs::ActiveQuery& q : registry.Active()) {
    table->column(0).AppendInt64(static_cast<int64_t>(q.id));
    table->column(1).AppendString(q.tier);
    table->column(2).AppendString(q.statement);
    table->column(3).AppendString(obs::QueryStateName(q.state));
    table->column(4).AppendInt64(q.start_unix_millis);
    table->column(5).AppendFloat64(q.queued_millis);
    table->column(6).AppendFloat64(q.elapsed_millis);
  }
  return table;
}

TablePtr QueryLogTable(const obs::ActiveQueryRegistry& registry) {
  auto table = std::make_shared<Table>(
      Schema({{"id", ColumnType::kInt64},
              {"tier", ColumnType::kString},
              {"statement", ColumnType::kString},
              {"status", ColumnType::kString},
              {"rows", ColumnType::kInt64},
              {"latency_millis", ColumnType::kFloat64},
              {"queued_millis", ColumnType::kFloat64},
              {"peak_budget_bytes", ColumnType::kInt64},
              {"end_unix_millis", ColumnType::kInt64},
              {"trace_json", ColumnType::kString}}));
  for (const obs::QueryCompletion& c : registry.Log()) {
    table->column(0).AppendInt64(static_cast<int64_t>(c.id));
    table->column(1).AppendString(c.tier);
    table->column(2).AppendString(c.statement);
    table->column(3).AppendString(c.status);
    table->column(4).AppendInt64(c.rows);
    table->column(5).AppendFloat64(c.latency_millis);
    table->column(6).AppendFloat64(c.queued_millis);
    table->column(7).AppendInt64(static_cast<int64_t>(c.peak_budget_bytes));
    table->column(8).AppendInt64(c.end_unix_millis);
    table->column(9).AppendString(c.trace_json);
  }
  return table;
}

TablePtr MetricsTable() {
  auto table = std::make_shared<Table>(Schema({{"name", ColumnType::kString},
                                               {"kind", ColumnType::kString},
                                               {"value",
                                                ColumnType::kFloat64}}));
  for (const obs::MetricSample& sample :
       obs::MetricsRegistry::Global().Samples()) {
    table->column(0).AppendString(sample.name);
    table->column(1).AppendString(sample.kind);
    table->column(2).AppendFloat64(sample.value);
  }
  return table;
}

TablePtr BudgetsTable() {
  auto table = std::make_shared<Table>(
      Schema({{"name", ColumnType::kString},
              {"parent", ColumnType::kString},
              {"limit_bytes", ColumnType::kInt64},
              {"used_bytes", ColumnType::kInt64},
              {"peak_bytes", ColumnType::kInt64}}));
  for (const governor::BudgetStats& b : governor::AllBudgetStats()) {
    table->column(0).AppendString(b.name);
    table->column(1).AppendString(b.parent);
    table->column(2).AppendInt64(BytesColumn(b.limit));
    table->column(3).AppendInt64(static_cast<int64_t>(b.used));
    table->column(4).AppendInt64(static_cast<int64_t>(b.peak));
  }
  return table;
}

TablePtr BreakersTable() {
  auto table = std::make_shared<Table>(Schema({{"name", ColumnType::kString},
                                               {"state", ColumnType::kString},
                                               {"trips",
                                                ColumnType::kInt64}}));
  for (const governor::BreakerStats& b : governor::AllBreakerStats()) {
    table->column(0).AppendString(b.name);
    table->column(1).AppendString(governor::CircuitBreaker::StateName(b.state));
    table->column(2).AppendInt64(static_cast<int64_t>(b.trips));
  }
  return table;
}

TablePtr PoolsTable() {
  auto table = std::make_shared<Table>(
      Schema({{"name", ColumnType::kString},
              {"workers", ColumnType::kInt64},
              {"parallelism", ColumnType::kInt64},
              {"queued", ColumnType::kInt64},
              {"busy", ColumnType::kInt64},
              {"tasks_total", ColumnType::kInt64},
              {"steals_total", ColumnType::kInt64}}));
  // Chain-local pools are ephemeral; the process pool is the one whose
  // health matters for capacity questions.
  exec::ThreadPool::Stats stats = exec::ThreadPool::Global().Snapshot();
  table->column(0).AppendString(stats.name);
  table->column(1).AppendInt64(stats.workers);
  table->column(2).AppendInt64(stats.parallelism);
  table->column(3).AppendInt64(static_cast<int64_t>(stats.queued));
  table->column(4).AppendInt64(stats.busy);
  table->column(5).AppendInt64(static_cast<int64_t>(stats.tasks_total));
  table->column(6).AppendInt64(static_cast<int64_t>(stats.steals_total));
  return table;
}

TablePtr EventsTable() {
  auto table = std::make_shared<Table>(
      Schema({{"unix_millis", ColumnType::kInt64},
              {"type", ColumnType::kString},
              {"json", ColumnType::kString}}));
  for (const obs::Event& event : obs::EventLog::Global().Snapshot()) {
    table->column(0).AppendInt64(event.unix_millis);
    table->column(1).AppendString(event.type);
    table->column(2).AppendString(event.ToJson());
  }
  return table;
}

TablePtr WalTable(DurabilityManager* durability) {
  auto table = std::make_shared<Table>(
      Schema({{"dir", ColumnType::kString},
              {"wal_bytes", ColumnType::kInt64},
              {"segment_seq", ColumnType::kInt64},
              {"last_lsn", ColumnType::kInt64},
              {"synced_lsn", ColumnType::kInt64},
              {"appends_total", ColumnType::kInt64},
              {"syncs_total", ColumnType::kInt64},
              {"rotations_total", ColumnType::kInt64},
              {"checkpoints_total", ColumnType::kInt64},
              {"checkpoint_generation", ColumnType::kInt64},
              {"checkpoint_lsn", ColumnType::kInt64},
              {"recovered", ColumnType::kInt64},
              {"recovery_records_replayed", ColumnType::kInt64},
              {"recovery_records_applied", ColumnType::kInt64},
              {"recovery_records_skipped", ColumnType::kInt64},
              {"recovery_tail_dropped", ColumnType::kInt64},
              {"recovery_replay_errors", ColumnType::kInt64}}));
  // One row per durable observatory; none when running in-memory only.
  if (durability == nullptr) return table;
  DurabilityStats stats = durability->stats();
  if (!stats.durable) return table;
  table->column(0).AppendString(durability->dir());
  table->column(1).AppendInt64(static_cast<int64_t>(stats.wal.total_bytes));
  table->column(2).AppendInt64(static_cast<int64_t>(stats.wal.segment_seq));
  table->column(3).AppendInt64(static_cast<int64_t>(stats.wal.last_lsn));
  table->column(4).AppendInt64(static_cast<int64_t>(stats.wal.synced_lsn));
  table->column(5).AppendInt64(static_cast<int64_t>(stats.wal.appends_total));
  table->column(6).AppendInt64(static_cast<int64_t>(stats.wal.syncs_total));
  table->column(7).AppendInt64(
      static_cast<int64_t>(stats.wal.rotations_total));
  table->column(8).AppendInt64(static_cast<int64_t>(stats.checkpoints));
  table->column(9).AppendInt64(
      static_cast<int64_t>(stats.checkpoint_generation));
  table->column(10).AppendInt64(static_cast<int64_t>(stats.checkpoint_lsn));
  table->column(11).AppendInt64(stats.recovery.recovered ? 1 : 0);
  table->column(12).AppendInt64(
      static_cast<int64_t>(stats.recovery.records_replayed));
  table->column(13).AppendInt64(
      static_cast<int64_t>(stats.recovery.records_applied));
  table->column(14).AppendInt64(
      static_cast<int64_t>(stats.recovery.records_skipped));
  table->column(15).AppendInt64(
      static_cast<int64_t>(stats.recovery.tail_records_dropped));
  table->column(16).AppendInt64(
      static_cast<int64_t>(stats.recovery.replay_errors));
  return table;
}

}  // namespace

bool SystemTables::Serves(const std::string& name) const {
  if (std::find(std::begin(kTableNames), std::end(kTableNames), name) !=
      std::end(kTableNames)) {
    return true;
  }
  return extra_ != nullptr && extra_->Serves(name);
}

std::vector<std::string> SystemTables::TableNames() const {
  std::vector<std::string> names(std::begin(kTableNames),
                                 std::end(kTableNames));
  if (extra_ != nullptr) {
    for (std::string& name : extra_->TableNames()) {
      names.push_back(std::move(name));
    }
  }
  return names;
}

Result<TablePtr> SystemTables::Materialize(const std::string& name) {
  if (name == "sys.queries") return QueriesTable(*registry_);
  if (name == "sys.query_log") return QueryLogTable(*registry_);
  if (name == "sys.metrics") return MetricsTable();
  if (name == "sys.budgets") return BudgetsTable();
  if (name == "sys.breakers") return BreakersTable();
  if (name == "sys.pools") return PoolsTable();
  if (name == "sys.events") return EventsTable();
  if (name == "sys.wal") return WalTable(durability_);
  if (extra_ != nullptr && extra_->Serves(name)) {
    return extra_->Materialize(name);
  }
  return Status::NotFound("no system table named '" + name + "'");
}

}  // namespace teleios::core
