#ifndef TELEIOS_CORE_SYSTEM_TABLES_H_
#define TELEIOS_CORE_SYSTEM_TABLES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/recovery.h"
#include "obs/query_registry.h"
#include "relational/virtual_tables.h"
#include "storage/table.h"

namespace teleios::core {

/// The observatory's `sys.*` schema: virtual tables materialized from
/// live process state on every read. Served tables:
///
///   sys.queries    in-flight statements (id, tier, statement, state,
///                  start_unix_millis, queued_millis, elapsed_millis)
///   sys.query_log  completion ring (… status, rows, latency_millis,
///                  peak_budget_bytes, trace_json)
///   sys.metrics    every registry series flattened to name/kind/value
///   sys.budgets    live MemoryBudget tree (limit −1 when unlimited)
///   sys.breakers   circuit breakers (name, state, trips)
///   sys.pools      the global work-stealing pool's counters
///   sys.events     the EventLog ring, one JSON object per row
///   sys.wal        durability state (WAL size/LSNs, checkpoint marks,
///                  last recovery's replay counts); empty when the
///                  observatory runs without a durable directory
///
/// Snapshots are plain tables, so the full relational surface (WHERE,
/// joins against user tables, aggregates) applies to them.
class SystemTables : public relational::VirtualTableProvider {
 public:
  /// `registry` must outlive the provider.
  explicit SystemTables(obs::ActiveQueryRegistry* registry)
      : registry_(registry) {}

  bool Serves(const std::string& name) const override;
  std::vector<std::string> TableNames() const override;
  Result<storage::TablePtr> Materialize(const std::string& name) override;

  /// Wires sys.wal to a durability manager (nullptr serves it empty).
  /// `durability` must outlive the provider.
  void set_durability(DurabilityManager* durability) {
    durability_ = durability;
  }

  /// Chains another provider behind the built-in sys.* set, so optional
  /// subsystems (the network server's sys.sessions) can join the schema
  /// without the core knowing them. `extra` must outlive the provider or
  /// be unset (nullptr) first; its names must not collide with
  /// kTableNames.
  void set_extra(relational::VirtualTableProvider* extra) { extra_ = extra; }

 private:
  obs::ActiveQueryRegistry* registry_;
  DurabilityManager* durability_ = nullptr;
  relational::VirtualTableProvider* extra_ = nullptr;
};

}  // namespace teleios::core

#endif  // TELEIOS_CORE_SYSTEM_TABLES_H_
