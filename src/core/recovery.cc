#include "core/recovery.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "governor/memory_budget.h"
#include "io/codec.h"
#include "io/filesystem.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace teleios::core {

namespace {

// Record bodies are io/codec-framed. LoadTurtle and kStrabonSnapshot
// payloads can exceed ByteReader's default string cap; the WAL layer
// already bounds a whole record at kMaxWalRecordLen, so that is the
// right cap here too.
constexpr size_t kMaxBodyStr = io::kMaxWalRecordLen;

Result<uint64_t> ParseEnvBytes(const char* raw) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(raw, &end, 10);
  uint64_t bytes = v;
  if (end == raw) {
    return Status::InvalidArgument("not a byte count");
  }
  switch (*end) {
    case '\0':
      break;
    case 'k':
    case 'K':
      bytes <<= 10;
      ++end;
      break;
    case 'm':
    case 'M':
      bytes <<= 20;
      ++end;
      break;
    case 'g':
    case 'G':
      bytes <<= 30;
      ++end;
      break;
    default:
      return Status::InvalidArgument("bad suffix");
  }
  if (*end != '\0') return Status::InvalidArgument("trailing garbage");
  return bytes;
}

std::string EncodeQuarantineBody(const std::string& name,
                                 const Status& sticky) {
  std::string body;
  io::PutStr(&body, name);
  io::PutU32(&body, static_cast<uint32_t>(sticky.code()));
  io::PutStr(&body, sticky.message());
  return body;
}

}  // namespace

DurabilityOptions DurabilityOptions::FromEnv() {
  DurabilityOptions options;
  if (const char* raw = std::getenv("TELEIOS_WAL_CHECKPOINT_BYTES")) {
    Result<uint64_t> parsed = ParseEnvBytes(raw);
    if (parsed.ok()) options.checkpoint_bytes = *parsed;
  }
  return options;
}

DurabilityManager::DurabilityManager(const DurabilityEngines& engines,
                                     std::string dir,
                                     const DurabilityOptions& options)
    : engines_(engines), dir_(std::move(dir)), options_(options) {}

DurabilityManager::~DurabilityManager() = default;

Status DurabilityManager::Recover() {
  MutexLock lock(mu_);
  if (wal_ != nullptr) {
    return Status::Internal("durability manager already recovered");
  }
  return RecoverLocked();
}

Status DurabilityManager::RecoverLocked() {
  obs::TraceSpan span("recovery.replay");
  io::FileSystem* fs = io::GetFileSystem();
  TELEIOS_RETURN_IF_ERROR(fs->CreateDir(dir_));

  RecoveryReport report;
  TELEIOS_ASSIGN_OR_RETURN(
      storage::SnapshotMeta meta,
      storage::LoadCatalogSnapshot(snapshot_dir(), engines_.catalog));
  report.snapshot_loaded = meta.loaded;
  report.snapshot_generation = meta.generation;
  report.snapshot_lsn = meta.lsn;
  report.snapshot_tables = meta.tables;

  TELEIOS_ASSIGN_OR_RETURN(
      io::WalReplayStats replay,
      io::ReplayWal(wal_dir(), [&](const io::WalRecord& record) {
        return ApplyRecord(record, &report);
      }));
  report.tail_records_dropped = replay.tail_dropped;
  report.wal_segments = replay.segments;
  report.wal_bytes = replay.bytes;
  report.last_lsn = std::max(replay.last_lsn, meta.lsn);
  report.recovered = true;

  io::WalWriter::Options wal_options;
  wal_options.budget = options_.wal_budget != nullptr
                           ? options_.wal_budget
                           : &governor::ProcessBudget();
  TELEIOS_ASSIGN_OR_RETURN(
      wal_, io::WalWriter::Open(wal_dir(), report.last_lsn + 1,
                                replay.bytes, wal_options));
  report_ = report;
  checkpoint_generation_ = meta.generation;
  checkpoint_lsn_ = meta.lsn;

  obs::Count("teleios_recovery_runs_total");
  obs::Count("teleios_recovery_records_replayed_total",
             report.records_replayed);
  obs::Count("teleios_recovery_records_skipped_total",
             report.records_skipped);
  obs::Count("teleios_recovery_tail_dropped_total",
             report.tail_records_dropped);
  obs::Count("teleios_recovery_replay_errors_total", report.replay_errors);
  obs::SetGauge("teleios_recovery_snapshot_generation",
                static_cast<double>(report.snapshot_generation));
  obs::PostEvent(
      "recovery.complete",
      {{"dir", dir_},
       {"snapshot_generation", std::to_string(report.snapshot_generation)},
       {"snapshot_lsn", std::to_string(report.snapshot_lsn)},
       {"records_replayed", std::to_string(report.records_replayed)},
       {"records_applied", std::to_string(report.records_applied)},
       {"records_skipped", std::to_string(report.records_skipped)},
       {"tail_records_dropped",
        std::to_string(report.tail_records_dropped)},
       {"replay_errors", std::to_string(report.replay_errors)},
       {"last_lsn", std::to_string(report.last_lsn)}});
  // Make the post-restart history itself durable: a sweep that crashes
  // right after recovery should still show this event in the sink.
  (void)obs::EventLog::Global().SyncSink();
  return Status::OK();
}

Status DurabilityManager::ApplyRecord(const io::WalRecord& record,
                                      RecoveryReport* report) {
  ++report->records_replayed;
  io::ByteReader reader(record.payload);

  // Per-record apply outcomes are tolerated: a statement that failed on
  // the live path fails the same deterministic way here (it was logged
  // before execution), and a record for an engine this deployment lacks
  // is simply inert. Only undecodable bodies and WAL-layer corruption
  // (handled by the replayer) are fatal.
  Status applied = Status::OK();
  bool skipped = false;
  switch (static_cast<WalRecordType>(record.type)) {
    case WalRecordType::kSqlStatement: {
      std::string statement;
      if (!reader.ReadStr(&statement, kMaxBodyStr) || !reader.exhausted()) {
        return Status::DataLoss("WAL: malformed kSqlStatement body at LSN " +
                                std::to_string(record.lsn));
      }
      if (record.lsn <= report->snapshot_lsn) {
        skipped = true;  // the snapshot already contains this effect
      } else if (engines_.sql != nullptr) {
        applied = engines_.sql->Execute(statement).status();
      } else {
        skipped = true;
      }
      break;
    }
    case WalRecordType::kStrabonUpdate: {
      std::string update;
      if (!reader.ReadStr(&update, kMaxBodyStr) || !reader.exhausted()) {
        return Status::DataLoss("WAL: malformed kStrabonUpdate body at LSN " +
                                std::to_string(record.lsn));
      }
      if (engines_.strabon != nullptr) {
        applied = engines_.strabon->Update(update).status();
      } else {
        skipped = true;
      }
      break;
    }
    case WalRecordType::kLoadTurtle:
    case WalRecordType::kStrabonSnapshot: {
      std::string turtle;
      if (!reader.ReadStr(&turtle, kMaxBodyStr) || !reader.exhausted()) {
        return Status::DataLoss("WAL: malformed turtle body at LSN " +
                                std::to_string(record.lsn));
      }
      if (engines_.strabon != nullptr) {
        applied = engines_.strabon->LoadTurtle(turtle).status();
      } else {
        skipped = true;
      }
      break;
    }
    case WalRecordType::kAnnotationPublish: {
      std::string product_id, turtle;
      if (!reader.ReadStr(&product_id, kMaxBodyStr) ||
          !reader.ReadStr(&turtle, kMaxBodyStr) || !reader.exhausted()) {
        return Status::DataLoss(
            "WAL: malformed kAnnotationPublish body at LSN " +
            std::to_string(record.lsn));
      }
      if (engines_.strabon != nullptr) {
        applied = engines_.strabon
                      ->Update(mining::DeleteAnnotationsUpdate(product_id))
                      .status();
        if (applied.ok()) {
          applied = engines_.strabon->LoadTurtle(turtle).status();
        }
      } else {
        skipped = true;
      }
      break;
    }
    case WalRecordType::kVaultAttach: {
      std::string path;
      if (!reader.ReadStr(&path, kMaxBodyStr) || !reader.exhausted()) {
        return Status::DataLoss("WAL: malformed kVaultAttach body at LSN " +
                                std::to_string(record.lsn));
      }
      if (engines_.vault != nullptr) {
        applied = engines_.vault->RestoreAttachment(path);
      } else {
        skipped = true;
      }
      break;
    }
    case WalRecordType::kVaultQuarantine: {
      std::string name, message;
      uint32_t code = 0;
      if (!reader.ReadStr(&name, kMaxBodyStr) || !reader.ReadU32(&code) ||
          !reader.ReadStr(&message, kMaxBodyStr) || !reader.exhausted()) {
        return Status::DataLoss(
            "WAL: malformed kVaultQuarantine body at LSN " +
            std::to_string(record.lsn));
      }
      if (engines_.vault != nullptr) {
        engines_.vault->RestoreQuarantine(
            name, Status(static_cast<StatusCode>(code), std::move(message)));
      } else {
        skipped = true;
      }
      break;
    }
    case WalRecordType::kVaultHeal: {
      std::string name;
      if (!reader.ReadStr(&name, kMaxBodyStr) || !reader.exhausted()) {
        return Status::DataLoss("WAL: malformed kVaultHeal body at LSN " +
                                std::to_string(record.lsn));
      }
      if (engines_.vault != nullptr) {
        engines_.vault->ClearQuarantine(name);
      } else {
        skipped = true;
      }
      break;
    }
    default:
      return Status::DataLoss("WAL: unknown record type " +
                              std::to_string(record.type) + " at LSN " +
                              std::to_string(record.lsn));
  }
  if (skipped) {
    ++report->records_skipped;
  } else if (applied.ok()) {
    ++report->records_applied;
  } else {
    ++report->replay_errors;
  }
  return Status::OK();
}

RecoveryReport DurabilityManager::recovery_report() const {
  MutexLock lock(mu_);
  return report_;
}

Status DurabilityManager::Checkpoint() {
  MutexLock lock(mu_);
  if (wal_ == nullptr) {
    return Status::Internal(
        "durability manager not recovered; call Recover() first");
  }
  return CheckpointLocked();
}

Status DurabilityManager::CheckpointLocked() {
  obs::TraceSpan span("wal.checkpoint");
  // Guard against re-entry: carry-forward vault reads fire no hooks,
  // but keep the invariant explicit in case that ever changes.
  if (in_checkpoint_) {
    return Status::Internal("checkpoint already in progress");
  }
  in_checkpoint_ = true;
  Status status = [&]() -> Status {
    // 1. Everything logged so far becomes durable, then the snapshot is
    //    stamped with the highest durable LSN it covers.
    TELEIOS_RETURN_IF_ERROR(wal_->Sync());
    uint64_t ckpt_lsn = wal_->stats().synced_lsn;
    storage::SnapshotMeta meta;
    if (engines_.catalog != nullptr) {
      TELEIOS_RETURN_IF_ERROR(storage::SaveCatalogCheckpoint(
          *engines_.catalog, snapshot_dir(), ckpt_lsn, &meta));
    }
    // 2. Seal the old log. From here on, a crash at any point is safe:
    //    the old segments still hold every record the snapshot covers
    //    until the truncation at the end.
    TELEIOS_RETURN_IF_ERROR(wal_->Rotate());
    uint64_t live_seq = wal_->segment_seq();
    // 3. Carry forward state that lives outside the catalog snapshot,
    //    as fresh records in the new segment. These are idempotent
    //    redo intents, so replaying them alongside (or without) the
    //    old log converges.
    if (engines_.vault != nullptr) {
      for (const std::string& path : engines_.vault->AttachedFilePaths()) {
        std::string body;
        io::PutStr(&body, path);
        TELEIOS_RETURN_IF_ERROR(
            wal_->Append(static_cast<uint32_t>(WalRecordType::kVaultAttach),
                         body)
                .status());
      }
      for (const auto& [name, sticky] :
           engines_.vault->QuarantineSnapshot()) {
        TELEIOS_RETURN_IF_ERROR(
            wal_->Append(
                    static_cast<uint32_t>(WalRecordType::kVaultQuarantine),
                    EncodeQuarantineBody(name, sticky))
                .status());
      }
    }
    if (engines_.strabon != nullptr) {
      std::string body;
      io::PutStr(&body, engines_.strabon->ToTurtle());
      TELEIOS_RETURN_IF_ERROR(
          wal_->Append(static_cast<uint32_t>(WalRecordType::kStrabonSnapshot),
                       body)
              .status());
    }
    TELEIOS_RETURN_IF_ERROR(wal_->Sync());
    // 4. Only now are the old segments redundant.
    TELEIOS_RETURN_IF_ERROR(wal_->TruncateBefore(live_seq));
    checkpoint_generation_ = meta.generation;
    checkpoint_lsn_ = ckpt_lsn;
    return Status::OK();
  }();
  in_checkpoint_ = false;
  if (!status.ok()) {
    obs::Count("teleios_wal_checkpoint_failures_total");
    return status;
  }
  ++checkpoints_;
  obs::Count("teleios_wal_checkpoints_total");
  obs::SetGauge("teleios_wal_checkpoint_generation",
                static_cast<double>(checkpoint_generation_));
  obs::PostEvent("wal.checkpoint",
                 {{"dir", dir_},
                  {"generation", std::to_string(checkpoint_generation_)},
                  {"lsn", std::to_string(checkpoint_lsn_)},
                  {"wal_bytes", std::to_string(wal_->size_bytes())}});
  (void)obs::EventLog::Global().SyncSink();
  return Status::OK();
}

void DurabilityManager::MaybeAutoCheckpointLocked() {
  if (options_.checkpoint_bytes == 0 || in_checkpoint_) return;
  if (wal_ == nullptr || wal_->size_bytes() < options_.checkpoint_bytes) {
    return;
  }
  // Auto-checkpointing is opportunistic: a failure leaves the log
  // larger than the threshold but loses nothing, so it is counted (in
  // CheckpointLocked) and swallowed rather than failing the mutation
  // that happened to cross the threshold.
  (void)CheckpointLocked();
}

Result<storage::Table> DurabilityManager::SqlMutation(
    const std::string& statement) {
  if (engines_.sql == nullptr) {
    return Status::Internal("no SQL engine attached");
  }
  std::string body;
  io::PutStr(&body, statement);
  return LogAndApply(WalRecordType::kSqlStatement, body,
                     [&] { return engines_.sql->Execute(statement); });
}

Result<size_t> DurabilityManager::StrabonUpdate(const std::string& update) {
  if (engines_.strabon == nullptr) {
    return Status::Internal("no semantic store attached");
  }
  std::string body;
  io::PutStr(&body, update);
  return LogAndApply(WalRecordType::kStrabonUpdate, body,
                     [&] { return engines_.strabon->Update(update); });
}

Result<size_t> DurabilityManager::LoadTurtle(const std::string& turtle) {
  if (engines_.strabon == nullptr) {
    return Status::Internal("no semantic store attached");
  }
  std::string body;
  io::PutStr(&body, turtle);
  return LogAndApply(WalRecordType::kLoadTurtle, body,
                     [&] { return engines_.strabon->LoadTurtle(turtle); });
}

Result<size_t> DurabilityManager::PublishAnnotations(
    const std::vector<mining::Annotation>& annotations,
    const std::string& product_id) {
  if (engines_.strabon == nullptr) {
    return Status::Internal("no semantic store attached");
  }
  TELEIOS_ASSIGN_OR_RETURN(
      std::string turtle,
      mining::RenderAnnotationsTurtle(annotations, product_id));
  std::string body;
  io::PutStr(&body, product_id);
  io::PutStr(&body, turtle);
  return LogAndApply(
      WalRecordType::kAnnotationPublish, body, [&]() -> Result<size_t> {
        TELEIOS_RETURN_IF_ERROR(
            engines_.strabon
                ->Update(mining::DeleteAnnotationsUpdate(product_id))
                .status());
        return engines_.strabon->LoadTurtle(turtle);
      });
}

Result<size_t> DurabilityManager::DeleteAnnotations(
    const std::string& product_id) {
  return StrabonUpdate(mining::DeleteAnnotationsUpdate(product_id));
}

void DurabilityManager::OnVaultTransition(
    const vault::VaultTransition& transition) {
  std::string body;
  uint32_t type = 0;
  switch (transition.kind) {
    case vault::VaultTransition::Kind::kAttach:
      type = static_cast<uint32_t>(WalRecordType::kVaultAttach);
      io::PutStr(&body, transition.path);
      break;
    case vault::VaultTransition::Kind::kQuarantine:
      type = static_cast<uint32_t>(WalRecordType::kVaultQuarantine);
      body = EncodeQuarantineBody(transition.name, transition.status);
      break;
    case vault::VaultTransition::Kind::kHeal:
      type = static_cast<uint32_t>(WalRecordType::kVaultHeal);
      io::PutStr(&body, transition.name);
      break;
  }
  MutexLock lock(mu_);
  if (wal_ == nullptr) return;  // not recovered yet: nothing to mirror into
  Status mirrored = wal_->Append(type, body).status();
  if (mirrored.ok()) mirrored = wal_->Sync();
  if (!mirrored.ok()) {
    // The vault change already committed in memory; the next
    // checkpoint's carry-forward re-captures it.
    obs::Count("teleios_wal_vault_mirror_failures_total");
    return;
  }
  MaybeAutoCheckpointLocked();
}

DurabilityStats DurabilityManager::stats() const {
  MutexLock lock(mu_);
  DurabilityStats stats;
  stats.durable = wal_ != nullptr;
  if (wal_ != nullptr) stats.wal = wal_->stats();
  stats.checkpoints = checkpoints_;
  stats.checkpoint_generation = checkpoint_generation_;
  stats.checkpoint_lsn = checkpoint_lsn_;
  stats.recovery = report_;
  return stats;
}

}  // namespace teleios::core
