#ifndef TELEIOS_CORE_RECOVERY_H_
#define TELEIOS_CORE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "io/wal.h"
#include "mining/annotation.h"
#include "relational/sql_engine.h"
#include "storage/catalog.h"
#include "storage/persistence.h"
#include "strabon/strabon.h"
#include "vault/vault.h"

namespace teleios::core {

/// The logical WAL record catalogue. Records are REDO intents replayed
/// in LSN order at startup; every apply is idempotent (see each entry),
/// so replaying a record whose effect already reached the snapshot — or
/// replaying twice after repeated crashes — converges to the same state.
enum class WalRecordType : uint32_t {
  /// A mutating SQL statement, re-executed verbatim. Catalog-class:
  /// skipped when its LSN is at or below the snapshot's `#LSN` mark
  /// (the snapshot already contains its effect).
  kSqlStatement = 1,
  /// A SPARQL update, re-run verbatim (state-class: always replayed;
  /// the store is only persisted through carry-forward snapshots).
  kStrabonUpdate = 2,
  /// A Turtle document, re-loaded (triple stores deduplicate).
  kLoadTurtle = 3,
  /// An annotation publication: {product_id, rendered turtle}. Replay
  /// deletes the product's previous patches, then loads the turtle —
  /// the same replace semantics as the live path.
  kAnnotationPublish = 4,
  /// A vault attachment by source path; replay re-harvests the header
  /// idempotently (no duplicate metadata rows).
  kVaultAttach = 5,
  /// A raster quarantine: {name, status code, message}. Replay
  /// reinstates the sticky status without touching the file.
  kVaultQuarantine = 6,
  /// A quarantine entry cleared by Heal().
  kVaultHeal = 7,
  /// Carry-forward of the whole semantic store at a checkpoint (full
  /// Turtle dump); written right after log rotation so truncating the
  /// old segments loses nothing that is not in snapshot + new log.
  kStrabonSnapshot = 8,
};

/// What Recover() did, for callers and the crash-sweep harness.
struct RecoveryReport {
  bool recovered = false;          ///< Recover() completed
  bool snapshot_loaded = false;    ///< a catalog snapshot existed
  uint64_t snapshot_generation = 0;
  uint64_t snapshot_lsn = 0;       ///< `#LSN` mark of the snapshot
  size_t snapshot_tables = 0;
  uint64_t records_replayed = 0;   ///< decoded intact from the WAL
  uint64_t records_applied = 0;    ///< actually re-applied
  uint64_t records_skipped = 0;    ///< catalog-class at/below snapshot LSN
  uint64_t tail_records_dropped = 0;  ///< torn tails dropped (not errors)
  uint64_t replay_errors = 0;      ///< per-record apply failures tolerated
  uint64_t last_lsn = 0;           ///< highest LSN seen anywhere
  uint64_t wal_segments = 0;
  uint64_t wal_bytes = 0;
};

/// Point-in-time durability state for `sys.wal` and tests.
struct DurabilityStats {
  bool durable = false;  ///< a DurabilityManager is open and recovered
  io::WalWriter::Stats wal;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_generation = 0;
  uint64_t checkpoint_lsn = 0;
  RecoveryReport recovery;
};

/// Knobs for the durability layer.
struct DurabilityOptions {
  /// Auto-checkpoint (snapshot + log truncation) once the durable log
  /// exceeds this many bytes; 0 disables auto-checkpointing (explicit
  /// Checkpoint() still works). Default 8 MiB.
  uint64_t checkpoint_bytes = 8ull << 20;
  /// Budget charged for the WAL's append buffer (group-commit batching);
  /// nullptr uses the process budget.
  governor::MemoryBudget* wal_budget = nullptr;

  /// Reads TELEIOS_WAL_CHECKPOINT_BYTES (bytes, k/m/g suffixes; unset
  /// keeps the default, 0 disables).
  static DurabilityOptions FromEnv();
};

/// The engines a DurabilityManager recovers and logs for. All pointers
/// are borrowed and must outlive the manager; strabon and vault may be
/// null (their record types are then skipped on replay and never
/// produced).
struct DurabilityEngines {
  storage::Catalog* catalog = nullptr;
  relational::SqlEngine* sql = nullptr;
  strabon::Strabon* strabon = nullptr;
  vault::DataVault* vault = nullptr;
};

/// Write-ahead logging + checkpointing + crash recovery over the
/// observatory's durable state, rooted at one directory:
///
///   <dir>/catalog/   generation-unique TELT snapshot (SaveCatalog)
///   <dir>/wal/       CRC32C-framed log segments (io/wal.h)
///
/// Protocol: every durable logical mutation goes through LogAndApply —
/// append + fsync FIRST (the acknowledgement point), then apply in
/// memory. One mutex spans append+sync+apply+auto-checkpoint, so a
/// checkpoint can never slip between a record's fsync and its apply
/// (which would stamp the snapshot with an LSN covering an un-applied
/// record). Checkpoint = snapshot the catalog with the current synced
/// LSN inside the MANIFEST, rotate the log, re-append carry-forward
/// records for state that lives outside the catalog snapshot (vault
/// attachments + quarantine, the semantic store), then delete the old
/// segments. Recovery = load newest snapshot, replay the log in order
/// (skipping catalog-class records the snapshot already covers),
/// tolerate a torn tail per segment, surface mid-log corruption as
/// kDataLoss.
class DurabilityManager {
 public:
  DurabilityManager(const DurabilityEngines& engines, std::string dir,
                    const DurabilityOptions& options);
  ~DurabilityManager();

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Loads the newest valid snapshot, replays the WAL tail, and opens
  /// the log for appending. Must be called (once) before any Log*
  /// entry point; the engines must still be empty. Emits the
  /// `recovery.complete` event and teleios_recovery_* metrics.
  Status Recover();

  /// The report of the Recover() call (zero-valued before it).
  RecoveryReport recovery_report() const;

  /// Snapshot + rotate + carry-forward + truncate, unconditionally.
  Status Checkpoint();

  /// Durable mutating SQL: logs the statement, then executes it.
  Result<storage::Table> SqlMutation(const std::string& statement);
  /// Durable SPARQL update.
  Result<size_t> StrabonUpdate(const std::string& update);
  /// Durable Turtle load.
  Result<size_t> LoadTurtle(const std::string& turtle);
  /// Durable annotation publication (replace semantics): renders the
  /// triples once, logs {product, turtle}, then deletes + loads.
  Result<size_t> PublishAnnotations(
      const std::vector<mining::Annotation>& annotations,
      const std::string& product_id);
  /// Durable removal of a product's annotations.
  Result<size_t> DeleteAnnotations(const std::string& product_id);

  /// Vault transition subscriber (install via set_transition_hook):
  /// mirrors attach/quarantine/heal into the log. Best-effort — the
  /// vault change already committed in memory, so a log failure is
  /// counted (teleios_wal_vault_mirror_failures_total) and healed by
  /// the next checkpoint's carry-forward, never propagated.
  void OnVaultTransition(const vault::VaultTransition& transition);

  DurabilityStats stats() const;

  const std::string& dir() const { return dir_; }
  std::string wal_dir() const { return dir_ + "/wal"; }
  std::string snapshot_dir() const { return dir_ + "/catalog"; }

 private:
  Status RecoverLocked() TELEIOS_REQUIRES(mu_);
  Status CheckpointLocked() TELEIOS_REQUIRES(mu_);
  void MaybeAutoCheckpointLocked() TELEIOS_REQUIRES(mu_);
  Status ApplyRecord(const io::WalRecord& record, RecoveryReport* report)
      TELEIOS_REQUIRES(mu_);

  /// Append + fsync `body` under `type`, then run `apply`. The record
  /// is acknowledged (durable) iff the sync succeeded; apply failures
  /// propagate to the caller but the record stays in the log — replay
  /// re-runs the same apply deterministically, converging either way.
  template <typename Fn>
  auto LogAndApply(WalRecordType type, const std::string& body, Fn&& apply)
      -> decltype(apply()) {
    MutexLock lock(mu_);
    if (wal_ == nullptr) {
      return Status::Internal(
          "durability manager not recovered; call Recover() first");
    }
    auto lsn = wal_->Append(static_cast<uint32_t>(type), body);
    if (!lsn.ok()) return lsn.status();
    TELEIOS_RETURN_IF_ERROR(wal_->Sync());
    auto result = apply();
    MaybeAutoCheckpointLocked();
    return result;
  }

  const DurabilityEngines engines_;
  const std::string dir_;
  const DurabilityOptions options_;

  mutable Mutex mu_;
  std::unique_ptr<io::WalWriter> wal_ TELEIOS_GUARDED_BY(mu_);
  RecoveryReport report_ TELEIOS_GUARDED_BY(mu_);
  uint64_t checkpoints_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t checkpoint_generation_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t checkpoint_lsn_ TELEIOS_GUARDED_BY(mu_) = 0;
  bool in_checkpoint_ TELEIOS_GUARDED_BY(mu_) = false;
};

}  // namespace teleios::core

#endif  // TELEIOS_CORE_RECOVERY_H_
