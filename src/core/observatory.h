#ifndef TELEIOS_CORE_OBSERVATORY_H_
#define TELEIOS_CORE_OBSERVATORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/recovery.h"
#include "core/system_tables.h"
#include "mining/annotation_service.h"
#include "common/cancellation.h"
#include "governor/admission.h"
#include "governor/memory_budget.h"
#include "noa/chain.h"
#include "obs/query_registry.h"
#include "noa/mapping.h"
#include "noa/refinement.h"
#include "sciql/sciql_engine.h"
#include "relational/sql_engine.h"
#include "storage/catalog.h"
#include "strabon/strabon.h"
#include "vault/vault.h"

namespace teleios::core {

/// The TELEIOS Virtual Earth Observatory facade: wires the four
/// architecture tiers of the paper's Figure 2 into one object —
/// the data vault (ingestion tier), the SQL/SciQL/stSPARQL engines over
/// the shared catalog and Strabon store (database tier), the NOA
/// processing chain and refinement (service tier), and the rapid mapper
/// (application tier).
///
/// All engines share state: rasters attached through the vault are
/// SciQL-queryable after RegisterRaster, products and hotspots created
/// by RunFireChain are visible to SQL (table "products") and stSPARQL,
/// and linked data loaded with LoadLinkedData joins against them.
class VirtualEarthObservatory {
 public:
  VirtualEarthObservatory();

  // --- ingestion tier -----------------------------------------------------

  /// Attaches a directory of .ter/.vec products (metadata-only harvest).
  Result<size_t> AttachArchive(const std::string& directory);

  /// Makes an attached raster queryable through SciQL (lazy ingestion on
  /// first call).
  Status RegisterRaster(const std::string& name);

  // --- database tier --------------------------------------------------------
  //
  // Each query entry point also understands a leading PROFILE keyword
  // (mirroring EXPLAIN): `PROFILE <statement>` executes the statement
  // under a trace and returns the span tree as a table with columns
  // (span, depth, millis, detail) instead of the result rows; the root
  // span carries the result cardinality as a rows= detail.
  //
  // Statements run under the resource governor: admission control caps
  // how many execute at once (overflow sheds with kUnavailable), and a
  // per-query child of the process memory budget accounts the statement's
  // working memory (an oversized query fails that query with
  // kResourceExhausted instead of taking the process down). `cancel`
  // (optional) bounds the queue wait and the statement's retries by the
  // caller's deadline.

  /// SQL over catalog/metadata tables.
  Result<storage::Table> Sql(const std::string& statement,
                             const CancellationToken* cancel = nullptr);
  /// SciQL over registered arrays (and catalog tables).
  Result<storage::Table> SciQl(const std::string& statement,
                               const CancellationToken* cancel = nullptr);
  /// stSPARQL SELECT/ASK over the semantic store.
  Result<storage::Table> StSparql(
      const std::string& query,
      const CancellationToken* cancel = nullptr);
  /// stSPARQL update.
  Result<size_t> StSparqlUpdate(const std::string& update);
  /// Loads Turtle (ontologies, annotations, linked open data).
  Result<size_t> LoadLinkedData(const std::string& turtle);

  // --- service tier ---------------------------------------------------------

  /// Runs the NOA fire-monitoring chain on an attached raster.
  Result<noa::ChainResult> RunFireChain(
      const std::string& raster_name, const noa::ChainConfig& config,
      const CancellationToken* cancel = nullptr);

  /// Runs the chain over a batch of rasters; per-product failures land
  /// in ChainResult::failures while the rest complete. Governed like the
  /// query entry points: one admission slot for the whole batch, one
  /// per-batch memory budget.
  Result<noa::ChainResult> RunFireChainBatch(
      const std::vector<std::string>& raster_names,
      const noa::ChainConfig& config,
      const CancellationToken* cancel = nullptr);

  // --- persistence & durability ---------------------------------------------

  /// Saves every catalog table (metadata, attached products, chain
  /// outputs) as a checksummed snapshot under `dir`.
  Status SaveCatalog(const std::string& dir);

  /// Loads a SaveCatalog snapshot into this observatory's catalog.
  Result<size_t> LoadCatalog(const std::string& dir);

  /// Makes this observatory durable, rooted at `dir`: recovers the
  /// newest catalog snapshot plus the WAL tail (automatic crash
  /// recovery — a torn log tail is dropped and counted, never an
  /// error), then routes every subsequent logical mutation (mutating
  /// SQL, stSPARQL updates, linked-data loads, annotation publication,
  /// vault attach/quarantine/heal) through the write-ahead log before
  /// applying it. Call on a freshly constructed observatory, once;
  /// options default to DurabilityOptions::FromEnv(). After Open,
  /// `sys.wal` serves the durability state and recovery_report() says
  /// what replay did.
  Status Open(const std::string& dir);
  Status Open(const std::string& dir, const DurabilityOptions& options);

  /// True once Open() succeeded.
  bool durable() const { return durability_ != nullptr; }

  /// Snapshot + WAL rotation + truncation, on demand (Open also
  /// checkpoints automatically once the log passes its size threshold).
  Status Checkpoint();

  /// What recovery replayed at Open time (zero-valued when not durable).
  RecoveryReport recovery_report() const;
  /// Live durability counters (sys.wal's source).
  DurabilityStats durability_stats() const;

  /// Publishes a mining service's annotations for `product_id`
  /// (replace semantics), durably when open. Returns triples added.
  Result<size_t> PublishAnnotations(const mining::AnnotationService& service,
                                    const std::string& product_id);
  /// Removes a product's published annotations, durably when open.
  Result<size_t> DeleteAnnotations(const std::string& product_id);

  /// Refines a chain product against the loaded coastline layer.
  Result<noa::RefinementReport> Refine(const std::string& product_id);

  // --- observability --------------------------------------------------------
  //
  // Every governed statement is also registered in the introspection
  // layer: it gets a process-unique query id, is visible in the
  // `sys.queries` virtual table while it runs (`SELECT * FROM
  // sys.queries` from any other connection/thread), can be killed by id,
  // and leaves a completion record in `sys.query_log` — with its span
  // tree as Chrome trace-event JSON when the statement was PROFILEd or
  // sampled by TELEIOS_TRACE_SAMPLE.

  /// Prometheus-style text exposition of all process-wide metrics
  /// (counters, gauges, latency summaries) recorded by the tiers.
  std::string MetricsText() const;
  /// The same metrics as one JSON object.
  std::string MetricsJson() const;

  /// Cooperatively cancels the governed statement with this `sys.queries`
  /// id: a queued statement abandons the admission queue, a running one
  /// stops at its next cancellation poll (morsel boundaries, retry
  /// loops). NotFound once the query has finished. The kill is a
  /// request — completion (status kCancelled) lands in sys.query_log
  /// when the statement actually unwinds.
  Status KillQuery(uint64_t id) { return introspection_.Kill(id); }

  /// The query lifecycle ledger behind sys.queries / sys.query_log.
  obs::ActiveQueryRegistry& introspection() { return introspection_; }

  /// The sys.* virtual-table provider shared by the SQL and SciQL
  /// engines; optional subsystems (the network server) extend the
  /// schema through SystemTables::set_extra.
  SystemTables& system_tables() { return system_tables_; }

  // --- application tier -------------------------------------------------------

  /// A mapper over this observatory's semantic store; add layers with
  /// stSPARQL queries and render.
  noa::RapidMapper MakeMapper() { return noa::RapidMapper(&strabon_); }

  // --- direct access to the underlying engines -------------------------------

  storage::Catalog& catalog() { return catalog_; }
  vault::DataVault& vault() { return *vault_; }
  sciql::SciQlEngine& sciql() { return *sciql_; }
  strabon::Strabon& strabon() { return strabon_; }

  /// Status of the domain-ontology load performed at construction. A
  /// constructor cannot return a Status, so the result is kept sticky
  /// here instead of being dropped; semantic queries against an
  /// observatory whose ontology failed to load would silently miss the
  /// taxonomy, so callers that depend on it should check this once.
  const Status& ontology_status() const { return ontology_status_; }

  // --- resource governance ----------------------------------------------------

  /// Concurrency / queue-depth knobs; defaults come from
  /// TELEIOS_MAX_CONCURRENT_QUERIES at construction.
  void SetAdmissionConfig(const governor::AdmissionConfig& config) {
    admission_.Reconfigure(config);
  }
  governor::AdmissionController& admission() { return admission_; }

 private:
  /// The full governed statement lifecycle around one entry point:
  /// registry registration (sys.queries row + killable token), admission,
  /// optional tracing (PROFILE or sampling), per-query budget +
  /// bad_alloc backstop, and the sys.query_log completion record on
  /// every path out. For table-returning entry points `profile` swaps
  /// the result for the span tree rendered as a table.
  template <typename Fn>
  auto Governed(const char* tier, const std::string& statement, bool profile,
                const CancellationToken* cancel, Fn&& run)
      -> decltype(run());

  storage::Catalog catalog_;
  strabon::Strabon strabon_;
  std::unique_ptr<vault::DataVault> vault_;
  std::unique_ptr<sciql::SciQlEngine> sciql_;
  std::unique_ptr<relational::SqlEngine> sql_;
  std::unique_ptr<noa::ProcessingChain> chain_;
  std::unique_ptr<DurabilityManager> durability_;
  /// SQL mutations are single-writer: concurrent INSERT/UPDATE/DELETE
  /// from server handler threads would otherwise race on column
  /// vectors. The durable path already serializes under the WAL lock;
  /// this keeps the non-durable path honest too. Reads stay lock-free,
  /// so a scan concurrent with a mutation of the *same* table remains
  /// unsynchronized — workloads that need that run statements on one
  /// thread, as before.
  // teleios-lint: allow(TL002) -- guards catalog column state, see above.
  mutable Mutex sql_write_mu_;
  Status ontology_status_;
  governor::AdmissionController admission_{governor::AdmissionConfig::FromEnv()};
  obs::ActiveQueryRegistry introspection_;
  SystemTables system_tables_{&introspection_};
};

}  // namespace teleios::core

#endif  // TELEIOS_CORE_OBSERVATORY_H_
